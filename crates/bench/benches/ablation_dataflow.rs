//! Ablation — dataflow choice at vector granularity (§4.2).
//!
//! Quantifies why MAICC keeps weights stationary: alternatives either
//! explode inter-node traffic (OS re-streams weights) or leave the CMem
//! idle (RS/OS give a core too few consecutive MACs to cover the
//! 64-cycle MAC latency).
//!
//! `cargo bench -p maicc-bench --bench ablation_dataflow`

use criterion::{criterion_group, criterion_main, Criterion};
use maicc::exec::dataflow::{evaluate, Dataflow};
use maicc::nn::resnet::resnet18;
use maicc_bench::header;

fn bench(c: &mut Criterion) {
    let shapes = resnet18(1000).shapes([64, 56, 56]).expect("shapes");
    header("Ablation — dataflows on ResNet-18 layers (per node group)");
    for name in ["conv1_2", "conv2_2", "conv3_2", "conv4_2"] {
        let s = shapes.iter().find(|s| s.name == name).expect("layer");
        println!("\n{name} (C={} M={}):", s.in_c, s.out_c);
        println!(
            "{:>20}{:>16}{:>16}{:>12}{:>10}",
            "dataflow", "traffic (KB)", "weights (KB)", "depth", "busy?"
        );
        let cores = (s.out_c / 5).max(4);
        for df in Dataflow::ALL {
            let cost = evaluate(s, df, cores);
            println!(
                "{:>20}{:>16.0}{:>16.0}{:>12.1}{:>10}",
                format!("{df:?}"),
                cost.total_traffic() / 1024.0,
                cost.weight_traffic / 1024.0,
                cost.pipeline_depth,
                if cost.saturates_cmem() { "yes" } else { "no" }
            );
        }
        let ws = evaluate(s, Dataflow::WeightStationary, cores);
        assert!(ws.saturates_cmem(), "{name}");
    }
    println!(
        "\nonly weight-stationary keeps the seven slices busy while moving\n\
         weights exactly once — the paper's §4.2 conclusion."
    );

    let mut g = c.benchmark_group("ablation_dataflow");
    g.bench_function("evaluate_all", |b| {
        b.iter(|| {
            shapes
                .iter()
                .flat_map(|s| Dataflow::ALL.map(|df| evaluate(s, df, 32).total_traffic()))
                .sum::<f64>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
