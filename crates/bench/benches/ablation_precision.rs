//! Ablation — activation/weight precision (§2.2: 16/8/4-bit fixed point).
//!
//! Bit-serial compute makes precision a first-class lever: a `MAC.C` costs
//! `n²` cycles and a slice holds `64/n − 1` vectors, so halving the
//! precision quadruples MAC speed *and* doubles the filters per core.
//! This ablation maps ResNet-18 heuristically at 4/8/16 bits and reports
//! the end-to-end effect.
//!
//! `cargo bench -p maicc-bench --bench ablation_precision`

use criterion::{criterion_group, criterion_main, Criterion};
use maicc::exec::config::ExecConfig;
use maicc::exec::pipeline_model::run_network;
use maicc::exec::segment::Strategy;
use maicc::nn::resnet::resnet18;
use maicc_bench::header;

fn bench(c: &mut Criterion) {
    let net = resnet18(1000);
    header("Ablation — precision vs latency (ResNet-18, heuristic, 210 cores)");
    println!(
        "{:>6}{:>14}{:>16}{:>18}",
        "bits", "latency (ms)", "min conv4 nodes", "throughput (s/s)"
    );
    let mut results = Vec::new();
    for bits in [4usize, 8, 16] {
        let cfg = ExecConfig {
            n_bits: bits,
            ..ExecConfig::default()
        };
        match run_network(&net, [64, 56, 56], Strategy::Heuristic, &cfg) {
            Ok(r) => {
                let conv4 = r
                    .layers
                    .iter()
                    .filter(|l| l.name.starts_with("conv4"))
                    .map(|l| l.nodes)
                    .min()
                    .unwrap_or(0);
                println!(
                    "{:>6}{:>14.3}{:>16}{:>18.1}",
                    bits,
                    r.total_ms(&cfg),
                    conv4,
                    r.throughput(&cfg)
                );
                results.push((bits, r.total_ms(&cfg)));
            }
            Err(e) => println!("{bits:>6}  does not map: {e}"),
        }
    }
    // 4-bit must beat 8-bit; 16-bit must be the slowest mapping that fits
    if results.len() >= 2 {
        assert!(
            results[0].1 < results[1].1,
            "4-bit should be faster: {results:?}"
        );
    }
    if results.len() == 3 {
        assert!(results[1].1 < results[2].1, "{results:?}");
    }
    println!(
        "\nprecision is why in-SRAM bit-serial computing targets quantized\n\
         inference: the same array is a faster, larger machine at low n."
    );

    let mut g = c.benchmark_group("ablation_precision");
    g.sample_size(10);
    g.bench_function("resnet18_4bit_mapping", |b| {
        let cfg = ExecConfig {
            n_bits: 4,
            ..ExecConfig::default()
        };
        b.iter(|| {
            run_network(&net, [64, 56, 56], Strategy::Heuristic, &cfg)
                .expect("maps")
                .total_cycles
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
