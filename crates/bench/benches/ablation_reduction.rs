//! Ablation — the hardware MAC primitive vs element-wise + reduction
//! (§3.2's second improvement, Figure 4).
//!
//! The same 256-element dot product is computed two ways at every
//! supported precision: MAICC's spatial `MAC.C` (`n²` cycles) and Neural
//! Cache's temporal flow (bit-serial multiply then log-step reduction).
//! Functional equality is asserted with the real bit-level models.
//!
//! `cargo bench -p maicc-bench --bench ablation_reduction`

use criterion::{criterion_group, criterion_main, Criterion};
use maicc::sram::neural_cache::NcArray;
use maicc::sram::slice::CmemSlice;
use maicc::sram::timing;
use maicc_bench::header;

fn bench(c: &mut Criterion) {
    header("Ablation — MAC primitive vs element-wise + reduction");
    println!(
        "{:>6}{:>14}{:>22}{:>12}",
        "bits", "MAC.C cycles", "elementwise+reduce", "speedup"
    );
    for bits in [2usize, 4, 8, 16] {
        let mac = timing::mac_cycles(bits);
        let ew = timing::nc_mul_cycles(bits) + timing::nc_reduce_cycles(2 * bits, 256);
        println!(
            "{:>6}{:>14}{:>22}{:>12.2}",
            bits,
            mac,
            ew,
            ew as f64 / mac as f64
        );
        assert!(mac < ew, "the MAC primitive must win at {bits} bits");
    }

    // functional cross-check at 8 bits with the real arrays
    let a: Vec<u16> = (0..256).map(|i| (i * 3 % 251) as u16 % 256).collect();
    let b: Vec<u16> = (0..256).map(|i| (i * 7 % 241) as u16 % 256).collect();
    let mut slice = CmemSlice::new();
    slice.write_vector(0, &a, 8).expect("fits");
    slice.write_vector(8, &b, 8).expect("fits");
    let spatial = slice.mac(0, 8, 8, false).expect("in range") as u64;

    let mut nc = NcArray::new();
    let a64: Vec<u64> = a.iter().map(|&x| x as u64).collect();
    let b64: Vec<u64> = b.iter().map(|&x| x as u64).collect();
    nc.write_vector(0, &a64, 8).expect("fits");
    nc.write_vector(8, &b64, 8).expect("fits");
    let temporal = nc.dot(0, 8, 32, 8).expect("in range");
    assert_eq!(spatial, temporal, "both paths compute the same dot product");
    println!("\nfunctional cross-check at 8 bits: both paths give {spatial} ✓");
    println!(
        "Neural Cache spends {:.0}% of those cycles in the reduction tail (paper: 23%)",
        timing::nc_reduce_cycles(16, 256) as f64
            / (timing::nc_mul_cycles(8) + timing::nc_reduce_cycles(16, 256)) as f64
            * 100.0
    );

    let mut g = c.benchmark_group("ablation_reduction");
    g.bench_function("spatial_mac_bitlevel", |bch| {
        bch.iter(|| slice.mac(0, 8, 8, false).expect("in range"))
    });
    g.bench_function("temporal_dot_bitlevel", |bch| {
        bch.iter(|| {
            let mut nc = NcArray::new();
            nc.write_vector(0, &a64, 8).expect("fits");
            nc.write_vector(8, &b64, 8).expect("fits");
            nc.dot(0, 8, 32, 8).expect("in range")
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
