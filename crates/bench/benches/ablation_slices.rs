//! Ablation — CMem slicing (§3.2's first improvement).
//!
//! The paper partitions the 16 KB CMem into eight slender slices because
//! "operations in different slices do not interfere and thus can be
//! parallelized", at the cost of more peripheral logic and stricter data
//! locality. This ablation sweeps the compute-slice count for the Table-4
//! workload and prints the per-iteration latency / area tradeoff.
//!
//! `cargo bench -p maicc-bench --bench ablation_slices`

use criterion::{criterion_group, criterion_main, Criterion};
use maicc::model::area::{COMPUTE_SLICE_MM2, SLICE0_MM2, SLICE_LOGIC_FRACTION};
use maicc_bench::header;

/// Per-iteration CMem cycles for the Table-4 conv (45 filter vectors, one
/// arriving ifmap vector) with `k` compute slices: the broadcast
/// serializes on slice 0 (`k·N`) while the MACs parallelize across the
/// slices (`⌈45/k⌉·N²`).
fn iteration_cycles(k: u64) -> u64 {
    let n = 8u64;
    k * n + 45u64.div_ceil(k) * n * n
}

/// CMem area with `k` compute slices: slice 0 plus `k` slices whose
/// memory-cell area shrinks with 1/k (fixed capacity) but whose adder-tree
/// logic replicates per slice.
fn cmem_area(k: f64) -> f64 {
    let cells_total = 7.0 * COMPUTE_SLICE_MM2 * (1.0 - SLICE_LOGIC_FRACTION);
    let logic_each = 7.0 * COMPUTE_SLICE_MM2 * SLICE_LOGIC_FRACTION / 7.0;
    SLICE0_MM2 + cells_total + k * logic_each
}

fn bench(c: &mut Criterion) {
    header("Ablation — slice count vs per-iteration latency and area");
    println!(
        "{:>8}{:>16}{:>14}{:>18}",
        "slices", "cycles/iter", "CMem mm²", "vectors/slice"
    );
    let mut prev_cycles = u64::MAX;
    for k in [1u64, 2, 4, 7, 8, 14, 16] {
        let cy = iteration_cycles(k);
        let a = cmem_area(k as f64);
        println!(
            "{:>8}{:>16}{:>14.4}{:>18.1}",
            k,
            cy,
            a,
            45.0 / k as f64
        );
        if k <= 8 {
            assert!(cy <= prev_cycles, "more slices must not slow compute");
            prev_cycles = cy;
        }
    }
    println!(
        "\nthe paper's pick (7 compute slices): {} cycles/iter — within 15% of the\n\
         16-slice point at half the adder-tree area; fewer slices serialize MACs.",
        iteration_cycles(7)
    );
    assert!(iteration_cycles(7) < iteration_cycles(1) / 4);
    assert!(cmem_area(16.0) > cmem_area(7.0));

    let mut g = c.benchmark_group("ablation_slices");
    g.bench_function("sweep", |b| {
        b.iter(|| {
            (1..=16u64)
                .map(iteration_cycles)
                .sum::<u64>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
