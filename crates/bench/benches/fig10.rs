//! Figure 10 — area and energy breakdown of the 210-core MAICC chip.
//!
//! `cargo bench -p maicc-bench --bench fig10`

use criterion::{criterion_group, criterion_main, Criterion};
use maicc::exec::config::ExecConfig;
use maicc::exec::pipeline_model::run_network;
use maicc::exec::segment::Strategy;
use maicc::model::area::AreaBreakdown;
use maicc::model::power::EnergyBreakdown;
use maicc::nn::resnet::resnet18;
use maicc_bench::{header, paper, row};

fn bench(c: &mut Criterion) {
    // (a) area
    let area = AreaBreakdown::for_chip(210, 32);
    let f = area.fractions();
    header("Figure 10(a) — area breakdown");
    println!("total chip area: {:.1} mm² (paper: 28 mm²)", area.total());
    let labels = ["CMem", "core", "node SRAM", "NoC", "LL cache"];
    for i in 0..5 {
        row(labels[i], f[i] * 100.0, paper::FIG10_AREA[i] * 100.0, "%");
    }
    println!(
        "CMem computing logic (adder trees): {:.1} mm² — about one-third of the CMem",
        area.cmem_logic()
    );
    assert!(f[0] > 0.55, "CMem must dominate area");

    // (b) energy, from the heuristic ResNet-18 run
    let net = resnet18(1000);
    let cfg = ExecConfig::default();
    let run = run_network(&net, [64, 56, 56], Strategy::Heuristic, &cfg).expect("maps");
    let e = EnergyBreakdown::from_counters(&run.counters);
    let ef = e.fractions();
    header("Figure 10(b) — energy breakdown (heuristic ResNet-18 run)");
    println!(
        "total energy {:.2} mJ over {:.2} ms → {:.1} W average",
        e.total() * 1e3,
        run.counters.seconds * 1e3,
        e.average_power(run.counters.seconds)
    );
    let elabels = ["DRAM", "CMem", "NoC", "core", "node SRAM", "LL cache"];
    let epaper = [0.71, 0.11, 0.11, 0.03, 0.02, 0.02];
    for i in 0..6 {
        row(elabels[i], ef[i] * 100.0, epaper[i] * 100.0, "%");
    }
    assert!(ef[0] > 0.5, "DRAM must dominate energy: {ef:?}");
    assert!(ef[0] > paper::FIG10_ENERGY_TOP3[1], "dram above cmem band");

    let mut g = c.benchmark_group("fig10");
    g.bench_function("area_model", |b| {
        b.iter(|| AreaBreakdown::for_chip(210, 32).total())
    });
    g.bench_function("energy_model", |b| {
        b.iter(|| EnergyBreakdown::from_counters(&run.counters).total())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
