//! Figure 9 — per-iteration cycle breakdown of layer 9's (conv2_4)
//! computing core under the three mapping strategies.
//!
//! `cargo bench -p maicc-bench --bench fig9`

use criterion::{criterion_group, criterion_main, Criterion};
use maicc::exec::config::ExecConfig;
use maicc::exec::pipeline_model::{run_network, IterBreakdown};
use maicc::exec::segment::Strategy;
use maicc::nn::resnet::resnet18;
use maicc_bench::header;

const LAYER: usize = 8; // conv2_4, the paper's layer index 9

fn bench(c: &mut Criterion) {
    let net = resnet18(1000);
    let cfg = ExecConfig::default();

    header("Figure 9 — time breakdown per iteration of layer conv2_4");
    println!(
        "{:<14}{:>8}{:>10}{:>8}{:>12}{:>12}{:>10}",
        "strategy", "wait", "compute", "recv", "send-ifmap", "send-ofmap", "period"
    );
    let mut waits = Vec::new();
    for strat in Strategy::ALL {
        let r = run_network(&net, [64, 56, 56], strat, &cfg).expect("maps");
        let b = IterBreakdown::of(&r.layers[LAYER]);
        println!(
            "{:<14}{:>8.0}{:>10.0}{:>8.0}{:>12.0}{:>12.0}{:>10.0}",
            format!("{strat:?}"),
            b.wait,
            b.compute,
            b.recv,
            b.send_ifmap,
            b.send_ofmap,
            b.effective_period
        );
        waits.push((strat, b.wait, b.compute));
    }
    println!(
        "\npaper's reading: waiting dominates single-layer and greedy; compute\n\
         scales inversely with allocated nodes; send costs stay stable."
    );
    // the paper's qualitative claims must hold
    let single_wait = waits[0].1;
    let heuristic_wait = waits[2].1;
    assert!(single_wait > heuristic_wait);

    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("breakdown_all_strategies", |b| {
        b.iter(|| {
            Strategy::ALL
                .iter()
                .map(|&s| {
                    let r = run_network(&net, [64, 56, 56], s, &cfg).expect("maps");
                    IterBreakdown::of(&r.layers[LAYER]).wait
                })
                .sum::<f64>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
