//! Micro-benchmarks of the mesh NoC: zero-load latency scaling and
//! hotspot throughput on the 16×16 MAICC geometry.
//!
//! `cargo bench -p maicc-bench --bench micro_noc`

use criterion::{criterion_group, criterion_main, Criterion};
use maicc::noc::{Coord, Mesh, Packet};
use maicc_bench::header;

fn uniform_traffic(n: u32) -> u64 {
    let mut mesh: Mesh<u32> = Mesh::new(16, 16);
    for i in 0..n {
        let s = Coord::new((i % 15) as u8, ((i / 15) % 14) as u8);
        let d = Coord::new(((i * 7) % 15) as u8, (((i * 11) / 15) % 14) as u8);
        mesh.send(Packet::new(s, d, 9, i));
    }
    let delivered = mesh.run_until_idle(1_000_000);
    assert_eq!(delivered.len(), n as usize);
    mesh.cycle()
}

fn bench(c: &mut Criterion) {
    header("NoC characterization (16×16 mesh, 9-flit row packets)");
    println!("{:>10}{:>14}{:>18}", "packets", "drain cycles", "pkts/kcycle");
    for n in [32u32, 128, 512] {
        let cy = uniform_traffic(n);
        println!("{:>10}{:>14}{:>18.1}", n, cy, n as f64 / cy as f64 * 1e3);
    }
    let one = Mesh::<u32>::zero_load_latency(Coord::new(0, 0), Coord::new(15, 15), 9);
    println!("corner-to-corner 9-flit zero-load latency: {one} cycles");

    let mut g = c.benchmark_group("micro_noc");
    g.sample_size(20);
    g.bench_function("uniform_128_row_packets", |b| b.iter(|| uniform_traffic(128)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
