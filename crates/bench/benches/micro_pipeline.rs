//! Micro-benchmark of the node simulator: functional interpretation plus
//! cycle-accurate replay throughput (host instructions per second).
//!
//! `cargo bench -p maicc-bench --bench micro_pipeline`

use criterion::{criterion_group, criterion_main, Criterion};
use maicc::core::kernels::{CmemConvKernel, ConvWorkload};
use maicc::core::pipeline::{PipelineConfig, Timing};
use maicc_bench::header;

fn bench(c: &mut Criterion) {
    let wl = ConvWorkload::tiny();
    let kernel = CmemConvKernel::new(wl).expect("fits");
    let ifmap = wl.synthetic_ifmap();
    let weights = wl.synthetic_weights();

    // report simulator speed once
    let mut node = kernel.prepare(&ifmap, &weights, 4).expect("prepared");
    let start = std::time::Instant::now();
    let mut t = Timing::new(PipelineConfig::default());
    node.run_with(10_000_000, |e| t.on_retire(e)).expect("halts");
    let secs = start.elapsed().as_secs_f64();
    let insts = node.instret();
    header("simulator speed");
    println!(
        "{insts} guest instructions in {:.3} s → {:.2} MIPS (functional + timing)",
        secs,
        insts as f64 / secs / 1e6
    );

    let mut g = c.benchmark_group("micro_pipeline");
    g.sample_size(10);
    g.bench_function("tiny_conv_functional_plus_timing", |b| {
        b.iter(|| {
            let mut node = kernel.prepare(&ifmap, &weights, 4).expect("prepared");
            let mut t = Timing::new(PipelineConfig::default());
            node.run_with(10_000_000, |e| t.on_retire(e)).expect("halts");
            t.finish().total_cycles
        })
    });
    g.bench_function("tiny_conv_functional_only", |b| {
        b.iter(|| {
            let mut node = kernel.prepare(&ifmap, &weights, 4).expect("prepared");
            node.run_with(10_000_000, |_| {}).expect("halts");
            node.instret()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
