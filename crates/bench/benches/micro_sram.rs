//! Micro-benchmarks of the bit-level SRAM substrate (simulator speed, not
//! modelled hardware speed).
//!
//! `cargo bench -p maicc-bench --bench micro_sram`

use criterion::{criterion_group, criterion_main, Criterion};
use maicc::sram::cmem::Cmem;
use maicc::sram::transpose;

fn bench(c: &mut Criterion) {
    let a: Vec<i8> = (0..256).map(|i| (i % 11) as i8 - 5).collect();
    let b: Vec<i8> = (0..256).map(|i| (i % 7) as i8 - 3).collect();
    let mut cmem = Cmem::new();
    cmem.write_vector_i8(1, 0, &a).expect("fits");
    cmem.write_vector_i8(1, 8, &b).expect("fits");

    let mut g = c.benchmark_group("micro_sram");
    g.bench_function("mac_i8_256", |bch| {
        bch.iter(|| cmem.mac_i8(1, 0, 8).expect("in range"))
    });
    g.bench_function("move_vector", |bch| {
        bch.iter(|| cmem.move_vector(1, 0, 2, 0, 8).expect("in range"))
    });
    let words: Vec<u16> = (0..256).map(|i| (i % 256) as u16).collect();
    g.bench_function("transpose_pack_8bit", |bch| {
        bch.iter(|| transpose::pack_words(&words, 8, 256))
    });
    g.bench_function("store_byte_vertical", |bch| {
        let mut m = Cmem::new();
        let mut i = 0usize;
        bch.iter(|| {
            m.store_byte(i % 2048, (i % 256) as u8).expect("in range");
            i += 1;
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
