//! Micro-benchmark of the full-system streaming simulator: bit-level
//! CMems + flit-level mesh, end to end (host speed, not modelled cycles).
//!
//! `cargo bench -p maicc-bench --bench micro_stream`

use criterion::{criterion_group, criterion_main, Criterion};
use maicc::sim::stream::{StreamConfig, StreamSim};
use maicc_bench::header;

fn bench(c: &mut Criterion) {
    let cfg = StreamConfig::small_test();
    // report modelled vs host cost once
    let start = std::time::Instant::now();
    let mut sim = StreamSim::new(&cfg).expect("fits");
    let r = sim.run(5_000_000).expect("drains");
    let host = start.elapsed().as_secs_f64();
    header("streaming simulator speed");
    println!(
        "{} modelled cycles in {:.3} s host time → {:.1} kcycles/s",
        r.cycles,
        host,
        r.cycles as f64 / host / 1e3
    );
    assert_eq!(r.ofmap, cfg.golden());

    let mut g = c.benchmark_group("micro_stream");
    g.sample_size(10);
    g.bench_function("single_layer_conv_full_system", |b| {
        b.iter(|| {
            let mut sim = StreamSim::new(&cfg).expect("fits");
            sim.run(5_000_000).expect("drains").cycles
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
