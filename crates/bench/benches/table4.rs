//! Table 4 — node comparison: scalar core vs MAICC node vs Neural Cache
//! on the 5×(3×3×256) filters / 9×9×256 ifmap convolution, 8-bit.
//!
//! `cargo bench -p maicc-bench --bench table4`

use criterion::{criterion_group, criterion_main, Criterion};
use maicc::core::kernels::{CmemConvKernel, ConvWorkload, ScalarConvKernel};
use maicc::core::pipeline::{PipelineConfig, Timing};
use maicc::model::area;
use maicc::sram::neural_cache::NcConvCost;
use maicc_bench::{header, paper, row};

fn run_maicc_node(wl: ConvWorkload, ifmap: &[i8], weights: &[i8]) -> (u64, f64) {
    let kernel = CmemConvKernel::new(wl).expect("table4 workload fits");
    let sched = kernel.with_program(kernel.scheduled_program());
    let mut node = sched.prepare(ifmap, weights, 4).expect("prepared");
    let mut t = Timing::new(PipelineConfig::default());
    node.run_with(100_000_000, |e| t.on_retire(e)).expect("halts");
    assert_eq!(
        sched.read_ofmap(&node).expect("ofmap"),
        wl.golden(ifmap, weights),
        "functional mismatch"
    );
    let r = t.finish();
    // CMem dynamic activity plus the node's static power (8 mW core +
    // 10 mW CMem leakage) over the run
    let energy = node.cmem().energy().total_joules()
        + r.total_cycles as f64 * (maicc::model::power::CORE_W + maicc::model::power::CMEM_STATIC_W)
            / 1e9;
    (r.total_cycles, energy)
}

fn run_scalar_node(wl: ConvWorkload, ifmap: &[i8], weights: &[i8]) -> (u64, f64) {
    let kernel = ScalarConvKernel::new(wl);
    let mut node = kernel.prepare(ifmap, weights).expect("prepared");
    let mut t = Timing::new(PipelineConfig::default());
    node.run_with(200_000_000, |e| t.on_retire(e)).expect("halts");
    assert_eq!(
        kernel.read_ofmap(&node).expect("ofmap"),
        wl.golden(ifmap, weights)
    );
    let r = t.finish();
    // the scalar node burns its 8 mW for the whole (much longer) run
    (r.total_cycles, r.total_cycles as f64 * 8e-3 / 1e9)
}

fn bench(c: &mut Criterion) {
    let wl = ConvWorkload::table4();
    let ifmap = wl.synthetic_ifmap();
    let weights = wl.synthetic_weights();

    let (scalar_cycles, scalar_j) = run_scalar_node(wl, &ifmap, &weights);
    let (maicc_cycles, maicc_j) = run_maicc_node(wl, &ifmap, &weights);
    let nc = NcConvCost::evaluate(5, 3, 3, 256, 9, 9, 8, 5);
    // Neural Cache node: bit-serial activations, the host-CPU assistance
    // share, and twice the SRAM leakage (40 KB of compute arrays)
    let nc_j = nc.total() as f64 * 0.44e-12 * 32.0
        + nc.total() as f64
            * (maicc::model::power::CORE_W + 2.0 * maicc::model::power::CMEM_STATIC_W)
            / 1e9;

    header("Table 4 — node comparison");
    row("scalar core cycles", scalar_cycles as f64, paper::TABLE4_CYCLES[0], "cycles");
    row("MAICC node cycles", maicc_cycles as f64, paper::TABLE4_CYCLES[1], "cycles");
    row("Neural Cache cycles", nc.total() as f64, paper::TABLE4_CYCLES[2], "cycles");
    row("scalar core energy", scalar_j, paper::TABLE4_ENERGY[0], "J");
    row("MAICC node energy", maicc_j, paper::TABLE4_ENERGY[1], "J");
    row("Neural Cache energy", nc_j, paper::TABLE4_ENERGY[2], "J");
    println!(
        "areas (mm²): scalar {:.3}, MAICC {:.3}, Neural Cache {:.3} (paper: 0.052 / 0.114 / 0.158)",
        area::SCALAR_NODE_MM2,
        area::maicc_node_mm2(),
        area::NEURAL_CACHE_NODE_MM2
    );
    println!(
        "MAICC vs Neural Cache: {:.2}x faster (paper: 2.3x)",
        nc.total() as f64 / maicc_cycles as f64
    );
    assert!(maicc_cycles < nc.total(), "MAICC must beat Neural Cache");
    assert!(nc.total() < scalar_cycles, "Neural Cache must beat scalar");

    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.bench_function("maicc_node_conv", |b| {
        b.iter(|| run_maicc_node(wl, &ifmap, &weights))
    });
    g.bench_function("neural_cache_model", |b| {
        b.iter(|| NcConvCost::evaluate(5, 3, 3, 256, 9, 9, 8, 5).total())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
