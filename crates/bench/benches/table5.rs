//! Table 5 — dynamic and static scheduling: cycles of the Table-4 conv
//! under queue depths 0/1/2/4 × one or two write-back ports × with/without
//! compile-time reordering.
//!
//! `cargo bench -p maicc-bench --bench table5`

use criterion::{criterion_group, criterion_main, Criterion};
use maicc::core::kernels::{CmemConvKernel, ConvWorkload};
use maicc::core::pipeline::{PipelineConfig, Timing};
use maicc::isa::inst::Instruction;
use maicc_bench::{header, paper, row};

fn time(kernel: &CmemConvKernel, prog: Vec<Instruction>, cfg: PipelineConfig, ifmap: &[i8], weights: &[i8]) -> u64 {
    let k = kernel.with_program(prog);
    let mut node = k.prepare(ifmap, weights, 4).expect("prepared");
    let mut t = Timing::new(cfg);
    node.run_with(100_000_000, |e| t.on_retire(e)).expect("halts");
    t.finish().total_cycles
}

fn bench(c: &mut Criterion) {
    let wl = ConvWorkload::table4();
    let ifmap = wl.synthetic_ifmap();
    let weights = wl.synthetic_weights();
    let kernel = CmemConvKernel::new(wl).expect("fits");

    header("Table 5 — dynamic and static scheduling");
    println!("{:<28}{:>12}{:>12}", "configuration", "w/o static", "with static");
    let mut q2_naive = 0u64;
    let mut q2_sched = 0u64;
    for wb in [1usize, 2] {
        for q in [0usize, 1, 2, 4] {
            let cfg = PipelineConfig {
                cmem_queue: q,
                wb_ports: wb,
                ..PipelineConfig::default()
            };
            let naive = time(&kernel, kernel.program().to_vec(), cfg, &ifmap, &weights);
            let sched = time(&kernel, kernel.scheduled_program(), cfg, &ifmap, &weights);
            println!("queue {q}, {wb} WB port(s){:>12}{:>12}", naive, sched);
            if q == 2 && wb == 1 {
                q2_naive = naive;
                q2_sched = sched;
            }
        }
    }
    row("queue=2 wb=1 w/o static", q2_naive as f64, paper::TABLE5_DYNAMIC[2], "cycles");
    row("queue=2 wb=1 with static", q2_sched as f64, paper::TABLE5_STATIC[2], "cycles");
    println!(
        "static scheduling gain: {:.1}% (paper: 16%)",
        (1.0 - q2_sched as f64 / q2_naive as f64) * 100.0
    );
    assert!(q2_sched < q2_naive, "static scheduling must help");

    let mut g = c.benchmark_group("table5");
    g.sample_size(10);
    let cfg = PipelineConfig::default();
    g.bench_function("scheduled_replay", |b| {
        b.iter(|| time(&kernel, kernel.scheduled_program(), cfg, &ifmap, &weights))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
