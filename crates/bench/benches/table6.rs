//! Table 6 — comparison of layer mapping strategies on ResNet-18:
//! per-layer node counts, per-segment latency, total inference latency.
//!
//! `cargo bench -p maicc-bench --bench table6`

use criterion::{criterion_group, criterion_main, Criterion};
use maicc::exec::config::ExecConfig;
use maicc::exec::pipeline_model::{run_network, RunReport};
use maicc::exec::segment::Strategy;
use maicc::nn::graph::Network;
use maicc::nn::resnet::resnet18;
use maicc_bench::{header, paper, row};

fn run(net: &Network, strat: Strategy, cfg: &ExecConfig) -> RunReport {
    run_network(net, [64, 56, 56], strat, cfg).expect("resnet maps")
}

fn bench(c: &mut Criterion) {
    let net = resnet18(1000);
    let cfg = ExecConfig::default();
    let single = run(&net, Strategy::SingleLayer, &cfg);
    let greedy = run(&net, Strategy::Greedy, &cfg);
    let heuristic = run(&net, Strategy::Heuristic, &cfg);

    header("Table 6 — layer mapping strategies");
    println!(
        "{:<4}{:<11}{:>8}{:>8}{:>10}",
        "#", "layer", "single", "greedy", "heuristic"
    );
    for i in 0..single.layers.len() {
        println!(
            "{:<4}{:<11}{:>8}{:>8}{:>10}",
            i + 1,
            single.layers[i].name,
            single.layers[i].nodes,
            greedy.layers[i].nodes,
            heuristic.layers[i].nodes
        );
    }
    println!("\nper-segment latency (ms):");
    for (name, r) in [
        ("single-layer", &single),
        ("greedy", &greedy),
        ("heuristic", &heuristic),
    ] {
        let segs: Vec<String> = r
            .segments
            .iter()
            .map(|s| format!("{:.3}", cfg.cycles_to_ms(s.latency())))
            .collect();
        println!("  {:<13} {}", name, segs.join(" / "));
    }
    println!();
    row("single-layer total", single.total_ms(&cfg), paper::TABLE6_TOTAL_MS[0], "ms");
    row("greedy total", greedy.total_ms(&cfg), paper::TABLE6_TOTAL_MS[1], "ms");
    row("heuristic total", heuristic.total_ms(&cfg), paper::TABLE6_TOTAL_MS[2], "ms");
    assert!(heuristic.total_cycles < greedy.total_cycles);
    assert!(greedy.total_cycles < single.total_cycles);

    let mut g = c.benchmark_group("table6");
    g.sample_size(10);
    g.bench_function("heuristic_mapping", |b| {
        b.iter(|| run(&net, Strategy::Heuristic, &cfg).total_cycles)
    });
    g.bench_function("single_layer_mapping", |b| {
        b.iter(|| run(&net, Strategy::SingleLayer, &cfg).total_cycles)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
