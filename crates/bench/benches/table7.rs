//! Table 7 — overall performance of MAICC vs CPU (i9-13900K) and GPU
//! (RTX 4090) on ResNet-18, plus the §6.3 GFLOPS/W comparison against
//! Neural Cache.
//!
//! `cargo bench -p maicc-bench --bench table7`

use criterion::{criterion_group, criterion_main, Criterion};
use maicc::exec::config::ExecConfig;
use maicc::exec::pipeline_model::run_network;
use maicc::exec::segment::Strategy;
use maicc::model::baselines::{DeviceModel, RESNET18_FULL_MACS};
use maicc::model::efficiency::{Efficiency, NEURAL_CACHE_GFLOPS_PER_W};
use maicc::model::power::EnergyBreakdown;
use maicc::nn::resnet::resnet18;
use maicc_bench::{header, paper, row};

fn bench(c: &mut Criterion) {
    let net = resnet18(1000);
    let cfg = ExecConfig::default();
    let run = run_network(&net, [64, 56, 56], Strategy::Heuristic, &cfg).expect("maps");
    let energy = EnergyBreakdown::from_counters(&run.counters);
    let maicc_ms = run.total_ms(&cfg);
    let maicc_tp = run.throughput(&cfg);
    let maicc_w = energy.average_power(run.counters.seconds);
    let maicc_tpw = maicc_tp / maicc_w;

    let cpu = DeviceModel::cpu_i9_13900k();
    let gpu = DeviceModel::gpu_rtx_4090();

    header("Table 7 — overall performance on ResNet-18 (batch 1)");
    println!(
        "{:<24}{:>12}{:>12}{:>12}",
        "", "CPU", "GPU", "MAICC"
    );
    println!(
        "{:<24}{:>12.2}{:>12.2}{:>12.2}",
        "latency (ms)",
        cpu.latency_s(RESNET18_FULL_MACS) * 1e3,
        gpu.latency_s(RESNET18_FULL_MACS) * 1e3,
        maicc_ms
    );
    println!(
        "{:<24}{:>12.1}{:>12.1}{:>12.1}",
        "throughput (samples/s)",
        cpu.throughput(RESNET18_FULL_MACS),
        gpu.throughput(RESNET18_FULL_MACS),
        maicc_tp
    );
    println!(
        "{:<24}{:>12.1}{:>12.1}{:>12.1}",
        "average power (W)",
        cpu.average_power_w,
        gpu.average_power_w,
        maicc_w
    );
    println!(
        "{:<24}{:>12.2}{:>12.2}{:>12.2}",
        "throughput per watt",
        cpu.throughput_per_watt(RESNET18_FULL_MACS),
        gpu.throughput_per_watt(RESNET18_FULL_MACS),
        maicc_tpw
    );
    println!();
    row("MAICC latency", maicc_ms, paper::TABLE7_LATENCY_MS[2], "ms");
    row("MAICC throughput/W", maicc_tpw, paper::TABLE7_TPW[2], "s/s/W");
    println!(
        "speedup over CPU: {:.1}x (paper: 4.3x); efficiency over CPU: {:.1}x (paper: 31.6x); over GPU: {:.1}x (paper: 1.8x)",
        maicc_tp / cpu.throughput(RESNET18_FULL_MACS),
        maicc_tpw / cpu.throughput_per_watt(RESNET18_FULL_MACS),
        maicc_tpw / gpu.throughput_per_watt(RESNET18_FULL_MACS)
    );
    assert!(maicc_tpw > gpu.throughput_per_watt(RESNET18_FULL_MACS));
    assert!(maicc_tp > cpu.throughput(RESNET18_FULL_MACS));
    assert!(maicc_tp < gpu.throughput(RESNET18_FULL_MACS));

    // §6.3: GFLOPS/W without DRAM, vs Neural Cache's published 22.90
    let macs = net.total_macs([64, 56, 56]).expect("shapes");
    let eff = Efficiency {
        macs,
        seconds: run.counters.seconds,
        joules: energy.total_without_dram(),
    };
    header("§6.3 — computational efficiency (DRAM excluded)");
    row("MAICC GFLOPS/W", eff.gflops_per_watt(), paper::GFLOPS_PER_W[1], "GFLOPS/W");
    println!(
        "vs Neural Cache's published {NEURAL_CACHE_GFLOPS_PER_W}: {:.2}x (paper: 2.2x)",
        eff.vs_neural_cache()
    );
    assert!(eff.vs_neural_cache() > 1.0);

    let mut g = c.benchmark_group("table7");
    g.sample_size(10);
    g.bench_function("full_chip_resnet18", |b| {
        b.iter(|| {
            run_network(&net, [64, 56, 56], Strategy::Heuristic, &cfg)
                .expect("maps")
                .total_cycles
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
