//! Compares two `maicc_bench` JSON reports and prints per-benchmark
//! wall-clock deltas.
//!
//! ```text
//! cargo run --release -p maicc-bench --bin bench_diff -- BASELINE.json NEW.json \
//!     [--fail-on-regress PCT]
//! ```
//!
//! The parser is hand-rolled over the harness's own fixed JSON shape
//! (`{"name": "...", "median_ns": N, ...}` entries), so the tool works
//! without a serde backend. Without `--fail-on-regress` it is
//! *informational about measurements* but still honest about inputs:
//! exit 0 annotates the log, while a usage error, an unreadable file,
//! or a report no benchmark entry could be parsed from exits
//! [`EXIT_MISSING`] (2) — distinct from the measured-regression exit 1
//! so CI can tell "the code got slower" from "the comparison never
//! happened". With `--fail-on-regress PCT` the exit code is 1 when any
//! benchmark's median regressed by more than `PCT` percent over the
//! baseline, and 2 when a gated derived metric the baseline had
//! measured is missing from the new report entirely. Benchmarks
//! present on only one side are listed as added or removed.
//!
//! Besides the timing rows the tool also diffs the report's `derived`
//! block. Derived metrics are informational except the
//! `serve_overload_*` family, `serve_repeat_p50_cycles`, and the
//! `serve_cluster_*` family (minus the informational
//! `serve_cluster_failovers` count), where "higher" means "worse"
//! (Hard-tenant p99, shed rate, preemption/retry counts, repeat-heavy
//! warm p50, cluster failover-recovery p99 / fleet p99s / miss rate /
//! detection latency): those are held to the same `--fail-on-regress`
//! threshold, skipping keys whose baseline is 0 (absent or not yet
//! measured). Three metrics additionally get absolute gates under the
//! same flag, so a collapse fails even against a drifted baseline:
//! `speedup_vs_sequential` ([`SPEEDUP_FLOOR`]), `weight_cache_hit_rate`
//! ([`HIT_RATE_FLOOR`]), and `serve_cluster_hard_lost` (any value above
//! zero fails — the fault-domain invariant is that the Hard tier never
//! loses a request, so there is no acceptable baseline to drift from).
//!
//! When `--fail-on-regress` is active the tool prints a `gates` section
//! listing every gate it evaluated with the observed value, the
//! baseline it was held to, and the remaining margin, even when all of
//! them pass — a green CI log should still show what was checked and
//! how close it came.

use std::process::ExitCode;

/// Exit code for "the comparison could not be made": usage errors,
/// unreadable inputs, reports with no parsable benchmark entries, and
/// gated derived metrics that vanished from the new report. Distinct
/// from exit 1 (a measured regression) so CI logs separate "slower"
/// from "not measured".
const EXIT_MISSING: u8 = 2;

/// `(name, median_ns)` pairs in file order.
fn parse_medians(json: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(i) = rest.find("{\"name\": \"") {
        let after = &rest[i + 10..];
        let Some(q) = after.find('"') else { break };
        let name = after[..q].to_string();
        let Some(m) = after.find("\"median_ns\": ") else { break };
        let digits: String = after[m + 13..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        if let Ok(median) = digits.parse() {
            out.push((name, median));
        }
        rest = &after[q..];
    }
    out
}

/// The largest percentage slowdown of any benchmark present on both
/// sides; `None` when nothing is comparable or nothing got slower.
fn worst_regression(base: &[(String, u64)], new: &[(String, u64)]) -> Option<(String, f64)> {
    new.iter()
        .filter_map(|(name, new_ns)| {
            let (_, base_ns) = base.iter().find(|(b, _)| b == name)?;
            let pct = (*new_ns as f64 - *base_ns as f64) / *base_ns as f64 * 100.0;
            (pct > 0.0).then(|| (name.clone(), pct))
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

/// `(key, value)` pairs from the report's `"derived": {...}` object, in
/// file order. Values are parsed as `f64` (the harness emits plain
/// integers and fixed-point decimals, never exponents or strings).
fn parse_derived(json: &str) -> Vec<(String, f64)> {
    let Some(start) = json.find("\"derived\": {") else {
        return Vec::new();
    };
    let body = &json[start + 12..];
    let Some(end) = body.find('}') else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in body[..end].lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if let Ok(v) = value.trim().parse::<f64>() {
            out.push((key.to_string(), v));
        }
    }
    out
}

/// Whether a derived key is held to the relative regression gate.
/// Higher is worse for all of these: overload counters, the
/// repeat-heavy warm p50, the cluster failover metrics (p99s, miss
/// rate, detection latency, losses), and the soak-day fleet p99.
/// `serve_cluster_failovers` is a plain re-dispatch count that tracks
/// the fault plan, not a health metric, so it stays informational — as
/// do the soak window count and hit rate.
fn is_gated_derived(name: &str) -> bool {
    name.starts_with("serve_overload_")
        || name == "serve_repeat_p50_cycles"
        || name == "serve_soak_p99_cycles"
        || (name.starts_with("serve_cluster_") && name != "serve_cluster_failovers")
}

/// The largest percentage increase of any gated derived metric (see
/// [`is_gated_derived`], where higher is worse). Keys with a zero or
/// missing baseline are skipped.
fn worst_derived_regression(
    base: &[(String, f64)],
    new: &[(String, f64)],
) -> Option<(String, f64)> {
    new.iter()
        .filter(|(name, _)| is_gated_derived(name))
        .filter_map(|(name, new_v)| {
            let (_, base_v) = base.iter().find(|(b, _)| b == name)?;
            if *base_v <= 0.0 {
                return None;
            }
            let pct = (new_v - base_v) / base_v * 100.0;
            (pct > 0.0).then(|| (name.clone(), pct))
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

/// Absolute floor for the parallel-speedup derived metric. Unlike the
/// relative regression gate this does not compare against the baseline:
/// a collapsed parallel path (mutex contention, accidental
/// serialization) should fail CI even if the checked-in baseline has
/// already drifted down. 2.5 leaves headroom below the 3.0 the harness
/// records at 4 threads so ordinary run-to-run noise doesn't flap.
const SPEEDUP_FLOOR: f64 = 2.5;

/// Returns the new report's `speedup_vs_sequential` if it is below the
/// floor. The harness emits 0.00 when the sequential/parallel bench
/// pair didn't run (filtered `--bench` invocations), so zero means
/// "not measured", not "collapsed", and passes — as does a report
/// without the key at all.
fn speedup_floor_breach(new: &[(String, f64)]) -> Option<f64> {
    new.iter()
        .find(|(name, _)| name == "speedup_vs_sequential")
        .map(|&(_, v)| v)
        .filter(|v| *v > 0.0 && *v < SPEEDUP_FLOOR)
}

/// Absolute floor for the weight cache's hit rate on the repeat-heavy
/// Zipf mix. The harness records ~0.86; below 0.5 the cache is no
/// longer doing its job (eviction thrash, broken retention scoring) no
/// matter what the checked-in baseline says.
const HIT_RATE_FLOOR: f64 = 0.5;

/// Returns the new report's `weight_cache_hit_rate` if it is below the
/// floor. As with the speedup floor, 0.0 means "bench not run" and
/// passes, as does an absent key.
fn hit_rate_floor_breach(new: &[(String, f64)]) -> Option<f64> {
    new.iter()
        .find(|(name, _)| name == "weight_cache_hit_rate")
        .map(|&(_, v)| v)
        .filter(|v| *v > 0.0 && *v < HIT_RATE_FLOOR)
}

/// Returns the new report's `serve_cluster_hard_lost` if it is above
/// zero. This is an absolute invariant, not a regression gate: the
/// cluster's fault-domain contract is that the Hard tier never loses a
/// request across a fabric kill, so any nonzero value fails regardless
/// of the baseline. The "0.0 means not run" convention of the other
/// floors is naturally safe here — 0 is also the passing value.
fn hard_lost_breach(new: &[(String, f64)]) -> Option<f64> {
    new.iter()
        .find(|(name, _)| name == "serve_cluster_hard_lost")
        .map(|&(_, v)| v)
        .filter(|v| *v > 0.0)
}

/// Gated derived metrics the baseline measured (value above zero) that
/// are missing from the new report entirely. A silently dropped metric
/// must not pass as green, but it is not a measured regression either —
/// it exits [`EXIT_MISSING`] instead of 1.
fn missing_gated_derived(
    base: &[(String, f64)],
    new: &[(String, f64)],
) -> Vec<String> {
    base.iter()
        .filter(|(name, v)| is_gated_derived(name) && *v > 0.0)
        .filter(|(name, _)| !new.iter().any(|(n, _)| n == name))
        .map(|(name, _)| name.clone())
        .collect()
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let fail_limit: Option<f64> = args
        .iter()
        .position(|a| a == "--fail-on-regress")
        .map(|i| {
            let v = args.drain(i..(i + 2).min(args.len())).nth(1);
            v.as_deref()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("bench_diff: bad --fail-on-regress value, ignoring");
                    f64::INFINITY
                })
        });
    let [baseline_path, new_path] = args.as_slice() else {
        eprintln!("usage: bench_diff BASELINE.json NEW.json [--fail-on-regress PCT]");
        return ExitCode::from(EXIT_MISSING);
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("bench_diff: cannot read {path}: {e}");
            None
        }
    };
    let (Some(base_json), Some(new_json)) = (read(baseline_path), read(new_path)) else {
        return ExitCode::from(EXIT_MISSING);
    };
    let base = parse_medians(&base_json);
    let new = parse_medians(&new_json);
    if base.is_empty() || new.is_empty() {
        eprintln!(
            "bench_diff: no benchmark entries parsed ({} baseline, {} new)",
            base.len(),
            new.len()
        );
        return ExitCode::from(EXIT_MISSING);
    }

    println!("bench_diff: {baseline_path} -> {new_path}");
    println!(
        "{:<34} {:>14} {:>14} {:>9}",
        "benchmark", "baseline_ns", "new_ns", "delta"
    );
    for (name, new_ns) in &new {
        match base.iter().find(|(b, _)| b == name) {
            Some((_, base_ns)) => {
                let pct = (*new_ns as f64 - *base_ns as f64) / *base_ns as f64 * 100.0;
                println!("{name:<34} {base_ns:>14} {new_ns:>14} {pct:>+8.1}%");
            }
            None => println!("{name:<34} {:>14} {new_ns:>14}    added", "-"),
        }
    }
    for (name, base_ns) in &base {
        if !new.iter().any(|(n, _)| n == name) {
            println!("{name:<34} {base_ns:>14} {:>14}  removed", "-");
        }
    }
    let base_derived = parse_derived(&base_json);
    let new_derived = parse_derived(&new_json);
    for (name, new_v) in &new_derived {
        match base_derived.iter().find(|(b, _)| b == name) {
            Some((_, base_v)) if *base_v > 0.0 => {
                let pct = (new_v - base_v) / base_v * 100.0;
                println!("{name:<34} {base_v:>14.3} {new_v:>14.3} {pct:>+8.1}%");
            }
            Some((_, base_v)) => {
                println!("{name:<34} {base_v:>14.3} {new_v:>14.3}        -");
            }
            None => println!("{name:<34} {:>14} {new_v:>14.3}    added", "-"),
        }
    }
    if let Some(limit) = fail_limit {
        // List every gate with the observed value, the baseline it was
        // held to, and the remaining margin — a green run should still
        // show what was checked and how close it came. Failures print
        // after the table.
        println!("\ngates (--fail-on-regress {limit:.1}%):");
        let timing = worst_regression(&base, &new);
        match &timing {
            Some((name, pct)) => {
                let lookup = |side: &[(String, u64)]| {
                    side.iter()
                        .find(|(n, _)| n == name)
                        .map_or(0, |&(_, v)| v)
                };
                println!(
                    "  timing regression          worst `{name}` {} -> {} ns \
                     ({pct:+.1}%, margin {:.1}% of the {limit:.1}% limit)",
                    lookup(&base),
                    lookup(&new),
                    limit - pct
                );
            }
            None => println!("  timing regression          nothing slower than baseline"),
        }
        let derived = worst_derived_regression(&base_derived, &new_derived);
        match &derived {
            Some((name, pct)) => {
                let lookup = |side: &[(String, f64)]| {
                    side.iter()
                        .find(|(n, _)| n == name)
                        .map_or(0.0, |&(_, v)| v)
                };
                println!(
                    "  derived regression         worst `{name}` {:.3} -> {:.3} \
                     ({pct:+.1}%, margin {:.1}% of the {limit:.1}% limit)",
                    lookup(&base_derived),
                    lookup(&new_derived),
                    limit - pct
                );
            }
            None => println!("  derived regression         no gated metric worsened"),
        }
        let gate_value = |key: &str| {
            new_derived
                .iter()
                .find(|(name, _)| name == key)
                .map(|&(_, v)| v)
        };
        let print_floor = |label: &str, key: &str, floor: f64| match gate_value(key) {
            Some(v) if v > 0.0 => println!(
                "  {label} {v:.2} (floor {floor:.1}, margin {:+.2})",
                v - floor
            ),
            _ => println!("  {label} not run"),
        };
        print_floor("speedup_vs_sequential     ", "speedup_vs_sequential", SPEEDUP_FLOOR);
        print_floor("weight_cache_hit_rate     ", "weight_cache_hit_rate", HIT_RATE_FLOOR);
        match gate_value("serve_cluster_hard_lost") {
            Some(v) => println!("  serve_cluster_hard_lost    {v:.0} (must be 0)"),
            None => println!("  serve_cluster_hard_lost    not run"),
        }
        let missing = missing_gated_derived(&base_derived, &new_derived);
        if missing.is_empty() {
            println!("  missing gated metrics      none");
        } else {
            println!("  missing gated metrics      {}", missing.join(", "));
        }
        if let Some((name, pct)) = timing {
            if pct > limit {
                eprintln!(
                    "bench_diff: `{name}` regressed {pct:+.1}% (> {limit:.1}% limit)"
                );
                return ExitCode::FAILURE;
            }
        }
        if let Some((name, pct)) = derived {
            if pct > limit {
                eprintln!(
                    "bench_diff: derived `{name}` worsened {pct:+.1}% (> {limit:.1}% limit)"
                );
                return ExitCode::FAILURE;
            }
        }
        if let Some(v) = speedup_floor_breach(&new_derived) {
            eprintln!(
                "bench_diff: derived `speedup_vs_sequential` = {v:.2} below the \
                 {SPEEDUP_FLOOR:.1} floor — the parallel path has collapsed"
            );
            return ExitCode::FAILURE;
        }
        if let Some(v) = hit_rate_floor_breach(&new_derived) {
            eprintln!(
                "bench_diff: derived `weight_cache_hit_rate` = {v:.2} below the \
                 {HIT_RATE_FLOOR:.1} floor — the weight cache has stopped hitting"
            );
            return ExitCode::FAILURE;
        }
        if let Some(v) = hard_lost_breach(&new_derived) {
            eprintln!(
                "bench_diff: derived `serve_cluster_hard_lost` = {v:.0} — the cluster \
                 dropped Hard-tier requests during failover"
            );
            return ExitCode::FAILURE;
        }
        if !missing.is_empty() {
            eprintln!(
                "bench_diff: gated derived metric(s) missing from the new report: {}",
                missing.join(", ")
            );
            return ExitCode::from(EXIT_MISSING);
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::{
        hard_lost_breach, hit_rate_floor_breach, is_gated_derived,
        missing_gated_derived, parse_derived, parse_medians, speedup_floor_breach,
        worst_derived_regression, worst_regression,
    };

    #[test]
    fn parses_harness_shape() {
        let json = r#"{
  "benchmarks": [
    {"name": "a_bench", "median_ns": 123, "p10_ns": 100, "iterations": 5, "check": 7},
    {"name": "b_bench", "median_ns": 456, "p10_ns": 400, "iterations": 5, "check": 7}
  ]
}"#;
        assert_eq!(
            parse_medians(json),
            vec![("a_bench".to_string(), 123), ("b_bench".to_string(), 456)]
        );
    }

    #[test]
    fn empty_input_yields_no_entries() {
        assert!(parse_medians("{}").is_empty());
    }

    #[test]
    fn parses_and_gates_derived_metrics() {
        let base = r#"{
  "derived": {
    "speedup_vs_sequential": 2.50,
    "serve_overload_hard_p99_cycles": 300000,
    "serve_overload_shed_rate": 0.500,
    "serve_overload_preemptions": 0
  }
}"#;
        let new = r#"{
  "derived": {
    "speedup_vs_sequential": 1.00,
    "serve_overload_hard_p99_cycles": 390000,
    "serve_overload_shed_rate": 0.520,
    "serve_overload_preemptions": 3
  }
}"#;
        let b = parse_derived(base);
        let n = parse_derived(new);
        assert_eq!(b.len(), 4);
        // Hard p99 went up 30% — the worst gated metric by relative
        // regression. The collapsed speedup is caught separately by the
        // absolute floor; the preemption jump has a 0 baseline and is
        // skipped.
        let (name, pct) = worst_derived_regression(&b, &n).unwrap();
        assert_eq!(name, "serve_overload_hard_p99_cycles");
        assert!((pct - 30.0).abs() < 1e-9, "{pct}");
        assert_eq!(speedup_floor_breach(&n), Some(1.00));
    }

    #[test]
    fn speedup_floor_gates_on_new_value_only() {
        // At or above the floor: passes, regardless of the baseline.
        let ok = parse_derived(r#"{"derived": {"speedup_vs_sequential": 2.50}}"#);
        assert_eq!(speedup_floor_breach(&ok), None);
        let good = parse_derived(r#"{"derived": {"speedup_vs_sequential": 3.03}}"#);
        assert_eq!(speedup_floor_breach(&good), None);
        // Below the floor: fails even if the baseline had drifted down.
        let bad = parse_derived(r#"{"derived": {"speedup_vs_sequential": 2.49}}"#);
        assert_eq!(speedup_floor_breach(&bad), Some(2.49));
        // 0.00 = bench pair not run (filtered --bench invocation): passes.
        let unrun = parse_derived(r#"{"derived": {"speedup_vs_sequential": 0.00}}"#);
        assert_eq!(speedup_floor_breach(&unrun), None);
        // Missing metric entirely: not a breach either.
        let absent = parse_derived(r#"{"derived": {"serve_overload_shed_rate": 0.5}}"#);
        assert_eq!(speedup_floor_breach(&absent), None);
    }

    #[test]
    fn repeat_p50_is_gated_higher_is_worse() {
        let b = parse_derived(
            r#"{"derived": {"serve_repeat_p50_cycles": 200000,
                            "serve_repeat_cold_p50_cycles": 480000}}"#,
        );
        // The warm p50 regressed 25%; the cold p50 (informational)
        // halved, which must not mask the warm regression.
        let n = parse_derived(
            r#"{"derived": {"serve_repeat_p50_cycles": 250000,
                            "serve_repeat_cold_p50_cycles": 240000}}"#,
        );
        let (name, pct) = worst_derived_regression(&b, &n).unwrap();
        assert_eq!(name, "serve_repeat_p50_cycles");
        assert!((pct - 25.0).abs() < 1e-9, "{pct}");
    }

    #[test]
    fn hit_rate_floor_gates_on_new_value_only() {
        let ok = parse_derived(r#"{"derived": {"weight_cache_hit_rate": 0.8649}}"#);
        assert_eq!(hit_rate_floor_breach(&ok), None);
        let bad = parse_derived(r#"{"derived": {"weight_cache_hit_rate": 0.4200}}"#);
        assert_eq!(hit_rate_floor_breach(&bad), Some(0.42));
        // 0.0 = bench not run; absent key likewise passes.
        let unrun = parse_derived(r#"{"derived": {"weight_cache_hit_rate": 0.0000}}"#);
        assert_eq!(hit_rate_floor_breach(&unrun), None);
        assert_eq!(hit_rate_floor_breach(&[]), None);
    }

    #[test]
    fn cluster_metrics_are_gated_except_the_failover_count() {
        assert!(is_gated_derived("serve_cluster_failover_p99_cycles"));
        assert!(is_gated_derived("serve_cluster_fcfs_p99_cycles"));
        assert!(is_gated_derived("serve_cluster_sjf_p99_cycles"));
        assert!(is_gated_derived("serve_cluster_miss_rate"));
        assert!(is_gated_derived("serve_cluster_detect_p50_cycles"));
        assert!(is_gated_derived("serve_cluster_lost"));
        assert!(!is_gated_derived("serve_cluster_failovers"));
        assert!(!is_gated_derived("serve_fcfs_p99_cycles"));

        let b = parse_derived(
            r#"{"derived": {"serve_cluster_failover_p99_cycles": 500000,
                            "serve_cluster_failovers": 4}}"#,
        );
        // The recovery tail regressed 20%; the failover count tripling
        // is informational and must not win (or even place).
        let n = parse_derived(
            r#"{"derived": {"serve_cluster_failover_p99_cycles": 600000,
                            "serve_cluster_failovers": 12}}"#,
        );
        let (name, pct) = worst_derived_regression(&b, &n).unwrap();
        assert_eq!(name, "serve_cluster_failover_p99_cycles");
        assert!((pct - 20.0).abs() < 1e-9, "{pct}");
    }

    #[test]
    fn hard_lost_is_an_absolute_invariant() {
        // 0 is the passing value — also what an unrun bench emits.
        let ok = parse_derived(r#"{"derived": {"serve_cluster_hard_lost": 0}}"#);
        assert_eq!(hard_lost_breach(&ok), None);
        assert_eq!(hard_lost_breach(&[]), None);
        // Any loss fails, no matter what the baseline recorded.
        let bad = parse_derived(r#"{"derived": {"serve_cluster_hard_lost": 1}}"#);
        assert_eq!(hard_lost_breach(&bad), Some(1.0));
    }

    #[test]
    fn vanished_gated_metrics_are_flagged_not_regressed() {
        let b = parse_derived(
            r#"{"derived": {"serve_cluster_hard_p99_cycles": 500000,
                            "serve_cluster_failovers": 4,
                            "serve_overload_shed_rate": 0.0,
                            "serve_fcfs_p99_cycles": 90000}}"#,
        );
        // The gated hard p99 vanished; the informational failover count
        // and the zero-baseline (unmeasured) shed rate vanishing are
        // both fine, as is an ungated key.
        let n = parse_derived(r#"{"derived": {"serve_repeat_p50_cycles": 1}}"#);
        assert_eq!(
            missing_gated_derived(&b, &n),
            vec!["serve_cluster_hard_p99_cycles".to_string()]
        );
        // nothing missing when the key is present, whatever its value
        let ok = parse_derived(
            r#"{"derived": {"serve_cluster_hard_p99_cycles": 1}}"#,
        );
        assert!(missing_gated_derived(&b, &ok).is_empty());
    }

    #[test]
    fn worst_regression_picks_largest_slowdown() {
        let base = vec![
            ("a".to_string(), 100u64),
            ("b".to_string(), 100),
            ("c".to_string(), 100),
        ];
        let new = vec![
            ("a".to_string(), 90u64),   // improvement: ignored
            ("b".to_string(), 150),     // +50%
            ("c".to_string(), 120),     // +20%
            ("d".to_string(), 999),     // no baseline: ignored
        ];
        let (name, pct) = worst_regression(&base, &new).unwrap();
        assert_eq!(name, "b");
        assert!((pct - 50.0).abs() < 1e-9, "{pct}");
        // all-improvements case reports nothing
        assert!(worst_regression(&base, &base[..1]).is_none());
    }
}
