//! Compares two `maicc_bench` JSON reports and prints per-benchmark
//! wall-clock deltas.
//!
//! ```text
//! cargo run --release -p maicc-bench --bin bench_diff -- BASELINE.json NEW.json \
//!     [--fail-on-regress PCT]
//! ```
//!
//! The parser is hand-rolled over the harness's own fixed JSON shape
//! (`{"name": "...", "median_ns": N, ...}` entries), so the tool works
//! without a serde backend. By default it is *informational*: the exit
//! code is always 0, so a CI step using it annotates the log without
//! blocking the build. With `--fail-on-regress PCT` it becomes a soft
//! gate: the exit code is 1 when any benchmark's median regressed by
//! more than `PCT` percent over the baseline (mis-parses and missing
//! files still exit 0 — only a measured regression fails). Benchmarks
//! present on only one side are listed as added or removed.

use std::process::ExitCode;

/// `(name, median_ns)` pairs in file order.
fn parse_medians(json: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(i) = rest.find("{\"name\": \"") {
        let after = &rest[i + 10..];
        let Some(q) = after.find('"') else { break };
        let name = after[..q].to_string();
        let Some(m) = after.find("\"median_ns\": ") else { break };
        let digits: String = after[m + 13..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        if let Ok(median) = digits.parse() {
            out.push((name, median));
        }
        rest = &after[q..];
    }
    out
}

/// The largest percentage slowdown of any benchmark present on both
/// sides; `None` when nothing is comparable or nothing got slower.
fn worst_regression(base: &[(String, u64)], new: &[(String, u64)]) -> Option<(String, f64)> {
    new.iter()
        .filter_map(|(name, new_ns)| {
            let (_, base_ns) = base.iter().find(|(b, _)| b == name)?;
            let pct = (*new_ns as f64 - *base_ns as f64) / *base_ns as f64 * 100.0;
            (pct > 0.0).then(|| (name.clone(), pct))
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let fail_limit: Option<f64> = args
        .iter()
        .position(|a| a == "--fail-on-regress")
        .map(|i| {
            let v = args.drain(i..(i + 2).min(args.len())).nth(1);
            v.as_deref()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("bench_diff: bad --fail-on-regress value, ignoring");
                    f64::INFINITY
                })
        });
    let [baseline_path, new_path] = args.as_slice() else {
        eprintln!("usage: bench_diff BASELINE.json NEW.json [--fail-on-regress PCT]");
        // still non-blocking: a misconfigured CI step should annotate,
        // not fail the build
        return ExitCode::SUCCESS;
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("bench_diff: cannot read {path}: {e}");
            None
        }
    };
    let (Some(base_json), Some(new_json)) = (read(baseline_path), read(new_path)) else {
        return ExitCode::SUCCESS;
    };
    let base = parse_medians(&base_json);
    let new = parse_medians(&new_json);
    if base.is_empty() || new.is_empty() {
        eprintln!(
            "bench_diff: no benchmark entries parsed ({} baseline, {} new)",
            base.len(),
            new.len()
        );
        return ExitCode::SUCCESS;
    }

    println!("bench_diff: {baseline_path} -> {new_path}");
    println!(
        "{:<34} {:>14} {:>14} {:>9}",
        "benchmark", "baseline_ns", "new_ns", "delta"
    );
    for (name, new_ns) in &new {
        match base.iter().find(|(b, _)| b == name) {
            Some((_, base_ns)) => {
                let pct = (*new_ns as f64 - *base_ns as f64) / *base_ns as f64 * 100.0;
                println!("{name:<34} {base_ns:>14} {new_ns:>14} {pct:>+8.1}%");
            }
            None => println!("{name:<34} {:>14} {new_ns:>14}    added", "-"),
        }
    }
    for (name, base_ns) in &base {
        if !new.iter().any(|(n, _)| n == name) {
            println!("{name:<34} {base_ns:>14} {:>14}  removed", "-");
        }
    }
    if let Some(limit) = fail_limit {
        if let Some((name, pct)) = worst_regression(&base, &new) {
            if pct > limit {
                eprintln!(
                    "bench_diff: `{name}` regressed {pct:+.1}% (> {limit:.1}% limit)"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::{parse_medians, worst_regression};

    #[test]
    fn parses_harness_shape() {
        let json = r#"{
  "benchmarks": [
    {"name": "a_bench", "median_ns": 123, "p10_ns": 100, "iterations": 5, "check": 7},
    {"name": "b_bench", "median_ns": 456, "p10_ns": 400, "iterations": 5, "check": 7}
  ]
}"#;
        assert_eq!(
            parse_medians(json),
            vec![("a_bench".to_string(), 123), ("b_bench".to_string(), 456)]
        );
    }

    #[test]
    fn empty_input_yields_no_entries() {
        assert!(parse_medians("{}").is_empty());
    }

    #[test]
    fn worst_regression_picks_largest_slowdown() {
        let base = vec![
            ("a".to_string(), 100u64),
            ("b".to_string(), 100),
            ("c".to_string(), 100),
        ];
        let new = vec![
            ("a".to_string(), 90u64),   // improvement: ignored
            ("b".to_string(), 150),     // +50%
            ("c".to_string(), 120),     // +20%
            ("d".to_string(), 999),     // no baseline: ignored
        ];
        let (name, pct) = worst_regression(&base, &new).unwrap();
        assert_eq!(name, "b");
        assert!((pct - 50.0).abs() < 1e-9, "{pct}");
        // all-improvements case reports nothing
        assert!(worst_regression(&base, &base[..1]).is_none());
    }
}
