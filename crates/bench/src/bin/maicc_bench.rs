//! Self-timed wall-clock benchmark harness.
//!
//! Unlike the `benches/` entries (which regenerate paper tables under
//! Criterion), this binary measures *host* wall-clock time of the
//! simulator itself with `std::time::Instant` — warmup runs followed by
//! N timed iterations, reporting median/p10/p90 — and writes the results
//! as JSON to `BENCH_results.json`.
//!
//! ```text
//! cargo run --release -p maicc-bench --bin maicc_bench [-- OPTIONS]
//!
//!   --quick             one iteration, no warmup (CI smoke mode)
//!   --iters N           timed iterations per workload (default 5;
//!                       normal mode adds two per-bench warmup runs)
//!   --threads N         worker threads for the parallel row
//!                       (default: host core count)
//!   --bench SUBSTRING   only run benchmarks whose name contains SUBSTRING
//!   --json PATH         output JSON path (default BENCH_results.json)
//!   --out PATH          alias for --json (kept for compatibility)
//! ```
//!
//! Workloads:
//!
//! * `table4_node_conv` — the Table-4 MAICC node convolution on the
//!   cycle-accurate pipeline;
//! * `table5_scheduled_replay` — the statically scheduled program replay;
//! * `table6_heuristic_mapping` — ResNet-18 heuristic layer mapping;
//! * `resnet18_segment` — the full-system streaming simulation (bit-level
//!   CMems + flit-level mesh) on the default fault-campaign workload,
//!   event-driven engine, sequential;
//! * `resnet18_segment_parallel` — same, with `set_parallelism` at
//!   `--threads`;
//! * `resnet18_segment_cycle_accurate` — same workload on the per-cycle
//!   oracle engine (the skip-ahead engine's speedup baseline);
//! * `resnet18_segment_slowpath` — same, with a quiet `FaultPlan`
//!   attached so every MAC takes the bit-serial slow path;
//! * `serve_mix_fcfs` / `serve_mix_sjf` — the online serving layer on a
//!   bursty three-model trace over a contended 8-tile pool; the check
//!   value is the fleet p99 latency in fabric cycles, so the two rows
//!   also record how far the policies' tails diverge.
//! * `serve_overload` — the overload-hardened loop on the 2×-rate tiered
//!   mix with fault churn, preemption, and retries engaged; the check
//!   value is the Hard tenant's p99, and the run's shed rate, preemption
//!   and retry counts land in the `derived` block.
//! * `serve_repeat_heavy` — a Zipf-skewed repeat-heavy trace (the light
//!   `small` model is the popular head) with the weight cache enabled;
//!   the check value is the fleet p50 latency in fabric cycles. The
//!   cache-disabled arm (every admission restreams from DRAM) runs once
//!   for contrast; its p50 and the enabled arm's hit rate land in the
//!   `derived` block as `serve_repeat_cold_p50_cycles` and
//!   `weight_cache_hit_rate`.
//! * `serve_cluster_failover` — the multi-fabric cluster on a bursty
//!   Zipf trace over 8 fabrics with 2-way replica placement and a
//!   mid-run kill of fabric 0; the check value is the failover-recovery
//!   p99 in fabric cycles, and the bench asserts the fault-domain
//!   invariant (`hard_requests_lost == 0`) every iteration. Per-policy
//!   fleet p99s, the deadline miss rate, and the failover/detect
//!   counters land in the `derived` block as `serve_cluster_*`.
//! * `serve_soak` — the soak-run observability scenario: a diurnal Zipf
//!   day with continuous seeded fault churn over a 4-fabric cluster,
//!   with the interval telemetry recorder attached; the check value is
//!   the fleet p99 in fabric cycles, and the window count plus warm hit
//!   rate land in the `derived` block as `serve_soak_*`.
//!
//! Every iteration checks functional correctness (ofmap == golden,
//! modelled cycle counts identical across variants), so a speedup that
//! broke bit-exactness would abort the run.

use maicc::core::kernels::{CmemConvKernel, ConvWorkload};
use maicc::core::pipeline::{PipelineConfig, Timing};
use maicc::exec::config::ExecConfig;
use maicc::exec::pipeline_model::run_network;
use maicc::exec::segment::Strategy;
use maicc::nn::resnet::resnet18;
use maicc::serve::cache::WeightCacheConfig;
use maicc::serve::cluster::{
    serve_cluster, serve_cluster_with_obs, ClusterConfig, ClusterFaultPlan, ClusterShedConfig,
    FabricFault, FabricFaultKind,
};
use maicc::serve::overload::RetryBudget;
use maicc::serve::overload::Tier;
use maicc::serve::registry::{overload_mix, three_model_mix};
use maicc::serve::server::{serve, FaultConfig, Policy, ServeConfig};
use maicc::serve::trace::Trace;
use maicc::sim::stream::{Engine, RecoveryPolicy, StreamConfig, StreamSim};
use maicc::sram::fault::FaultPlan;
use maicc_bench::{percentile, pre_pr};
use std::time::Instant;

/// Cycle budget for the streaming runs (the segment drains in < 100 k).
const STREAM_BUDGET: u64 = 5_000_000;

struct Summary {
    name: &'static str,
    median_ns: u64,
    p10_ns: u64,
    p90_ns: u64,
    min_ns: u64,
    max_ns: u64,
    iters: usize,
    /// Deterministic per-workload check value (modelled cycles); must be
    /// identical across iterations.
    check: u64,
}

/// Times `f` for `warmup + iters` runs and summarizes the timed ones.
/// `f` returns a check value that must not vary between iterations.
fn measure(name: &'static str, warmup: usize, iters: usize, mut f: impl FnMut() -> u64) -> Summary {
    let mut check = None;
    for _ in 0..warmup {
        check = Some(f());
    }
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        let c = f();
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        samples.push(ns);
        match check {
            None => check = Some(c),
            Some(prev) => assert_eq!(prev, c, "{name}: nondeterministic check value"),
        }
    }
    samples.sort_unstable();
    let s = Summary {
        name,
        median_ns: percentile(&samples, 50.0),
        p10_ns: percentile(&samples, 10.0),
        p90_ns: percentile(&samples, 90.0),
        min_ns: samples[0],
        max_ns: samples[samples.len() - 1],
        iters,
        check: check.expect("at least one iteration"),
    };
    println!(
        "{:<32} median {:>13} ns  p10 {:>13}  p90 {:>13}  (check {})",
        s.name, s.median_ns, s.p10_ns, s.p90_ns, s.check
    );
    s
}

/// Times two workloads with interleaved iterations (A, B, A, B, …) so
/// slow host-frequency drift lands on both equally — the fair way to
/// measure a ratio like `speedup_vs_sequential`, where back-to-back
/// blocks would systematically penalize whichever runs second.
fn measure_pair(
    name_a: &'static str,
    name_b: &'static str,
    warmup: usize,
    iters: usize,
    mut f_a: impl FnMut() -> u64,
    mut f_b: impl FnMut() -> u64,
) -> (Summary, Summary) {
    let mut check = None;
    for _ in 0..warmup {
        let c = f_a();
        assert_eq!(c, f_b(), "{name_a}/{name_b}: check values diverge");
        check = Some(c);
    }
    let mut samples_a = Vec::with_capacity(iters);
    let mut samples_b = Vec::with_capacity(iters);
    for _ in 0..iters {
        for (f, samples) in [
            (&mut f_a as &mut dyn FnMut() -> u64, &mut samples_a),
            (&mut f_b, &mut samples_b),
        ] {
            let start = Instant::now();
            let c = f();
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            samples.push(ns);
            match check {
                None => check = Some(c),
                Some(prev) => assert_eq!(prev, c, "nondeterministic check value"),
            }
        }
    }
    let check = check.expect("at least one iteration");
    let summarize = |name: &'static str, mut samples: Vec<u64>| {
        samples.sort_unstable();
        let s = Summary {
            name,
            median_ns: percentile(&samples, 50.0),
            p10_ns: percentile(&samples, 10.0),
            p90_ns: percentile(&samples, 90.0),
            min_ns: samples[0],
            max_ns: samples[samples.len() - 1],
            iters,
            check,
        };
        println!(
            "{:<32} median {:>13} ns  p10 {:>13}  p90 {:>13}  (check {})",
            s.name, s.median_ns, s.p10_ns, s.p90_ns, s.check
        );
        s
    };
    (summarize(name_a, samples_a), summarize(name_b, samples_b))
}

fn table4_node_conv(wl: ConvWorkload, ifmap: &[i8], weights: &[i8], golden: &[i32]) -> u64 {
    let kernel = CmemConvKernel::new(wl).expect("table4 workload fits");
    let sched = kernel.with_program(kernel.scheduled_program());
    let mut node = sched.prepare(ifmap, weights, 4).expect("prepared");
    let mut t = Timing::new(PipelineConfig::default());
    node.run_with(100_000_000, |e| t.on_retire(e)).expect("halts");
    assert_eq!(sched.read_ofmap(&node).expect("ofmap"), golden, "table4 functional mismatch");
    t.finish().total_cycles
}

fn table5_scheduled_replay(kernel: &CmemConvKernel, ifmap: &[i8], weights: &[i8]) -> u64 {
    let k = kernel.with_program(kernel.scheduled_program());
    let mut node = k.prepare(ifmap, weights, 4).expect("prepared");
    let mut t = Timing::new(PipelineConfig::default());
    node.run_with(100_000_000, |e| t.on_retire(e)).expect("halts");
    t.finish().total_cycles
}

/// Runs the streaming segment; `threads > 1` enables sharded stepping,
/// `slow_path` pins the bit-serial MAC path via a quiet fault plan.
fn stream_segment(
    cfg: &StreamConfig,
    golden: &[i8],
    engine: Engine,
    threads: usize,
    slow_path: bool,
) -> u64 {
    let mut sim = StreamSim::new(cfg).expect("segment fits");
    sim.set_engine(engine);
    if threads > 1 {
        sim.set_parallelism(threads);
    }
    if slow_path {
        sim.attach_cmem_fault_plan(&FaultPlan::none());
    }
    let r = sim.run(STREAM_BUDGET).expect("drains");
    assert_eq!(r.ofmap, golden, "streaming ofmap mismatch");
    r.cycles
}

/// Counters from one overload-hardened serving run, surfaced as derived
/// metrics next to the timing rows.
struct OverloadStats {
    hard_p99_cycles: u64,
    shed: u64,
    preemptions: u64,
    retries: u64,
    requests: u64,
}

/// Counters from the repeat-heavy weight-cache run: the warm (enabled)
/// arm's p50 and hit rate against the cold (disabled) arm's p50.
struct RepeatHeavyStats {
    p50_cycles: u64,
    cold_p50_cycles: u64,
    hit_rate: f64,
}

/// The serving scenarios' counters, bundled for [`write_json`]'s
/// `derived` block. Each is `None` when its bench was filtered out.
#[derive(Default)]
struct ScenarioStats {
    overload: Option<OverloadStats>,
    repeat: Option<RepeatHeavyStats>,
    cluster: Option<ClusterStats>,
    soak: Option<SoakStats>,
}

/// Counters from the soak run: a diurnal Zipf day with continuous fault
/// churn over a 4-fabric cluster, interval telemetry recorder attached.
struct SoakStats {
    p99_cycles: u64,
    windows: u64,
    hit_rate: f64,
}

/// Counters from the multi-fabric failover run: per-policy fleet tails,
/// failover-recovery latency, and the fault-domain loss accounting.
struct ClusterStats {
    fcfs_p99_cycles: u64,
    sjf_p99_cycles: u64,
    failover_p99_cycles: u64,
    detect_p50_cycles: u64,
    miss_rate: f64,
    failovers: u64,
    lost: u64,
    hard_lost: u64,
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(s.chars().all(|c| c != '"' && c != '\\' && !c.is_control()));
    s
}

fn write_json(
    path: &str,
    quick: bool,
    iters: usize,
    threads: usize,
    results: &[Summary],
    stats: &ScenarioStats,
) {
    let (overload, repeat, cluster, soak) = (
        stats.overload.as_ref(),
        stats.repeat.as_ref(),
        stats.cluster.as_ref(),
        stats.soak.as_ref(),
    );
    let mut out = String::from("{\n");
    out.push_str("  \"harness\": \"maicc_bench\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"iterations\": {iters},\n"));
    out.push_str(&format!("  \"engine\": \"{}\",\n", Engine::default().label()));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!(
        "  \"pre_pr_resnet18_segment_ns\": {},\n",
        pre_pr::RESNET18_SEGMENT_NS
    ));
    out.push_str("  \"benchmarks\": [\n");
    for (i, s) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {}, \"p10_ns\": {}, \"p90_ns\": {}, \
             \"min_ns\": {}, \"max_ns\": {}, \"iterations\": {}, \"check\": {}}}{}\n",
            json_escape_free(s.name),
            s.median_ns,
            s.p10_ns,
            s.p90_ns,
            s.min_ns,
            s.max_ns,
            s.iters,
            s.check,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let median = |name: &str| {
        results
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.median_ns as f64)
    };
    let seg = median("resnet18_segment");
    let slow = median("resnet18_segment_slowpath");
    let par = median("resnet18_segment_parallel");
    let oracle = median("resnet18_segment_cycle_accurate");
    let ratio = |num: Option<f64>, den: Option<f64>| match (num, den) {
        (Some(n), Some(d)) if d > 0.0 => n / d,
        _ => 0.0,
    };
    out.push_str("  \"derived\": {\n");
    out.push_str(&format!(
        "    \"resnet18_segment_speedup_vs_pre_pr\": {:.2},\n",
        seg.map_or(0.0, |m| pre_pr::RESNET18_SEGMENT_NS as f64 / m)
    ));
    out.push_str(&format!(
        "    \"resnet18_segment_fast_vs_slowpath\": {:.2},\n",
        ratio(slow, seg)
    ));
    out.push_str(&format!(
        "    \"event_driven_vs_cycle_accurate\": {:.2},\n",
        ratio(oracle, seg)
    ));
    out.push_str(&format!(
        "    \"speedup_vs_sequential\": {:.2},\n",
        ratio(seg, par)
    ));
    // Serving-policy tail latencies in fabric cycles (the serve rows'
    // check values), plus their ratio: > 1.0 means SJF holds a tighter
    // p99 than FCFS on the bursty mix.
    let check_of = |name: &str| {
        results
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.check)
    };
    let fcfs_p99 = check_of("serve_mix_fcfs").unwrap_or(0);
    let sjf_p99 = check_of("serve_mix_sjf").unwrap_or(0);
    out.push_str(&format!("    \"serve_fcfs_p99_cycles\": {fcfs_p99},\n"));
    out.push_str(&format!("    \"serve_sjf_p99_cycles\": {sjf_p99},\n"));
    out.push_str(&format!(
        "    \"serve_p99_fcfs_over_sjf\": {:.2},\n",
        if sjf_p99 > 0 {
            fcfs_p99 as f64 / sjf_p99 as f64
        } else {
            0.0
        }
    ));
    // Overload-hardening health: Hard-tenant tail, how much load was
    // shed, and how often preemption/retry fired on the seeded 2× trace.
    #[allow(clippy::cast_precision_loss)]
    let shed_rate = overload.map_or(0.0, |o| {
        if o.requests > 0 {
            o.shed as f64 / o.requests as f64
        } else {
            0.0
        }
    });
    out.push_str(&format!(
        "    \"serve_overload_hard_p99_cycles\": {},\n",
        overload.map_or(0, |o| o.hard_p99_cycles)
    ));
    out.push_str(&format!("    \"serve_overload_shed_rate\": {shed_rate:.3},\n"));
    out.push_str(&format!(
        "    \"serve_overload_preemptions\": {},\n",
        overload.map_or(0, |o| o.preemptions)
    ));
    out.push_str(&format!(
        "    \"serve_overload_retries\": {},\n",
        overload.map_or(0, |o| o.retries)
    ));
    // Weight-cache health on the repeat-heavy Zipf mix: the warm arm's
    // p50 (also the timing row's check value), the cold arm's p50 for
    // contrast, their ratio, and the warm arm's hit rate. bench_diff
    // gates the p50 relatively and the hit rate against an absolute
    // floor.
    out.push_str(&format!(
        "    \"serve_repeat_p50_cycles\": {},\n",
        repeat.map_or(0, |r| r.p50_cycles)
    ));
    out.push_str(&format!(
        "    \"serve_repeat_cold_p50_cycles\": {},\n",
        repeat.map_or(0, |r| r.cold_p50_cycles)
    ));
    out.push_str(&format!(
        "    \"serve_repeat_cold_over_warm\": {:.2},\n",
        repeat.map_or(0.0, |r| {
            if r.p50_cycles > 0 {
                r.cold_p50_cycles as f64 / r.p50_cycles as f64
            } else {
                0.0
            }
        })
    ));
    out.push_str(&format!(
        "    \"weight_cache_hit_rate\": {:.4},\n",
        repeat.map_or(0.0, |r| r.hit_rate)
    ));
    // Cluster failover health on the 8-fabric bursty Zipf mix with a
    // mid-run fabric kill: per-policy fleet p99s, the failover-recovery
    // tail and detection latency, the deadline miss rate, and the loss
    // accounting. bench_diff gates the recovery p99 relatively and
    // `serve_cluster_hard_lost` against an absolute zero.
    out.push_str(&format!(
        "    \"serve_cluster_fcfs_p99_cycles\": {},\n",
        cluster.map_or(0, |c| c.fcfs_p99_cycles)
    ));
    out.push_str(&format!(
        "    \"serve_cluster_sjf_p99_cycles\": {},\n",
        cluster.map_or(0, |c| c.sjf_p99_cycles)
    ));
    out.push_str(&format!(
        "    \"serve_cluster_failover_p99_cycles\": {},\n",
        cluster.map_or(0, |c| c.failover_p99_cycles)
    ));
    out.push_str(&format!(
        "    \"serve_cluster_detect_p50_cycles\": {},\n",
        cluster.map_or(0, |c| c.detect_p50_cycles)
    ));
    out.push_str(&format!(
        "    \"serve_cluster_miss_rate\": {:.4},\n",
        cluster.map_or(0.0, |c| c.miss_rate)
    ));
    out.push_str(&format!(
        "    \"serve_cluster_failovers\": {},\n",
        cluster.map_or(0, |c| c.failovers)
    ));
    out.push_str(&format!(
        "    \"serve_cluster_lost\": {},\n",
        cluster.map_or(0, |c| c.lost)
    ));
    out.push_str(&format!(
        "    \"serve_cluster_hard_lost\": {},\n",
        cluster.map_or(0, |c| c.hard_lost)
    ));
    // Soak health on the diurnal churn day: the fleet p99 (also the
    // timing row's check value), how many telemetry windows the interval
    // recorder emitted, and the warm hit rate after a full day of churn.
    // bench_diff gates the p99 relatively.
    out.push_str(&format!(
        "    \"serve_soak_p99_cycles\": {},\n",
        soak.map_or(0, |s| s.p99_cycles)
    ));
    out.push_str(&format!(
        "    \"serve_soak_windows\": {},\n",
        soak.map_or(0, |s| s.windows)
    ));
    out.push_str(&format!(
        "    \"serve_soak_hit_rate\": {:.4}\n",
        soak.map_or(0.0, |s| s.hit_rate)
    ));
    out.push_str("  }\n}\n");
    std::fs::write(path, out).expect("write BENCH_results.json");
}

fn main() {
    let mut quick = false;
    let mut iters = 5usize;
    let mut out = String::from("BENCH_results.json");
    let mut threads = 0usize;
    let mut filter: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--iters" => {
                iters = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--iters takes a positive integer");
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads takes a positive integer");
            }
            "--bench" => filter = Some(args.next().expect("--bench takes a substring")),
            "--json" | "--out" => out = args.next().expect("--json takes a path"),
            other => panic!(
                "unknown option {other} (try --quick, --iters N, --threads N, \
                 --bench SUBSTRING, --json PATH)"
            ),
        }
    }
    if quick {
        iters = 1;
    }
    // two per-bench warmup runs: the first pays first-touch allocation
    // (pools, page faults), the second settles branch predictors and
    // caches, so the timed percentiles measure steady state — this is
    // what kept table5_scheduled_replay's p90 at 2.4x its median
    let warmup = if quick { 0 } else { 2 };
    assert!(iters > 0, "need at least one iteration");
    if threads == 0 {
        threads = std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get);
    }
    let want = |name: &str| filter.as_deref().is_none_or(|f| name.contains(f));

    println!(
        "maicc_bench: {iters} iteration(s), {warmup} warmup, quick={quick}, \
         engine={}, threads={threads}",
        Engine::default().label()
    );

    let wl = ConvWorkload::table4();
    let ifmap = wl.synthetic_ifmap();
    let weights = wl.synthetic_weights();
    let conv_golden = wl.golden(&ifmap, &weights);
    let kernel = CmemConvKernel::new(wl).expect("fits");
    let net = resnet18(1000);
    let exec_cfg = ExecConfig::default();
    let seg_cfg = StreamConfig::resnet18_segment();
    let seg_golden = seg_cfg.golden();

    let mut results = Vec::new();
    if want("table4_node_conv") {
        results.push(measure("table4_node_conv", warmup, iters, || {
            table4_node_conv(ConvWorkload::table4(), &ifmap, &weights, &conv_golden)
        }));
    }
    if want("table5_scheduled_replay") {
        results.push(measure("table5_scheduled_replay", warmup, iters, || {
            table5_scheduled_replay(&kernel, &ifmap, &weights)
        }));
    }
    if want("table6_heuristic_mapping") {
        results.push(measure("table6_heuristic_mapping", warmup, iters, || {
            run_network(&net, [64, 56, 56], Strategy::Heuristic, &exec_cfg)
                .expect("resnet maps")
                .total_cycles as u64
        }));
    }
    match (want("resnet18_segment"), want("resnet18_segment_parallel")) {
        (true, true) => {
            // interleaved so speedup_vs_sequential is drift-free
            let (seq, par) = measure_pair(
                "resnet18_segment",
                "resnet18_segment_parallel",
                warmup,
                iters,
                || stream_segment(&seg_cfg, &seg_golden, Engine::default(), 1, false),
                || stream_segment(&seg_cfg, &seg_golden, Engine::default(), threads, false),
            );
            results.push(seq);
            results.push(par);
        }
        (true, false) => {
            results.push(measure("resnet18_segment", warmup, iters, || {
                stream_segment(&seg_cfg, &seg_golden, Engine::default(), 1, false)
            }));
        }
        (false, true) => {
            results.push(measure("resnet18_segment_parallel", warmup, iters, || {
                stream_segment(&seg_cfg, &seg_golden, Engine::default(), threads, false)
            }));
        }
        (false, false) => {}
    }
    if want("resnet18_segment_cycle_accurate") {
        results.push(measure("resnet18_segment_cycle_accurate", warmup, iters, || {
            stream_segment(&seg_cfg, &seg_golden, Engine::CycleAccurate, 1, false)
        }));
    }
    if want("resnet18_segment_slowpath") {
        results.push(measure("resnet18_segment_slowpath", warmup, iters, || {
            stream_segment(&seg_cfg, &seg_golden, Engine::default(), 1, true)
        }));
    }
    if want("serve_mix_fcfs") || want("serve_mix_sjf") {
        // Bursty three-model trace over an 8-tile pool: only one
        // medium/large model runs at a time, so queues form and the
        // admission order decides the tail.
        let (serve_registry, serve_loads) = three_model_mix();
        let serve_trace = Trace::bursty(&serve_loads, 1_200_000, 200_000, 42);
        let serve_policy = |policy: Policy| -> u64 {
            let cfg = ServeConfig {
                policy,
                pool_tiles: 8,
                threads,
                ..ServeConfig::default()
            };
            let report = serve(&serve_registry, &serve_trace, &cfg).expect("mix serves");
            assert_eq!(report.completed, report.requests, "serving dropped requests");
            report.p99_latency_cycles
        };
        if want("serve_mix_fcfs") {
            results.push(measure("serve_mix_fcfs", warmup, iters, || {
                serve_policy(Policy::Fcfs)
            }));
        }
        if want("serve_mix_sjf") {
            results.push(measure("serve_mix_sjf", warmup, iters, || {
                serve_policy(Policy::Sjf)
            }));
        }
    }
    let mut overload_stats: Option<OverloadStats> = None;
    if want("serve_overload") {
        // The acceptance scenario: 2×-rate tiered mix on a 10-tile pool
        // with hard faults retiring tiles mid-service. The check value
        // is the Hard tenant's p99; the bench asserts the hardening
        // invariant (no unrecoverable Hard request) every iteration.
        let (ov_registry, ov_loads, ov_cfg) = overload_mix();
        let ov_trace = Trace::bursty(&ov_loads, 1_200_000, 200_000, 42);
        let fail_at: Vec<u64> = ov_trace
            .requests
            .iter()
            .filter(|r| r.tenant == "vision")
            .take(2)
            .map(|r| r.id)
            .collect();
        let run_overload = || {
            let cfg = ServeConfig {
                policy: Policy::Sjf,
                pool_tiles: 10,
                threads,
                recovery: Some(RecoveryPolicy {
                    max_replays: 8,
                    remap: true,
                    checkpoint_values: 8,
                }),
                fault: Some(FaultConfig {
                    fail_at_requests: fail_at.clone(),
                    ..FaultConfig::default()
                }),
                overload: Some(ov_cfg.clone()),
                retry_budget: Some(RetryBudget::default()),
                ..ServeConfig::default()
            };
            let report = serve(&ov_registry, &ov_trace, &cfg).expect("overload mix serves");
            let vision = report
                .tenants
                .iter()
                .find(|t| t.tenant == "vision")
                .expect("Hard tenant present");
            assert_eq!(vision.unrecoverable, 0, "Hard tenant lost a request");
            report
        };
        let rep = run_overload();
        let hard_p99 = rep
            .tenants
            .iter()
            .find(|t| t.tenant == "vision")
            .map_or(0, |t| t.p99_latency_cycles);
        overload_stats = Some(OverloadStats {
            hard_p99_cycles: hard_p99,
            shed: rep.shed,
            preemptions: rep.preemptions,
            retries: rep.retries,
            requests: rep.requests,
        });
        results.push(measure("serve_overload", warmup, iters, || {
            let report = run_overload();
            report
                .tenants
                .iter()
                .find(|t| t.tenant == "vision")
                .map_or(0, |t| t.p99_latency_cycles)
        }));
    }
    let mut repeat_stats: Option<RepeatHeavyStats> = None;
    if want("serve_repeat_heavy") {
        // Zipf-skewed popularity over the three-model mix, with the
        // light `small` model as the dominant head: the workload a
        // weight cache exists for. The enabled arm keeps hot weights
        // pinned between requests; the disabled arm restreams every
        // admission from DRAM.
        let (rh_registry, rh_loads) = three_model_mix();
        let mut ranked = rh_loads;
        ranked.reverse(); // small (keyword) first, resnet18_segment last
        let rh_trace = Trace::zipf(&ranked, 1_200_000, 14_000, 2.0, 42);
        let run_repeat = |enabled: bool| {
            let cfg = ServeConfig {
                policy: Policy::Sjf,
                pool_tiles: 8,
                threads,
                weight_cache: Some(WeightCacheConfig {
                    enabled,
                    ..WeightCacheConfig::default()
                }),
                ..ServeConfig::default()
            };
            let report = serve(&rh_registry, &rh_trace, &cfg).expect("repeat mix serves");
            assert_eq!(report.completed, report.requests, "repeat mix dropped requests");
            report
        };
        let warm_rep = run_repeat(true);
        let cold_rep = run_repeat(false);
        repeat_stats = Some(RepeatHeavyStats {
            p50_cycles: warm_rep.p50_latency_cycles,
            cold_p50_cycles: cold_rep.p50_latency_cycles,
            hit_rate: warm_rep.cache.as_ref().map_or(0.0, |c| c.hit_rate),
        });
        results.push(measure("serve_repeat_heavy", warmup, iters, || {
            run_repeat(true).p50_latency_cycles
        }));
    }
    let mut cluster_stats: Option<ClusterStats> = None;
    if want("serve_cluster_failover") {
        // The fault-domain acceptance scenario: 8 fabrics with 2-way
        // replica placement serving a bursty Zipf mix, fabric 0 killed
        // mid-run. Detection costs two silent heartbeat edges, the dead
        // fabric drains, and everything it held re-dispatches to a
        // surviving replica — the bench asserts the Hard tier loses
        // nothing on every iteration.
        let (cl_registry, cl_loads) = three_model_mix();
        let mut ranked = cl_loads;
        ranked.reverse(); // small (keyword) first — the Zipf head
        let cl_trace = Trace::zipf_bursty(&ranked, 1_200_000, 9_000, 1.2, 300_000, 42);
        let run_cluster = |policy: Policy| {
            let cfg = ClusterConfig {
                fabrics: 8,
                replicas: 2,
                heartbeat_interval: 20_000,
                missed_heartbeats: 2,
                failover_budget: 3,
                prewarm_replicas: true,
                tiers: vec![
                    ("vision".into(), Tier::Hard),
                    ("assist".into(), Tier::Soft),
                    ("keyword".into(), Tier::BestEffort),
                ],
                shed: Some(ClusterShedConfig {
                    capacity_fraction: 0.95,
                    shed_late: false,
                }),
                faults: ClusterFaultPlan {
                    events: vec![FabricFault {
                        fabric: 0,
                        at: 480_000,
                        kind: FabricFaultKind::Outage { duration: None },
                    }],
                },
                base: ServeConfig {
                    policy,
                    pool_tiles: 8,
                    threads,
                    weight_cache: Some(WeightCacheConfig::default()),
                    ..ServeConfig::default()
                },
            };
            let report = serve_cluster(&cl_registry, &cl_trace, &cfg).expect("cluster serves");
            assert!(report.per_fabric[0].killed, "fault plan did not fire");
            assert_eq!(report.hard_requests_lost, 0, "Hard tier lost a request");
            report
        };
        let fcfs_rep = run_cluster(Policy::Fcfs);
        let sjf_rep = run_cluster(Policy::Sjf);
        cluster_stats = Some(ClusterStats {
            fcfs_p99_cycles: fcfs_rep.serve.p99_latency_cycles,
            sjf_p99_cycles: sjf_rep.serve.p99_latency_cycles,
            failover_p99_cycles: sjf_rep.failover_p99_cycles,
            detect_p50_cycles: sjf_rep.detect_p50_cycles,
            miss_rate: sjf_rep.serve.deadline_miss_rate,
            failovers: sjf_rep.failovers,
            lost: sjf_rep.requests_lost,
            hard_lost: sjf_rep.hard_requests_lost,
        });
        results.push(measure("serve_cluster_failover", warmup, iters, || {
            run_cluster(Policy::Sjf).failover_p99_cycles
        }));
    }
    let mut soak_stats: Option<SoakStats> = None;
    if want("serve_soak") {
        // The soak-run observability scenario: a compressed diurnal day
        // (the generator's 8-phase rate curve, keyword-headed Zipf mix)
        // over a 4-fabric cluster with continuous seeded fault churn and
        // the interval telemetry recorder attached — the same shape as
        // `maicc soak --quick`. Every iteration exercises the recorder's
        // window flushing alongside the serving work it observes.
        let (sk_registry, sk_loads) = three_model_mix();
        let mut ranked = sk_loads;
        ranked.reverse(); // small (keyword) first — the Zipf head
        let horizon = 600_000;
        let sk_trace = Trace::diurnal(&ranked, horizon, 12_000, 1.1, 200_000, 42);
        let run_soak = || {
            let cfg = ClusterConfig {
                fabrics: 4,
                replicas: 2,
                heartbeat_interval: 20_000,
                missed_heartbeats: 2,
                failover_budget: 3,
                prewarm_replicas: true,
                tiers: vec![
                    ("vision".into(), Tier::Hard),
                    ("assist".into(), Tier::Soft),
                    ("keyword".into(), Tier::BestEffort),
                ],
                shed: Some(ClusterShedConfig::default()),
                faults: ClusterFaultPlan::churn(4, horizon, 150_000, 42),
                base: ServeConfig {
                    policy: Policy::Sjf,
                    pool_tiles: 16,
                    threads,
                    weight_cache: Some(WeightCacheConfig::default()),
                    ..ServeConfig::default()
                },
            };
            serve_cluster_with_obs(&sk_registry, &sk_trace, &cfg, 50_000).expect("soak serves")
        };
        let (soak_rep, soak_jsonl) = run_soak();
        soak_stats = Some(SoakStats {
            p99_cycles: soak_rep.serve.p99_latency_cycles,
            windows: soak_jsonl.lines().count() as u64,
            hit_rate: soak_rep.serve.cache.as_ref().map_or(0.0, |c| c.hit_rate),
        });
        results.push(measure("serve_soak", warmup, iters, || {
            run_soak().0.serve.p99_latency_cycles
        }));
    }
    assert!(
        !results.is_empty(),
        "--bench {:?} matched no benchmark",
        filter.as_deref().unwrap_or("")
    );

    // Modelled cycles must agree across fast, parallel, oracle, and
    // slow-path runs of the streaming segment.
    let cycles: Vec<u64> = results
        .iter()
        .filter(|s| s.name.starts_with("resnet18_segment"))
        .map(|s| s.check)
        .collect();
    assert!(
        cycles.windows(2).all(|w| w[0] == w[1]),
        "modelled cycles diverged across variants: {cycles:?}"
    );

    write_json(
        &out,
        quick,
        iters,
        threads,
        &results,
        &ScenarioStats {
            overload: overload_stats,
            repeat: repeat_stats,
            cluster: cluster_stats,
            soak: soak_stats,
        },
    );

    let median = |name: &str| {
        results
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.median_ns as f64)
    };
    if let Some(seg) = median("resnet18_segment") {
        println!(
            "\nresnet18_segment: {:.1} ms vs pre-PR {:.1} ms → {:.1}x",
            seg / 1e6,
            pre_pr::RESNET18_SEGMENT_NS as f64 / 1e6,
            pre_pr::RESNET18_SEGMENT_NS as f64 / seg,
        );
        if let Some(slow) = median("resnet18_segment_slowpath") {
            println!("slow path: {:.1}x of fast", slow / seg);
        }
        if let Some(oracle) = median("resnet18_segment_cycle_accurate") {
            println!("event-driven engine: {:.1}x over cycle-accurate oracle", oracle / seg);
        }
        if let Some(par) = median("resnet18_segment_parallel") {
            let speedup = seg / par;
            println!("parallel ({threads} threads): {speedup:.2}x over sequential");
            if speedup < 1.0 {
                println!(
                    "WARNING: resnet18_segment_parallel is SLOWER than sequential \
                     (speedup_vs_sequential = {speedup:.2} < 1.0) — \
                     the worker pool is losing to single-threaded stepping"
                );
            }
        }
    }
    println!("wrote {out}");
}
