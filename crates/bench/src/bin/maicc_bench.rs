//! Self-timed wall-clock benchmark harness.
//!
//! Unlike the `benches/` entries (which regenerate paper tables under
//! Criterion), this binary measures *host* wall-clock time of the
//! simulator itself with `std::time::Instant` — warmup runs followed by
//! N timed iterations, reporting median/p10/p90 — and writes the results
//! as JSON to `BENCH_results.json`.
//!
//! ```text
//! cargo run --release -p maicc-bench --bin maicc_bench [-- OPTIONS]
//!
//!   --quick        one iteration, no warmup (CI smoke mode)
//!   --iters N      timed iterations per workload (default 5)
//!   --out PATH     output JSON path (default BENCH_results.json)
//! ```
//!
//! Workloads:
//!
//! * `table4_node_conv` — the Table-4 MAICC node convolution on the
//!   cycle-accurate pipeline;
//! * `table5_scheduled_replay` — the statically scheduled program replay;
//! * `table6_heuristic_mapping` — ResNet-18 heuristic layer mapping;
//! * `resnet18_segment` — the full-system streaming simulation (bit-level
//!   CMems + flit-level mesh) on the default fault-campaign workload;
//! * `resnet18_segment_parallel` — same, with `set_parallelism` at the
//!   host core count;
//! * `resnet18_segment_slowpath` — same, with a quiet `FaultPlan`
//!   attached so every MAC takes the bit-serial slow path.
//!
//! Every iteration checks functional correctness (ofmap == golden,
//! modelled cycle counts identical across variants), so a speedup that
//! broke bit-exactness would abort the run.

use maicc::core::kernels::{CmemConvKernel, ConvWorkload};
use maicc::core::pipeline::{PipelineConfig, Timing};
use maicc::exec::config::ExecConfig;
use maicc::exec::pipeline_model::run_network;
use maicc::exec::segment::Strategy;
use maicc::nn::resnet::resnet18;
use maicc::sim::stream::{StreamConfig, StreamSim};
use maicc::sram::fault::FaultPlan;
use maicc_bench::{percentile, pre_pr};
use std::time::Instant;

/// Cycle budget for the streaming runs (the segment drains in < 100 k).
const STREAM_BUDGET: u64 = 5_000_000;

struct Summary {
    name: &'static str,
    median_ns: u64,
    p10_ns: u64,
    p90_ns: u64,
    min_ns: u64,
    max_ns: u64,
    iters: usize,
    /// Deterministic per-workload check value (modelled cycles); must be
    /// identical across iterations.
    check: u64,
}

/// Times `f` for `warmup + iters` runs and summarizes the timed ones.
/// `f` returns a check value that must not vary between iterations.
fn measure(name: &'static str, warmup: usize, iters: usize, mut f: impl FnMut() -> u64) -> Summary {
    let mut check = None;
    for _ in 0..warmup {
        check = Some(f());
    }
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        let c = f();
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        samples.push(ns);
        match check {
            None => check = Some(c),
            Some(prev) => assert_eq!(prev, c, "{name}: nondeterministic check value"),
        }
    }
    samples.sort_unstable();
    let s = Summary {
        name,
        median_ns: percentile(&samples, 50.0),
        p10_ns: percentile(&samples, 10.0),
        p90_ns: percentile(&samples, 90.0),
        min_ns: samples[0],
        max_ns: samples[samples.len() - 1],
        iters,
        check: check.expect("at least one iteration"),
    };
    println!(
        "{:<28} median {:>13} ns  p10 {:>13}  p90 {:>13}  (check {})",
        s.name, s.median_ns, s.p10_ns, s.p90_ns, s.check
    );
    s
}

fn table4_node_conv(wl: ConvWorkload, ifmap: &[i8], weights: &[i8], golden: &[i32]) -> u64 {
    let kernel = CmemConvKernel::new(wl).expect("table4 workload fits");
    let sched = kernel.with_program(kernel.scheduled_program());
    let mut node = sched.prepare(ifmap, weights, 4).expect("prepared");
    let mut t = Timing::new(PipelineConfig::default());
    node.run_with(100_000_000, |e| t.on_retire(e)).expect("halts");
    assert_eq!(sched.read_ofmap(&node).expect("ofmap"), golden, "table4 functional mismatch");
    t.finish().total_cycles
}

fn table5_scheduled_replay(kernel: &CmemConvKernel, ifmap: &[i8], weights: &[i8]) -> u64 {
    let k = kernel.with_program(kernel.scheduled_program());
    let mut node = k.prepare(ifmap, weights, 4).expect("prepared");
    let mut t = Timing::new(PipelineConfig::default());
    node.run_with(100_000_000, |e| t.on_retire(e)).expect("halts");
    t.finish().total_cycles
}

/// Runs the streaming segment; `threads > 1` enables sharded stepping,
/// `slow_path` pins the bit-serial MAC path via a quiet fault plan.
fn stream_segment(cfg: &StreamConfig, golden: &[i8], threads: usize, slow_path: bool) -> u64 {
    let mut sim = StreamSim::new(cfg).expect("segment fits");
    if threads > 1 {
        sim.set_parallelism(threads);
    }
    if slow_path {
        sim.attach_cmem_fault_plan(&FaultPlan::none());
    }
    let r = sim.run(STREAM_BUDGET).expect("drains");
    assert_eq!(r.ofmap, golden, "streaming ofmap mismatch");
    r.cycles
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(s.chars().all(|c| c != '"' && c != '\\' && !c.is_control()));
    s
}

fn write_json(path: &str, quick: bool, iters: usize, results: &[Summary]) {
    let mut out = String::from("{\n");
    out.push_str("  \"harness\": \"maicc_bench\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"iterations\": {iters},\n"));
    out.push_str(&format!(
        "  \"pre_pr_resnet18_segment_ns\": {},\n",
        pre_pr::RESNET18_SEGMENT_NS
    ));
    out.push_str("  \"benchmarks\": [\n");
    for (i, s) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {}, \"p10_ns\": {}, \"p90_ns\": {}, \
             \"min_ns\": {}, \"max_ns\": {}, \"iterations\": {}, \"check\": {}}}{}\n",
            json_escape_free(s.name),
            s.median_ns,
            s.p10_ns,
            s.p90_ns,
            s.min_ns,
            s.max_ns,
            s.iters,
            s.check,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let median = |name: &str| {
        results
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.median_ns as f64)
    };
    let seg = median("resnet18_segment");
    let slow = median("resnet18_segment_slowpath");
    out.push_str("  \"derived\": {\n");
    out.push_str(&format!(
        "    \"resnet18_segment_speedup_vs_pre_pr\": {:.2},\n",
        seg.map_or(0.0, |m| pre_pr::RESNET18_SEGMENT_NS as f64 / m)
    ));
    out.push_str(&format!(
        "    \"resnet18_segment_fast_vs_slowpath\": {:.2}\n",
        match (seg, slow) {
            (Some(f), Some(s)) => s / f,
            _ => 0.0,
        }
    ));
    out.push_str("  }\n}\n");
    std::fs::write(path, out).expect("write BENCH_results.json");
}

fn main() {
    let mut quick = false;
    let mut iters = 5usize;
    let mut out = String::from("BENCH_results.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--iters" => {
                iters = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--iters takes a positive integer");
            }
            "--out" => out = args.next().expect("--out takes a path"),
            other => panic!("unknown option {other} (try --quick, --iters N, --out PATH)"),
        }
    }
    if quick {
        iters = 1;
    }
    let warmup = usize::from(!quick);
    assert!(iters > 0, "need at least one iteration");

    println!("maicc_bench: {iters} iteration(s), {warmup} warmup, quick={quick}");

    let wl = ConvWorkload::table4();
    let ifmap = wl.synthetic_ifmap();
    let weights = wl.synthetic_weights();
    let conv_golden = wl.golden(&ifmap, &weights);
    let kernel = CmemConvKernel::new(wl).expect("fits");
    let net = resnet18(1000);
    let exec_cfg = ExecConfig::default();
    let seg_cfg = StreamConfig::resnet18_segment();
    let seg_golden = seg_cfg.golden();
    let cores = std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get);

    let mut results = vec![
        measure("table4_node_conv", warmup, iters, || {
            table4_node_conv(ConvWorkload::table4(), &ifmap, &weights, &conv_golden)
        }),
        measure("table5_scheduled_replay", warmup, iters, || {
            table5_scheduled_replay(&kernel, &ifmap, &weights)
        }),
        measure("table6_heuristic_mapping", warmup, iters, || {
            run_network(&net, [64, 56, 56], Strategy::Heuristic, &exec_cfg)
                .expect("resnet maps")
                .total_cycles as u64
        }),
        measure("resnet18_segment", warmup, iters, || {
            stream_segment(&seg_cfg, &seg_golden, 1, false)
        }),
        measure("resnet18_segment_parallel", warmup, iters, || {
            stream_segment(&seg_cfg, &seg_golden, cores, false)
        }),
    ];
    // The bit-serial slow path is ~30x slower; in quick mode it still runs
    // (once) so CI exercises the dispatch contract end to end.
    results.push(measure("resnet18_segment_slowpath", 0, iters.min(3), || {
        stream_segment(&seg_cfg, &seg_golden, 1, true)
    }));

    // Modelled cycles must agree across fast, parallel, and slow-path runs.
    let cycles: Vec<u64> = results[3..].iter().map(|s| s.check).collect();
    assert!(
        cycles.windows(2).all(|w| w[0] == w[1]),
        "modelled cycles diverged across variants: {cycles:?}"
    );

    write_json(&out, quick, iters, &results);
    let seg = results[3].median_ns as f64;
    println!(
        "\nresnet18_segment: {:.1} ms vs pre-PR {:.1} ms → {:.1}x; slow path {:.1}x of fast",
        seg / 1e6,
        pre_pr::RESNET18_SEGMENT_NS as f64 / 1e6,
        pre_pr::RESNET18_SEGMENT_NS as f64 / seg,
        results[5].median_ns as f64 / seg
    );
    println!("wrote {out}");
}
