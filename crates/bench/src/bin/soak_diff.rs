//! Compares two `maicc soak` JSONL telemetry streams and flags
//! trajectory drift.
//!
//! ```text
//! cargo run --release -p maicc-bench --bin soak_diff -- BASELINE.jsonl NEW.jsonl \
//!     [--tolerance PCT]
//! ```
//!
//! Where `bench_diff` compares two *point* summaries, this tool
//! compares two *trajectories*: it ingests the per-interval records the
//! observability layer emits (one JSON object per line, the `maicc-obs`
//! schema) and reduces each stream to four trend figures that a final
//! report hides:
//!
//! * **p99 trend slope** — least-squares slope of the window p99 over
//!   windows that completed anything, cycles per window. A healthy soak
//!   is flat; a positive slope is latency creep.
//! * **hit-rate decay** — mean cache hit rate over the first half of
//!   the run minus the second half. Positive means the cache is getting
//!   *worse* as the run ages (retention rot, eviction thrash).
//! * **unrecovered-queue growth** — least-squares slope of total queue
//!   depth (all tiers) over the run. A diurnal trace queues up through
//!   the peak and drains at night; a positive slope across whole days
//!   means the backlog never recovers.
//! * **failover-cost accumulation** — mean failovers per window. Fault
//!   churn makes some failover constant; a jump means recovery is
//!   re-dispatching more than the baseline did under the same plan.
//!
//! Each figure is compared against the baseline stream's under a
//! combined tolerance: the current value may exceed the baseline by
//! `--tolerance` percent of the baseline's magnitude (default 10) or by
//! the metric's absolute slack floor, whichever is larger — the floors
//! keep near-zero baselines from flagging noise. The `gates` section
//! prints every gate with the observed value, the baseline, and the
//! slack it was allowed, pass or fail.
//!
//! Exit codes mirror `bench_diff`: 0 clean, 1 when any gate drifted,
//! [`EXIT_MISSING`] (2) on usage errors, unreadable files, or streams
//! with no parsable window records — "worse" and "not comparable" are
//! different CI outcomes.

use std::process::ExitCode;

/// Exit code for "the comparison could not be made" (usage error,
/// unreadable file, no parsable windows), distinct from exit 1 (drift).
const EXIT_MISSING: u8 = 2;

/// Absolute slack floors per metric, applied when the relative
/// tolerance on a near-zero baseline would flag noise: cycles/window
/// for the p99 slope, hit-rate fraction for the decay, queue entries
/// per window for the growth, failovers per window for the
/// accumulation.
const P99_SLOPE_SLACK: f64 = 1_000.0;
const HIT_DECAY_SLACK: f64 = 0.05;
const QUEUE_SLOPE_SLACK: f64 = 0.5;
const FAILOVER_RATE_SLACK: f64 = 0.5;

/// One parsed telemetry window (the fields the trend figures need).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Window {
    completions: f64,
    p99: f64,
    hits: f64,
    misses: f64,
    queue_total: f64,
    failovers: f64,
}

/// Reads one numeric field from a JSONL record by its `"key": ` prefix
/// (the recorder always emits a space after the colon, and nested keys
/// are unique across the schema).
fn field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let i = line.find(&pat)?;
    let rest = &line[i + pat.len()..];
    let digits: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    digits.parse().ok()
}

/// Parses a stream into windows, skipping unparsable lines.
fn parse_stream(text: &str) -> Vec<Window> {
    text.lines()
        .filter_map(|line| {
            Some(Window {
                completions: field(line, "completions")?,
                p99: field(line, "p99")?,
                hits: field(line, "hits")?,
                misses: field(line, "misses")?,
                queue_total: field(line, "hard")?
                    + field(line, "soft")?
                    + field(line, "best_effort")?,
                failovers: field(line, "failovers")?,
            })
        })
        .collect()
}

/// Least-squares slope of `(index, value)` points; 0 with fewer than
/// two points (no trend is measurable).
fn slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    if points.len() < 2 {
        return 0.0;
    }
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        return 0.0;
    }
    (n * sxy - sx * sy) / denom
}

/// The four trend figures of one stream.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Trajectory {
    p99_slope: f64,
    hit_decay: f64,
    queue_slope: f64,
    failover_rate: f64,
}

fn trajectory(windows: &[Window]) -> Trajectory {
    let p99: Vec<(f64, f64)> = windows
        .iter()
        .enumerate()
        .filter(|(_, w)| w.completions > 0.0)
        .map(|(i, w)| (i as f64, w.p99))
        .collect();
    let queue: Vec<(f64, f64)> = windows
        .iter()
        .enumerate()
        .map(|(i, w)| (i as f64, w.queue_total))
        .collect();
    let rates: Vec<f64> = windows
        .iter()
        .filter(|w| w.hits + w.misses > 0.0)
        .map(|w| w.hits / (w.hits + w.misses))
        .collect();
    let mean = |s: &[f64]| {
        if s.is_empty() {
            0.0
        } else {
            s.iter().sum::<f64>() / s.len() as f64
        }
    };
    let (first, second) = rates.split_at(rates.len() / 2);
    let hit_decay = if first.is_empty() || second.is_empty() {
        0.0
    } else {
        mean(first) - mean(second)
    };
    let failover_rate = windows
        .iter()
        .map(|w| w.failovers)
        .sum::<f64>()
        / windows.len().max(1) as f64;
    Trajectory {
        p99_slope: slope(&p99),
        hit_decay,
        queue_slope: slope(&queue),
        failover_rate,
    }
}

/// Whether `cur` drifted worse than `base` under the combined
/// tolerance: `rel_pct` percent of the baseline's magnitude or the
/// metric's absolute `floor`, whichever allows more.
fn drifted(base: f64, cur: f64, rel_pct: f64, floor: f64) -> bool {
    cur > base + (base.abs() * rel_pct / 100.0).max(floor)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let tolerance: f64 = args
        .iter()
        .position(|a| a == "--tolerance")
        .map_or(10.0, |i| {
            let v = args.drain(i..(i + 2).min(args.len())).nth(1);
            v.as_deref().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("soak_diff: bad --tolerance value, using 10");
                10.0
            })
        });
    let [baseline_path, new_path] = args.as_slice() else {
        eprintln!("usage: soak_diff BASELINE.jsonl NEW.jsonl [--tolerance PCT]");
        return ExitCode::from(EXIT_MISSING);
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("soak_diff: cannot read {path}: {e}");
            None
        }
    };
    let (Some(base_text), Some(new_text)) = (read(baseline_path), read(new_path)) else {
        return ExitCode::from(EXIT_MISSING);
    };
    let base_windows = parse_stream(&base_text);
    let new_windows = parse_stream(&new_text);
    if base_windows.is_empty() || new_windows.is_empty() {
        eprintln!(
            "soak_diff: no telemetry windows parsed ({} baseline, {} new)",
            base_windows.len(),
            new_windows.len()
        );
        return ExitCode::from(EXIT_MISSING);
    }
    let base = trajectory(&base_windows);
    let new = trajectory(&new_windows);

    println!(
        "soak_diff: {baseline_path} ({} windows) -> {new_path} ({} windows)",
        base_windows.len(),
        new_windows.len()
    );
    println!("gates (tolerance {tolerance:.1}%):");
    let mut drifts: Vec<String> = Vec::new();
    let mut gate = |label: &str, unit: &str, b: f64, c: f64, floor: f64| {
        let bad = drifted(b, c, tolerance, floor);
        println!(
            "  {label:<26} base {b:+.3} -> cur {c:+.3} {unit} (slack {:.3})  {}",
            (b.abs() * tolerance / 100.0).max(floor),
            if bad { "DRIFT" } else { "ok" }
        );
        if bad {
            drifts.push(label.to_string());
        }
    };
    gate(
        "p99 trend slope",
        "cycles/window",
        base.p99_slope,
        new.p99_slope,
        P99_SLOPE_SLACK,
    );
    gate(
        "hit-rate decay",
        "fraction",
        base.hit_decay,
        new.hit_decay,
        HIT_DECAY_SLACK,
    );
    gate(
        "unrecovered-queue growth",
        "entries/window",
        base.queue_slope,
        new.queue_slope,
        QUEUE_SLOPE_SLACK,
    );
    gate(
        "failover accumulation",
        "per window",
        base.failover_rate,
        new.failover_rate,
        FAILOVER_RATE_SLACK,
    );
    if drifts.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("soak_diff: trajectory drift in: {}", drifts.join(", "));
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::{drifted, field, parse_stream, slope, trajectory};

    /// A minimal schema-shaped line with the fields the analyzer reads.
    fn line(
        completions: u64,
        p99: u64,
        hits: u64,
        misses: u64,
        queue: u64,
        failovers: u64,
    ) -> String {
        format!(
            "{{\"interval\": 0, \"completions\": {completions}, \
             \"failovers\": {failovers}, \
             \"latency_cycles\": {{\"p50\": 0, \"p99\": {p99}}}, \
             \"queue_depth\": {{\"hard\": {queue}, \"soft\": 0, \
             \"best_effort\": 0}}, \
             \"cache\": {{\"hits\": {hits}, \"misses\": {misses}, \
             \"llc_hits\": 0}}}}"
        )
    }

    #[test]
    fn field_reads_nested_keys_without_aliasing() {
        let l = line(3, 4200, 9, 1, 2, 1);
        assert_eq!(field(&l, "completions"), Some(3.0));
        assert_eq!(field(&l, "p99"), Some(4200.0));
        // "hits" must not match inside "llc_hits"
        assert_eq!(field(&l, "hits"), Some(9.0));
        assert_eq!(field(&l, "llc_hits"), Some(0.0));
        assert_eq!(field(&l, "absent"), None);
    }

    #[test]
    fn unparsable_streams_yield_no_windows() {
        assert!(parse_stream("").is_empty());
        assert!(parse_stream("not json at all\n{}").is_empty());
    }

    #[test]
    fn slope_fits_a_line() {
        let pts: Vec<(f64, f64)> =
            (0..10).map(|i| (i as f64, 3.0 * i as f64 + 7.0)).collect();
        assert!((slope(&pts) - 3.0).abs() < 1e-9);
        assert_eq!(slope(&pts[..1]), 0.0);
        assert_eq!(slope(&[]), 0.0);
    }

    #[test]
    fn steady_stream_has_flat_trajectory() {
        let text: String = (0..20)
            .map(|_| line(5, 50_000, 9, 1, 3, 0))
            .collect::<Vec<_>>()
            .join("\n");
        let t = trajectory(&parse_stream(&text));
        assert!(t.p99_slope.abs() < 1e-9);
        assert!(t.hit_decay.abs() < 1e-9);
        assert!(t.queue_slope.abs() < 1e-9);
        assert_eq!(t.failover_rate, 0.0);
    }

    #[test]
    fn injected_hit_rate_decay_is_flagged() {
        // Baseline: a steady 90% hit rate. Current: the same first
        // half, then the cache rots to 20% — the regression the
        // acceptance test injects.
        let steady: String = (0..20)
            .map(|_| line(5, 50_000, 9, 1, 3, 0))
            .collect::<Vec<_>>()
            .join("\n");
        let decayed: String = (0..20)
            .map(|i| {
                if i < 10 {
                    line(5, 50_000, 9, 1, 3, 0)
                } else {
                    line(5, 50_000, 2, 8, 3, 0)
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let base = trajectory(&parse_stream(&steady));
        let cur = trajectory(&parse_stream(&decayed));
        assert!(cur.hit_decay > 0.3, "{}", cur.hit_decay);
        assert!(drifted(base.hit_decay, cur.hit_decay, 10.0, 0.05));
        // and the clean stream does not flag against itself
        assert!(!drifted(base.hit_decay, base.hit_decay, 10.0, 0.05));
    }

    #[test]
    fn latency_creep_and_queue_growth_are_flagged() {
        let steady: String = (0..20)
            .map(|_| line(5, 50_000, 9, 1, 3, 0))
            .collect::<Vec<_>>()
            .join("\n");
        let creeping: String = (0..20)
            .map(|i| line(5, 50_000 + i * 20_000, 9, 1, 3 + i, 0))
            .collect::<Vec<_>>()
            .join("\n");
        let base = trajectory(&parse_stream(&steady));
        let cur = trajectory(&parse_stream(&creeping));
        assert!(drifted(base.p99_slope, cur.p99_slope, 10.0, 1_000.0));
        assert!(drifted(base.queue_slope, cur.queue_slope, 10.0, 0.5));
        // failover accumulation stayed flat
        assert!(!drifted(base.failover_rate, cur.failover_rate, 10.0, 0.5));
    }

    #[test]
    fn empty_window_p99s_do_not_drag_the_slope() {
        // Alternating empty windows (p99 = 0) must not see-saw the
        // trend: only windows that completed something count.
        let text: String = (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    line(5, 60_000, 9, 1, 0, 0)
                } else {
                    line(0, 0, 0, 0, 0, 0)
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let t = trajectory(&parse_stream(&text));
        assert!(t.p99_slope.abs() < 1e-9, "{}", t.p99_slope);
    }
}
