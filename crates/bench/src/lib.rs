//! Support library for the table/figure regeneration benches.
//!
//! Each bench in `benches/` regenerates one table or figure of the MAICC
//! paper: it prints the same rows/series the paper reports (with the
//! paper's published values alongside for comparison) and lets Criterion
//! measure the simulation itself. The helpers here keep the printed
//! output uniform.

/// Paper-published reference values, for side-by-side printing.
pub mod paper {
    /// Table 4 cycles: scalar core, MAICC node, Neural Cache.
    pub const TABLE4_CYCLES: [f64; 3] = [1.24e7, 59_141.0, 136_416.0];
    /// Table 4 energy (J): scalar, MAICC, Neural Cache.
    pub const TABLE4_ENERGY: [f64; 3] = [1.03e-4, 3.96e-6, 4.03e-6];
    /// Table 5 cycles without static scheduling, one WB port,
    /// queue = 0, 1, 2, 4.
    pub const TABLE5_DYNAMIC: [f64; 4] = [61_895.0, 60_761.0, 59_141.0, 59_141.0];
    /// Table 5 cycles with static scheduling, one WB port, queue 0–4.
    pub const TABLE5_STATIC: [f64; 4] = [52_098.0, 50_802.0, 50_154.0, 50_154.0];
    /// Table 6 total latency (ms): single-layer, greedy, heuristic.
    pub const TABLE6_TOTAL_MS: [f64; 3] = [24.078, 10.410, 5.138];
    /// Table 7: latency ms for CPU, GPU, MAICC.
    pub const TABLE7_LATENCY_MS: [f64; 3] = [22.3, 1.02, 5.13];
    /// Table 7: throughput/W for CPU, GPU, MAICC.
    pub const TABLE7_TPW: [f64; 3] = [0.25, 4.29, 7.90];
    /// §6.3 GFLOPS/W: Neural Cache published, MAICC reported.
    pub const GFLOPS_PER_W: [f64; 2] = [22.90, 50.03];
    /// Figure 10(a) area fractions: CMem, core, node SRAM, NoC, LLC.
    pub const FIG10_AREA: [f64; 5] = [0.65, 0.11, 0.10, 0.09, 0.05];
    /// Figure 10(b) energy fractions: DRAM, CMem, NoC (others < 10 %).
    pub const FIG10_ENERGY_TOP3: [f64; 3] = [0.71, 0.11, 0.11];
}

/// Wall-clock reference points for the self-timed harness
/// (`cargo run --release -p maicc-bench --bin maicc_bench`), measured on
/// the build immediately preceding the fast-path/parallel-simulation work.
pub mod pre_pr {
    /// Median of 5 release-mode runs of `StreamSim::run` over
    /// `StreamConfig::resnet18_segment()` (bit-serial MACs, sequential
    /// stepping), in nanoseconds.
    pub const RESNET18_SEGMENT_NS: u64 = 1_356_117_893;
}

/// Nearest-rank percentile of an ascending-sorted sample set.
///
/// # Panics
///
/// Panics if `sorted` is empty.
#[must_use]
pub fn percentile(sorted: &[u64], pct: f64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of empty sample set");
    let idx = (pct / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Prints a `measured vs paper` row with the deviation factor.
pub fn row(label: &str, measured: f64, paper: f64, unit: &str) {
    let ratio = if paper != 0.0 { measured / paper } else { f64::NAN };
    println!("{label:<34} measured {measured:>12.4} {unit:<10} paper {paper:>12.4}  (x{ratio:.2})");
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n===== {title} =====");
}

#[cfg(test)]
mod tests {
    #[test]
    fn percentile_is_nearest_rank() {
        let s = [10u64, 20, 30, 40, 50];
        assert_eq!(super::percentile(&s, 0.0), 10);
        assert_eq!(super::percentile(&s, 50.0), 30);
        assert_eq!(super::percentile(&s, 100.0), 50);
        assert_eq!(super::percentile(&s, 90.0), 50);
        assert_eq!(super::percentile(&[7], 50.0), 7);
    }

    #[test]
    fn paper_constants_are_positive() {
        for v in super::paper::TABLE4_CYCLES {
            assert!(v > 0.0);
        }
        let t6 = super::paper::TABLE6_TOTAL_MS;
        assert!(t6.windows(2).all(|w| w[0] > w[1]));
    }
}
