//! Auxiliary-function code generation — the scalar half of a mixed layer.
//!
//! §4.1 assigns "activation, pooling, normalization, and quantization" to
//! the RISC-V pipeline. The heavy one is integer-only **requantization**
//! (Jacob et al. 2018): the i32 accumulator leaving the CMem is scaled by
//! a fixed-point multiplier `m0·2⁻ⁿ` via a saturating rounding doubling
//! high-multiply, rounding-shifted, offset and clamped. This module emits
//! that exact arithmetic as RV32IM code (`mulh` does the heavy lifting),
//! plus ReLU; `tests/integration.rs` proves the emitted code agrees with
//! `maicc_nn::quant::Requantizer` on random accumulators.

use maicc_isa::asm::Assembler;
use maicc_isa::inst::{BranchKind, Instruction as I, OpImmKind, OpKind};
use maicc_isa::reg::Reg;

/// Parameters of an integer-only requantization (mirrors
/// `maicc_nn::quant::Requantizer`, which `maicc-core` cannot name without
/// a dependency cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequantParams {
    /// Fixed-point multiplier in `[2³⁰, 2³¹)`, or 0.
    pub multiplier: i32,
    /// Rounding right shift after the high multiply.
    pub shift: u32,
    /// Output zero point.
    pub zero_point: i32,
}

/// Emits code computing `acc = requantize(acc)` in place, clobbering
/// `T0–T4`. `unique` disambiguates internal labels so the sequence can be
/// emitted several times in one program.
///
/// The sequence is branch-light: one branch selects the rounding nudge's
/// sign (gemmlowp's `SaturatingRoundingDoublingHighMul`), everything else
/// is straight-line RV32IM.
pub fn emit_requantize(a: &mut Assembler, acc: Reg, p: RequantParams, unique: usize) {
    if p.multiplier == 0 {
        a.li32(acc, p.zero_point.clamp(-128, 127));
        return;
    }
    // t0:t1 = acc * m0 (hi:lo)
    a.li32(Reg::T0, p.multiplier);
    a.inst(I::Op {
        kind: OpKind::Mulh,
        rd: Reg::T1,
        rs1: acc,
        rs2: Reg::T0,
    });
    a.inst(I::Op {
        kind: OpKind::Mul,
        rd: Reg::T2,
        rs1: acc,
        rs2: Reg::T0,
    });
    // nudge = ab >= 0 ? 1<<30 : 1 - (1<<30); add as a 64-bit quantity
    let pos = format!("rq_pos_{unique}");
    let done = format!("rq_nudged_{unique}");
    a.li32(Reg::T3, 1 << 30);
    a.inst(I::li(Reg::T4, 0));
    a.branch(BranchKind::Bge, Reg::T1, Reg::Zero, &pos);
    a.li32(Reg::T3, 1 - (1 << 30));
    a.inst(I::li(Reg::T4, -1));
    a.label(&pos);
    // 64-bit add: lo += nudge_lo, hi += nudge_hi + carry
    a.inst(I::add(Reg::T2, Reg::T2, Reg::T3));
    a.inst(I::Op {
        kind: OpKind::Sltu,
        rd: Reg::T3,
        rs1: Reg::T2,
        rs2: Reg::T3,
    });
    a.inst(I::add(Reg::T1, Reg::T1, Reg::T4));
    a.inst(I::add(Reg::T1, Reg::T1, Reg::T3));
    a.label(&done);
    // truncating (ab + nudge) / 2³¹: the floor is (hi << 1) | (lo >>> 31),
    // corrected by +1 when the value is negative with a nonzero remainder
    a.inst(I::OpImm {
        kind: OpImmKind::Slli,
        rd: Reg::T3,
        rs1: Reg::T2,
        imm: 1,
    }); // low 31 remainder bits, shifted up
    a.inst(I::Op {
        kind: OpKind::Sltu,
        rd: Reg::T3,
        rs1: Reg::Zero,
        rs2: Reg::T3,
    }); // remainder != 0
    a.inst(I::OpImm {
        kind: OpImmKind::Slti,
        rd: Reg::T4,
        rs1: Reg::T1,
        imm: 0,
    }); // value negative
    a.inst(I::Op {
        kind: OpKind::And,
        rd: Reg::T3,
        rs1: Reg::T3,
        rs2: Reg::T4,
    });
    a.inst(I::OpImm {
        kind: OpImmKind::Slli,
        rd: Reg::T1,
        rs1: Reg::T1,
        imm: 1,
    });
    a.inst(I::OpImm {
        kind: OpImmKind::Srli,
        rd: Reg::T2,
        rs1: Reg::T2,
        imm: 31,
    });
    a.inst(I::Op {
        kind: OpKind::Or,
        rd: acc,
        rs1: Reg::T1,
        rs2: Reg::T2,
    });
    a.inst(I::add(acc, acc, Reg::T3));
    // rounding right shift by `shift`
    if p.shift > 0 {
        let mask = (1i64 << p.shift) - 1;
        a.li32(Reg::T0, mask as i32);
        a.inst(I::Op {
            kind: OpKind::And,
            rd: Reg::T1,
            rs1: acc,
            rs2: Reg::T0,
        }); // remainder
        // threshold = (mask >> 1) + (acc < 0)
        a.inst(I::OpImm {
            kind: OpImmKind::Slti,
            rd: Reg::T2,
            rs1: acc,
            imm: 0,
        });
        a.li32(Reg::T3, (mask >> 1) as i32);
        a.inst(I::add(Reg::T2, Reg::T2, Reg::T3));
        a.inst(I::OpImm {
            kind: OpImmKind::Srai,
            rd: acc,
            rs1: acc,
            imm: p.shift as i32,
        });
        // acc += (remainder > threshold)
        a.inst(I::Op {
            kind: OpKind::Slt,
            rd: Reg::T1,
            rs1: Reg::T2,
            rs2: Reg::T1,
        });
        a.inst(I::add(acc, acc, Reg::T1));
    }
    // + zero point, clamp to i8
    if p.zero_point != 0 {
        a.li32(Reg::T0, p.zero_point);
        a.inst(I::add(acc, acc, Reg::T0));
    }
    emit_clamp_i8(a, acc, unique);
}

/// Emits `acc = clamp(acc, -128, 127)` using two compare-and-branches.
pub fn emit_clamp_i8(a: &mut Assembler, acc: Reg, unique: usize) {
    let hi_ok = format!("cl_hi_{unique}");
    let lo_ok = format!("cl_lo_{unique}");
    a.inst(I::li(Reg::T0, 127));
    a.branch(BranchKind::Bge, Reg::T0, acc, &hi_ok);
    a.inst(I::li(acc, 127));
    a.label(&hi_ok);
    a.inst(I::li(Reg::T0, -128));
    a.branch(BranchKind::Bge, acc, Reg::T0, &lo_ok);
    a.inst(I::li(acc, -128));
    a.label(&lo_ok);
}

/// Emits `acc = max(acc, 0)` (ReLU) branchlessly: `acc &= ~(acc >> 31)`.
pub fn emit_relu(a: &mut Assembler, acc: Reg) {
    a.inst(I::OpImm {
        kind: OpImmKind::Srai,
        rd: Reg::T0,
        rs1: acc,
        imm: 31,
    });
    a.inst(I::OpImm {
        kind: OpImmKind::Xori,
        rd: Reg::T0,
        rs1: Reg::T0,
        imm: -1,
    });
    a.inst(I::Op {
        kind: OpKind::And,
        rd: acc,
        rs1: acc,
        rs2: Reg::T0,
    });
}

/// Builds a standalone program: read the accumulator from `a0`, apply
/// ReLU (optionally) then requantization, halt with the i8 result in `a0`.
#[must_use]
pub fn requantize_program(p: RequantParams, relu: bool) -> Vec<I> {
    let mut a = Assembler::new();
    if relu {
        emit_relu(&mut a, Reg::A0);
    }
    emit_requantize(&mut a, Reg::A0, p, 0);
    a.inst(I::Ebreak);
    a.assemble().expect("requantize program assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Node, NullPort};

    fn run(p: RequantParams, relu: bool, acc: i32) -> i32 {
        let mut node = Node::new(requantize_program(p, relu), Box::new(NullPort::default()));
        node.set_reg(Reg::A0, acc as u32);
        node.run(10_000).unwrap();
        node.reg(Reg::A0) as i32
    }

    #[test]
    fn half_multiplier_divides_by_two() {
        // m = 0.5 → multiplier 1<<30, shift 0
        let p = RequantParams {
            multiplier: 1 << 30,
            shift: 0,
            zero_point: 0,
        };
        assert_eq!(run(p, false, 100), 50);
        assert_eq!(run(p, false, -100), -50);
        assert_eq!(run(p, false, 101), 51, "rounds to nearest");
    }

    #[test]
    fn clamping_saturates() {
        let p = RequantParams {
            multiplier: 1 << 30,
            shift: 0,
            zero_point: 0,
        };
        assert_eq!(run(p, false, 10_000), 127);
        assert_eq!(run(p, false, -10_000), -128);
    }

    #[test]
    fn relu_zeroes_negatives_before_requant() {
        let p = RequantParams {
            multiplier: 1 << 30,
            shift: 0,
            zero_point: 3,
        };
        assert_eq!(run(p, true, -500), 3);
        assert_eq!(run(p, true, 10), 8);
    }

    #[test]
    fn zero_multiplier_emits_constant() {
        let p = RequantParams {
            multiplier: 0,
            shift: 0,
            zero_point: 5,
        };
        assert_eq!(run(p, false, 123_456), 5);
    }

    #[test]
    fn shift_path_rounds() {
        // m = 0.5 with an explicit shift: multiplier 1<<30, shift 2 → /8
        let p = RequantParams {
            multiplier: 1 << 30,
            shift: 2,
            zero_point: 0,
        };
        assert_eq!(run(p, false, 80), 10);
        assert_eq!(run(p, false, 84), 11, "rounds 10.5 up");
        assert_eq!(run(p, false, -84), -11, "rounds -10.5 away from zero");
    }
}
