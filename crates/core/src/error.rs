use maicc_sram::SramError;
use std::fmt;

/// Errors raised by the node model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The program counter left the instruction memory.
    PcOutOfRange {
        /// The offending PC (instruction index × 4).
        pc: u32,
    },
    /// A data access fell outside every mapped region, or crossed one.
    AccessFault {
        /// The faulting address.
        addr: u32,
        /// What the access tried to do.
        what: &'static str,
    },
    /// The CMem rejected an operation.
    Cmem(SramError),
    /// The core executed `max_steps` instructions without reaching `ebreak`.
    StepLimit {
        /// The limit that was hit.
        max_steps: u64,
    },
    /// `ecall` with an unknown service number in `a7`.
    UnknownEcall {
        /// The service number.
        service: u32,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::PcOutOfRange { pc } => write!(f, "pc {pc:#010x} outside program"),
            CoreError::AccessFault { addr, what } => {
                write!(f, "{what} access fault at {addr:#010x}")
            }
            CoreError::Cmem(e) => write!(f, "cmem: {e}"),
            CoreError::StepLimit { max_steps } => {
                write!(f, "program did not halt within {max_steps} steps")
            }
            CoreError::UnknownEcall { service } => write!(f, "unknown ecall service {service}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Cmem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SramError> for CoreError {
    fn from(e: SramError) -> Self {
        CoreError::Cmem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sram_error_with_source() {
        use std::error::Error;
        let e = CoreError::from(SramError::SliceOutOfRange { slice: 9 });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("cmem"));
    }
}
