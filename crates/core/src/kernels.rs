//! Kernel generators for the single-node convolution workloads of
//! Tables 4 and 5.
//!
//! Two programs compute the same convolution:
//!
//! * [`CmemConvKernel`] — the Algorithm-1 flow: ifmap vectors stream into
//!   slice 0 (`LoadRow.RC`), broadcast to the seven computing slices
//!   (`Move.C`), `MAC.C` against the resident filters, and the scalar core
//!   accumulates partial sums into the ofmap with branch-free masked
//!   updates (margins contribute zero). MACs are emitted **round-robin
//!   across slices** — the manual scheduling §5 describes — so the seven
//!   slices compute in parallel and one iteration costs `7N + QN²` CMem
//!   cycles (§4.1).
//! * [`ScalarConvKernel`] — the RV32IM baseline: a plain six-deep loop nest
//!   of byte loads, `mul` and `add`, the best a lightweight scalar core can
//!   do without the CMem.
//!
//! Both load their data deterministically and both are validated against
//! the golden `maicc-nn` convolution in the crate tests.

use crate::mem_map::RowPtr;
use crate::node::{Node, NullPort};
use crate::sched::schedule_program;
use crate::CoreError;
use maicc_isa::asm::Assembler;
use maicc_isa::inst::{BranchKind, Instruction as I, LoadKind, OpImmKind, OpKind, VecWidth};
use maicc_isa::reg::Reg;
use maicc_sram::transpose;

/// Geometry of a single-node convolution workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvWorkload {
    /// Number of filters `M`.
    pub filters: usize,
    /// Filter height `R`.
    pub r: usize,
    /// Filter width `S`.
    pub s: usize,
    /// Channels `C` (≤ 256).
    pub c: usize,
    /// Ifmap height `H`.
    pub h: usize,
    /// Ifmap width `W`.
    pub w: usize,
}

impl ConvWorkload {
    /// The Table-4 workload: five 3×3×256 filters on a 9×9×256 ifmap.
    #[must_use]
    pub fn table4() -> Self {
        ConvWorkload {
            filters: 5,
            r: 3,
            s: 3,
            c: 256,
            h: 9,
            w: 9,
        }
    }

    /// A small workload for fast functional tests.
    #[must_use]
    pub fn tiny() -> Self {
        ConvWorkload {
            filters: 2,
            r: 3,
            s: 3,
            c: 16,
            h: 5,
            w: 5,
        }
    }

    /// Valid-convolution output height.
    #[must_use]
    pub fn out_h(&self) -> usize {
        self.h - self.r + 1
    }

    /// Valid-convolution output width.
    #[must_use]
    pub fn out_w(&self) -> usize {
        self.w - self.s + 1
    }

    /// Total multiply-accumulates.
    #[must_use]
    pub fn macs(&self) -> u64 {
        (self.out_h() * self.out_w() * self.filters * self.r * self.s * self.c) as u64
    }

    /// Deterministic synthetic ifmap, `[C, H, W]` flat, values in [-5, 5].
    #[must_use]
    pub fn synthetic_ifmap(&self) -> Vec<i8> {
        (0..self.c * self.h * self.w)
            .map(|i| ((i * 7 + 3) % 11) as i8 - 5)
            .collect()
    }

    /// Deterministic synthetic weights, `[M, C, R, S]` flat, values in [-3, 3].
    #[must_use]
    pub fn synthetic_weights(&self) -> Vec<i8> {
        (0..self.filters * self.c * self.r * self.s)
            .map(|i| ((i * 5 + 1) % 7) as i8 - 3)
            .collect()
    }

    /// Golden convolution (valid padding, i32 accumulation), `[M, OH, OW]`.
    #[must_use]
    pub fn golden(&self, ifmap: &[i8], weights: &[i8]) -> Vec<i32> {
        let (oh, ow) = (self.out_h(), self.out_w());
        let mut out = vec![0i32; self.filters * oh * ow];
        for m in 0..self.filters {
            for t in 0..oh {
                for u in 0..ow {
                    let mut acc = 0i32;
                    for ch in 0..self.c {
                        for ky in 0..self.r {
                            for kx in 0..self.s {
                                let iv = ifmap[(ch * self.h + t + ky) * self.w + u + kx] as i32;
                                let wv = weights
                                    [((m * self.c + ch) * self.r + ky) * self.s + kx]
                                    as i32;
                                acc += iv * wv;
                            }
                        }
                    }
                    out[(m * oh + t) * ow + u] = acc;
                }
            }
        }
        out
    }
}

/// Placement of one filter vector in the CMem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterVec {
    /// Filter index.
    pub filter: usize,
    /// Filter-pixel row `ky`.
    pub ky: usize,
    /// Filter-pixel column `kx`.
    pub kx: usize,
    /// Computing slice (1–7).
    pub slice: u8,
    /// First word-line of the vector.
    pub row: u8,
}

/// The CMem convolution kernel (Algorithm 1).
#[derive(Debug, Clone)]
pub struct CmemConvKernel {
    workload: ConvWorkload,
    width: VecWidth,
    placement: Vec<FilterVec>,
    program: Vec<I>,
    ofmap_base: u32,
    guard_elems: u32,
}


impl CmemConvKernel {
    /// Builds the 8-bit kernel for a workload (the evaluation's precision).
    ///
    /// # Errors
    ///
    /// As for [`Self::with_width`].
    pub fn new(workload: ConvWorkload) -> Result<Self, CoreError> {
        Self::with_width(workload, VecWidth::W8)
    }

    /// Builds the kernel at an explicit precision. A slice holds
    /// `Q = 64/n − 1` vectors of `n`-bit elements (§4.1), so lower
    /// precision fits more filters and each `MAC.C` costs `n²` cycles.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::AccessFault`] if the filters exceed the CMem's
    /// `7Q` vector slots, `C > 256`, more than 5 filters (the kernel's
    /// per-filter base registers), or a 2-bit width (too narrow for the
    /// signed synthetic data).
    pub fn with_width(workload: ConvWorkload, width: VecWidth) -> Result<Self, CoreError> {
        let n = width.bits();
        let slots = 7 * (64 / n - 1);
        let vectors = workload.filters * workload.r * workload.s;
        if vectors > slots || workload.c > 256 || workload.filters > 5 || n < 4 {
            return Err(CoreError::AccessFault {
                addr: vectors as u32,
                what: "cmem capacity",
            });
        }
        // round-robin placement: vector v → slice 1 + v%7, slot v/7
        let mut placement = Vec::with_capacity(vectors);
        for v in 0..vectors {
            let filter = v / (workload.r * workload.s);
            let p = v % (workload.r * workload.s);
            placement.push(FilterVec {
                filter,
                ky: p / workload.s,
                kx: p % workload.s,
                slice: 1 + (v % 7) as u8,
                row: (n + n * (v / 7)) as u8,
            });
        }
        // data-memory layout: [guard | ofmap | guard]
        let guard_elems = (workload.r * workload.w + workload.s + 8) as u32;
        let ofmap_base = guard_elems * 4;
        let kernel = CmemConvKernel {
            workload,
            width,
            placement,
            program: Vec::new(),
            ofmap_base,
            guard_elems,
        };
        let program = kernel.emit()?;
        Ok(CmemConvKernel { program, ..kernel })
    }

    /// The workload this kernel computes.
    #[must_use]
    pub fn workload(&self) -> &ConvWorkload {
        &self.workload
    }

    /// The element precision the kernel computes at.
    #[must_use]
    pub fn width(&self) -> VecWidth {
        self.width
    }

    /// Filter-vector placement (for inspecting the layout).
    #[must_use]
    pub fn placement(&self) -> &[FilterVec] {
        &self.placement
    }

    /// The program in Algorithm-1 emission order.
    #[must_use]
    pub fn program(&self) -> &[I] {
        &self.program
    }

    /// The statically scheduled program (§3.3's compile-time reordering).
    #[must_use]
    pub fn scheduled_program(&self) -> Vec<I> {
        schedule_program(&self.program)
    }

    /// Data-memory bytes the kernel needs.
    #[must_use]
    pub fn data_mem_bytes(&self) -> usize {
        let ofmap = self.workload.filters * self.workload.out_h() * self.workload.out_w();
        ((2 * self.guard_elems as usize + ofmap) * 4).max(4096)
    }

    fn emit(&self) -> Result<Vec<I>, CoreError> {
        let w = &self.workload;
        let (oh, ow) = (w.out_h(), w.out_w());
        let mut a = Assembler::new();
        // S0 = x, S1 = y, S2 = ofmap base (bytes), S3 = feeder row pointer,
        // S4 = OW, S5 = W, S6 = H
        a.li32(Reg::S2, self.ofmap_base as i32);
        a.li32(
            Reg::S3,
            RowPtr::Dram { offset: 0 }.pack() as i32,
        );
        a.inst(I::li(Reg::S4, ow as i32));
        a.inst(I::li(Reg::S5, w.w as i32));
        a.inst(I::li(Reg::S6, w.h as i32));
        a.inst(I::li(Reg::S1, 0));
        a.label("y_loop");
        a.inst(I::li(Reg::S0, 0));
        a.label("x_loop");
        // receive the transposed ifmap vector: n rows into slice 0
        for row in 0..self.width.bits() as u8 {
            a.inst(I::LoadRowRC {
                rs1: Reg::S3,
                slice: 0,
                row,
            });
            a.inst(I::addi(Reg::S3, Reg::S3, 32));
        }
        // broadcast to the computing slices that hold filters
        let used: Vec<u8> = {
            let mut s: Vec<u8> = self.placement.iter().map(|p| p.slice).collect();
            s.sort_unstable();
            s.dedup();
            s
        };
        for &slice in &used {
            a.inst(I::MoveC {
                src_slice: 0,
                src_row: 0,
                dst_slice: slice,
                dst_row: 0,
                width: self.width,
            });
        }
        // per-iteration ofmap base pointers: Bf = base + 4*(f*OH*OW + y*OW + x)
        // held in A1..A5 (one per filter, hence the 5-filter kernel limit)
        let bregs = [Reg::A1, Reg::A2, Reg::A3, Reg::A4, Reg::A5];
        a.inst(I::Op {
            kind: OpKind::Mul,
            rd: Reg::T0,
            rs1: Reg::S1,
            rs2: Reg::S4,
        });
        a.inst(I::add(Reg::T0, Reg::T0, Reg::S0));
        a.inst(I::OpImm {
            kind: OpImmKind::Slli,
            rd: Reg::T0,
            rs1: Reg::T0,
            imm: 2,
        });
        a.inst(I::add(bregs[0], Reg::T0, Reg::S2));
        let foff = (4 * oh * ow) as i32;
        for f in 1..w.filters {
            if foff < 2048 {
                a.inst(I::addi(bregs[f], bregs[f - 1], foff));
            } else {
                a.li32(Reg::T0, foff);
                a.inst(I::add(bregs[f], bregs[f - 1], Reg::T0));
            }
        }
        // MACs in placement order (round-robin across slices), software
        // pipelined DEPTH deep: each MAC's masked accumulation runs while
        // later MACs occupy the slices — Algorithm 1's "process the ofmap
        // pixels completed in the previous iteration" within one iteration.
        // Results rotate through five registers so accumulates of older
        // MACs never serialize younger ones.
        const DEPTH: usize = 3;
        let rot = [Reg::A0, Reg::A7, Reg::S7, Reg::S8, Reg::S9];
        let emit_acc = |a: &mut Assembler, v: usize, fv: &FilterVec| {
            // valid iff 0 <= y-ky < OH and 0 <= x-kx < OW (unsigned trick)
            a.inst(I::addi(Reg::T1, Reg::S1, -(fv.ky as i32)));
            a.inst(I::OpImm {
                kind: OpImmKind::Sltiu,
                rd: Reg::T3,
                rs1: Reg::T1,
                imm: oh as i32,
            });
            a.inst(I::addi(Reg::T2, Reg::S0, -(fv.kx as i32)));
            a.inst(I::OpImm {
                kind: OpImmKind::Sltiu,
                rd: Reg::T4,
                rs1: Reg::T2,
                imm: ow as i32,
            });
            a.inst(I::Op {
                kind: OpKind::And,
                rd: Reg::T3,
                rs1: Reg::T3,
                rs2: Reg::T4,
            });
            // masked partial sum: margins contribute zero into the guard zone
            a.inst(I::Op {
                kind: OpKind::Mul,
                rd: Reg::T6,
                rs1: rot[v % rot.len()],
                rs2: Reg::T3,
            });
            let imm = -((fv.ky * ow + fv.kx) as i32) * 4;
            debug_assert!(imm > -2048, "window offset exceeds the lw immediate");
            a.inst(I::lw(Reg::T5, bregs[fv.filter], imm));
            a.inst(I::add(Reg::T5, Reg::T5, Reg::T6));
            a.inst(I::sw(Reg::T5, bregs[fv.filter], imm));
        };
        for (v, fv) in self.placement.iter().enumerate() {
            a.inst(I::MacC {
                rd: rot[v % rot.len()],
                slice: fv.slice,
                row_a: 0,
                row_b: fv.row,
                width: self.width,
            });
            if v >= DEPTH {
                emit_acc(&mut a, v - DEPTH, &self.placement[v - DEPTH]);
            }
        }
        let n = self.placement.len();
        for v in n.saturating_sub(DEPTH)..n {
            emit_acc(&mut a, v, &self.placement[v]);
        }
        // advance the pixel loops
        a.inst(I::addi(Reg::S0, Reg::S0, 1));
        a.branch(BranchKind::Bge, Reg::S0, Reg::S5, "x_done");
        a.jump("x_loop");
        a.label("x_done");
        a.inst(I::addi(Reg::S1, Reg::S1, 1));
        a.branch(BranchKind::Bge, Reg::S1, Reg::S6, "y_done");
        a.jump("y_loop");
        a.label("y_done");
        a.inst(I::Ebreak);
        a.assemble().map_err(|_| CoreError::AccessFault {
            addr: 0,
            what: "assemble",
        })
    }

    /// Prepares a node: loads filter vectors (transposed, two's complement)
    /// into the computing slices and builds the feeder port holding every
    /// transposed ifmap vector in pixel order.
    ///
    /// # Errors
    ///
    /// Propagates CMem range errors.
    pub fn prepare(
        &self,
        ifmap: &[i8],
        weights: &[i8],
        port_latency: u32,
    ) -> Result<Node, CoreError> {
        let w = &self.workload;
        assert_eq!(ifmap.len(), w.c * w.h * w.w, "ifmap size mismatch");
        assert_eq!(
            weights.len(),
            w.filters * w.c * w.r * w.s,
            "weights size mismatch"
        );
        let n = self.width.bits();
        let mask = if n >= 16 { 0xFFFF } else { (1u16 << n) - 1 };
        let mut port = NullPort::with_latency(port_latency);
        // feeder rows: pixel (y, x) → n transposed rows at offset 32·n·p
        for y in 0..w.h {
            for x in 0..w.w {
                let p = y * w.w + x;
                let vec: Vec<u16> = (0..256)
                    .map(|ch| {
                        if ch < w.c {
                            (ifmap[(ch * w.h + y) * w.w + x] as i16 as u16) & mask
                        } else {
                            0
                        }
                    })
                    .collect();
                for (i, plane) in transpose::pack_words(&vec, n, 256).into_iter().enumerate() {
                    port.preload_row(
                        RowPtr::Dram {
                            offset: (p * n * 32 + i * 32) as u32,
                        },
                        plane,
                    );
                }
            }
        }
        let program = self.program.clone();
        let mut node = Node::with_data_mem(program, Box::new(port), self.data_mem_bytes());
        self.load_filters(&mut node, weights)?;
        Ok(node)
    }

    /// Loads the filter vectors into a node's CMem.
    ///
    /// # Errors
    ///
    /// Propagates CMem range errors.
    pub fn load_filters(&self, node: &mut Node, weights: &[i8]) -> Result<(), CoreError> {
        let w = &self.workload;
        let n = self.width.bits();
        let mask = if n >= 16 { 0xFFFF } else { (1u16 << n) - 1 };
        for fv in &self.placement {
            let vec: Vec<u16> = (0..256)
                .map(|ch| {
                    if ch < w.c {
                        (weights[((fv.filter * w.c + ch) * w.r + fv.ky) * w.s + fv.kx] as i16
                            as u16)
                            & mask
                    } else {
                        0
                    }
                })
                .collect();
            node.cmem_mut()
                .slice_mut(fv.slice as usize)?
                .write_vector(fv.row as usize, &vec, n)?;
        }
        Ok(())
    }

    /// Rebuilds this kernel with a different (semantically equivalent)
    /// program, e.g. the statically scheduled one.
    #[must_use]
    pub fn with_program(&self, program: Vec<I>) -> CmemConvKernel {
        CmemConvKernel {
            program,
            ..self.clone()
        }
    }

    /// Reads the accumulated ofmap (`[M, OH, OW]` as i32) from a halted node.
    ///
    /// # Errors
    ///
    /// Propagates local-memory range errors.
    pub fn read_ofmap(&self, node: &Node) -> Result<Vec<i32>, CoreError> {
        let w = &self.workload;
        let n = w.filters * w.out_h() * w.out_w();
        (0..n)
            .map(|i| {
                node.read_local(self.ofmap_base + (i * 4) as u32, 4)
                    .map(|v| v as i32)
            })
            .collect()
    }
}

/// The scalar RV32IM baseline kernel.
#[derive(Debug, Clone)]
pub struct ScalarConvKernel {
    workload: ConvWorkload,
    program: Vec<I>,
    ifmap_base: u32,
    weights_base: u32,
    ofmap_base: u32,
    mem_bytes: usize,
}

impl ScalarConvKernel {
    /// Builds the scalar kernel. The baseline node maps its whole SRAM as
    /// plain data memory (it has no CMem), so ifmap, weights and ofmap all
    /// live locally.
    #[must_use]
    pub fn new(workload: ConvWorkload) -> Self {
        let ifmap_bytes = workload.c * workload.h * workload.w;
        let weight_bytes = workload.filters * workload.c * workload.r * workload.s;
        let ofmap_bytes = workload.filters * workload.out_h() * workload.out_w() * 4;
        let ifmap_base = 0u32;
        let weights_base = ifmap_bytes as u32;
        let ofmap_base = (ifmap_bytes + weight_bytes).next_multiple_of(4) as u32;
        let mem_bytes = (ofmap_base as usize + ofmap_bytes).next_multiple_of(4096);
        let mut k = ScalarConvKernel {
            workload,
            program: Vec::new(),
            ifmap_base,
            weights_base,
            ofmap_base,
            mem_bytes,
        };
        k.program = k.emit();
        k
    }

    /// The generated program.
    #[must_use]
    pub fn program(&self) -> &[I] {
        &self.program
    }

    /// Bytes of data memory the baseline node maps.
    #[must_use]
    pub fn mem_bytes(&self) -> usize {
        self.mem_bytes
    }

    fn emit(&self) -> Vec<I> {
        let w = &self.workload;
        let (oh, ow) = (w.out_h(), w.out_w());
        let mut a = Assembler::new();
        // S0=m S1=oy S2=ox S3=acc S4=ky S5=kx S6=c counter
        // A0=ifmap ptr A1=weight ptr A2=ofmap ptr T*=temps
        a.li32(Reg::A2, self.ofmap_base as i32);
        a.inst(I::li(Reg::S0, 0));
        a.label("m_loop");
        a.inst(I::li(Reg::S1, 0));
        a.label("oy_loop");
        a.inst(I::li(Reg::S2, 0));
        a.label("ox_loop");
        a.inst(I::li(Reg::S3, 0)); // acc = 0
        a.inst(I::li(Reg::S4, 0));
        a.label("ky_loop");
        a.inst(I::li(Reg::S5, 0));
        a.label("kx_loop");
        // ifmap ptr = base + ((oy+ky)*W + ox+kx)   (channel 0)
        a.inst(I::add(Reg::T0, Reg::S1, Reg::S4));
        a.inst(I::li(Reg::T1, w.w as i32));
        a.inst(I::Op {
            kind: OpKind::Mul,
            rd: Reg::T0,
            rs1: Reg::T0,
            rs2: Reg::T1,
        });
        a.inst(I::add(Reg::T0, Reg::T0, Reg::S2));
        a.inst(I::add(Reg::T0, Reg::T0, Reg::S5));
        a.li32(Reg::T1, self.ifmap_base as i32);
        a.inst(I::add(Reg::A0, Reg::T0, Reg::T1));
        // weight ptr = base + ((m*C)*R + ky)*S + kx   (channel 0)
        a.inst(I::li(Reg::T1, (w.c * w.r * w.s) as i32));
        a.inst(I::Op {
            kind: OpKind::Mul,
            rd: Reg::T0,
            rs1: Reg::S0,
            rs2: Reg::T1,
        });
        a.inst(I::li(Reg::T1, w.s as i32));
        a.inst(I::Op {
            kind: OpKind::Mul,
            rd: Reg::T2,
            rs1: Reg::S4,
            rs2: Reg::T1,
        });
        a.inst(I::add(Reg::T0, Reg::T0, Reg::T2));
        a.inst(I::add(Reg::T0, Reg::T0, Reg::S5));
        a.li32(Reg::T1, self.weights_base as i32);
        a.inst(I::add(Reg::A1, Reg::T0, Reg::T1));
        // channel loop: acc += ifmap[c] * weight[c]
        a.inst(I::li(Reg::S6, w.c as i32));
        a.label("c_loop");
        a.inst(I::Load {
            kind: LoadKind::Lb,
            rd: Reg::T0,
            rs1: Reg::A0,
            offset: 0,
        });
        a.inst(I::Load {
            kind: LoadKind::Lb,
            rd: Reg::T1,
            rs1: Reg::A1,
            offset: 0,
        });
        a.inst(I::Op {
            kind: OpKind::Mul,
            rd: Reg::T2,
            rs1: Reg::T0,
            rs2: Reg::T1,
        });
        a.inst(I::add(Reg::S3, Reg::S3, Reg::T2));
        a.inst(I::addi(Reg::A0, Reg::A0, (w.h * w.w) as i32));
        a.inst(I::addi(Reg::A1, Reg::A1, (w.r * w.s) as i32));
        a.inst(I::addi(Reg::S6, Reg::S6, -1));
        a.branch(BranchKind::Bne, Reg::S6, Reg::Zero, "c_loop");
        // kx / ky advance
        a.inst(I::addi(Reg::S5, Reg::S5, 1));
        a.inst(I::li(Reg::T0, w.s as i32));
        a.branch(BranchKind::Blt, Reg::S5, Reg::T0, "kx_loop");
        a.inst(I::addi(Reg::S4, Reg::S4, 1));
        a.inst(I::li(Reg::T0, w.r as i32));
        a.branch(BranchKind::Blt, Reg::S4, Reg::T0, "ky_loop");
        // store ofmap[m][oy][ox]
        a.inst(I::sw(Reg::S3, Reg::A2, 0));
        a.inst(I::addi(Reg::A2, Reg::A2, 4));
        // ox / oy / m advance
        a.inst(I::addi(Reg::S2, Reg::S2, 1));
        a.inst(I::li(Reg::T0, ow as i32));
        a.branch(BranchKind::Blt, Reg::S2, Reg::T0, "ox_loop");
        a.inst(I::addi(Reg::S1, Reg::S1, 1));
        a.inst(I::li(Reg::T0, oh as i32));
        a.branch(BranchKind::Blt, Reg::S1, Reg::T0, "oy_loop");
        a.inst(I::addi(Reg::S0, Reg::S0, 1));
        a.inst(I::li(Reg::T0, w.filters as i32));
        a.branch(BranchKind::Blt, Reg::S0, Reg::T0, "m_loop");
        a.inst(I::Ebreak);
        a.assemble().expect("scalar kernel assembles")
    }

    /// Creates the baseline node with ifmap and weights resident in its
    /// (enlarged) local memory.
    ///
    /// # Errors
    ///
    /// Propagates local-memory write errors.
    pub fn prepare(&self, ifmap: &[i8], weights: &[i8]) -> Result<Node, CoreError> {
        let mut node = Node::with_data_mem(
            self.program.clone(),
            Box::new(NullPort::default()),
            self.mem_bytes,
        );
        for (i, &b) in ifmap.iter().enumerate() {
            node.write_local(self.ifmap_base + i as u32, b as u8 as u32, 1)?;
        }
        for (i, &b) in weights.iter().enumerate() {
            node.write_local(self.weights_base + i as u32, b as u8 as u32, 1)?;
        }
        Ok(node)
    }

    /// Reads the ofmap back from a halted node.
    ///
    /// # Errors
    ///
    /// Propagates local-memory range errors.
    pub fn read_ofmap(&self, node: &Node) -> Result<Vec<i32>, CoreError> {
        let w = &self.workload;
        let n = w.filters * w.out_h() * w.out_w();
        (0..n)
            .map(|i| {
                node.read_local(self.ofmap_base + (i * 4) as u32, 4)
                    .map(|v| v as i32)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{PipelineConfig, Timing};

    #[test]
    fn cmem_kernel_matches_golden_conv() {
        let wl = ConvWorkload::tiny();
        let kernel = CmemConvKernel::new(wl).unwrap();
        let ifmap = wl.synthetic_ifmap();
        let weights = wl.synthetic_weights();
        let mut node = kernel.prepare(&ifmap, &weights, 4).unwrap();
        node.run(10_000_000).unwrap();
        assert_eq!(
            kernel.read_ofmap(&node).unwrap(),
            wl.golden(&ifmap, &weights)
        );
    }

    #[test]
    fn scheduled_program_same_results() {
        let wl = ConvWorkload::tiny();
        let kernel = CmemConvKernel::new(wl).unwrap();
        let ifmap = wl.synthetic_ifmap();
        let weights = wl.synthetic_weights();

        let mut base = kernel.prepare(&ifmap, &weights, 4).unwrap();
        base.run(10_000_000).unwrap();

        let mut alt = CmemConvKernel::new(wl).unwrap();
        alt.program = kernel.scheduled_program();
        let mut node = alt.prepare(&ifmap, &weights, 4).unwrap();
        node.run(10_000_000).unwrap();

        assert_eq!(
            kernel.read_ofmap(&base).unwrap(),
            alt.read_ofmap(&node).unwrap()
        );
    }

    #[test]
    fn scheduled_program_is_faster() {
        let wl = ConvWorkload::tiny();
        let kernel = CmemConvKernel::new(wl).unwrap();
        let ifmap = wl.synthetic_ifmap();
        let weights = wl.synthetic_weights();

        let time = |prog: Vec<I>| {
            let mut alt = CmemConvKernel::new(wl).unwrap();
            alt.program = prog;
            let mut node = alt.prepare(&ifmap, &weights, 4).unwrap();
            let mut t = Timing::new(PipelineConfig::default());
            node.run_with(10_000_000, |e| t.on_retire(e)).unwrap();
            t.finish().total_cycles
        };
        let naive = time(kernel.program().to_vec());
        let sched = time(kernel.scheduled_program());
        assert!(sched < naive, "scheduled {sched} >= naive {naive}");
    }

    #[test]
    fn scalar_kernel_matches_golden_conv() {
        let wl = ConvWorkload::tiny();
        let kernel = ScalarConvKernel::new(wl);
        let ifmap = wl.synthetic_ifmap();
        let weights = wl.synthetic_weights();
        let mut node = kernel.prepare(&ifmap, &weights).unwrap();
        node.run(50_000_000).unwrap();
        assert_eq!(
            kernel.read_ofmap(&node).unwrap(),
            wl.golden(&ifmap, &weights)
        );
    }

    #[test]
    fn scalar_is_much_slower_than_cmem() {
        // the CMem advantage needs full 256-wide vectors; a narrow channel
        // count wastes most of each MAC's bit-lines
        let wl = ConvWorkload {
            filters: 2,
            r: 3,
            s: 3,
            c: 256,
            h: 5,
            w: 5,
        };
        let ifmap = wl.synthetic_ifmap();
        let weights = wl.synthetic_weights();

        let ck = CmemConvKernel::new(wl).unwrap();
        let mut cn = ck.prepare(&ifmap, &weights, 4).unwrap();
        let mut ct = Timing::new(PipelineConfig::default());
        cn.run_with(10_000_000, |e| ct.on_retire(e)).unwrap();
        let cmem_cycles = ct.finish().total_cycles;

        let sk = ScalarConvKernel::new(wl);
        let mut sn = sk.prepare(&ifmap, &weights).unwrap();
        let mut st = Timing::new(PipelineConfig::default());
        sn.run_with(50_000_000, |e| st.on_retire(e)).unwrap();
        let scalar_cycles = st.finish().total_cycles;

        assert!(
            scalar_cycles > 3 * cmem_cycles,
            "scalar {scalar_cycles} vs cmem {cmem_cycles}"
        );
    }

    #[test]
    fn table4_capacity_is_exactly_45_vectors() {
        let k = CmemConvKernel::new(ConvWorkload::table4()).unwrap();
        assert_eq!(k.placement().len(), 45);
        // five filters of nine vectors, spread over slices 1..=7
        let max_row = k.placement().iter().map(|p| p.row).max().unwrap();
        assert!(max_row + 8 <= 64, "placement fits the 64-row slices");
    }

    #[test]
    fn four_bit_kernel_matches_golden() {
        // lower precision: Q = 15 slots per slice, MAC.C in 16 cycles
        let wl = ConvWorkload::tiny();
        let kernel = CmemConvKernel::with_width(wl, VecWidth::W4).unwrap();
        let ifmap = wl.synthetic_ifmap(); // values in [-5, 5] fit 4 bits
        let weights = wl.synthetic_weights(); // [-3, 3]
        let mut node = kernel.prepare(&ifmap, &weights, 4).unwrap();
        node.run(10_000_000).unwrap();
        assert_eq!(
            kernel.read_ofmap(&node).unwrap(),
            wl.golden(&ifmap, &weights)
        );
    }

    #[test]
    fn sixteen_bit_kernel_matches_golden() {
        // higher precision: Q = 3 slots per slice, MAC.C in 256 cycles
        let wl = ConvWorkload::tiny(); // 18 vectors ≤ 21 slots
        let kernel = CmemConvKernel::with_width(wl, VecWidth::W16).unwrap();
        let ifmap = wl.synthetic_ifmap();
        let weights = wl.synthetic_weights();
        let mut node = kernel.prepare(&ifmap, &weights, 4).unwrap();
        node.run(20_000_000).unwrap();
        assert_eq!(
            kernel.read_ofmap(&node).unwrap(),
            wl.golden(&ifmap, &weights)
        );
    }

    #[test]
    fn lower_precision_is_faster() {
        use crate::pipeline::{PipelineConfig, Timing};
        let wl = ConvWorkload::tiny();
        let ifmap = wl.synthetic_ifmap();
        let weights = wl.synthetic_weights();
        let time = |width| {
            let kernel = CmemConvKernel::with_width(wl, width).unwrap();
            let sched = kernel.with_program(kernel.scheduled_program());
            let mut node = sched.prepare(&ifmap, &weights, 4).unwrap();
            let mut t = Timing::new(PipelineConfig::default());
            node.run_with(20_000_000, |e| t.on_retire(e)).unwrap();
            t.finish().total_cycles
        };
        let w4 = time(VecWidth::W4);
        let w8 = time(VecWidth::W8);
        let w16 = time(VecWidth::W16);
        assert!(w4 < w8, "4-bit {w4} vs 8-bit {w8}");
        assert!(w8 < w16, "8-bit {w8} vs 16-bit {w16}");
    }

    #[test]
    fn two_bit_width_rejected() {
        assert!(CmemConvKernel::with_width(ConvWorkload::tiny(), VecWidth::W2).is_err());
    }

    #[test]
    fn sixteen_bit_capacity_is_tighter() {
        // table4's 45 vectors exceed the 21 sixteen-bit slots
        assert!(CmemConvKernel::with_width(ConvWorkload::table4(), VecWidth::W16).is_err());
        assert!(CmemConvKernel::with_width(ConvWorkload::table4(), VecWidth::W8).is_ok());
    }

    #[test]
    fn oversized_workload_rejected() {
        let too_big = ConvWorkload {
            filters: 6,
            ..ConvWorkload::table4()
        };
        assert!(CmemConvKernel::new(too_big).is_err());
    }

    #[test]
    fn workload_macs_formula() {
        let wl = ConvWorkload::table4();
        assert_eq!(wl.macs(), 7 * 7 * 5 * 3 * 3 * 256);
        assert_eq!(wl.out_h(), 7);
    }
}

#[cfg(test)]
mod table4_smoke {
    use super::*;
    use crate::pipeline::{PipelineConfig, Timing};

    /// Full Table-4 workload; run with `--release -- --ignored` (slow in debug).
    #[test]
    #[ignore = "release-mode smoke run for Table 4/5 calibration"]
    fn table4_cycle_bands() {
        let wl = ConvWorkload::table4();
        let ifmap = wl.synthetic_ifmap();
        let weights = wl.synthetic_weights();
        let kernel = CmemConvKernel::new(wl).unwrap();

        let time = |prog: Vec<I>, cfg: PipelineConfig| {
            let alt = kernel.with_program(prog);
            let mut node = alt.prepare(&ifmap, &weights, 4).unwrap();
            let mut t = Timing::new(cfg);
            node.run_with(100_000_000, |e| t.on_retire(e)).unwrap();
            let out = alt.read_ofmap(&node).unwrap();
            assert_eq!(out, wl.golden(&ifmap, &weights), "functional mismatch");
            t.finish()
        };
        for (q, p) in [(0usize, 1usize), (1, 1), (2, 1), (4, 1), (1, 2), (2, 2), (4, 2)] {
            let cfg = PipelineConfig { cmem_queue: q, wb_ports: p, ..PipelineConfig::default() };
            let naive = time(kernel.program().to_vec(), cfg);
            let sched = time(kernel.scheduled_program(), cfg);
            eprintln!("q={q} wb={p}: naive={} sched={}", naive.total_cycles, sched.total_cycles);
        }
    }
}

#[cfg(test)]
mod table4_scalar_smoke {
    use super::*;
    use crate::pipeline::{PipelineConfig, Timing};

    #[test]
    #[ignore = "release-mode smoke run for the Table-4 scalar baseline"]
    fn table4_scalar_cycles() {
        let wl = ConvWorkload::table4();
        let k = ScalarConvKernel::new(wl);
        let mut node = k.prepare(&wl.synthetic_ifmap(), &wl.synthetic_weights()).unwrap();
        let mut t = Timing::new(PipelineConfig::default());
        node.run_with(200_000_000, |e| t.on_retire(e)).unwrap();
        let r = t.finish();
        assert_eq!(k.read_ofmap(&node).unwrap(), wl.golden(&wl.synthetic_ifmap(), &wl.synthetic_weights()));
        eprintln!("scalar table4: cycles={} instret={}", r.total_cycles, r.instructions);
        let nc = maicc_sram::neural_cache::NcConvCost::evaluate(5, 3, 3, 256, 9, 9, 8, 5);
        eprintln!("neural cache table4: {} (mul={} accum={} reduce={} load={}) reduction_share={:.3}",
            nc.total(), nc.mul_cycles, nc.accum_cycles, nc.reduce_cycles, nc.load_cycles, nc.reduction_share());
    }
}

/// A fully connected (matrix-vector) kernel on one node — the FC operator
/// of §2.1 executed the CMem way: up to 49 output neurons' weight rows sit
/// transposed in the computing slices, the input vector is broadcast once,
/// and each neuron costs a single `MAC.C`.
#[derive(Debug, Clone)]
pub struct LinearKernel {
    in_features: usize,
    out_features: usize,
    program: Vec<I>,
    /// (slice, row) of each output neuron's weight vector.
    placement: Vec<(u8, u8)>,
    out_base: u32,
}

impl LinearKernel {
    /// Builds the kernel for `out_features ≤ 49` neurons of
    /// `in_features ≤ 256` inputs at 8-bit precision.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::AccessFault`] when the layer exceeds one node's
    /// CMem (larger layers shard across nodes — see `maicc-exec`).
    pub fn new(in_features: usize, out_features: usize) -> Result<Self, CoreError> {
        if in_features > 256 || out_features > 49 {
            return Err(CoreError::AccessFault {
                addr: out_features as u32,
                what: "linear capacity",
            });
        }
        let placement: Vec<(u8, u8)> = (0..out_features)
            .map(|v| (1 + (v % 7) as u8, (8 + 8 * (v / 7)) as u8))
            .collect();
        let mut k = LinearKernel {
            in_features,
            out_features,
            program: Vec::new(),
            placement,
            out_base: 0,
        };
        k.program = k.emit();
        Ok(k)
    }

    /// The generated program.
    #[must_use]
    pub fn program(&self) -> &[I] {
        &self.program
    }

    /// The statically scheduled program.
    #[must_use]
    pub fn scheduled_program(&self) -> Vec<I> {
        schedule_program(&self.program)
    }

    fn emit(&self) -> Vec<I> {
        let mut a = Assembler::new();
        // receive the transposed input vector (8 rows) from the feeder
        a.li32(Reg::S3, RowPtr::Dram { offset: 0 }.pack() as i32);
        for row in 0..8u8 {
            a.inst(I::LoadRowRC {
                rs1: Reg::S3,
                slice: 0,
                row,
            });
            a.inst(I::addi(Reg::S3, Reg::S3, 32));
        }
        let used: Vec<u8> = {
            let mut s: Vec<u8> = self.placement.iter().map(|&(s, _)| s).collect();
            s.sort_unstable();
            s.dedup();
            s
        };
        for &slice in &used {
            a.inst(I::MoveC {
                src_slice: 0,
                src_row: 0,
                dst_slice: slice,
                dst_row: 0,
                width: VecWidth::W8,
            });
        }
        // one MAC per neuron, 4-deep software pipelined stores
        let rot = [Reg::A0, Reg::A7, Reg::S7, Reg::S8, Reg::S9];
        a.li32(Reg::S2, self.out_base as i32);
        let store = |a: &mut Assembler, v: usize| {
            a.inst(I::sw(rot[v % rot.len()], Reg::S2, (v * 4) as i32));
        };
        const DEPTH: usize = 4;
        for (v, &(slice, row)) in self.placement.iter().enumerate() {
            a.inst(I::MacC {
                rd: rot[v % rot.len()],
                slice,
                row_a: 0,
                row_b: row,
                width: VecWidth::W8,
            });
            if v >= DEPTH {
                store(&mut a, v - DEPTH);
            }
        }
        let n = self.placement.len();
        for v in n.saturating_sub(DEPTH)..n {
            store(&mut a, v);
        }
        a.inst(I::Ebreak);
        a.assemble().expect("linear kernel assembles")
    }

    /// Creates a node with the weight matrix (`[out, in]`, i8) resident and
    /// the input vector waiting at the feeder.
    ///
    /// # Errors
    ///
    /// Propagates CMem range errors.
    pub fn prepare(&self, input: &[i8], weights: &[i8]) -> Result<Node, CoreError> {
        assert_eq!(input.len(), self.in_features, "input length");
        assert_eq!(
            weights.len(),
            self.in_features * self.out_features,
            "weight shape"
        );
        let mut port = NullPort::with_latency(4);
        let vec: Vec<u16> = (0..256)
            .map(|i| {
                if i < self.in_features {
                    input[i] as u8 as u16
                } else {
                    0
                }
            })
            .collect();
        for (i, plane) in transpose::pack_words(&vec, 8, 256).into_iter().enumerate() {
            port.preload_row(
                RowPtr::Dram {
                    offset: (i * 32) as u32,
                },
                plane,
            );
        }
        let mut node = Node::new(self.program.clone(), Box::new(port));
        for (v, &(slice, row)) in self.placement.iter().enumerate() {
            let wrow: Vec<i8> = (0..256)
                .map(|i| {
                    if i < self.in_features {
                        weights[v * self.in_features + i]
                    } else {
                        0
                    }
                })
                .collect();
            node.cmem_mut().write_vector_i8(slice as usize, row as usize, &wrow)?;
        }
        Ok(node)
    }

    /// Reads the i32 output vector from a halted node.
    ///
    /// # Errors
    ///
    /// Propagates local-memory range errors.
    pub fn read_output(&self, node: &Node) -> Result<Vec<i32>, CoreError> {
        (0..self.out_features)
            .map(|v| {
                node.read_local(self.out_base + (v * 4) as u32, 4)
                    .map(|x| x as i32)
            })
            .collect()
    }
}

#[cfg(test)]
mod linear_tests {
    use super::*;
    use crate::pipeline::{PipelineConfig, Timing};

    fn golden(input: &[i8], weights: &[i8], out: usize) -> Vec<i32> {
        let k = input.len();
        (0..out)
            .map(|v| {
                input
                    .iter()
                    .zip(&weights[v * k..(v + 1) * k])
                    .map(|(&x, &w)| x as i32 * w as i32)
                    .sum()
            })
            .collect()
    }

    #[test]
    fn matrix_vector_matches_golden() {
        let (inf, outf) = (200, 30);
        let input: Vec<i8> = (0..inf).map(|i| ((i * 7) % 15) as i8 - 7).collect();
        let weights: Vec<i8> = (0..inf * outf).map(|i| ((i * 3) % 11) as i8 - 5).collect();
        let k = LinearKernel::new(inf, outf).unwrap();
        let mut node = k.prepare(&input, &weights).unwrap();
        node.run(1_000_000).unwrap();
        assert_eq!(k.read_output(&node).unwrap(), golden(&input, &weights, outf));
    }

    #[test]
    fn full_49_neuron_node() {
        let (inf, outf) = (256, 49);
        let input: Vec<i8> = (0..inf).map(|i| (i % 13) as i8 - 6).collect();
        let weights: Vec<i8> = (0..inf * outf).map(|i| ((i * 5) % 9) as i8 - 4).collect();
        let k = LinearKernel::new(inf, outf).unwrap();
        let mut node = k.prepare(&input, &weights).unwrap();
        node.run(1_000_000).unwrap();
        assert_eq!(k.read_output(&node).unwrap(), golden(&input, &weights, outf));
    }

    #[test]
    fn scheduled_is_no_slower_and_identical() {
        let (inf, outf) = (128, 21);
        let input: Vec<i8> = (0..inf).map(|i| (i % 9) as i8 - 4).collect();
        let weights: Vec<i8> = (0..inf * outf).map(|i| ((i * 11) % 7) as i8 - 3).collect();
        let kern = LinearKernel::new(inf, outf).unwrap();

        let time = |prog: Vec<I>| {
            let mut k2 = kern.clone();
            k2.program = prog;
            let mut node = k2.prepare(&input, &weights).unwrap();
            let mut t = Timing::new(PipelineConfig::default());
            node.run_with(1_000_000, |e| t.on_retire(e)).unwrap();
            (k2.read_output(&node).unwrap(), t.finish().total_cycles)
        };
        let (o1, c1) = time(kern.program().to_vec());
        let (o2, c2) = time(kern.scheduled_program());
        assert_eq!(o1, o2);
        assert!(c2 <= c1, "{c2} vs {c1}");
        // seven slices of 64-cycle MACs, 7 rounds → the floor is ~450 cycles
        assert!(c2 < 1200, "linear kernel took {c2}");
    }

    #[test]
    fn capacity_limits_enforced() {
        assert!(LinearKernel::new(257, 10).is_err());
        assert!(LinearKernel::new(256, 50).is_err());
        assert!(LinearKernel::new(256, 49).is_ok());
    }
}
