#![warn(missing_docs)]

//! # maicc-core — the MAICC node: RV32IMA core tightly coupled with CMem
//!
//! This crate models one node of the many-core array (Figure 3(b)): a
//! lightweight five-stage RISC-V pipeline with in-order issue and
//! out-of-order completion, whose 16 KB data scratchpad is the computing
//! memory of `maicc-sram`.
//!
//! The model is split in two cooperating halves:
//!
//! * **Functional** ([`node`]) — a bit-exact RV32IMA interpreter over the
//!   Table-1 address map ([`mem_map`]), including the CMem extension
//!   semantics (every `MAC.C` really activates word-line pairs and pops
//!   the adder tree). Execution produces a retired-instruction
//!   [`node::Trace`].
//! * **Timing** ([`pipeline`]) — a cycle-accurate replay of a trace through
//!   the scoreboarded pipeline: multi-cycle units, the CMem FIFO issue
//!   queue (§3.3), one or two register-file write ports, and branch-flush
//!   penalties. Table 5's knobs are [`pipeline::PipelineConfig`] fields.
//!
//! [`sched`] implements the compile-time instruction reordering the paper
//! calls *static scheduling*; [`kernels`] generates the Algorithm-1
//! convolution programs (CMem version and the scalar baseline) that Tables
//! 4 and 5 measure, plus the single-node FC kernel; [`aux_codegen`] emits
//! the auxiliary functions (ReLU, integer-only requantization) as RV32IM
//! code for the scalar half of a mixed layer.
//!
//! ## Example — run a program functionally and time it
//!
//! ```
//! use maicc_core::node::{Node, NullPort};
//! use maicc_core::pipeline::{PipelineConfig, Timing};
//! use maicc_isa::asm::Assembler;
//! use maicc_isa::inst::Instruction;
//! use maicc_isa::reg::Reg;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Assembler::new();
//! a.inst(Instruction::li(Reg::A0, 21));
//! a.inst(Instruction::add(Reg::A0, Reg::A0, Reg::A0));
//! a.inst(Instruction::Ebreak);
//! let program = a.assemble()?;
//!
//! let mut node = Node::new(program, Box::new(NullPort::default()));
//! let trace = node.run(1_000)?;
//! assert_eq!(node.reg(Reg::A0), 42);
//!
//! let cycles = Timing::new(PipelineConfig::default()).replay(&trace).total_cycles;
//! assert!(cycles >= 3);
//! # Ok(())
//! # }
//! ```

pub mod aux_codegen;
pub mod kernels;
pub mod mem_map;
pub mod node;
pub mod pipeline;
pub mod sched;

mod error;

pub use error::CoreError;
