//! The partitioned global address space of Table 1.
//!
//! Every core sees the same virtual map:
//!
//! | range | size | contents |
//! |---|---|---|
//! | `0x0000_0000 – 0x0000_0FFF` | 4 KB | local data memory |
//! | `0x0000_1000 – 0x0000_17FF` | 2 KB | CMem slice 0 (byte-addressable) |
//! | `0x4000_0000 – 0x7FFF_FFFF` | 1 GB | remote cores, 16 KB windows: `01xxxxxx_xxyyyyyy_yyoooooo_oooooooo` |
//! | `0x8000_0000 – 0xFFFF_FFFF` | 2 GB | many-core DRAM, striped over 32 channels |
//!
//! Row-granular remote transfers (`LoadRow.RC` / `StoreRow.RC`) address rows
//! through [`RowPtr`], a packed pointer carried in `rs1`.

use serde::{Deserialize, Serialize};

/// Base of the local data memory.
pub const LOCAL_DATA_BASE: u32 = 0x0000_0000;
/// Size of the local data memory (4 KB).
pub const LOCAL_DATA_SIZE: u32 = 0x1000;
/// Base of the byte-addressable CMem slice 0 window.
pub const SLICE0_BASE: u32 = 0x0000_1000;
/// Size of the slice-0 window (2 KB).
pub const SLICE0_SIZE: u32 = 0x800;
/// Base of the remote-core region.
pub const REMOTE_BASE: u32 = 0x4000_0000;
/// Base of the many-core DRAM region.
pub const DRAM_BASE: u32 = 0x8000_0000;
/// Number of DRAM channels / LLC tiles (Table 1: 32).
pub const DRAM_CHANNELS: u32 = 32;
/// Bytes in each core's remote window (16 KB).
pub const REMOTE_WINDOW: u32 = 0x4000;

/// Where an address lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Region {
    /// Local data memory; payload is the offset.
    LocalData(u32),
    /// CMem slice 0; payload is the byte offset within the 2 KB window.
    Slice0(u32),
    /// Another core's window.
    RemoteCore {
        /// Mesh x coordinate.
        x: u8,
        /// Mesh y coordinate.
        y: u8,
        /// Offset within that core's 16 KB window.
        offset: u32,
    },
    /// Many-core DRAM.
    Dram {
        /// Channel (address interleaved across 32 channels).
        channel: u8,
        /// Offset within the 2 GB space.
        offset: u32,
    },
    /// A hole in the map.
    Unmapped,
}

/// Classifies a 32-bit virtual address per Table 1.
///
/// DRAM channel interleaving is at 2 KB granularity so consecutive rows of
/// a striped tensor hit different channels, matching "the DRAM is uniformly
/// divided into 32 channels".
#[must_use]
pub fn classify(addr: u32) -> Region {
    if addr < LOCAL_DATA_SIZE {
        Region::LocalData(addr)
    } else if (SLICE0_BASE..SLICE0_BASE + SLICE0_SIZE).contains(&addr) {
        Region::Slice0(addr - SLICE0_BASE)
    } else if (REMOTE_BASE..DRAM_BASE).contains(&addr) {
        let x = ((addr >> 22) & 0xFF) as u8;
        let y = ((addr >> 14) & 0xFF) as u8;
        Region::RemoteCore {
            x,
            y,
            offset: addr & (REMOTE_WINDOW - 1),
        }
    } else if addr >= DRAM_BASE {
        let offset = addr - DRAM_BASE;
        Region::Dram {
            channel: ((offset >> 11) % DRAM_CHANNELS) as u8,
            offset,
        }
    } else {
        Region::Unmapped
    }
}

/// Builds a remote-core address for (`x`, `y`) at window offset `offset`.
///
/// # Panics
///
/// Panics if `offset` exceeds the 16 KB window.
#[must_use]
pub fn remote_addr(x: u8, y: u8, offset: u32) -> u32 {
    assert!(offset < REMOTE_WINDOW, "offset beyond 16 KB window");
    REMOTE_BASE | ((x as u32) << 22) | ((y as u32) << 14) | offset
}

/// A packed row pointer for `LoadRow.RC` / `StoreRow.RC`.
///
/// Rows are 256 bits (one CMem word-line). A pointer either names a row in
/// a remote core's CMem or a 32-byte-aligned DRAM location:
///
/// * remote row: `01 xxxxxxxx yyyyyyyy ??? sss rrrrrr` — marker `01` in bits
///   31:30, x in 29:22, y in 21:14, slice in 13:11, row in 10:5;
/// * DRAM row: bit 31 set — the pointer is the DRAM byte address of a
///   32-byte row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RowPtr {
    /// A word-line in another core's CMem.
    Remote {
        /// Mesh x coordinate.
        x: u8,
        /// Mesh y coordinate.
        y: u8,
        /// Slice 0–7.
        slice: u8,
        /// Word-line 0–63.
        row: u8,
    },
    /// 32 bytes of DRAM holding one transposed row.
    Dram {
        /// Byte offset within DRAM (32-byte aligned).
        offset: u32,
    },
}

impl RowPtr {
    /// Packs into the 32-bit register representation.
    #[must_use]
    pub fn pack(self) -> u32 {
        match self {
            RowPtr::Remote { x, y, slice, row } => {
                REMOTE_BASE
                    | ((x as u32) << 22)
                    | ((y as u32) << 14)
                    | ((slice as u32 & 7) << 11)
                    | ((row as u32 & 0x3F) << 5)
            }
            RowPtr::Dram { offset } => DRAM_BASE | (offset & !31),
        }
    }

    /// Unpacks from the 32-bit register representation.
    ///
    /// Returns `None` for pointers outside the remote/DRAM regions.
    #[must_use]
    pub fn unpack(v: u32) -> Option<RowPtr> {
        if v >= DRAM_BASE {
            Some(RowPtr::Dram {
                offset: (v - DRAM_BASE) & !31,
            })
        } else if v >= REMOTE_BASE {
            Some(RowPtr::Remote {
                x: ((v >> 22) & 0xFF) as u8,
                y: ((v >> 14) & 0xFF) as u8,
                slice: ((v >> 11) & 7) as u8,
                row: ((v >> 5) & 0x3F) as u8,
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table1_boundaries() {
        assert_eq!(classify(0), Region::LocalData(0));
        assert_eq!(classify(0xFFF), Region::LocalData(0xFFF));
        assert_eq!(classify(0x1000), Region::Slice0(0));
        assert_eq!(classify(0x17FF), Region::Slice0(0x7FF));
        assert_eq!(classify(0x1800), Region::Unmapped);
        assert_eq!(classify(0x3FFF_FFFF), Region::Unmapped);
        assert!(matches!(
            classify(0x4000_0000),
            Region::RemoteCore { x: 0, y: 0, offset: 0 }
        ));
        assert!(matches!(classify(0x8000_0000), Region::Dram { channel: 0, offset: 0 }));
        assert!(matches!(classify(0xFFFF_FFFF), Region::Dram { .. }));
    }

    #[test]
    fn remote_addr_packs_coordinates() {
        let a = remote_addr(5, 9, 0x123);
        match classify(a) {
            Region::RemoteCore { x, y, offset } => {
                assert_eq!((x, y, offset), (5, 9, 0x123));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dram_interleaves_every_2kb() {
        let c0 = match classify(DRAM_BASE) {
            Region::Dram { channel, .. } => channel,
            _ => unreachable!(),
        };
        let c1 = match classify(DRAM_BASE + 2048) {
            Region::Dram { channel, .. } => channel,
            _ => unreachable!(),
        };
        assert_ne!(c0, c1);
        // wraps around after 32 channels
        let c32 = match classify(DRAM_BASE + 32 * 2048) {
            Region::Dram { channel, .. } => channel,
            _ => unreachable!(),
        };
        assert_eq!(c0, c32);
    }

    #[test]
    fn row_ptr_remote_roundtrip() {
        let p = RowPtr::Remote {
            x: 14,
            y: 3,
            slice: 6,
            row: 63,
        };
        assert_eq!(RowPtr::unpack(p.pack()), Some(p));
    }

    #[test]
    fn row_ptr_dram_roundtrip_aligns() {
        let p = RowPtr::Dram { offset: 0x1234 };
        match RowPtr::unpack(p.pack()) {
            Some(RowPtr::Dram { offset }) => assert_eq!(offset, 0x1220),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn row_ptr_local_is_none() {
        assert_eq!(RowPtr::unpack(0x100), None);
    }

    proptest! {
        #[test]
        fn prop_remote_roundtrip(x in 0u8..16, y in 0u8..16, s in 0u8..8, r in 0u8..64) {
            let p = RowPtr::Remote { x, y, slice: s, row: r };
            prop_assert_eq!(RowPtr::unpack(p.pack()), Some(p));
        }

        #[test]
        fn prop_every_address_classifies(addr in any::<u32>()) {
            let _ = classify(addr); // total function, never panics
        }
    }
}
