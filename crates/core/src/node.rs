//! Functional model of one MAICC node: a bit-exact RV32IMA interpreter over
//! the Table-1 address space, with the CMem extension executing against the
//! real bit-level computing memory of `maicc-sram`.
//!
//! The interpreter retires one instruction per [`Node::step`] and emits a
//! [`TraceEntry`] carrying exactly what the timing model needs: the
//! instruction, whether a branch was taken, and the external latency of any
//! remote access. Semantics and timing stay decoupled this way — the same
//! trace replays under every pipeline configuration of Table 5.

use crate::mem_map::{classify, Region, RowPtr};
use crate::CoreError;
use maicc_isa::inst::{AmoKind, BranchKind, Instruction, LoadKind, OpImmKind, OpKind, StoreKind};
use maicc_isa::reg::Reg;
use maicc_sram::cmem::Cmem;
use maicc_sram::slice::ShiftDir;
use std::collections::HashMap;

/// What the node sees beyond its own address space: other cores' windows
/// and the many-core DRAM, reached through the NoC.
///
/// Implementations return the access latency in cycles so the timing model
/// can charge NoC/DRAM time without the functional model knowing either.
pub trait RemotePort {
    /// Loads `size` bytes (1, 2 or 4) from a remote address.
    fn load(&mut self, addr: u32, size: u8) -> (u32, u32);
    /// Stores `size` bytes to a remote address; returns latency.
    fn store(&mut self, addr: u32, value: u32, size: u8) -> u32;
    /// Atomic read-modify-write on a remote word; returns (old value, latency).
    fn amo(&mut self, kind: AmoKind, addr: u32, value: u32) -> (u32, u32);
    /// Fetches one 256-bit row.
    fn load_row(&mut self, ptr: RowPtr) -> (Vec<u64>, u32);
    /// Sends one 256-bit row; returns latency.
    fn store_row(&mut self, ptr: RowPtr, lanes: &[u64]) -> u32;
}

/// A stand-alone port: backs remote addresses with a private sparse memory
/// and charges a fixed latency. Used for single-node experiments where the
/// paper excludes communication (Table 5) or treats the feeder as ideal.
#[derive(Debug, Clone)]
pub struct NullPort {
    latency: u32,
    words: HashMap<u32, u32>,
    rows: HashMap<u32, Vec<u64>>,
}

impl Default for NullPort {
    fn default() -> Self {
        NullPort {
            latency: 20,
            words: HashMap::new(),
            rows: HashMap::new(),
        }
    }
}

impl NullPort {
    /// Creates a port with the given fixed round-trip latency.
    #[must_use]
    pub fn with_latency(latency: u32) -> Self {
        NullPort {
            latency,
            ..Self::default()
        }
    }

    /// Pre-loads a row so `LoadRow.RC` finds data (the "feeder" of the
    /// single-node workloads).
    pub fn preload_row(&mut self, ptr: RowPtr, lanes: Vec<u64>) {
        self.rows.insert(ptr.pack(), lanes);
    }

    /// Reads back a row previously stored through the port.
    #[must_use]
    pub fn row(&self, ptr: RowPtr) -> Option<&Vec<u64>> {
        self.rows.get(&ptr.pack())
    }

    /// Reads back a word previously stored through the port.
    #[must_use]
    pub fn word(&self, addr: u32) -> Option<u32> {
        self.words.get(&(addr & !3)).copied()
    }
}

impl RemotePort for NullPort {
    fn load(&mut self, addr: u32, size: u8) -> (u32, u32) {
        let word = self.words.get(&(addr & !3)).copied().unwrap_or(0);
        let sh = (addr & 3) * 8;
        let v = match size {
            1 => (word >> sh) & 0xFF,
            2 => (word >> sh) & 0xFFFF,
            _ => word,
        };
        (v, self.latency)
    }

    fn store(&mut self, addr: u32, value: u32, size: u8) -> u32 {
        let aligned = addr & !3;
        let word = self.words.entry(aligned).or_insert(0);
        let sh = (addr & 3) * 8;
        match size {
            1 => *word = (*word & !(0xFF << sh)) | ((value & 0xFF) << sh),
            2 => *word = (*word & !(0xFFFF << sh)) | ((value & 0xFFFF) << sh),
            _ => *word = value,
        }
        self.latency
    }

    fn amo(&mut self, kind: AmoKind, addr: u32, value: u32) -> (u32, u32) {
        let old = self.words.get(&(addr & !3)).copied().unwrap_or(0);
        let new = amo_result(kind, old, value);
        if kind != AmoKind::LrW {
            self.words.insert(addr & !3, new);
        }
        (old, self.latency)
    }

    fn load_row(&mut self, ptr: RowPtr) -> (Vec<u64>, u32) {
        (
            self.rows.get(&ptr.pack()).cloned().unwrap_or_else(|| vec![0; 4]),
            self.latency,
        )
    }

    fn store_row(&mut self, ptr: RowPtr, lanes: &[u64]) -> u32 {
        self.rows.insert(ptr.pack(), lanes.to_vec());
        self.latency
    }
}

/// Applies an AMO's arithmetic (also used by the NoC receiver in `maicc-sim`).
#[must_use]
pub fn amo_result(kind: AmoKind, old: u32, value: u32) -> u32 {
    match kind {
        AmoKind::LrW => old,
        AmoKind::ScW | AmoKind::Swap => value,
        AmoKind::Add => old.wrapping_add(value),
        AmoKind::Xor => old ^ value,
        AmoKind::And => old & value,
        AmoKind::Or => old | value,
        AmoKind::Min => (old as i32).min(value as i32) as u32,
        AmoKind::Max => (old as i32).max(value as i32) as u32,
        AmoKind::Minu => old.min(value),
        AmoKind::Maxu => old.max(value),
    }
}

/// One retired instruction, as the timing model consumes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// The retired instruction.
    pub inst: Instruction,
    /// For control instructions: whether the branch/jump redirected fetch.
    pub taken: bool,
    /// Latency charged by the remote port (0 for local accesses).
    pub ext_latency: u32,
}

/// A retired-instruction trace plus retirement statistics.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The retired instructions in order.
    pub entries: Vec<TraceEntry>,
    /// Values printed via `ecall` service 1.
    pub output: Vec<u32>,
}

/// The functional node.
pub struct Node {
    regs: [u32; 32],
    pc: u32,
    program: Vec<Instruction>,
    data_mem: Vec<u8>,
    cmem: Cmem,
    port: Box<dyn RemotePort + Send>,
    halted: bool,
    reservation: Option<u32>,
    output: Vec<u32>,
    instret: u64,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("pc", &self.pc)
            .field("instret", &self.instret)
            .field("halted", &self.halted)
            .finish_non_exhaustive()
    }
}

impl Node {
    /// Creates a node with the standard 4 KB data memory.
    #[must_use]
    pub fn new(program: Vec<Instruction>, port: Box<dyn RemotePort + Send>) -> Self {
        Self::with_data_mem(program, port, 4096)
    }

    /// Creates a node with a non-standard data memory size — used by the
    /// Table-4 *scalar baseline*, which has no CMem and needs its 20 KB of
    /// SRAM as plain memory to hold the conv workload.
    #[must_use]
    pub fn with_data_mem(program: Vec<Instruction>, port: Box<dyn RemotePort + Send>, bytes: usize) -> Self {
        Node {
            regs: [0; 32],
            pc: 0,
            program,
            data_mem: vec![0; bytes],
            cmem: Cmem::new(),
            port,
            halted: false,
            reservation: None,
            output: Vec::new(),
            instret: 0,
        }
    }

    /// Reads a register.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register (x0 writes are discarded).
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        if r != Reg::Zero {
            self.regs[r.index()] = v;
        }
    }

    /// The node's CMem.
    #[must_use]
    pub fn cmem(&self) -> &Cmem {
        &self.cmem
    }

    /// Mutable access to the CMem (for pre-loading filters).
    pub fn cmem_mut(&mut self) -> &mut Cmem {
        &mut self.cmem
    }

    /// The remote port (for inspecting stored data after a run).
    #[must_use]
    pub fn port(&self) -> &dyn RemotePort {
        self.port.as_ref()
    }

    /// Whether the core has executed `ebreak`.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Retired instruction count.
    #[must_use]
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// Values printed through `ecall` service 1 so far.
    #[must_use]
    pub fn output(&self) -> &[u32] {
        &self.output
    }

    /// Reads `size` bytes from the data memory (for test inspection).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::AccessFault`] outside the data memory.
    pub fn read_local(&self, addr: u32, size: u8) -> Result<u32, CoreError> {
        if addr as usize + size as usize > self.data_mem.len() {
            return Err(CoreError::AccessFault { addr, what: "read" });
        }
        let mut v = 0u32;
        for i in 0..size {
            v |= (self.data_mem[(addr + i as u32) as usize] as u32) << (8 * i);
        }
        Ok(v)
    }

    /// Writes `size` bytes into the data memory (for test setup).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::AccessFault`] outside the data memory.
    pub fn write_local(&mut self, addr: u32, value: u32, size: u8) -> Result<(), CoreError> {
        if addr as usize + size as usize > self.data_mem.len() {
            return Err(CoreError::AccessFault { addr, what: "write" });
        }
        for i in 0..size {
            self.data_mem[(addr + i as u32) as usize] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    fn load(&mut self, addr: u32, size: u8, signed: bool) -> Result<(u32, u32), CoreError> {
        // an enlarged data memory (the scalar baseline's whole SRAM) shadows
        // the map above 4 KB — such nodes have no CMem traffic
        if self.data_mem.len() > 4096 && addr as usize + size as usize <= self.data_mem.len() {
            let v = self.read_local(addr, size)?;
            let v = if signed {
                match size {
                    1 => v as u8 as i8 as i32 as u32,
                    2 => v as u16 as i16 as i32 as u32,
                    _ => v,
                }
            } else {
                v
            };
            return Ok((v, 0));
        }
        let (raw, lat) = match classify(addr) {
            Region::LocalData(off) if (off + size as u32) as usize <= self.data_mem.len() => {
                (self.read_local(off, size)?, 0)
            }
            Region::Slice0(off) => {
                let mut v = 0u32;
                for i in 0..size {
                    v |= (self.cmem.load_byte((off + i as u32) as usize)? as u32) << (8 * i);
                }
                (v, 1)
            }
            Region::RemoteCore { .. } | Region::Dram { .. } => self.port.load(addr, size),
            _ => return Err(CoreError::AccessFault { addr, what: "load" }),
        };
        let v = if signed {
            match size {
                1 => raw as u8 as i8 as i32 as u32,
                2 => raw as u16 as i16 as i32 as u32,
                _ => raw,
            }
        } else {
            raw
        };
        Ok((v, lat))
    }

    fn store(&mut self, addr: u32, value: u32, size: u8) -> Result<u32, CoreError> {
        if self.data_mem.len() > 4096 && addr as usize + size as usize <= self.data_mem.len() {
            self.write_local(addr, value, size)?;
            return Ok(0);
        }
        match classify(addr) {
            Region::LocalData(off) if (off + size as u32) as usize <= self.data_mem.len() => {
                self.write_local(off, value, size)?;
                Ok(0)
            }
            Region::Slice0(off) => {
                for i in 0..size {
                    self.cmem
                        .store_byte((off + i as u32) as usize, (value >> (8 * i)) as u8)?;
                }
                Ok(1)
            }
            Region::RemoteCore { .. } | Region::Dram { .. } => {
                Ok(self.port.store(addr, value, size))
            }
            _ => Err(CoreError::AccessFault { addr, what: "store" }),
        }
    }

    /// Executes one instruction; returns `None` once halted.
    ///
    /// # Errors
    ///
    /// Returns a [`CoreError`] for PC escapes, access faults, CMem domain
    /// errors and unknown ecalls.
    pub fn step(&mut self) -> Result<Option<TraceEntry>, CoreError> {
        if self.halted {
            return Ok(None);
        }
        let idx = (self.pc / 4) as usize;
        let inst = *self
            .program
            .get(idx)
            .ok_or(CoreError::PcOutOfRange { pc: self.pc })?;
        let mut next_pc = self.pc.wrapping_add(4);
        let mut taken = false;
        let mut ext_latency = 0u32;

        match inst {
            Instruction::Lui { rd, imm } => self.set_reg(rd, imm as u32),
            Instruction::Auipc { rd, imm } => {
                self.set_reg(rd, self.pc.wrapping_add(imm as u32));
            }
            Instruction::Jal { rd, offset } => {
                self.set_reg(rd, self.pc.wrapping_add(4));
                next_pc = self.pc.wrapping_add(offset as u32);
                taken = true;
            }
            Instruction::Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as u32) & !1;
                self.set_reg(rd, self.pc.wrapping_add(4));
                next_pc = target;
                taken = true;
            }
            Instruction::Branch {
                kind,
                rs1,
                rs2,
                offset,
            } => {
                let a = self.reg(rs1);
                let b = self.reg(rs2);
                let cond = match kind {
                    BranchKind::Beq => a == b,
                    BranchKind::Bne => a != b,
                    BranchKind::Blt => (a as i32) < (b as i32),
                    BranchKind::Bge => (a as i32) >= (b as i32),
                    BranchKind::Bltu => a < b,
                    BranchKind::Bgeu => a >= b,
                };
                if cond {
                    next_pc = self.pc.wrapping_add(offset as u32);
                    taken = true;
                }
            }
            Instruction::Load {
                kind,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let (size, signed) = match kind {
                    LoadKind::Lb => (1, true),
                    LoadKind::Lh => (2, true),
                    LoadKind::Lw => (4, false),
                    LoadKind::Lbu => (1, false),
                    LoadKind::Lhu => (2, false),
                };
                let (v, lat) = self.load(addr, size, signed)?;
                ext_latency = lat;
                self.set_reg(rd, v);
            }
            Instruction::Store {
                kind,
                rs1,
                rs2,
                offset,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let size = match kind {
                    StoreKind::Sb => 1,
                    StoreKind::Sh => 2,
                    StoreKind::Sw => 4,
                };
                ext_latency = self.store(addr, self.reg(rs2), size)?;
            }
            Instruction::OpImm { kind, rd, rs1, imm } => {
                let a = self.reg(rs1);
                let v = match kind {
                    OpImmKind::Addi => a.wrapping_add(imm as u32),
                    OpImmKind::Slti => u32::from((a as i32) < imm),
                    OpImmKind::Sltiu => u32::from(a < imm as u32),
                    OpImmKind::Xori => a ^ imm as u32,
                    OpImmKind::Ori => a | imm as u32,
                    OpImmKind::Andi => a & imm as u32,
                    OpImmKind::Slli => a << (imm & 31),
                    OpImmKind::Srli => a >> (imm & 31),
                    OpImmKind::Srai => ((a as i32) >> (imm & 31)) as u32,
                };
                self.set_reg(rd, v);
            }
            Instruction::Op { kind, rd, rs1, rs2 } => {
                let a = self.reg(rs1);
                let b = self.reg(rs2);
                let v = match kind {
                    OpKind::Add => a.wrapping_add(b),
                    OpKind::Sub => a.wrapping_sub(b),
                    OpKind::Sll => a << (b & 31),
                    OpKind::Slt => u32::from((a as i32) < (b as i32)),
                    OpKind::Sltu => u32::from(a < b),
                    OpKind::Xor => a ^ b,
                    OpKind::Srl => a >> (b & 31),
                    OpKind::Sra => ((a as i32) >> (b & 31)) as u32,
                    OpKind::Or => a | b,
                    OpKind::And => a & b,
                    OpKind::Mul => a.wrapping_mul(b),
                    OpKind::Mulh => ((a as i32 as i64 * b as i32 as i64) >> 32) as u32,
                    OpKind::Mulhsu => ((a as i32 as i64 * b as u64 as i64) >> 32) as u32,
                    OpKind::Mulhu => ((a as u64 * b as u64) >> 32) as u32,
                    OpKind::Div => {
                        if b == 0 {
                            u32::MAX
                        } else if a == 0x8000_0000 && b == u32::MAX {
                            a
                        } else {
                            ((a as i32) / (b as i32)) as u32
                        }
                    }
                    OpKind::Divu => a.checked_div(b).unwrap_or(u32::MAX),
                    OpKind::Rem => {
                        if b == 0 {
                            a
                        } else if a == 0x8000_0000 && b == u32::MAX {
                            0
                        } else {
                            ((a as i32) % (b as i32)) as u32
                        }
                    }
                    OpKind::Remu => {
                        if b == 0 {
                            a
                        } else {
                            a % b
                        }
                    }
                };
                self.set_reg(rd, v);
            }
            Instruction::Amo { kind, rd, rs1, rs2 } => {
                let addr = self.reg(rs1);
                let val = self.reg(rs2);
                match classify(addr) {
                    Region::LocalData(off) => {
                        let old = self.read_local(off, 4)?;
                        match kind {
                            AmoKind::LrW => {
                                self.reservation = Some(addr);
                                self.set_reg(rd, old);
                            }
                            AmoKind::ScW => {
                                if self.reservation == Some(addr) {
                                    self.write_local(off, val, 4)?;
                                    self.set_reg(rd, 0);
                                } else {
                                    self.set_reg(rd, 1);
                                }
                                self.reservation = None;
                            }
                            _ => {
                                self.write_local(off, amo_result(kind, old, val), 4)?;
                                self.set_reg(rd, old);
                            }
                        }
                    }
                    Region::RemoteCore { .. } | Region::Dram { .. } => {
                        let (old, lat) = self.port.amo(kind, addr, val);
                        ext_latency = lat;
                        match kind {
                            AmoKind::LrW => {
                                self.reservation = Some(addr);
                                self.set_reg(rd, old);
                            }
                            AmoKind::ScW => {
                                // remote SC always succeeds in this model:
                                // the NoC serialises row-level atomics (§3.3)
                                self.set_reg(rd, 0);
                                self.reservation = None;
                            }
                            _ => self.set_reg(rd, old),
                        }
                    }
                    _ => return Err(CoreError::AccessFault { addr, what: "amo" }),
                }
            }
            Instruction::Fence => {}
            Instruction::Ecall => {
                let service = self.reg(Reg::A7);
                match service {
                    1 => {
                        let v = self.reg(Reg::A0);
                        self.output.push(v);
                    }
                    _ => return Err(CoreError::UnknownEcall { service }),
                }
            }
            Instruction::Ebreak => {
                self.halted = true;
            }
            Instruction::MacC {
                rd,
                slice,
                row_a,
                row_b,
                width,
            } => {
                let r = self.cmem.mac(
                    slice as usize,
                    row_a as usize,
                    row_b as usize,
                    width.bits(),
                    true,
                )?;
                self.set_reg(rd, r as i32 as u32);
            }
            Instruction::MoveC {
                src_slice,
                src_row,
                dst_slice,
                dst_row,
                width,
            } => {
                self.cmem.move_vector(
                    src_slice as usize,
                    src_row as usize,
                    dst_slice as usize,
                    dst_row as usize,
                    width.bits(),
                )?;
            }
            Instruction::SetRowC { slice, row, value } => {
                self.cmem.set_row(slice as usize, row as usize, value)?;
            }
            Instruction::ShiftRowC {
                slice,
                row,
                left,
                granules,
            } => {
                let dir = if left { ShiftDir::Left } else { ShiftDir::Right };
                self.cmem
                    .shift_row(slice as usize, row as usize, dir, granules as usize)?;
            }
            Instruction::LoadRowRC { rs1, slice, row } => {
                let ptr = RowPtr::unpack(self.reg(rs1)).ok_or(CoreError::AccessFault {
                    addr: self.reg(rs1),
                    what: "loadrow",
                })?;
                let (lanes, lat) = self.port.load_row(ptr);
                ext_latency = lat;
                self.cmem
                    .write_row_remote(slice as usize, row as usize, &lanes)?;
            }
            Instruction::StoreRowRC { rs1, slice, row } => {
                let ptr = RowPtr::unpack(self.reg(rs1)).ok_or(CoreError::AccessFault {
                    addr: self.reg(rs1),
                    what: "storerow",
                })?;
                let lanes = self.cmem.read_row_remote(slice as usize, row as usize)?;
                ext_latency = self.port.store_row(ptr, &lanes);
            }
            Instruction::SetMaskC { rs1, slice } => {
                let m = (self.reg(rs1) & 0xFF) as u8;
                self.cmem.slice_mut(slice as usize)?.set_mask(m);
            }
        }

        self.pc = next_pc;
        self.instret += 1;
        Ok(Some(TraceEntry {
            inst,
            taken,
            ext_latency,
        }))
    }

    /// Runs until `ebreak`, collecting the full trace.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::StepLimit`] if the program does not halt within
    /// `max_steps`, or any execution error.
    pub fn run(&mut self, max_steps: u64) -> Result<Trace, CoreError> {
        let mut trace = Trace::default();
        for _ in 0..max_steps {
            match self.step()? {
                Some(e) => trace.entries.push(e),
                None => {
                    trace.output = self.output.clone();
                    return Ok(trace);
                }
            }
        }
        if self.halted {
            trace.output = self.output.clone();
            Ok(trace)
        } else {
            Err(CoreError::StepLimit { max_steps })
        }
    }

    /// Runs until `ebreak`, streaming each retired instruction into `sink`
    /// instead of storing the trace (for multi-million-instruction runs).
    ///
    /// # Errors
    ///
    /// As for [`Self::run`].
    pub fn run_with(
        &mut self,
        max_steps: u64,
        mut sink: impl FnMut(&TraceEntry),
    ) -> Result<(), CoreError> {
        for _ in 0..max_steps {
            match self.step()? {
                Some(e) => sink(&e),
                None => return Ok(()),
            }
        }
        if self.halted {
            Ok(())
        } else {
            Err(CoreError::StepLimit { max_steps })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maicc_isa::asm::Assembler;
    use maicc_isa::inst::{Instruction as I, VecWidth};

    fn run_asm(build: impl FnOnce(&mut Assembler)) -> Node {
        let mut a = Assembler::new();
        build(&mut a);
        a.inst(I::Ebreak);
        let mut node = Node::new(a.assemble().unwrap(), Box::new(NullPort::default()));
        node.run(1_000_000).unwrap();
        node
    }

    #[test]
    fn arithmetic_loop_sums() {
        // sum 1..=10 = 55
        let node = run_asm(|a| {
            a.inst(I::li(Reg::A0, 10));
            a.inst(I::li(Reg::A1, 0));
            a.label("loop");
            a.inst(I::add(Reg::A1, Reg::A1, Reg::A0));
            a.inst(I::addi(Reg::A0, Reg::A0, -1));
            a.branch(BranchKind::Bne, Reg::A0, Reg::Zero, "loop");
        });
        assert_eq!(node.reg(Reg::A1), 55);
    }

    #[test]
    fn mul_div_rem_semantics() {
        let node = run_asm(|a| {
            a.inst(I::li(Reg::A0, -7));
            a.inst(I::li(Reg::A1, 3));
            a.inst(I::Op {
                kind: OpKind::Mul,
                rd: Reg::A2,
                rs1: Reg::A0,
                rs2: Reg::A1,
            });
            a.inst(I::Op {
                kind: OpKind::Div,
                rd: Reg::A3,
                rs1: Reg::A0,
                rs2: Reg::A1,
            });
            a.inst(I::Op {
                kind: OpKind::Rem,
                rd: Reg::A4,
                rs1: Reg::A0,
                rs2: Reg::A1,
            });
        });
        assert_eq!(node.reg(Reg::A2) as i32, -21);
        assert_eq!(node.reg(Reg::A3) as i32, -2);
        assert_eq!(node.reg(Reg::A4) as i32, -1);
    }

    #[test]
    fn div_by_zero_follows_spec() {
        let node = run_asm(|a| {
            a.inst(I::li(Reg::A0, 5));
            a.inst(I::Op {
                kind: OpKind::Div,
                rd: Reg::A1,
                rs1: Reg::A0,
                rs2: Reg::Zero,
            });
            a.inst(I::Op {
                kind: OpKind::Rem,
                rd: Reg::A2,
                rs1: Reg::A0,
                rs2: Reg::Zero,
            });
        });
        assert_eq!(node.reg(Reg::A1), u32::MAX);
        assert_eq!(node.reg(Reg::A2), 5);
    }

    #[test]
    fn local_memory_roundtrip_with_bytes() {
        let node = run_asm(|a| {
            a.inst(I::li(Reg::A0, 0x123));
            a.inst(I::li(Reg::A1, -2));
            a.inst(I::Store {
                kind: StoreKind::Sb,
                rs1: Reg::A0,
                rs2: Reg::A1,
                offset: 0,
            });
            a.inst(I::Load {
                kind: LoadKind::Lb,
                rd: Reg::A2,
                rs1: Reg::A0,
                offset: 0,
            });
            a.inst(I::Load {
                kind: LoadKind::Lbu,
                rd: Reg::A3,
                rs1: Reg::A0,
                offset: 0,
            });
        });
        assert_eq!(node.reg(Reg::A2) as i32, -2);
        assert_eq!(node.reg(Reg::A3), 0xFE);
    }

    #[test]
    fn slice0_stores_transpose_and_mac_works_end_to_end() {
        // Store 4 ifmap bytes to slice0 via the Figure-5 window, preload a
        // filter into slice 1 directly, Move.C + MAC.C, check dot product.
        let mut a = Assembler::new();
        // bytes 2,3,4,5 at slice0 addresses 0..4 (columns 0..4, rows 0..8)
        for (k, v) in [2i32, 3, 4, 5].iter().enumerate() {
            a.inst(I::li(Reg::A1, *v));
            a.li32(Reg::A0, 0x1000 + k as i32);
            a.inst(I::Store {
                kind: StoreKind::Sb,
                rs1: Reg::A0,
                rs2: Reg::A1,
                offset: 0,
            });
        }
        a.inst(I::MoveC {
            src_slice: 0,
            src_row: 0,
            dst_slice: 1,
            dst_row: 0,
            width: VecWidth::W8,
        });
        a.inst(I::MacC {
            rd: Reg::A5,
            slice: 1,
            row_a: 0,
            row_b: 8,
            width: VecWidth::W8,
        });
        a.inst(I::Ebreak);
        let mut node = Node::new(a.assemble().unwrap(), Box::new(NullPort::default()));
        // filter vector: 1 at the first four columns
        node.cmem_mut()
            .write_vector_i8(1, 8, &{
                let mut f = vec![0i8; 256];
                f[..4].copy_from_slice(&[10, 20, 30, 40]);
                f
            })
            .unwrap();
        node.run(1000).unwrap();
        assert_eq!(node.reg(Reg::A5), (2 * 10 + 3 * 20 + 4 * 30 + 5 * 40) as u32);
    }

    #[test]
    fn remote_store_and_load_roundtrip_through_port() {
        let mut a = Assembler::new();
        a.li32(Reg::A0, crate::mem_map::remote_addr(3, 4, 0x100) as i32);
        a.inst(I::li(Reg::A1, 77));
        a.inst(I::sw(Reg::A1, Reg::A0, 0));
        a.inst(I::lw(Reg::A2, Reg::A0, 0));
        a.inst(I::Ebreak);
        let mut node = Node::new(a.assemble().unwrap(), Box::new(NullPort::with_latency(9)));
        let trace = node.run(1000).unwrap();
        assert_eq!(node.reg(Reg::A2), 77);
        // both the store and the load carried the port latency
        let lats: Vec<u32> = trace
            .entries
            .iter()
            .filter(|e| e.ext_latency > 0)
            .map(|e| e.ext_latency)
            .collect();
        assert_eq!(lats, vec![9, 9]);
    }

    #[test]
    fn storerow_loadrow_roundtrip() {
        let ptr = RowPtr::Remote {
            x: 1,
            y: 2,
            slice: 0,
            row: 5,
        };
        let mut a = Assembler::new();
        a.li32(Reg::A0, ptr.pack() as i32);
        a.inst(I::StoreRowRC {
            rs1: Reg::A0,
            slice: 2,
            row: 7,
        });
        a.inst(I::LoadRowRC {
            rs1: Reg::A0,
            slice: 3,
            row: 9,
        });
        a.inst(I::Ebreak);
        let mut node = Node::new(a.assemble().unwrap(), Box::new(NullPort::default()));
        node.cmem_mut()
            .slice_mut(2)
            .unwrap()
            .array_mut()
            .write_row(7, &[0xAA, 0xBB, 0xCC, 0xDD])
            .unwrap();
        node.run(1000).unwrap();
        assert_eq!(
            node.cmem().slice(3).unwrap().array().read_row(9).unwrap(),
            &[0xAA, 0xBB, 0xCC, 0xDD]
        );
    }

    #[test]
    fn amo_add_local() {
        let node = run_asm(|a| {
            a.inst(I::li(Reg::A0, 0x40));
            a.inst(I::li(Reg::A1, 5));
            a.inst(I::sw(Reg::A1, Reg::A0, 0));
            a.inst(I::li(Reg::A2, 3));
            a.inst(I::Amo {
                kind: AmoKind::Add,
                rd: Reg::A3,
                rs1: Reg::A0,
                rs2: Reg::A2,
            });
            a.inst(I::lw(Reg::A4, Reg::A0, 0));
        });
        assert_eq!(node.reg(Reg::A3), 5); // old value
        assert_eq!(node.reg(Reg::A4), 8); // new value
    }

    #[test]
    fn lr_sc_success_and_failure() {
        let node = run_asm(|a| {
            a.inst(I::li(Reg::A0, 0x40));
            a.inst(I::Amo {
                kind: AmoKind::LrW,
                rd: Reg::A1,
                rs1: Reg::A0,
                rs2: Reg::Zero,
            });
            a.inst(I::li(Reg::A2, 9));
            a.inst(I::Amo {
                kind: AmoKind::ScW,
                rd: Reg::A3,
                rs1: Reg::A0,
                rs2: Reg::A2,
            });
            // second SC without reservation must fail
            a.inst(I::Amo {
                kind: AmoKind::ScW,
                rd: Reg::A4,
                rs1: Reg::A0,
                rs2: Reg::A2,
            });
        });
        assert_eq!(node.reg(Reg::A3), 0, "first sc succeeds");
        assert_eq!(node.reg(Reg::A4), 1, "second sc fails");
    }

    #[test]
    fn ecall_prints_and_unknown_service_errors() {
        let node = run_asm(|a| {
            a.inst(I::li(Reg::A7, 1));
            a.inst(I::li(Reg::A0, 42));
            a.inst(I::Ecall);
        });
        assert_eq!(node.output(), &[42]);

        let mut a = Assembler::new();
        a.inst(I::li(Reg::A7, 99));
        a.inst(I::Ecall);
        let mut bad = Node::new(a.assemble().unwrap(), Box::new(NullPort::default()));
        assert!(matches!(
            bad.run(10),
            Err(CoreError::UnknownEcall { service: 99 })
        ));
    }

    #[test]
    fn step_limit_detected() {
        let mut a = Assembler::new();
        a.label("spin");
        a.jump("spin");
        let mut node = Node::new(a.assemble().unwrap(), Box::new(NullPort::default()));
        assert!(matches!(
            node.run(100),
            Err(CoreError::StepLimit { max_steps: 100 })
        ));
    }

    #[test]
    fn pc_escape_detected() {
        let mut node = Node::new(vec![I::nop()], Box::new(NullPort::default()));
        node.step().unwrap();
        assert!(matches!(node.step(), Err(CoreError::PcOutOfRange { .. })));
    }

    #[test]
    fn unmapped_access_faults() {
        let mut a = Assembler::new();
        a.li32(Reg::A0, 0x2000);
        a.inst(I::lw(Reg::A1, Reg::A0, 0));
        let mut node = Node::new(a.assemble().unwrap(), Box::new(NullPort::default()));
        assert!(matches!(
            node.run(10),
            Err(CoreError::AccessFault { .. })
        ));
    }

    #[test]
    fn run_with_streams_without_storing() {
        let mut a = Assembler::new();
        for _ in 0..10 {
            a.inst(I::nop());
        }
        a.inst(I::Ebreak);
        let mut node = Node::new(a.assemble().unwrap(), Box::new(NullPort::default()));
        let mut count = 0;
        node.run_with(1000, |_| count += 1).unwrap();
        assert_eq!(count, 11);
    }
}
