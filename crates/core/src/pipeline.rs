//! Cycle-accurate timing model of the five-stage MAICC pipeline.
//!
//! The core is **in-order issue, out-of-order completion** (§3.1): a
//! scoreboard lets multi-cycle instructions (`idiv`, remote requests, CMem
//! extension ops) complete out of order without blocking younger,
//! independent instructions. The structures Table 5 sweeps are modelled
//! explicitly:
//!
//! * the **CMem issue queue** — a small FIFO in front of the CMem
//!   (§3.3). A CMem instruction whose target slice is busy parks in the
//!   queue; only when the queue is full does the ID stage stall. Depth 0
//!   means no queue: ID blocks until the slice is free.
//! * **register-file write ports** — completions compete for 1 or 2 WB
//!   slots per cycle.
//! * the **per-slice busy time** of the CMem: a `MAC.C` occupies its slice
//!   for `n²` cycles, a `Move.C` both slices for `n` cycles (Table 2).
//!
//! The model replays a retired-instruction trace from [`crate::node`]; the
//! same trace under different [`PipelineConfig`]s regenerates Table 5.

use crate::node::{Trace, TraceEntry};
use maicc_isa::inst::{Instruction, OpKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Structural parameters of the pipeline (the Table-5 knobs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// CMem issue-queue depth (0, 1, 2, 4 in the paper's sweep).
    pub cmem_queue: usize,
    /// Register-file write-back ports (1 or 2).
    pub wb_ports: usize,
    /// Cycles lost on a taken branch (branches resolve in EX).
    pub branch_penalty: u32,
    /// Core clock in GHz (the paper's conservative 1 GHz).
    pub frequency_ghz: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            cmem_queue: 2,
            wb_ports: 2,
            branch_penalty: 2,
            frequency_ghz: 1.0,
        }
    }
}

/// Cycle counts and stall attribution from one replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingReport {
    /// Total cycles from first issue to last completion.
    pub total_cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// CMem extension instructions retired.
    pub cmem_instructions: u64,
    /// Cycles ID stalled waiting for a CMem queue slot / free slice.
    pub queue_stall_cycles: u64,
    /// Cycles issue waited on operand (RAW) hazards.
    pub raw_stall_cycles: u64,
    /// Extra cycles completions waited for a free write-back port.
    pub wb_conflict_cycles: u64,
    /// Cycles lost to taken-branch redirects.
    pub branch_flush_cycles: u64,
}

impl TimingReport {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.total_cycles as f64
        }
    }

    /// Wall-clock seconds at the configured frequency.
    #[must_use]
    pub fn seconds(&self, cfg: &PipelineConfig) -> f64 {
        self.total_cycles as f64 / (cfg.frequency_ghz * 1e9)
    }
}

impl std::fmt::Display for TimingReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cycles for {} instructions (IPC {:.2}; {} CMem ops; stalls: \
             queue {}, raw {}, wb {}, flush {})",
            self.total_cycles,
            self.instructions,
            self.ipc(),
            self.cmem_instructions,
            self.queue_stall_cycles,
            self.raw_stall_cycles,
            self.wb_conflict_cycles,
            self.branch_flush_cycles
        )
    }
}

/// The replaying timing model. Feed it retired instructions in order via
/// [`Timing::on_retire`], then read [`Timing::finish`].
#[derive(Debug)]
pub struct Timing {
    cfg: PipelineConfig,
    /// Cycle at which the next instruction may issue.
    next_issue: u64,
    /// Cycle each register's value becomes readable.
    reg_ready: [u64; 32],
    /// Per-slice CMem busy horizon.
    slice_busy: [u64; 8],
    /// Dispatch times of CMem instructions currently parked in the queue.
    queue: Vec<u64>,
    /// FIFO order: a CMem op cannot dispatch before its predecessor.
    last_cmem_dispatch: u64,
    /// The (unpipelined) divider's busy horizon.
    div_busy: u64,
    /// WB-port usage per cycle.
    wb_used: HashMap<u64, usize>,
    /// Latest completion seen.
    horizon: u64,
    report: TimingReport,
}

impl Timing {
    /// Creates a timing model with the given configuration.
    #[must_use]
    pub fn new(cfg: PipelineConfig) -> Self {
        Timing {
            cfg,
            next_issue: 0,
            reg_ready: [0; 32],
            slice_busy: [0; 8],
            queue: Vec::new(),
            last_cmem_dispatch: 0,
            div_busy: 0,
            wb_used: HashMap::new(),
            horizon: 0,
            report: TimingReport::default(),
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    fn alloc_wb(&mut self, earliest: u64) -> u64 {
        let mut c = earliest;
        loop {
            let used = self.wb_used.entry(c).or_insert(0);
            if *used < self.cfg.wb_ports {
                *used += 1;
                if c > earliest {
                    self.report.wb_conflict_cycles += c - earliest;
                }
                return c;
            }
            c += 1;
        }
    }

    /// Accounts one retired instruction.
    pub fn on_retire(&mut self, e: &TraceEntry) {
        self.report.instructions += 1;
        let inst = &e.inst;

        // in-order issue: one instruction per cycle from ID
        let mut t = self.next_issue;

        // RAW hazards: issue waits until source operands are readable
        let mut raw_ready = t;
        for r in inst.uses() {
            raw_ready = raw_ready.max(self.reg_ready[r.index()]);
        }
        if raw_ready > t {
            self.report.raw_stall_cycles += raw_ready - t;
            t = raw_ready;
        }

        let completion;
        if inst.is_cmem() {
            self.report.cmem_instructions += 1;
            // free queue slots whose occupants have dispatched
            self.queue.retain(|&d| d > t);
            if self.cfg.cmem_queue == 0 {
                // no queue: ID blocks until the op can start
                let mut start = t;
                for &s in &inst.cmem_slices() {
                    start = start.max(self.slice_busy[s as usize]);
                }
                start = start.max(self.last_cmem_dispatch + 1);
                if start > t {
                    self.report.queue_stall_cycles += start - t;
                    t = start;
                }
            } else if self.queue.len() >= self.cfg.cmem_queue {
                // queue full: stall until the earliest parked op dispatches
                let free_at = *self.queue.iter().min().expect("non-empty queue");
                if free_at > t {
                    self.report.queue_stall_cycles += free_at - t;
                    t = free_at;
                }
                self.queue.retain(|&d| d > t);
            }
            // dispatch: FIFO order, after the target slice(s) free up
            let mut dispatch = t.max(self.last_cmem_dispatch + 1);
            for &s in &inst.cmem_slices() {
                dispatch = dispatch.max(self.slice_busy[s as usize]);
            }
            self.last_cmem_dispatch = dispatch;
            if dispatch > t && self.cfg.cmem_queue > 0 {
                self.queue.push(dispatch);
            }
            let busy = u64::from(inst.exec_cycles()) + u64::from(e.ext_latency);
            completion = dispatch + busy;
            for &s in &inst.cmem_slices() {
                self.slice_busy[s as usize] = completion;
            }
        } else {
            match inst {
                Instruction::Op { kind, .. } if kind.is_div() => {
                    // the divider is unpipelined
                    let start = t.max(self.div_busy);
                    completion = start + u64::from(inst.exec_cycles());
                    self.div_busy = completion;
                }
                Instruction::Load { .. } | Instruction::Store { .. } | Instruction::Amo { .. } => {
                    // local: 1-cycle MEM stage; remote: scoreboard tracks the
                    // in-flight request so independent work continues
                    completion = t + 1 + u64::from(e.ext_latency);
                }
                Instruction::Op {
                    kind: OpKind::Mul | OpKind::Mulh | OpKind::Mulhsu | OpKind::Mulhu,
                    ..
                } => {
                    completion = t + u64::from(inst.exec_cycles());
                }
                _ => {
                    completion = t + 1;
                }
            }
        }

        // write-back port arbitration for instructions producing a value
        if let Some(rd) = inst.def() {
            let wb = self.alloc_wb(completion);
            self.reg_ready[rd.index()] = wb;
            self.horizon = self.horizon.max(wb);
        } else {
            self.horizon = self.horizon.max(completion);
        }

        // next instruction issues the following cycle; taken control flow
        // redirects fetch and pays the flush penalty
        self.next_issue = t + 1;
        if inst.is_control() && e.taken {
            self.next_issue += u64::from(self.cfg.branch_penalty);
            self.report.branch_flush_cycles += u64::from(self.cfg.branch_penalty);
        }

        // keep the WB map from growing without bound
        if self.wb_used.len() > 4096 {
            let floor = t.saturating_sub(64);
            self.wb_used.retain(|&c, _| c >= floor);
        }
    }

    /// Finalises and returns the report.
    #[must_use]
    pub fn finish(mut self) -> TimingReport {
        self.report.total_cycles = self.horizon.max(self.next_issue);
        self.report
    }

    /// Convenience: replays a stored trace.
    #[must_use]
    pub fn replay(mut self, trace: &Trace) -> TimingReport {
        for e in &trace.entries {
            self.on_retire(e);
        }
        self.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maicc_isa::inst::{Instruction as I, VecWidth};
    use maicc_isa::reg::Reg;

    fn entry(inst: I) -> TraceEntry {
        TraceEntry {
            inst,
            taken: false,
            ext_latency: 0,
        }
    }

    fn mac(rd: Reg, slice: u8) -> I {
        I::MacC {
            rd,
            slice,
            row_a: 0,
            row_b: 8,
            width: VecWidth::W8,
        }
    }

    #[test]
    fn straight_line_alu_is_one_per_cycle() {
        let mut t = Timing::new(PipelineConfig::default());
        for _ in 0..100 {
            t.on_retire(&entry(I::add(Reg::A0, Reg::A1, Reg::A2)));
        }
        let r = t.finish();
        assert!(r.total_cycles >= 100 && r.total_cycles <= 102, "{r:?}");
        assert!((r.ipc() - 1.0).abs() < 0.05);
    }

    #[test]
    fn raw_hazard_on_mac_result_stalls() {
        let mut t = Timing::new(PipelineConfig::default());
        t.on_retire(&entry(mac(Reg::A0, 1)));
        // dependent add must wait ~64 cycles for the MAC
        t.on_retire(&entry(I::add(Reg::A1, Reg::A0, Reg::A0)));
        let r = t.finish();
        assert!(r.total_cycles >= 64, "{r:?}");
        assert!(r.raw_stall_cycles >= 60, "{r:?}");
    }

    #[test]
    fn independent_macs_to_different_slices_overlap() {
        let mut t = Timing::new(PipelineConfig::default());
        for s in 1..=4u8 {
            t.on_retire(&entry(mac(Reg::from_index(9 + s as u32).unwrap(), s)));
        }
        let r = t.finish();
        // four 64-cycle MACs on four slices ≈ 64 + dispatch skew, not 256
        assert!(r.total_cycles < 100, "{r:?}");
    }

    #[test]
    fn same_slice_macs_serialize() {
        let mut t = Timing::new(PipelineConfig::default());
        for i in 0..4u32 {
            t.on_retire(&entry(mac(Reg::from_index(10 + i).unwrap(), 1)));
        }
        let r = t.finish();
        assert!(r.total_cycles >= 256, "{r:?}");
    }

    #[test]
    fn queue_zero_blocks_id_queue_two_overlaps() {
        // MAC(s1), MAC(s1), then 200 independent adds: with no queue the
        // adds wait behind the second MAC; with a 2-entry queue they overlap
        // and the issue stream finishes sooner.
        let make = |queue| {
            let mut t = Timing::new(PipelineConfig {
                cmem_queue: queue,
                ..PipelineConfig::default()
            });
            t.on_retire(&entry(mac(Reg::A0, 1)));
            t.on_retire(&entry(mac(Reg::A1, 1)));
            for _ in 0..200 {
                t.on_retire(&entry(I::add(Reg::A2, Reg::A3, Reg::A4)));
            }
            t.finish()
        };
        let q0 = make(0);
        let q2 = make(2);
        assert!(
            q2.total_cycles < q0.total_cycles,
            "queue should help: {q0:?} vs {q2:?}"
        );
        assert!(q0.queue_stall_cycles > 0);
    }

    #[test]
    fn deeper_queue_has_diminishing_returns() {
        let run = |queue| {
            let mut t = Timing::new(PipelineConfig {
                cmem_queue: queue,
                ..PipelineConfig::default()
            });
            // round-robin MACs over 7 slices with sporadic ALU work — the
            // Algorithm-1 shape
            for round in 0..8u32 {
                for s in 1..=7u8 {
                    t.on_retire(&entry(mac(Reg::from_index(10 + (s as u32 % 4)).unwrap(), s)));
                    let _ = round;
                }
                for _ in 0..10 {
                    t.on_retire(&entry(I::add(Reg::T0, Reg::T1, Reg::T2)));
                }
            }
            t.finish().total_cycles
        };
        let c0 = run(0);
        let c2 = run(2);
        let c4 = run(4);
        assert!(c2 <= c0);
        // paper: "adding more entries brings no more latency benefits"
        assert!(c4 as f64 >= c2 as f64 * 0.95, "{c2} vs {c4}");
    }

    #[test]
    fn second_wb_port_reduces_conflicts() {
        let run = |ports| {
            let mut t = Timing::new(PipelineConfig {
                wb_ports: ports,
                ..PipelineConfig::default()
            });
            // MACs completing together with a stream of ALU writers
            for s in 1..=7u8 {
                t.on_retire(&entry(mac(Reg::from_index(10 + s as u32).unwrap(), s)));
            }
            for _ in 0..70 {
                t.on_retire(&entry(I::add(Reg::T0, Reg::T1, Reg::T2)));
            }
            t.finish()
        };
        let one = run(1);
        let two = run(2);
        assert!(two.wb_conflict_cycles <= one.wb_conflict_cycles);
        assert!(two.total_cycles <= one.total_cycles);
    }

    #[test]
    fn taken_branches_cost_flush_cycles() {
        let mut t = Timing::new(PipelineConfig::default());
        for _ in 0..10 {
            t.on_retire(&TraceEntry {
                inst: I::Jal {
                    rd: Reg::Zero,
                    offset: 8,
                },
                taken: true,
                ext_latency: 0,
            });
        }
        let r = t.finish();
        assert_eq!(r.branch_flush_cycles, 20);
        assert!(r.total_cycles >= 30);
    }

    #[test]
    fn remote_latency_hides_behind_independent_work() {
        // a remote load with 50-cycle latency followed by 60 independent
        // adds: the scoreboard hides the latency
        let mut t = Timing::new(PipelineConfig::default());
        t.on_retire(&TraceEntry {
            inst: I::lw(Reg::A0, Reg::S0, 0),
            taken: false,
            ext_latency: 50,
        });
        for _ in 0..60 {
            t.on_retire(&entry(I::add(Reg::T0, Reg::T1, Reg::T2)));
        }
        let r = t.finish();
        assert!(r.total_cycles < 70, "{r:?}");
    }

    #[test]
    fn divider_is_unpipelined() {
        let mut t = Timing::new(PipelineConfig::default());
        let div = I::Op {
            kind: OpKind::Div,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        };
        t.on_retire(&entry(div));
        let div2 = I::Op {
            kind: OpKind::Div,
            rd: Reg::A3,
            rs1: Reg::A4,
            rs2: Reg::A5,
        };
        t.on_retire(&entry(div2));
        let r = t.finish();
        assert!(r.total_cycles >= 68, "{r:?}");
    }

    #[test]
    fn report_display_is_informative() {
        let r = TimingReport {
            total_cycles: 100,
            instructions: 50,
            cmem_instructions: 3,
            ..TimingReport::default()
        };
        let s = r.to_string();
        assert!(s.contains("100 cycles"));
        assert!(s.contains("IPC 0.50"));
        assert!(s.contains("3 CMem"));
    }

    #[test]
    fn report_seconds_scales_with_frequency() {
        let cfg = PipelineConfig::default();
        let r = TimingReport {
            total_cycles: 1_000_000_000,
            ..TimingReport::default()
        };
        assert!((r.seconds(&cfg) - 1.0).abs() < 1e-9);
    }
}
