//! Compile-time instruction reordering — the paper's *static scheduling*.
//!
//! "After compilation, the latency and data dependency of each CMem
//! instruction is determined. Therefore, we can potentially fill the delay
//! slots of CMem instructions by inserting data-independent instructions"
//! (§3.3). This module implements that as classic **list scheduling** over
//! basic blocks: build the dependence DAG, rank by critical path, and emit
//! ready instructions longest-path-first so multi-cycle CMem operations
//! issue early and independent ALU work fills their shadows.
//!
//! Reordering never crosses basic-block boundaries and control transfers
//! stay at block ends, so branch displacements remain valid (blocks keep
//! their sizes and leaders their addresses).

use maicc_isa::inst::Instruction;
use std::collections::HashSet;

/// Whether two instructions must stay ordered (`a` before `b`, given `a`
/// precedes `b` in program order).
///
/// `disjoint_memory` asserts that ordinary loads/stores never alias the
/// CMem rows the extension instructions touch (true for the generated
/// kernels, where scalars live in data memory and vectors in slices 1–7);
/// without it, CMem ops are conservatively ordered against all memory ops.
fn depends(a: &Instruction, b: &Instruction, disjoint_memory: bool) -> bool {
    // full barriers
    let barrier = |i: &Instruction| {
        matches!(
            i,
            Instruction::Fence | Instruction::Ecall | Instruction::Ebreak
        ) || i.is_control()
    };
    if barrier(a) || barrier(b) {
        return true;
    }
    // register dependences
    if let Some(d) = a.def() {
        if b.uses().contains(&d) || b.def() == Some(d) {
            return true; // RAW or WAW
        }
    }
    if let Some(d) = b.def() {
        if a.uses().contains(&d) {
            return true; // WAR
        }
    }
    // memory dependences: conservative unless both are loads
    let mem_a = a.is_mem();
    let mem_b = b.is_mem();
    let is_load = |i: &Instruction| matches!(i, Instruction::Load { .. });
    if mem_a && mem_b && !(is_load(a) && is_load(b)) {
        return true;
    }
    // CMem structural/data dependences: same slice ⇒ ordered (row-level
    // RAW/WAW cannot be tracked per-row without value analysis)
    if a.is_cmem() && b.is_cmem() {
        let sa: HashSet<u8> = a.cmem_slices().into_iter().collect();
        if b.cmem_slices().iter().any(|s| sa.contains(s)) {
            return true;
        }
    }
    // CMem vs ordinary memory: slice 0 is byte-addressable, so stores may
    // feed Move.C reads; honoured unless the kernel guarantees disjointness
    if !disjoint_memory && (a.is_cmem() && mem_b || mem_a && b.is_cmem()) {
        return true;
    }
    // even with disjoint memory, ordinary *stores* may write slice 0 which
    // CMem ops read — keep store → CMem order for slice-0 consumers
    if !disjoint_memory {
        return false;
    }
    false
}

/// Schedules one basic block (no internal control flow). The relative order
/// of dependent instructions is preserved; independent instructions are
/// emitted critical-path-first.
#[must_use]
pub fn schedule_block(block: &[Instruction]) -> Vec<Instruction> {
    schedule_block_with(block, true)
}

/// [`schedule_block`] with explicit memory-disjointness assumption.
#[must_use]
pub fn schedule_block_with(block: &[Instruction], disjoint_memory: bool) -> Vec<Instruction> {
    let n = block.len();
    if n <= 2 {
        return block.to_vec();
    }
    // dependence edges i -> j (i must precede j)
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut pred_count = vec![0usize; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if depends(&block[i], &block[j], disjoint_memory) {
                succs[i].push(j);
                pred_count[j] += 1;
            }
        }
    }
    // critical-path priority (latency-weighted longest path to a sink)
    let mut prio = vec![0u64; n];
    for i in (0..n).rev() {
        let tail = succs[i]
            .iter()
            .map(|&j| prio[j])
            .max()
            .unwrap_or(0);
        prio[i] = u64::from(block[i].exec_cycles()) + tail;
    }
    // list scheduling: among ready nodes pick max priority, tie-break on
    // original order for determinism
    let mut ready: Vec<usize> = (0..n).filter(|&i| pred_count[i] == 0).collect();
    let mut out = Vec::with_capacity(n);
    while let Some(pos) = ready
        .iter()
        .enumerate()
        .max_by_key(|&(_, &i)| (prio[i], std::cmp::Reverse(i)))
        .map(|(p, _)| p)
    {
        let i = ready.swap_remove(pos);
        out.push(block[i]);
        for &j in &succs[i] {
            pred_count[j] -= 1;
            if pred_count[j] == 0 {
                ready.push(j);
            }
        }
    }
    debug_assert_eq!(out.len(), n, "dependence graph must be acyclic");
    out
}

/// Schedules a whole program by splitting it into basic blocks at control
/// instructions and branch targets, scheduling each block independently.
#[must_use]
pub fn schedule_program(program: &[Instruction]) -> Vec<Instruction> {
    let n = program.len();
    // leaders: block entry points — successors of control transfers and
    // every branch/jump target
    let mut leader = vec![false; n.max(1)];
    if n > 0 {
        leader[0] = true;
    }
    for (i, inst) in program.iter().enumerate() {
        match *inst {
            Instruction::Jal { offset, .. } => {
                let t = (i as i64 + offset as i64 / 4) as usize;
                if t < n {
                    leader[t] = true;
                }
                if i + 1 < n {
                    leader[i + 1] = true;
                }
            }
            Instruction::Branch { offset, .. } => {
                let t = (i as i64 + offset as i64 / 4) as usize;
                if t < n {
                    leader[t] = true;
                }
                if i + 1 < n {
                    leader[i + 1] = true;
                }
            }
            Instruction::Jalr { .. } if i + 1 < n => {
                leader[i + 1] = true;
            }
            _ => {}
        }
    }
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..=n {
        let boundary = i == n || (i > start && leader[i]);
        if boundary {
            // the block may end with a control instruction; keep it last
            let block = &program[start..i];
            if let Some((last, body)) = block.split_last() {
                if last.is_control()
                    || matches!(
                        last,
                        Instruction::Ebreak | Instruction::Ecall | Instruction::Fence
                    )
                {
                    out.extend(schedule_block(body));
                    out.push(*last);
                } else {
                    out.extend(schedule_block(block));
                }
            }
            start = i;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Node, NullPort};
    use crate::pipeline::{PipelineConfig, Timing};
    use maicc_isa::inst::{BranchKind, Instruction as I, VecWidth};
    use maicc_isa::reg::Reg;

    fn mac(rd: Reg, slice: u8) -> I {
        I::MacC {
            rd,
            slice,
            row_a: 0,
            row_b: 8,
            width: VecWidth::W8,
        }
    }

    #[test]
    fn preserves_instruction_multiset() {
        let block = vec![
            mac(Reg::A0, 1),
            I::add(Reg::A1, Reg::A0, Reg::A0),
            I::li(Reg::A2, 5),
            I::li(Reg::A3, 6),
            mac(Reg::A4, 2),
        ];
        let sched = schedule_block(&block);
        assert_eq!(sched.len(), block.len());
        for i in &block {
            assert!(sched.contains(i));
        }
    }

    #[test]
    fn raw_order_preserved() {
        let block = vec![mac(Reg::A0, 1), I::add(Reg::A1, Reg::A0, Reg::A0)];
        let sched = schedule_block(&block);
        let mac_pos = sched.iter().position(|i| i.is_cmem()).unwrap();
        let add_pos = sched
            .iter()
            .position(|i| matches!(i, I::Op { .. }))
            .unwrap();
        assert!(mac_pos < add_pos);
    }

    #[test]
    fn hoists_independent_mac_above_alu_chain() {
        // ALU chain first, independent MAC last → scheduler should lift the
        // MAC to the front (longest critical path).
        let block = vec![
            I::li(Reg::A1, 1),
            I::add(Reg::A2, Reg::A1, Reg::A1),
            I::add(Reg::A3, Reg::A2, Reg::A2),
            mac(Reg::A0, 1),
        ];
        let sched = schedule_block(&block);
        assert!(sched[0].is_cmem(), "{sched:?}");
    }

    #[test]
    fn stores_stay_ordered() {
        let block = vec![
            I::sw(Reg::A0, Reg::Sp, 0),
            I::sw(Reg::A1, Reg::Sp, 0),
        ];
        assert_eq!(schedule_block(&block), block);
    }

    #[test]
    fn loads_may_pass_loads_but_not_stores() {
        let block = vec![
            I::sw(Reg::A0, Reg::Sp, 0),
            I::lw(Reg::A1, Reg::Sp, 4),
        ];
        // the load must not move above the store
        assert_eq!(schedule_block(&block), block);
    }

    #[test]
    fn same_slice_cmem_ops_stay_ordered() {
        let block = vec![
            I::MoveC {
                src_slice: 0,
                src_row: 0,
                dst_slice: 1,
                dst_row: 0,
                width: VecWidth::W8,
            },
            mac(Reg::A0, 1),
        ];
        assert_eq!(schedule_block(&block), block);
    }

    #[test]
    fn control_instruction_stays_at_block_end() {
        let prog = vec![
            I::li(Reg::A0, 3),
            mac(Reg::A1, 1),
            I::Branch {
                kind: BranchKind::Bne,
                rs1: Reg::A0,
                rs2: Reg::Zero,
                offset: -8,
            },
            I::Ebreak,
        ];
        let sched = schedule_program(&prog);
        assert!(matches!(sched[2], I::Branch { .. }));
        assert!(matches!(sched[3], I::Ebreak));
    }

    #[test]
    fn scheduling_preserves_semantics_and_helps_timing() {
        // dependent accumulation after each MAC, three slices — scheduler
        // should interleave and reduce cycles while results stay identical
        let mut prog = Vec::new();
        prog.push(I::li(Reg::S0, 0));
        for s in 1..=3u8 {
            prog.push(mac(Reg::A0, s));
            prog.push(I::add(Reg::S0, Reg::S0, Reg::A0));
        }
        prog.push(I::Ebreak);
        let sched = schedule_program(&prog);
        assert_eq!(sched.len(), prog.len());

        let run = |p: Vec<I>| {
            let mut node = Node::new(p, Box::new(NullPort::default()));
            for s in 1..=3 {
                node.cmem_mut().write_vector_i8(s, 0, &[1i8; 256]).unwrap();
                node.cmem_mut()
                    .write_vector_i8(s, 8, &[s as i8; 256])
                    .unwrap();
            }
            let trace = node.run(10_000).unwrap();
            let cycles = Timing::new(PipelineConfig::default())
                .replay(&trace)
                .total_cycles;
            (node.reg(Reg::S0), cycles)
        };
        let (v1, c1) = run(prog);
        let (v2, c2) = run(sched);
        assert_eq!(v1, v2, "scheduling must not change results");
        assert_eq!(v1, 256 * (1 + 2 + 3));
        assert!(c2 <= c1, "scheduled {c2} vs original {c1}");
    }
}
