//! RV32IMA compliance battery: targeted semantics checks for the
//! interpreter, in the spirit of riscv-tests, plus timing-model
//! monotonicity properties.

use maicc_core::node::{Node, NullPort, TraceEntry};
use maicc_core::pipeline::{PipelineConfig, Timing};
use maicc_isa::asm::Assembler;
use maicc_isa::inst::{Instruction as I, LoadKind, OpImmKind, OpKind, StoreKind, VecWidth};
use maicc_isa::reg::Reg;
use proptest::prelude::*;

fn run(build: impl FnOnce(&mut Assembler)) -> Node {
    let mut a = Assembler::new();
    build(&mut a);
    a.inst(I::Ebreak);
    let mut node = Node::new(a.assemble().unwrap(), Box::new(NullPort::default()));
    node.run(1_000_000).unwrap();
    node
}

#[test]
fn shift_amounts_mask_to_five_bits() {
    let node = run(|a| {
        a.inst(I::li(Reg::A0, 1));
        a.inst(I::li(Reg::A1, 33)); // shifts by 33 ≡ 1
        a.inst(I::Op {
            kind: OpKind::Sll,
            rd: Reg::A2,
            rs1: Reg::A0,
            rs2: Reg::A1,
        });
        a.inst(I::li(Reg::A3, -8));
        a.inst(I::Op {
            kind: OpKind::Sra,
            rd: Reg::A4,
            rs1: Reg::A3,
            rs2: Reg::A1,
        });
    });
    assert_eq!(node.reg(Reg::A2), 2);
    assert_eq!(node.reg(Reg::A4) as i32, -4);
}

#[test]
fn signed_overflow_division_case() {
    // INT_MIN / -1 must return INT_MIN, remainder 0 (RISC-V spec)
    let node = run(|a| {
        a.li32(Reg::A0, i32::MIN);
        a.inst(I::li(Reg::A1, -1));
        a.inst(I::Op {
            kind: OpKind::Div,
            rd: Reg::A2,
            rs1: Reg::A0,
            rs2: Reg::A1,
        });
        a.inst(I::Op {
            kind: OpKind::Rem,
            rd: Reg::A3,
            rs1: Reg::A0,
            rs2: Reg::A1,
        });
    });
    assert_eq!(node.reg(Reg::A2) as i32, i32::MIN);
    assert_eq!(node.reg(Reg::A3), 0);
}

#[test]
fn halfword_load_store_sign_extension() {
    let node = run(|a| {
        a.inst(I::li(Reg::A0, 0x80));
        a.li32(Reg::A1, -2); // 0xFFFFFFFE
        a.inst(I::Store {
            kind: StoreKind::Sh,
            rs1: Reg::A0,
            rs2: Reg::A1,
            offset: 0,
        });
        a.inst(I::Load {
            kind: LoadKind::Lh,
            rd: Reg::A2,
            rs1: Reg::A0,
            offset: 0,
        });
        a.inst(I::Load {
            kind: LoadKind::Lhu,
            rd: Reg::A3,
            rs1: Reg::A0,
            offset: 0,
        });
    });
    assert_eq!(node.reg(Reg::A2) as i32, -2);
    assert_eq!(node.reg(Reg::A3), 0xFFFE);
}

#[test]
fn auipc_and_jalr_compose_a_call() {
    // jalr saves pc+4 and jumps; clearing the low bit per spec
    let node = run(|a| {
        a.inst(I::Auipc { rd: Reg::A0, imm: 0 }); // pc of this inst
        a.inst(I::Jalr {
            rd: Reg::Ra,
            rs1: Reg::A0,
            offset: 13, // → pc+13 & !1 = pc+12 (the li below)
        });
        a.inst(I::li(Reg::A1, 111)); // skipped
        a.inst(I::li(Reg::A2, 222)); // target
    });
    assert_eq!(node.reg(Reg::A1), 0);
    assert_eq!(node.reg(Reg::A2), 222);
    assert_eq!(node.reg(Reg::Ra), 8); // return address after the jalr
}

#[test]
fn sltu_with_zero_tests_nonzero() {
    // sltu rd, x0, rs is the canonical "snez"
    let node = run(|a| {
        a.inst(I::li(Reg::A0, 5));
        a.inst(I::Op {
            kind: OpKind::Sltu,
            rd: Reg::A1,
            rs1: Reg::Zero,
            rs2: Reg::A0,
        });
        a.inst(I::Op {
            kind: OpKind::Sltu,
            rd: Reg::A2,
            rs1: Reg::Zero,
            rs2: Reg::Zero,
        });
    });
    assert_eq!(node.reg(Reg::A1), 1);
    assert_eq!(node.reg(Reg::A2), 0);
}

#[test]
fn writes_to_x0_are_discarded() {
    let node = run(|a| {
        a.inst(I::li(Reg::Zero, 42));
        a.inst(I::add(Reg::A0, Reg::Zero, Reg::Zero));
    });
    assert_eq!(node.reg(Reg::A0), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_mulh_variants_match_i64(x in any::<i32>(), y in any::<i32>()) {
        let node = run(|a| {
            a.li32(Reg::A0, x);
            a.li32(Reg::A1, y);
            for (kind, rd) in [
                (OpKind::Mul, Reg::A2),
                (OpKind::Mulh, Reg::A3),
                (OpKind::Mulhu, Reg::A4),
                (OpKind::Mulhsu, Reg::A5),
            ] {
                a.inst(I::Op { kind, rd, rs1: Reg::A0, rs2: Reg::A1 });
            }
        });
        prop_assert_eq!(node.reg(Reg::A2), x.wrapping_mul(y) as u32);
        prop_assert_eq!(node.reg(Reg::A3), ((x as i64 * y as i64) >> 32) as u32);
        prop_assert_eq!(
            node.reg(Reg::A4),
            ((x as u32 as u64 * y as u32 as u64) >> 32) as u32
        );
        prop_assert_eq!(
            node.reg(Reg::A5),
            ((x as i64 * y as u32 as i64) >> 32) as u32
        );
    }

    #[test]
    fn prop_div_rem_invariant(x in any::<i32>(), y in any::<i32>()) {
        // for y != 0 (excluding the overflow case): x == div*y + rem
        prop_assume!(y != 0 && !(x == i32::MIN && y == -1));
        let node = run(|a| {
            a.li32(Reg::A0, x);
            a.li32(Reg::A1, y);
            a.inst(I::Op { kind: OpKind::Div, rd: Reg::A2, rs1: Reg::A0, rs2: Reg::A1 });
            a.inst(I::Op { kind: OpKind::Rem, rd: Reg::A3, rs1: Reg::A0, rs2: Reg::A1 });
        });
        let d = node.reg(Reg::A2) as i32;
        let r = node.reg(Reg::A3) as i32;
        prop_assert_eq!(d.wrapping_mul(y).wrapping_add(r), x);
        prop_assert!(r == 0 || (r < 0) == (x < 0), "remainder sign follows dividend");
    }

    #[test]
    fn prop_sltiu_unsigned_range_trick(v in any::<i32>(), bound in 1i32..2047) {
        // the kernel generator's bounds check: (v as u32) < bound iff 0 <= v < bound
        let node = run(|a| {
            a.li32(Reg::A0, v);
            a.inst(I::OpImm { kind: OpImmKind::Sltiu, rd: Reg::A1, rs1: Reg::A0, imm: bound });
        });
        let expect = u32::from((v as u32) < bound as u32);
        prop_assert_eq!(node.reg(Reg::A1), expect);
        if (0..bound).contains(&v) {
            prop_assert_eq!(node.reg(Reg::A1), 1);
        }
    }
}

// ---------------------------------------------------------------------
// timing-model monotonicity properties
// ---------------------------------------------------------------------

fn arb_entry() -> impl Strategy<Value = TraceEntry> {
    prop_oneof![
        (0u32..8, 0u32..8, 0u32..8).prop_map(|(a, b, c)| TraceEntry {
            inst: I::add(
                Reg::from_index(10 + a % 6).unwrap(),
                Reg::from_index(10 + b % 6).unwrap(),
                Reg::from_index(10 + c % 6).unwrap()
            ),
            taken: false,
            ext_latency: 0,
        }),
        (1u8..8, 0u32..6).prop_map(|(s, r)| TraceEntry {
            inst: I::MacC {
                rd: Reg::from_index(10 + r).unwrap(),
                slice: s,
                row_a: 0,
                row_b: 8,
                width: VecWidth::W8,
            },
            taken: false,
            ext_latency: 0,
        }),
        (0u32..6, 0u32..60).prop_map(|(r, lat)| TraceEntry {
            inst: I::lw(Reg::from_index(10 + r).unwrap(), Reg::S0, 0),
            taken: false,
            ext_latency: lat,
        }),
    ]
}

fn cycles(entries: &[TraceEntry], queue: usize, wb: usize) -> u64 {
    let mut t = Timing::new(PipelineConfig {
        cmem_queue: queue,
        wb_ports: wb,
        ..PipelineConfig::default()
    });
    for e in entries {
        t.on_retire(e);
    }
    t.finish().total_cycles
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_cycles_at_least_instruction_count(
        entries in proptest::collection::vec(arb_entry(), 1..200)
    ) {
        let c = cycles(&entries, 2, 2);
        prop_assert!(c >= entries.len() as u64);
    }

    #[test]
    fn prop_deeper_queue_never_hurts_materially(
        entries in proptest::collection::vec(arb_entry(), 1..200)
    ) {
        // the FIFO's in-order dispatch means a parked head-of-line entry
        // can delay a younger op's dispatch by a cycle relative to the
        // no-queue ID stall — real wormhole FIFOs show the same ±1 jitter,
        // so the invariant is "never materially worse", not monotone
        let c0 = cycles(&entries, 0, 1);
        let c2 = cycles(&entries, 2, 1);
        let c4 = cycles(&entries, 4, 1);
        prop_assert!(c2 <= c0 + 2, "queue 2 ({c2}) worse than 0 ({c0})");
        prop_assert!(c4 <= c2 + 2, "queue 4 ({c4}) worse than 2 ({c2})");
    }

    #[test]
    fn prop_second_wb_port_never_hurts(
        entries in proptest::collection::vec(arb_entry(), 1..200)
    ) {
        prop_assert!(cycles(&entries, 2, 2) <= cycles(&entries, 2, 1));
    }

    #[test]
    fn prop_timing_is_deterministic(
        entries in proptest::collection::vec(arb_entry(), 1..100)
    ) {
        prop_assert_eq!(cycles(&entries, 2, 2), cycles(&entries, 2, 2));
    }
}
