use maicc_exec::config::ExecConfig;
use maicc_exec::pipeline_model::run_network;
use maicc_exec::segment::Strategy;
use maicc_nn::resnet::resnet18;

fn main() {
    let net = resnet18(1000);
    let cfg = ExecConfig::default();
    for strat in Strategy::ALL {
        let r = run_network(&net, [64, 56, 56], strat, &cfg).unwrap();
        println!("=== {:?}: total {:.3} ms", strat, r.total_ms(&cfg));
        for (i, s) in r.segments.iter().enumerate() {
            println!("  seg{} latency {:.3} ms (load {:.3})", i, cfg.cycles_to_ms(s.latency()), cfg.cycles_to_ms(s.filter_load));
        }
        for l in &r.layers {
            println!("  {:10} nodes {:4} period {:7.1} eff {:8.1} iters {}", l.name, l.nodes, l.timing.period, l.effective_period, l.timing.iterations);
        }
    }
}
