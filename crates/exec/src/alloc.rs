//! Per-layer CMem capacity and iteration-time math (§4.1).
//!
//! A computing core's seven slices hold `7Q = 49` vector slots of 256
//! bit-lines each (8-bit precision, 8 rows reserved for the ifmap). A
//! filter of `R×S×C` therefore occupies `R·S·min(C,256)` bit-line-slots
//! per 256-channel group, and layers with `C > 256` split filters into
//! `⌈C/256⌉` channel groups whose partial sums the scalar core combines —
//! so the number a core holds is
//! `⌊49·256 / (R·S·min(C,256))⌋` sub-filters.
//!
//! This formula reproduces the paper's greedy node counts exactly for
//! every Table-6 layer with `C ≤ 256` (5, 8, 14, 27, 53, 2, 4, 12 …).

use crate::config::ExecConfig;
use crate::ExecError;
use maicc_nn::graph::LayerShape;
use serde::{Deserialize, Serialize};

/// Vector slots per core (7 computing slices × 7 slots at 8-bit).
pub const SLOTS_PER_CORE: usize = 49;
/// Bit-lines per slot.
pub const SLOT_BITS: usize = 256;

/// Vector slots per core at an arbitrary precision: each slice holds
/// `Q = 64/n − 1` transposed n-bit vectors (§4.1), seven slices compute.
#[must_use]
pub fn slots_per_core(n_bits: usize) -> usize {
    7 * (64 / n_bits.max(1)).saturating_sub(1)
}

/// Static capacity facts for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerCapacity {
    /// Channel groups (`⌈C/256⌉`).
    pub groups: usize,
    /// Sub-filters in total (`M × groups`, or `M` for the streamed linear
    /// layer).
    pub sub_filters: usize,
    /// Maximum sub-filters one core can hold.
    pub per_core_max: usize,
}

impl LayerCapacity {
    /// Computes the capacity facts for a layer at 8-bit precision.
    #[must_use]
    pub fn of(shape: &LayerShape) -> Self {
        Self::of_bits(shape, 8)
    }

    /// Computes the capacity facts at an explicit element precision: lower
    /// precision packs more vectors per slice (`Q = 64/n − 1`) so layers
    /// need fewer cores, at `n²` CMem cycles per MAC.
    #[must_use]
    pub fn of_bits(shape: &LayerShape, n_bits: usize) -> Self {
        let slots = slots_per_core(n_bits);
        if shape.is_linear {
            // weight-stationary is pointless at batch 1: each core anchors
            // one slot's worth of output neurons and streams weight groups
            return LayerCapacity {
                groups: shape.in_c.div_ceil(SLOT_BITS),
                sub_filters: shape.out_c,
                per_core_max: slots,
            };
        }
        let cpv = shape.in_c.min(SLOT_BITS);
        let groups = shape.in_c.div_ceil(SLOT_BITS);
        let bits_per_sub = shape.kernel_h * shape.kernel_w * cpv;
        let per_core_max = (slots * SLOT_BITS) / bits_per_sub;
        LayerCapacity {
            groups,
            sub_filters: shape.out_c * groups,
            per_core_max,
        }
    }

    /// Minimum computing cores that can hold the whole layer.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::LayerTooLarge`] if one sub-filter exceeds a
    /// core's CMem.
    pub fn min_cores(&self, name: &str) -> Result<usize, ExecError> {
        if self.per_core_max == 0 {
            return Err(ExecError::LayerTooLarge {
                layer: name.to_string(),
                needed: usize::MAX,
                available: 0,
            });
        }
        Ok(self.sub_filters.div_ceil(self.per_core_max))
    }

    /// Computing cores beyond which extra cores hold nothing.
    #[must_use]
    pub fn max_useful_cores(&self) -> usize {
        self.sub_filters
    }
}

/// One layer's node-group allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerAlloc {
    /// The layer's static shape.
    pub shape: LayerShape,
    /// Capacity facts.
    pub capacity: LayerCapacity,
    /// Computing cores assigned (excludes the data-collection core).
    pub computing_cores: usize,
    /// Whether this layer's DC reads its ifmap from DRAM (segment entry)
    /// rather than from the previous layer's cores.
    pub fed_from_dram: bool,
    /// Whether this layer's ofmap leaves to DRAM (segment exit).
    pub drains_to_dram: bool,
}

/// Per-iteration timing of one allocated layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerTiming {
    /// Ifmap vectors streamed (one per input pixel).
    pub iterations: u64,
    /// CMem occupancy per iteration on the busiest core.
    pub t_cmem: f64,
    /// Scalar-pipeline work per iteration on the busiest core.
    pub t_core: f64,
    /// Computing-core period (`max(t_cmem, t_core)` — Equation (1)).
    pub t_cc: f64,
    /// Data-collection period.
    pub t_dc: f64,
    /// The streaming period of the whole node group.
    pub period: f64,
    /// Vector MACs per core per iteration (average).
    pub macs_per_iter: f64,
    /// Row receive+send cycles per iteration (for Figure 9's breakdown).
    pub t_recv: f64,
    /// Row forward cycles per iteration.
    pub t_send_ifmap: f64,
    /// Ofmap store cycles per iteration.
    pub t_send_ofmap: f64,
}

impl LayerAlloc {
    /// Creates an allocation with `computing_cores` cores (8-bit layout).
    #[must_use]
    pub fn new(shape: LayerShape, computing_cores: usize) -> Self {
        Self::with_bits(shape, computing_cores, 8)
    }

    /// Creates an allocation at an explicit precision.
    #[must_use]
    pub fn with_bits(shape: LayerShape, computing_cores: usize, n_bits: usize) -> Self {
        let capacity = LayerCapacity::of_bits(&shape, n_bits);
        LayerAlloc {
            shape,
            capacity,
            computing_cores,
            fed_from_dram: false,
            drains_to_dram: false,
        }
    }

    /// Total nodes including the data-collection core.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.computing_cores + 1
    }

    /// Average sub-filters per computing core.
    #[must_use]
    pub fn sub_filters_per_core(&self) -> f64 {
        self.capacity.sub_filters as f64 / self.computing_cores as f64
    }

    /// Evaluates the per-iteration timing under `cfg`.
    #[must_use]
    pub fn timing(&self, cfg: &ExecConfig) -> LayerTiming {
        let s = &self.shape;
        let n = cfg.n_bits as f64;
        let g = self.capacity.groups as f64;
        let iterations = (s.in_h * s.in_w) as u64;
        if s.is_linear {
            return self.linear_timing(cfg);
        }
        let spc = self.sub_filters_per_core().ceil();
        // average useful MACs per arriving vector (margins and stride
        // discounted): every ofmap value needs R·S MACs per group
        let useful = (s.out_h * s.out_w * s.kernel_h * s.kernel_w) as f64
            / (s.in_h * s.in_w) as f64;
        let macs_per_iter = spc * useful;
        let t_cmem = g * 7.0 * n + (macs_per_iter / 7.0).ceil() * n * n;
        // ofmap values finished per core per iteration
        let vals = (spc / g) * (s.out_h * s.out_w) as f64 / (s.in_h * s.in_w) as f64;
        let rows = g * n;
        let t_recv = rows * cfg.row_recv_cycles;
        let t_send_ifmap = rows * cfg.row_send_cycles + cfg.handshake_cycles;
        let t_send_ofmap = vals * cfg.aux_per_value;
        let t_core = t_recv
            + macs_per_iter * cfg.accumulate_per_mac
            + t_send_ofmap
            + t_send_ifmap;
        let t_cc = t_cmem.max(t_core);
        // the data-collection core: receive/fetch C bytes, transpose them
        // vertically into slice 0, send the rows on
        let c = s.in_c as f64;
        let fetch = if self.fed_from_dram {
            // blocking word loads with growing memory-level parallelism:
            // larger transfers overlap more round trips (scoreboard +
            // channel interleave), so the per-word cost shrinks as C^-1/4
            (c / 4.0) * cfg.dram_load_cycles * (64.0 / c).powf(0.25)
                + c * cfg.transpose_per_byte * 0.5
        } else {
            c * cfg.transpose_per_byte
        };
        let t_dc = fetch + rows * cfg.row_send_cycles + cfg.handshake_cycles;
        let period = t_cc.max(t_dc);
        LayerTiming {
            iterations,
            t_cmem,
            t_core,
            t_cc,
            t_dc,
            period,
            macs_per_iter,
            t_recv,
            t_send_ifmap,
            t_send_ofmap,
        }
    }

    fn linear_timing(&self, cfg: &ExecConfig) -> LayerTiming {
        let s = &self.shape;
        let n = cfg.n_bits as f64;
        let g = self.capacity.groups as f64;
        let spc = self.sub_filters_per_core().ceil();
        // per input group: one MAC per resident output neuron, plus the
        // weight restream for groups past the first — the first group's
        // load is the segment pre-load the pipeline model already charges
        // as `filter_load`, so a single-group layer restreams nothing
        let weight_bytes = (s.in_c * s.out_c) as f64 / self.computing_cores as f64;
        let restream_bytes = weight_bytes * (g - 1.0) / g;
        let t_cmem = g * (7.0 * n + (spc / 7.0).ceil() * n * n);
        let t_core = spc * cfg.accumulate_per_mac * g
            + spc * cfg.aux_per_value
            + restream_bytes / (cfg.filter_load_bw / self.computing_cores as f64);
        let t_cc = t_cmem.max(t_core);
        let t_dc = s.in_c as f64 * cfg.transpose_per_byte + g * n * cfg.row_send_cycles;
        LayerTiming {
            iterations: 1,
            t_cmem,
            t_core,
            t_cc,
            t_dc,
            period: t_cc.max(t_dc),
            macs_per_iter: spc * g,
            t_recv: g * n * cfg.row_recv_cycles,
            t_send_ifmap: 0.0,
            t_send_ofmap: spc * cfg.aux_per_value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maicc_nn::resnet::resnet18;

    fn shapes() -> Vec<LayerShape> {
        resnet18(1000).shapes([64, 56, 56]).unwrap()
    }

    #[test]
    fn greedy_min_cores_match_paper_table6() {
        // paper's greedy column (computing cores = column minus the DC):
        // conv1_1: 5 → 4 CC, conv2_1: 8 → 7, conv2_2: 14 → 13,
        // shortcut1: 2 → 1, shortcut2: 4 → 3, conv3_1: 27 → 26,
        // conv3_2: 53 → 52, shortcut3: 12 → 11
        let expect = [
            ("conv1_1", 4),
            ("shortcut1", 1),
            ("conv2_1", 7),
            ("conv2_2", 13),
            ("shortcut2", 3),
            ("conv3_1", 26),
            ("conv3_2", 52),
            ("shortcut3", 11),
        ];
        let shapes = shapes();
        for (name, cc) in expect {
            let s = shapes.iter().find(|s| s.name == name).unwrap();
            let cap = LayerCapacity::of(s);
            assert_eq!(
                cap.min_cores(name).unwrap(),
                cc,
                "{name}: groups={} sub={} max/core={}",
                cap.groups,
                cap.sub_filters,
                cap.per_core_max
            );
        }
    }

    #[test]
    fn conv4_layers_split_channels() {
        let shapes = shapes();
        let s = shapes.iter().find(|s| s.name == "conv4_2").unwrap();
        let cap = LayerCapacity::of(s);
        assert_eq!(cap.groups, 2);
        assert_eq!(cap.sub_filters, 1024);
        assert_eq!(cap.per_core_max, 5);
        // 205 computing cores — the paper reports 208 nodes total
        assert_eq!(cap.min_cores("conv4_2").unwrap(), 205);
    }

    #[test]
    fn linear_layer_matches_paper_22_nodes() {
        let shapes = shapes();
        let s = shapes.iter().find(|s| s.is_linear).unwrap();
        let cap = LayerCapacity::of(s);
        // 1000 outputs / 49 per core = 21 computing cores (+1 DC = 22)
        assert_eq!(cap.min_cores("linear").unwrap(), 21);
    }

    #[test]
    fn single_group_linear_charges_no_restream() {
        let cfg = ExecConfig::default();
        // resnet18's classifier: 512 inputs → two 256-channel groups
        let shapes = shapes();
        let s = shapes.iter().find(|s| s.is_linear).unwrap();
        let cores = LayerCapacity::of(s).min_cores("linear").unwrap();
        let a = LayerAlloc::new(s.clone(), cores);
        let spc = a.sub_filters_per_core().ceil();
        let g = a.capacity.groups as f64;
        assert_eq!(a.capacity.groups, 2);
        // groups past the first restream their slice; the first load is
        // the pipeline model's per-segment filter_load
        let wb = (s.in_c * s.out_c) as f64 / a.computing_cores as f64;
        let expect = spc * cfg.accumulate_per_mac * g
            + spc * cfg.aux_per_value
            + wb * (g - 1.0) / g / (cfg.filter_load_bw / a.computing_cores as f64);
        assert!((a.timing(&cfg).t_core - expect).abs() < 1e-9);

        // a single-group variant charges no restream at all: t_core is
        // purely MAC + aux (this used to double-count the initial load)
        let mut s1 = s.clone();
        s1.in_c = 256;
        let a1 = LayerAlloc::new(s1, cores);
        let spc1 = a1.sub_filters_per_core().ceil();
        assert_eq!(a1.capacity.groups, 1);
        let expect1 = spc1 * cfg.accumulate_per_mac + spc1 * cfg.aux_per_value;
        assert!((a1.timing(&cfg).t_core - expect1).abs() < 1e-9);
    }

    #[test]
    fn precision_scales_capacity() {
        let shapes = shapes();
        let s = shapes.iter().find(|s| s.name == "conv3_2").unwrap();
        let c4 = LayerCapacity::of_bits(s, 4);
        let c8 = LayerCapacity::of_bits(s, 8);
        let c16 = LayerCapacity::of_bits(s, 16);
        // Q = 15 / 7 / 3 slots per slice
        assert!(c4.per_core_max > c8.per_core_max);
        assert!(c8.per_core_max > c16.per_core_max);
        assert_eq!(c8.per_core_max, 5);
        assert_eq!(slots_per_core(4), 105);
        assert_eq!(slots_per_core(8), 49);
        assert_eq!(slots_per_core(16), 21);
    }

    #[test]
    fn table4_node_holds_five_filters() {
        // 3×3×256 filters: ⌊49·256/(9·256)⌋ = 5, exactly Figure 6's claim
        let s = LayerShape {
            name: "t4".into(),
            in_c: 256,
            in_h: 9,
            in_w: 9,
            out_c: 5,
            out_h: 7,
            out_w: 7,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            macs: 0,
            is_linear: false,
        };
        assert_eq!(LayerCapacity::of(&s).per_core_max, 5);
    }

    #[test]
    fn timing_period_is_max_of_stages() {
        let shapes = shapes();
        let s = shapes.iter().find(|s| s.name == "conv2_2").unwrap();
        let mut a = LayerAlloc::new(s.clone(), 13);
        let cfg = ExecConfig::default();
        let t = a.timing(&cfg);
        assert_eq!(t.iterations, 28 * 28);
        assert!((t.period - t.t_cc.max(t.t_dc)).abs() < 1e-9);
        assert!(t.t_cc >= t.t_cmem && t.t_cc >= t.t_core);
        // DRAM-fed DC is slower
        a.fed_from_dram = true;
        let t2 = a.timing(&cfg);
        assert!(t2.t_dc > t.t_dc);
    }

    #[test]
    fn more_cores_reduce_compute_period() {
        let shapes = shapes();
        let s = shapes.iter().find(|s| s.name == "conv3_2").unwrap();
        let cfg = ExecConfig::default();
        let few = LayerAlloc::new(s.clone(), 52).timing(&cfg);
        let many = LayerAlloc::new(s.clone(), 150).timing(&cfg);
        assert!(many.t_cmem < few.t_cmem);
        assert!(many.t_cc <= few.t_cc);
    }

    #[test]
    fn stride_two_reduces_average_macs() {
        let shapes = shapes();
        let s1 = shapes.iter().find(|s| s.name == "conv2_2").unwrap();
        let s2 = shapes.iter().find(|s| s.name == "conv2_1").unwrap();
        let cfg = ExecConfig::default();
        let a1 = LayerAlloc::new(s1.clone(), 13).timing(&cfg);
        let a2 = LayerAlloc::new(s2.clone(), 7).timing(&cfg);
        // same filters per core, but the stride-2 layer MACs only a quarter
        // of the windows per arriving vector
        assert!(a2.macs_per_iter < a1.macs_per_iter);
    }

    #[test]
    fn oversized_filter_rejected() {
        let s = LayerShape {
            name: "huge".into(),
            in_c: 256,
            in_h: 14,
            in_w: 14,
            out_c: 64,
            out_h: 8,
            out_w: 8,
            kernel_h: 7,
            kernel_w: 7,
            stride: 1,
            macs: 0,
            is_linear: false,
        };
        let cap = LayerCapacity::of(&s);
        assert_eq!(cap.per_core_max, 1); // 49·256/(49·256) = 1, still fits
        let s9 = LayerShape {
            kernel_h: 9,
            kernel_w: 9,
            ..s
        };
        assert!(LayerCapacity::of(&s9).min_cores("huge").is_err());
    }
}
