//! Micro-cost parameters of the execution model.
//!
//! The paper's Equation (1) models per-layer time as
//! `T = max(T_CMem, T_aux + T_rs)` with calibration coefficients `k₁, k₂`.
//! [`ExecConfig`] plays the same role, but every coefficient is a named,
//! documented micro-cost; defaults are derived from the cycle-accurate
//! node model of `maicc-core` and the memory/NoC models.

use serde::{Deserialize, Serialize};

/// Micro-costs (cycles) and machine geometry for the execution model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecConfig {
    /// Compute cores available (210 in the evaluated chip).
    pub cores: usize,
    /// Activation/weight precision in bits (8 in the evaluation).
    pub n_bits: usize,
    /// Effective latency of one blocking 4-byte DRAM load issued by a
    /// data-collection core at a segment boundary. The scoreboard keeps a
    /// couple of loads in flight, so this is below the raw ~60-cycle
    /// round trip.
    pub dram_load_cycles: f64,
    /// Cycles per byte to receive + transpose one activation into slice 0
    /// (local `lb`, vertical `sb`, pointer bookkeeping).
    pub transpose_per_byte: f64,
    /// Cycles for a computing core to receive one transposed row
    /// (`LoadRow.RC` issue + arrival bookkeeping).
    pub row_recv_cycles: f64,
    /// Cycles to forward one transposed row to the next core
    /// (`StoreRow.RC` issue; the NoC pipelines the flits).
    pub row_send_cycles: f64,
    /// Cycles per vector MAC spent in the scalar pipeline accumulating the
    /// partial sum into the ofmap (the software-pipelined 10-instruction
    /// block measured in `maicc-core::kernels`).
    pub accumulate_per_mac: f64,
    /// Auxiliary-function cycles per completed ofmap value (requantize,
    /// ReLU, pooling share, remote store of the result).
    pub aux_per_value: f64,
    /// Software-lock handshake (`p`/`nextp` flags, Algorithm 1) per
    /// ifmap vector per hop: one remote flag poll + one flag store.
    pub handshake_cycles: f64,
    /// Mean NoC hop latency used for fill/drain terms.
    pub hop_cycles: f64,
    /// Aggregate filter-load bandwidth from DRAM at segment start,
    /// bytes/cycle (32 channels streaming).
    pub filter_load_bw: f64,
    /// Core clock in Hz.
    pub freq_hz: f64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            cores: 210,
            n_bits: 8,
            dram_load_cycles: 45.0,
            transpose_per_byte: 3.0,
            row_recv_cycles: 2.0,
            row_send_cycles: 3.0,
            accumulate_per_mac: 10.0,
            aux_per_value: 30.0,
            handshake_cycles: 40.0,
            hop_cycles: 2.0,
            filter_load_bw: 128.0,
            freq_hz: 1.0e9,
        }
    }
}

impl ExecConfig {
    /// Converts cycles to milliseconds at the configured clock.
    #[must_use]
    pub fn cycles_to_ms(&self, cycles: f64) -> f64 {
        cycles / self.freq_hz * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_1ghz_210_cores() {
        let c = ExecConfig::default();
        assert_eq!(c.cores, 210);
        assert!((c.cycles_to_ms(1.0e6) - 1.0).abs() < 1e-12);
    }
}
