//! Dataflow comparison at vector granularity (§4.2).
//!
//! The paper argues that with a CMem that "stores and computes in the
//! granularity of vectors, some fine-grained dataflows such as OS and RS
//! lack sufficient pipeline depth to gain efficiency, while WS still
//! works". This module makes that argument quantitative: for a layer and a
//! node-group size it computes, per dataflow,
//!
//! * the **inter-node traffic** each stationary choice implies (what must
//!   stream because it is *not* stationary), and
//! * the **pipeline depth** — consecutive `MAC.C`s a core can issue per
//!   arriving vector, which must cover the `n²`-cycle MAC latency for the
//!   CMem to stay busy.

use maicc_nn::graph::LayerShape;
use serde::{Deserialize, Serialize};

/// The classic stationary choices (§4.2, Related Work).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataflow {
    /// Filters resident in CMem; ifmap vectors stream through the chain.
    WeightStationary,
    /// Ofmap partial sums resident; weight vectors stream per output.
    OutputStationary,
    /// Filter/ifmap rows paired per core; both stream at row granularity.
    RowStationary,
}

impl Dataflow {
    /// All three, WS first.
    pub const ALL: [Dataflow; 3] = [
        Dataflow::WeightStationary,
        Dataflow::OutputStationary,
        Dataflow::RowStationary,
    ];
}

/// Cost summary for one (layer, dataflow, group size) point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataflowCost {
    /// Bytes of weights entering nodes over the layer's execution.
    pub weight_traffic: f64,
    /// Bytes of ifmap entering nodes (including chain forwarding).
    pub ifmap_traffic: f64,
    /// Bytes of partial sums crossing nodes.
    pub psum_traffic: f64,
    /// Consecutive MACs a core performs per arriving vector — the work
    /// available to hide the `n²`-cycle MAC latency.
    pub pipeline_depth: f64,
}

impl DataflowCost {
    /// Total inter-node traffic in bytes.
    #[must_use]
    pub fn total_traffic(&self) -> f64 {
        self.weight_traffic + self.ifmap_traffic + self.psum_traffic
    }

    /// Whether the depth covers an n-bit MAC's latency given the ~10-cycle
    /// per-MAC issue cost of the scalar pipeline: the CMem stays saturated
    /// when `depth × n² ≥ depth × issue`, i.e. whenever `depth ≥ n²/…` —
    /// in practice depth ≥ 7 lets the seven slices overlap fully.
    #[must_use]
    pub fn saturates_cmem(&self) -> bool {
        self.pipeline_depth >= 7.0
    }
}

/// Evaluates a dataflow for `shape` on a chain of `cores` computing cores.
#[must_use]
pub fn evaluate(shape: &LayerShape, dataflow: Dataflow, cores: usize) -> DataflowCost {
    let m = shape.out_c as f64;
    let c = shape.in_c as f64;
    let rs = (shape.kernel_h * shape.kernel_w) as f64;
    let hw = (shape.in_h * shape.in_w) as f64;
    let ohw = (shape.out_h * shape.out_w) as f64;
    let weights = m * c * rs;
    let ifmap = hw * c;
    let ofmap = ohw * m;
    let l = cores as f64;
    match dataflow {
        Dataflow::WeightStationary => DataflowCost {
            // weights loaded exactly once
            weight_traffic: weights,
            // every ifmap vector visits every core in the chain
            ifmap_traffic: ifmap * l,
            // partial sums never leave their core; only final values move
            psum_traffic: ofmap,
            // each arriving vector MACs against all resident filter vectors
            pipeline_depth: (m / l) * rs,
        },
        Dataflow::OutputStationary => DataflowCost {
            // every output tile pulls every weight vector it needs: the
            // weight volume streams once per tile row of outputs
            weight_traffic: weights * (ohw / l).max(1.0),
            // each core pulls only its tile's input halo
            ifmap_traffic: ifmap * rs.sqrt(),
            psum_traffic: 0.0,
            // a streamed weight vector is used once per resident output
            // position before the next must arrive
            pipeline_depth: 1.0,
        },
        Dataflow::RowStationary => DataflowCost {
            // filter rows stay, ifmap rows stream diagonally, psum rows hop
            weight_traffic: weights,
            ifmap_traffic: ifmap * rs.sqrt() * (l / rs).max(1.0),
            psum_traffic: ofmap * rs.sqrt(),
            // one row pair yields ~R MACs before new data is needed
            pipeline_depth: rs.sqrt(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maicc_nn::resnet::resnet18;

    fn conv3_2() -> LayerShape {
        resnet18(1000)
            .shapes([64, 56, 56])
            .unwrap()
            .into_iter()
            .find(|s| s.name == "conv3_2")
            .unwrap()
    }

    #[test]
    fn ws_saturates_the_cmem_others_do_not() {
        let s = conv3_2();
        let ws = evaluate(&s, Dataflow::WeightStationary, 52);
        let os = evaluate(&s, Dataflow::OutputStationary, 52);
        let rs = evaluate(&s, Dataflow::RowStationary, 52);
        assert!(ws.saturates_cmem(), "{ws:?}");
        assert!(!os.saturates_cmem(), "{os:?}");
        assert!(!rs.saturates_cmem(), "{rs:?}");
    }

    #[test]
    fn os_weight_traffic_explodes() {
        let s = conv3_2();
        let ws = evaluate(&s, Dataflow::WeightStationary, 52);
        let os = evaluate(&s, Dataflow::OutputStationary, 52);
        assert!(
            os.weight_traffic > 2.0 * ws.weight_traffic,
            "ws {} vs os {}",
            ws.weight_traffic,
            os.weight_traffic
        );
    }

    #[test]
    fn ws_psums_stay_local() {
        let s = conv3_2();
        let ws = evaluate(&s, Dataflow::WeightStationary, 52);
        // only final ofmap values cross nodes
        assert!((ws.psum_traffic - (s.out_h * s.out_w * s.out_c) as f64).abs() < 1e-9);
    }

    #[test]
    fn depth_shrinks_with_more_cores() {
        let s = conv3_2();
        let few = evaluate(&s, Dataflow::WeightStationary, 52);
        let many = evaluate(&s, Dataflow::WeightStationary, 208);
        assert!(many.pipeline_depth < few.pipeline_depth);
    }
}
