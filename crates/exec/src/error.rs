use std::fmt;

/// Errors raised by the execution framework.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// A layer cannot fit even with one sub-filter per core.
    LayerTooLarge {
        /// The layer's name.
        layer: String,
        /// Cores it would need at minimum.
        needed: usize,
        /// Cores available.
        available: usize,
    },
    /// Shape propagation failed.
    BadShapes {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::LayerTooLarge {
                layer,
                needed,
                available,
            } => write!(
                f,
                "layer {layer} needs {needed} cores but only {available} exist"
            ),
            ExecError::BadShapes { reason } => write!(f, "bad shapes: {reason}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<maicc_nn::NnError> for ExecError {
    fn from(e: maicc_nn::NnError) -> Self {
        ExecError::BadShapes {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_layer() {
        let e = ExecError::LayerTooLarge {
            layer: "conv4_2".into(),
            needed: 300,
            available: 210,
        };
        assert!(e.to_string().contains("conv4_2"));
    }
}
