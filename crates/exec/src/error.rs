use std::fmt;

/// Errors raised by the execution framework.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// A layer cannot fit even with one sub-filter per core.
    LayerTooLarge {
        /// The layer's name.
        layer: String,
        /// Cores it would need at minimum.
        needed: usize,
        /// Cores available.
        available: usize,
    },
    /// Shape propagation failed.
    BadShapes {
        /// Human-readable description.
        reason: String,
    },
    /// Node-group placement ran out of healthy tiles: the groups need more
    /// tiles than the compute region has left after failures.
    PlacementOverflow {
        /// Tiles the groups need (computing cores plus their DCs).
        requested: usize,
        /// Healthy tiles remaining in the compute region.
        healthy: usize,
        /// Tiles marked failed inside the compute region.
        failed: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::LayerTooLarge {
                layer,
                needed,
                available,
            } => write!(
                f,
                "layer {layer} needs {needed} cores but only {available} exist"
            ),
            ExecError::BadShapes { reason } => write!(f, "bad shapes: {reason}"),
            ExecError::PlacementOverflow {
                requested,
                healthy,
                failed,
            } => write!(
                f,
                "placement needs {requested} tiles but only {healthy} healthy \
                 tiles remain ({failed} failed)"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<maicc_nn::NnError> for ExecError {
    fn from(e: maicc_nn::NnError) -> Self {
        ExecError::BadShapes {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_layer() {
        let e = ExecError::LayerTooLarge {
            layer: "conv4_2".into(),
            needed: 300,
            available: 210,
        };
        assert!(e.to_string().contains("conv4_2"));
    }

    #[test]
    fn display_counts_placement_overflow() {
        let e = ExecError::PlacementOverflow {
            requested: 200,
            healthy: 180,
            failed: 30,
        };
        let s = e.to_string();
        assert!(s.contains("200") && s.contains("180") && s.contains("30"), "{s}");
    }
}
