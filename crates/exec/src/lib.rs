#![warn(missing_docs)]

//! # maicc-exec — the DNN execution framework (§4)
//!
//! This crate maps DNN models onto the many-core array and predicts their
//! execution, reproducing §4's three mechanisms:
//!
//! * **intra-node computing flow** (§4.1) — weight-stationary layout of
//!   filter vectors in the seven computing slices, `7N + QN²`-cycle
//!   iterations ([`alloc`]);
//! * **inter-node streaming** (§4.2) — node groups of one data-collection
//!   core plus a chain of computing cores, with intra-layer streaming and
//!   inter-layer pipelining ([`pipeline_model`]);
//! * **layer segmentation and mapping** (§4.3) — the single-layer, greedy
//!   and heuristic strategies of Table 6 ([`segment`]) and the zig-zag
//!   placement of Figure 7(c) ([`mapping`]);
//! * the **dataflow comparison** behind §4.2's choice of weight-stationary
//!   at vector granularity ([`dataflow`]).
//!
//! The timing model is vector-granularity: every layer's data-collection
//! and computing stages advance one ifmap vector at a time, with the
//! slower stage setting the streaming period — the same structure the
//! paper's Equation (1) optimizes, with every micro-cost documented in
//! [`config::ExecConfig`].
//!
//! ## Example
//!
//! ```
//! use maicc_exec::config::ExecConfig;
//! use maicc_exec::segment::Strategy;
//! use maicc_exec::pipeline_model::run_network;
//! use maicc_nn::resnet::resnet18;
//!
//! let net = resnet18(1000);
//! let cfg = ExecConfig::default();
//! let h = run_network(&net, [64, 56, 56], Strategy::Heuristic, &cfg).unwrap();
//! let g = run_network(&net, [64, 56, 56], Strategy::Greedy, &cfg).unwrap();
//! let s = run_network(&net, [64, 56, 56], Strategy::SingleLayer, &cfg).unwrap();
//! // Table 6's ordering: heuristic < greedy < single-layer
//! assert!(h.total_cycles < g.total_cycles);
//! assert!(g.total_cycles < s.total_cycles);
//! ```

pub mod alloc;
pub mod config;
pub mod dataflow;
pub mod mapping;
pub mod pipeline_model;
pub mod segment;

mod error;

pub use error::ExecError;
