//! Zig-zag placement of node groups on the compute array (§4.3, Fig 7(c)).
//!
//! The mapping walks the 15×14 compute region in a serpentine so that
//! consecutive cores of a node group are physically adjacent — each ifmap
//! forward is then a single-hop NoC transfer — and a layer's last cores
//! sit near the next layer's data-collection core.
//!
//! When tiles are marked **failed**, [`place_groups_avoiding`] remaps the
//! node groups onto the same serpentine with the dead tiles removed: the
//! zig-zag ordering is preserved, chains simply hop over holes. The extra
//! hop cost is observable through [`mean_placement_hops`] and feeds the
//! degraded-latency model in
//! [`pipeline_model`](crate::pipeline_model::run_network_degraded).

use crate::ExecError;
use serde::{Deserialize, Serialize};

/// Compute-array width (the 16×16 mesh minus the host column).
pub const ARRAY_W: usize = 15;
/// Compute-array height (minus the two LLC rows).
pub const ARRAY_H: usize = 14;

/// A tile position inside the compute region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tile {
    /// Column.
    pub x: u8,
    /// Row.
    pub y: u8,
}

impl Tile {
    /// Manhattan distance.
    #[must_use]
    pub fn hops_to(self, o: Tile) -> u32 {
        self.x.abs_diff(o.x) as u32 + self.y.abs_diff(o.y) as u32
    }
}

/// The serpentine visit order of the whole compute region.
#[must_use]
pub fn zigzag_order() -> Vec<Tile> {
    let mut out = Vec::with_capacity(ARRAY_W * ARRAY_H);
    for y in 0..ARRAY_H {
        let xs: Vec<usize> = if y % 2 == 0 {
            (0..ARRAY_W).collect()
        } else {
            (0..ARRAY_W).rev().collect()
        };
        for x in xs {
            out.push(Tile {
                x: x as u8,
                y: y as u8,
            });
        }
    }
    out
}

/// Placement of one node group: the data-collection core followed by its
/// computing cores, in chain order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupPlacement {
    /// The data-collection core.
    pub dc: Tile,
    /// The computing cores in streaming order.
    pub computing: Vec<Tile>,
}

impl GroupPlacement {
    /// Mean hop count along the forwarding chain (1.0 when perfectly
    /// adjacent).
    #[must_use]
    pub fn mean_chain_hops(&self) -> f64 {
        if self.computing.is_empty() {
            return 0.0;
        }
        let mut hops = self.dc.hops_to(self.computing[0]) as f64;
        for w in self.computing.windows(2) {
            hops += w[0].hops_to(w[1]) as f64;
        }
        hops / self.computing.len() as f64
    }
}

/// The serpentine visit order with failed tiles removed: the healthy
/// tiles, still in zig-zag order.
#[must_use]
pub fn healthy_order(failed: &[Tile]) -> Vec<Tile> {
    zigzag_order()
        .into_iter()
        .filter(|t| !failed.contains(t))
        .collect()
}

/// Places consecutive node groups (sized `1 + computing_cores` each) along
/// the serpentine. Returns `None` if the groups exceed the array.
#[must_use]
pub fn place_groups(group_sizes: &[usize]) -> Option<Vec<GroupPlacement>> {
    try_place_groups(group_sizes).ok()
}

/// [`place_groups`] with a typed error instead of `None`.
///
/// # Errors
///
/// Returns [`ExecError::PlacementOverflow`] if the groups exceed the
/// array.
pub fn try_place_groups(group_sizes: &[usize]) -> Result<Vec<GroupPlacement>, ExecError> {
    place_groups_avoiding(group_sizes, &[])
}

/// Places node groups along the serpentine while routing around failed
/// tiles: dead tiles are removed from the visit order, so chains keep the
/// zig-zag shape but hop over holes (degrading adjacency from 1 hop to 2+
/// where a tile died).
///
/// # Errors
///
/// Returns [`ExecError::PlacementOverflow`] if the groups need more tiles
/// than remain healthy.
pub fn place_groups_avoiding(
    group_sizes: &[usize],
    failed: &[Tile],
) -> Result<Vec<GroupPlacement>, ExecError> {
    let order = healthy_order(failed);
    let total: usize = group_sizes.iter().map(|&c| c + 1).sum();
    if total > order.len() {
        return Err(ExecError::PlacementOverflow {
            requested: total,
            healthy: order.len(),
            failed: ARRAY_W * ARRAY_H - order.len(),
        });
    }
    let mut cursor = 0;
    let mut out = Vec::with_capacity(group_sizes.len());
    for &cc in group_sizes {
        let dc = order[cursor];
        let computing = order[cursor + 1..cursor + 1 + cc].to_vec();
        cursor += cc + 1;
        out.push(GroupPlacement { dc, computing });
    }
    Ok(out)
}

/// Mean hop count per chain link across all placements, weighted by chain
/// length: exactly 1.0 on a healthy array, above 1.0 when chains hop over
/// failed tiles. This is the NoC-latency degradation factor of a remapped
/// placement.
#[must_use]
pub fn mean_placement_hops(groups: &[GroupPlacement]) -> f64 {
    let mut hops = 0.0;
    let mut links = 0usize;
    for g in groups {
        if g.computing.is_empty() {
            continue;
        }
        hops += g.dc.hops_to(g.computing[0]) as f64;
        for w in g.computing.windows(2) {
            hops += w[0].hops_to(w[1]) as f64;
        }
        links += g.computing.len();
    }
    if links == 0 {
        1.0
    } else {
        hops / links as f64
    }
}

/// Renders group placements as an ASCII floor plan of the compute region:
/// each group gets a letter, its DC is upper-case, computing cores
/// lower-case, unused tiles are dots. The first groups read like
/// Figure 7(c)'s zig-zag.
#[must_use]
pub fn render_ascii(groups: &[GroupPlacement]) -> String {
    let mut grid = vec![vec!['.'; ARRAY_W]; ARRAY_H];
    for (gi, g) in groups.iter().enumerate() {
        let upper = (b'A' + (gi % 26) as u8) as char;
        let lower = upper.to_ascii_lowercase();
        grid[g.dc.y as usize][g.dc.x as usize] = upper;
        for t in &g.computing {
            grid[t.y as usize][t.x as usize] = lower;
        }
    }
    let mut out = String::with_capacity((ARRAY_W + 1) * ARRAY_H);
    for row in grid {
        out.extend(row);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn serpentine_covers_array_once() {
        let order = zigzag_order();
        assert_eq!(order.len(), ARRAY_W * ARRAY_H);
        let unique: std::collections::HashSet<_> = order.iter().collect();
        assert_eq!(unique.len(), order.len());
    }

    #[test]
    fn serpentine_steps_are_adjacent() {
        let order = zigzag_order();
        for w in order.windows(2) {
            assert_eq!(w[0].hops_to(w[1]), 1, "{:?} -> {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn placed_groups_have_adjacent_chains() {
        let groups = place_groups(&[4, 13, 26, 52]).unwrap();
        assert_eq!(groups.len(), 4);
        for g in &groups {
            assert!(
                (g.mean_chain_hops() - 1.0).abs() < 1e-9,
                "chain not adjacent: {:?}",
                g.mean_chain_hops()
            );
        }
    }

    #[test]
    fn groups_do_not_overlap() {
        let groups = place_groups(&[10, 20, 30]).unwrap();
        let mut seen = std::collections::HashSet::new();
        for g in &groups {
            assert!(seen.insert(g.dc));
            for t in &g.computing {
                assert!(seen.insert(*t));
            }
        }
    }

    #[test]
    fn overflow_returns_none() {
        assert!(place_groups(&[ARRAY_W * ARRAY_H]).is_none());
        assert!(place_groups(&[ARRAY_W * ARRAY_H - 1]).is_some());
    }

    #[test]
    fn ascii_map_marks_every_tile_once() {
        let groups = place_groups(&[4, 6]).unwrap();
        let map = render_ascii(&groups);
        assert_eq!(map.matches('A').count(), 1);
        assert_eq!(map.matches('a').count(), 4);
        assert_eq!(map.matches('B').count(), 1);
        assert_eq!(map.matches('b').count(), 6);
        assert_eq!(map.lines().count(), ARRAY_H);
        assert!(map.lines().all(|l| l.len() == ARRAY_W));
        // the zig-zag: group A occupies the start of row 0
        assert!(map.lines().next().unwrap().starts_with("Aaaaa"));
    }

    #[test]
    fn remap_skips_failed_tiles_and_keeps_groups_disjoint() {
        let failed = [
            Tile { x: 2, y: 0 },
            Tile { x: 7, y: 0 },
            Tile { x: 14, y: 1 },
        ];
        let groups = place_groups_avoiding(&[10, 20, 30], &failed).unwrap();
        let mut seen = std::collections::HashSet::new();
        for g in &groups {
            assert!(!failed.contains(&g.dc), "DC placed on dead tile");
            assert!(seen.insert(g.dc));
            for t in &g.computing {
                assert!(!failed.contains(t), "computing core on dead tile");
                assert!(seen.insert(*t));
            }
        }
    }

    #[test]
    fn remap_around_hole_costs_extra_hops() {
        // clean chain in row 0 is perfectly adjacent...
        let clean = try_place_groups(&[6]).unwrap();
        assert!((mean_placement_hops(&clean) - 1.0).abs() < 1e-9);
        // ...but a dead tile mid-chain forces a 2-hop skip
        let degraded = place_groups_avoiding(&[6], &[Tile { x: 2, y: 0 }]).unwrap();
        assert!(
            mean_placement_hops(&degraded) > 1.0,
            "hop penalty missing: {}",
            mean_placement_hops(&degraded)
        );
        // the zig-zag shape is respected: placement is the serpentine
        // minus the hole
        assert_eq!(degraded[0].dc, Tile { x: 0, y: 0 });
        assert_eq!(degraded[0].computing[0], Tile { x: 1, y: 0 });
        assert_eq!(degraded[0].computing[1], Tile { x: 3, y: 0 });
    }

    #[test]
    fn remap_overflow_is_typed() {
        let failed: Vec<Tile> = zigzag_order().into_iter().take(20).collect();
        let err = place_groups_avoiding(&[ARRAY_W * ARRAY_H - 20], &failed).unwrap_err();
        match err {
            ExecError::PlacementOverflow {
                requested,
                healthy,
                failed,
            } => {
                assert_eq!(requested, ARRAY_W * ARRAY_H - 19);
                assert_eq!(healthy, ARRAY_W * ARRAY_H - 20);
                assert_eq!(failed, 20);
            }
            other => panic!("expected PlacementOverflow, got {other:?}"),
        }
    }

    #[test]
    fn no_failures_matches_legacy_placement() {
        let sizes = [4, 13, 26, 52];
        assert_eq!(
            place_groups_avoiding(&sizes, &[]).unwrap(),
            place_groups(&sizes).unwrap()
        );
    }

    proptest! {
        #[test]
        fn prop_remap_avoids_dead_tiles(
            sizes in proptest::collection::vec(1usize..30, 1..5),
            dead_idx in proptest::collection::vec(0usize..(ARRAY_W * ARRAY_H), 0..8),
        ) {
            let order = zigzag_order();
            let failed: Vec<Tile> = dead_idx.iter().map(|&i| order[i]).collect();
            if let Ok(groups) = place_groups_avoiding(&sizes, &failed) {
                let mut seen = std::collections::HashSet::new();
                for g in &groups {
                    prop_assert!(!failed.contains(&g.dc));
                    prop_assert!(seen.insert(g.dc));
                    for t in &g.computing {
                        prop_assert!(!failed.contains(t));
                        prop_assert!(seen.insert(*t));
                    }
                }
                prop_assert!(mean_placement_hops(&groups) >= 1.0 - 1e-9);
            }
        }
    }

    proptest! {
        #[test]
        fn prop_any_fitting_partition_places(sizes in proptest::collection::vec(1usize..40, 1..6)) {
            let total: usize = sizes.iter().map(|&c| c + 1).sum();
            let placed = place_groups(&sizes);
            if total <= ARRAY_W * ARRAY_H {
                let groups = placed.expect("fits");
                prop_assert_eq!(groups.len(), sizes.len());
                for (g, &c) in groups.iter().zip(&sizes) {
                    prop_assert_eq!(g.computing.len(), c);
                }
            } else {
                prop_assert!(placed.is_none());
            }
        }
    }
}
