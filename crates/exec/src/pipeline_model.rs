//! Vector-granularity pipeline model of multi-layer execution (§4.2).
//!
//! Every layer is a two-stage pipeline — data-collection core, then the
//! computing-core chain — streaming one ifmap vector (pixel) per
//! iteration. Layers mapped in the same segment overlap: an ofmap pixel
//! becomes available to the next layer the moment its window completes
//! ("with a delay of R rows", Figure 7(a)). Segments execute in sequence
//! through DRAM.
//!
//! The model produces Table 6 (per-layer nodes and per-segment latency),
//! Figure 9 (per-iteration breakdowns), and the activity counters that
//! drive Table 7 / Figure 10(b) through `maicc-model`.

use crate::alloc::LayerTiming;
use crate::config::ExecConfig;
use crate::mapping::{
    mean_placement_hops, place_groups_avoiding, GroupPlacement, Tile, ARRAY_H, ARRAY_W,
};
use crate::segment::{segment, Segment, Strategy};
use crate::ExecError;
use maicc_model::power::ActivityCounters;
use maicc_nn::graph::{Network, NodeInput};
use serde::{Deserialize, Serialize};

/// Per-layer outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerReport {
    /// Layer name (Table-6 row).
    pub name: String,
    /// Nodes assigned (computing cores + data-collection core).
    pub nodes: usize,
    /// Segment index.
    pub segment: usize,
    /// Static per-iteration timing.
    pub timing: LayerTiming,
    /// Achieved period (cycles per iteration, including waiting).
    pub effective_period: f64,
    /// Cycle the layer produced its first output.
    pub start: f64,
    /// Cycle the layer produced its last output.
    pub end: f64,
}

/// Per-segment outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentReport {
    /// Cycle the segment's filter load began.
    pub start: f64,
    /// Cycle the segment's last layer finished.
    pub end: f64,
    /// Cycles spent pre-loading filters from DRAM.
    pub filter_load: f64,
}

impl SegmentReport {
    /// Segment latency in cycles.
    #[must_use]
    pub fn latency(&self) -> f64 {
        self.end - self.start
    }
}

/// Whole-network outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// The strategy that produced this mapping.
    pub strategy: Strategy,
    /// Per-layer reports in topological order.
    pub layers: Vec<LayerReport>,
    /// Per-segment reports.
    pub segments: Vec<SegmentReport>,
    /// End-to-end latency in cycles.
    pub total_cycles: f64,
    /// Activity counters for the energy model.
    pub counters: ActivityCounters,
}

impl RunReport {
    /// End-to-end latency in milliseconds.
    #[must_use]
    pub fn total_ms(&self, cfg: &ExecConfig) -> f64 {
        cfg.cycles_to_ms(self.total_cycles)
    }

    /// Throughput in samples per second at the configured clock.
    #[must_use]
    pub fn throughput(&self, cfg: &ExecConfig) -> f64 {
        cfg.freq_hz / self.total_cycles
    }
}

/// The Figure-9 per-iteration cycle breakdown of one layer's computing
/// core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterBreakdown {
    /// Cycles waiting for the next ifmap vector.
    pub wait: f64,
    /// CMem compute cycles.
    pub compute: f64,
    /// Receiving the ifmap rows.
    pub recv: f64,
    /// Forwarding the ifmap rows to the next core.
    pub send_ifmap: f64,
    /// Auxiliary functions + ofmap stores.
    pub send_ofmap: f64,
    /// The achieved iteration period (sum of the above).
    pub effective_period: f64,
}

impl IterBreakdown {
    /// Derives the breakdown from a layer report.
    #[must_use]
    pub fn of(layer: &LayerReport) -> Self {
        let t = &layer.timing;
        let busy = t.t_cmem + t.t_recv + t.t_send_ifmap + t.t_send_ofmap;
        let period = layer.effective_period.max(busy);
        IterBreakdown {
            wait: (period - busy).max(0.0),
            compute: t.t_cmem,
            recv: t.t_recv,
            send_ifmap: t.t_send_ifmap,
            send_ofmap: t.t_send_ofmap,
            effective_period: period,
        }
    }
}

/// Outcome of running a network on a fabric with failed tiles: the
/// degraded schedule plus the healthy baseline it is measured against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedRunReport {
    /// The degraded run (fewer cores, longer chains).
    pub report: RunReport,
    /// End-to-end cycles of the same network on a healthy fabric.
    pub baseline_cycles: f64,
    /// Mean hops per chain link after remapping (1.0 = healthy adjacency).
    pub mean_chain_hops: f64,
    /// Failed tiles inside the compute region.
    pub failed_tiles: usize,
    /// Remapped node-group placements, one list per segment.
    pub placements: Vec<Vec<GroupPlacement>>,
}

impl DegradedRunReport {
    /// Latency penalty of degraded operation: degraded cycles over
    /// baseline cycles (1.0 = no penalty).
    #[must_use]
    pub fn latency_penalty(&self) -> f64 {
        if self.baseline_cycles <= 0.0 {
            1.0
        } else {
            self.report.total_cycles / self.baseline_cycles
        }
    }
}

/// Maps and "runs" a network on a fabric where some compute tiles have
/// failed.
///
/// The node groups are remapped around the dead tiles: the Eq. 1
/// allocator sees the reduced core count, and the zig-zag placement skips
/// the holes ([`place_groups_avoiding`]). The extra chain hops scale the
/// model's NoC hop latency, so the returned report quantifies the latency
/// penalty of degraded operation. With no failed tiles the result is
/// identical to [`run_network`].
///
/// # Errors
///
/// Propagates shape/capacity errors, and
/// [`ExecError::PlacementOverflow`] when too many tiles died for the
/// network to fit at all.
pub fn run_network_degraded(
    net: &Network,
    input: [usize; 3],
    strategy: Strategy,
    cfg: &ExecConfig,
    failed: &[Tile],
) -> Result<DegradedRunReport, ExecError> {
    let baseline = run_network(net, input, strategy, cfg)?;
    // only distinct tiles inside the compute region count as lost cores
    let mut dead: Vec<Tile> = Vec::new();
    for &t in failed {
        if (t.x as usize) < ARRAY_W && (t.y as usize) < ARRAY_H && !dead.contains(&t) {
            dead.push(t);
        }
    }
    if dead.is_empty() {
        return Ok(DegradedRunReport {
            baseline_cycles: baseline.total_cycles,
            report: baseline,
            mean_chain_hops: 1.0,
            failed_tiles: 0,
            placements: Vec::new(),
        });
    }

    let mut dcfg = *cfg;
    dcfg.cores = cfg.cores.saturating_sub(dead.len());
    let shapes = net.shapes(input)?;
    let segments = segment(&shapes, strategy, &dcfg)?;
    let mut placements = Vec::with_capacity(segments.len());
    for seg in &segments {
        let sizes: Vec<usize> = seg.allocs.iter().map(|a| a.computing_cores).collect();
        placements.push(place_groups_avoiding(&sizes, &dead)?);
    }
    let flat: Vec<GroupPlacement> = placements.iter().flatten().cloned().collect();
    let mean_chain_hops = mean_placement_hops(&flat);

    let mut rcfg = dcfg;
    rcfg.hop_cycles = cfg.hop_cycles * mean_chain_hops;
    let report = run_segments(net, &segments, &rcfg, strategy)?;
    Ok(DegradedRunReport {
        report,
        baseline_cycles: baseline.total_cycles,
        mean_chain_hops,
        failed_tiles: dead.len(),
        placements,
    })
}

/// Maps and "runs" a network under a strategy.
///
/// # Errors
///
/// Propagates shape-propagation and capacity errors.
pub fn run_network(
    net: &Network,
    input: [usize; 3],
    strategy: Strategy,
    cfg: &ExecConfig,
) -> Result<RunReport, ExecError> {
    let shapes = net.shapes(input)?;
    let segments = segment(&shapes, strategy, cfg)?;
    run_segments(net, &segments, cfg, strategy)
}

/// Runs an explicit segmentation (used by ablations that bypass the
/// built-in strategies).
///
/// # Errors
///
/// Returns [`ExecError::BadShapes`] if segment indices are inconsistent
/// with the network.
pub fn run_segments(
    net: &Network,
    segments: &[Segment],
    cfg: &ExecConfig,
    strategy: Strategy,
) -> Result<RunReport, ExecError> {
    let nodes = net.layers();
    let n_layers = nodes.len();
    // out_times[layer] = availability time of each output pixel
    let mut out_times: Vec<Vec<f64>> = vec![Vec::new(); n_layers];
    let mut layer_reports: Vec<Option<LayerReport>> = (0..n_layers).map(|_| None).collect();
    let mut segment_reports = Vec::with_capacity(segments.len());
    let mut counters = ActivityCounters {
        active_cores: cfg.cores,
        llc_tiles: 32,
        ..ActivityCounters::default()
    };
    let mut clock = 0.0f64;

    for (seg_idx, seg) in segments.iter().enumerate() {
        // filter pre-load from DRAM (§6.2: batched, <10 % of segment time)
        let weight_bytes: f64 = seg
            .allocs
            .iter()
            .map(|a| {
                let s = &a.shape;
                (s.out_c * s.in_c * s.kernel_h * s.kernel_w) as f64
            })
            .sum();
        let filter_load = weight_bytes / cfg.filter_load_bw;
        let seg_start = clock;
        let data_start = clock + filter_load;
        let in_segment: std::collections::HashSet<usize> =
            seg.layer_indices.iter().copied().collect();
        let mut seg_end = data_start;

        for (pos, &li) in seg.layer_indices.iter().enumerate() {
            let mut alloc = seg.allocs[pos].clone();
            let node = &nodes[li];
            // a producer outside this segment means the ifmap is staged in
            // DRAM regardless of what the strategy marked
            let producer = match node.input {
                NodeInput::External => None,
                NodeInput::Node(p) => Some(p),
            };
            if producer.is_none_or(|p| !in_segment.contains(&p)) {
                alloc.fed_from_dram = true;
            }
            let timing = alloc.timing(cfg);
            let s = &alloc.shape;
            let iters = timing.iterations as usize;

            // input availability per ifmap pixel
            let in_time = |t: usize| -> f64 {
                match producer {
                    Some(p) if in_segment.contains(&p) => {
                        let prod = &out_times[p];
                        if prod.len() == iters {
                            prod[t]
                        } else {
                            // pooled/reshaped producer: conservatively wait
                            // for its final value
                            *prod.last().expect("producer already run")
                        }
                    }
                    _ => data_start,
                }
            };

            // stage 1: data collection, stage 2: computing-core chain
            let mut dc_done = vec![0.0f64; iters];
            let mut cc_done = vec![0.0f64; iters];
            let mut prev_dc = data_start;
            let mut prev_cc = data_start;
            for t in 0..iters {
                let d = in_time(t).max(prev_dc) + timing.t_dc;
                prev_dc = d;
                dc_done[t] = d;
                let c = (d + cfg.hop_cycles).max(prev_cc) + timing.t_cc;
                prev_cc = c;
                cc_done[t] = c;
            }

            // output pixels: ready when the window's last ifmap pixel has
            // been processed, plus the chain tail and aux
            let tail = cfg.hop_cycles * 2.0 + cfg.aux_per_value;
            let out_n = s.out_h * s.out_w;
            let mut outs = vec![0.0f64; out_n.max(1)];
            let res_producer = match node.residual {
                Some(NodeInput::Node(p)) => Some(p),
                _ => None,
            };
            for oy in 0..s.out_h {
                for ox in 0..s.out_w {
                    let iy = (oy * s.stride + s.kernel_h - 1).min(s.in_h - 1);
                    let ix = (ox * s.stride + s.kernel_w - 1).min(s.in_w - 1);
                    let t_last = iy * s.in_w + ix;
                    let mut ready = cc_done[t_last] + tail;
                    if let Some(p) = res_producer {
                        let r = if in_segment.contains(&p) {
                            let prod = &out_times[p];
                            prod.get(oy * s.out_w + ox)
                                .or(prod.last())
                                .copied()
                                .unwrap_or(data_start)
                        } else {
                            data_start
                        };
                        ready = ready.max(r);
                    }
                    outs[oy * s.out_w + ox] = ready;
                }
            }
            if s.is_linear {
                outs = vec![cc_done[iters - 1] + tail];
            }
            let start = outs.first().copied().unwrap_or(data_start);
            let end = outs.last().copied().unwrap_or(data_start);
            seg_end = seg_end.max(end);

            let effective_period = (cc_done[iters - 1] - data_start) / iters as f64;
            accumulate_counters(&mut counters, &alloc, &timing, cfg, weight_bytes);
            out_times[li] = outs;
            layer_reports[li] = Some(LayerReport {
                name: s.name.clone(),
                nodes: alloc.nodes(),
                segment: seg_idx,
                timing,
                effective_period,
                start,
                end,
            });
        }

        segment_reports.push(SegmentReport {
            start: seg_start,
            end: seg_end,
            filter_load,
        });
        clock = seg_end;
    }

    let layers: Vec<LayerReport> = layer_reports
        .into_iter()
        .map(|r| {
            r.ok_or(ExecError::BadShapes {
                reason: "segmentation did not cover every layer".into(),
            })
        })
        .collect::<Result<_, _>>()?;
    counters.seconds = clock / cfg.freq_hz;
    Ok(RunReport {
        strategy,
        layers,
        segments: segment_reports,
        total_cycles: clock,
        counters,
    })
}

fn accumulate_counters(
    counters: &mut ActivityCounters,
    alloc: &crate::alloc::LayerAlloc,
    timing: &LayerTiming,
    cfg: &ExecConfig,
    _weight_bytes: f64,
) {
    use maicc_mem::dram::{ACTIVATE_PJ, READ_PJ, WRITE_PJ};
    use maicc_sram::energy::{MAC_PJ, MOVE_PJ, REMOTE_ROW_PJ, VERTICAL_WRITE_PJ};
    let s = &alloc.shape;
    let iters = timing.iterations as f64;
    let cores = alloc.computing_cores as f64;
    let groups = alloc.capacity.groups as f64;
    let rows = groups * cfg.n_bits as f64;
    // CMem dynamic energy
    let total_macs = iters * timing.macs_per_iter * cores;
    let moves = iters * 7.0 * groups * cores;
    let vertical = iters * s.in_c as f64; // DC transposes every byte once
    let remote_rows = iters * rows * (cores + 1.0); // receive at each core
    counters.cmem_pj += total_macs * MAC_PJ
        + moves * MOVE_PJ
        + vertical * VERTICAL_WRITE_PJ
        + remote_rows * REMOTE_ROW_PJ;
    // NoC: each ifmap row forwarded once per core, 9 flits, ~1 hop (zig-zag
    // adjacency); ofmap values converge on the next DC over a few hops
    let ofmap_words = (s.out_h * s.out_w * s.out_c) as f64 / 4.0;
    counters.noc_flit_hops +=
        (iters * rows * 9.0 * (cores + 1.0) + ofmap_words * 2.0 * 3.0) as u64;
    // DRAM dynamic: weights always; boundary tensors when staged
    let mut dram_lines = (s.out_c * s.in_c * s.kernel_h * s.kernel_w) as f64 / 32.0;
    if alloc.fed_from_dram {
        dram_lines += iters * s.in_c as f64 / 32.0;
    }
    if alloc.drains_to_dram {
        dram_lines += (s.out_h * s.out_w * s.out_c) as f64 / 32.0;
    }
    counters.mem_pj += dram_lines * (READ_PJ.max(WRITE_PJ) + 0.3 * ACTIVATE_PJ);
    // scalar instruction estimate: the core's busy share of each iteration
    counters.instructions += (iters * (timing.t_core * cores + timing.t_dc)) as u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use maicc_nn::resnet::{resnet18, tinynet};

    fn cfg() -> ExecConfig {
        ExecConfig::default()
    }

    #[test]
    fn strategies_reproduce_table6_ordering() {
        let net = resnet18(1000);
        let h = run_network(&net, [64, 56, 56], Strategy::Heuristic, &cfg()).unwrap();
        let g = run_network(&net, [64, 56, 56], Strategy::Greedy, &cfg()).unwrap();
        let s = run_network(&net, [64, 56, 56], Strategy::SingleLayer, &cfg()).unwrap();
        assert!(
            h.total_cycles < g.total_cycles,
            "heuristic {} vs greedy {}",
            h.total_cycles,
            g.total_cycles
        );
        assert!(
            g.total_cycles < s.total_cycles,
            "greedy {} vs single {}",
            g.total_cycles,
            s.total_cycles
        );
    }

    #[test]
    fn heuristic_lands_in_table7_latency_band() {
        let net = resnet18(1000);
        let c = cfg();
        let h = run_network(&net, [64, 56, 56], Strategy::Heuristic, &c).unwrap();
        let ms = h.total_ms(&c);
        // paper: 5.13 ms; accept the band around it
        assert!((2.0..12.0).contains(&ms), "heuristic latency {ms} ms");
    }

    #[test]
    fn single_layer_latency_band() {
        let net = resnet18(1000);
        let c = cfg();
        let s = run_network(&net, [64, 56, 56], Strategy::SingleLayer, &c).unwrap();
        let ms = s.total_ms(&c);
        // paper: 24.1 ms
        assert!((10.0..45.0).contains(&ms), "single-layer latency {ms} ms");
    }

    #[test]
    fn every_layer_reported_once() {
        let net = resnet18(1000);
        let r = run_network(&net, [64, 56, 56], Strategy::Greedy, &cfg()).unwrap();
        assert_eq!(r.layers.len(), 20);
        assert_eq!(r.layers[0].name, "conv1_1");
        assert_eq!(r.layers[19].name, "linear");
    }

    #[test]
    fn pipelined_layers_overlap_in_time() {
        let net = resnet18(1000);
        let r = run_network(&net, [64, 56, 56], Strategy::Heuristic, &cfg()).unwrap();
        // layers 0 and 1 share segment 0: layer 1 must start before layer 0
        // ends (inter-layer pipelining)
        let l0 = &r.layers[0];
        let l1 = &r.layers[1];
        assert_eq!(l0.segment, l1.segment);
        assert!(
            l1.start < l0.end,
            "no overlap: l1.start {} vs l0.end {}",
            l1.start,
            l0.end
        );
    }

    #[test]
    fn single_layer_does_not_overlap_segments() {
        let net = resnet18(1000);
        let r = run_network(&net, [64, 56, 56], Strategy::SingleLayer, &cfg()).unwrap();
        for w in r.segments.windows(2) {
            assert!(w[1].start >= w[0].end - 1e-9);
        }
    }

    #[test]
    fn fig9_breakdown_wait_dominates_single_layer() {
        let net = resnet18(1000);
        let c = cfg();
        let s = run_network(&net, [64, 56, 56], Strategy::SingleLayer, &c).unwrap();
        let h = run_network(&net, [64, 56, 56], Strategy::Heuristic, &c).unwrap();
        // layer index 8 = conv2_4 (the paper's layer 9)
        let bs = IterBreakdown::of(&s.layers[8]);
        let bh = IterBreakdown::of(&h.layers[8]);
        assert!(
            bs.wait > bh.wait,
            "single-layer should wait more: {bs:?} vs {bh:?}"
        );
        assert!(bs.wait > bs.compute, "waiting dominates single-layer: {bs:?}");
    }

    #[test]
    fn counters_are_populated() {
        let net = resnet18(1000);
        let r = run_network(&net, [64, 56, 56], Strategy::Heuristic, &cfg()).unwrap();
        assert!(r.counters.cmem_pj > 0.0);
        assert!(r.counters.noc_flit_hops > 0);
        assert!(r.counters.mem_pj > 0.0);
        assert!(r.counters.instructions > 0);
        assert!(r.counters.seconds > 0.0);
    }

    #[test]
    fn filter_load_is_small_fraction() {
        let net = resnet18(1000);
        let r = run_network(&net, [64, 56, 56], Strategy::Heuristic, &cfg()).unwrap();
        let load: f64 = r.segments.iter().map(|s| s.filter_load).sum();
        assert!(
            load / r.total_cycles < 0.25,
            "filter load share {}",
            load / r.total_cycles
        );
    }

    #[test]
    fn vgg11_maps_and_orders_strategies() {
        use maicc_nn::resnet::vgg11;
        let net = vgg11(10);
        let c = cfg();
        let h = run_network(&net, [64, 32, 32], Strategy::Heuristic, &c).unwrap();
        let s = run_network(&net, [64, 32, 32], Strategy::SingleLayer, &c).unwrap();
        assert!(h.total_cycles <= s.total_cycles);
        assert_eq!(h.layers.len(), 8);
        // pooling propagates: v_conv2 sees the halved resolution
        assert_eq!(h.layers[1].timing.iterations, 16 * 16);
    }

    #[test]
    fn mlp_maps_as_streamed_linears() {
        use maicc_nn::resnet::mlp;
        let net = mlp(512, 256, 64);
        let c = cfg();
        for strat in Strategy::ALL {
            let r = run_network(&net, [512, 1, 1], strat, &c).unwrap();
            assert_eq!(r.layers.len(), 3);
            assert!(r.total_cycles > 0.0);
            for l in &r.layers {
                assert_eq!(l.timing.iterations, 1, "{}", l.name);
            }
        }
    }

    #[test]
    fn tinynet_runs_all_strategies() {
        let net = tinynet(10);
        for strat in Strategy::ALL {
            let r = run_network(&net, [32, 16, 16], strat, &cfg()).unwrap();
            assert!(r.total_cycles > 0.0);
            assert_eq!(r.layers.len(), 5);
        }
    }

    #[test]
    fn degraded_run_with_no_failures_is_identical() {
        let net = resnet18(1000);
        let c = cfg();
        let clean = run_network(&net, [64, 56, 56], Strategy::Heuristic, &c).unwrap();
        let d = run_network_degraded(&net, [64, 56, 56], Strategy::Heuristic, &c, &[]).unwrap();
        assert_eq!(d.report, clean);
        assert_eq!(d.failed_tiles, 0);
        assert!((d.mean_chain_hops - 1.0).abs() < 1e-12);
        assert!((d.latency_penalty() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dead_tiles_cost_latency() {
        let net = resnet18(1000);
        let c = cfg();
        // a scatter of dead tiles through the first rows — inside every
        // segment's placed region. ResNet-18's conv4_2 needs 206 of the
        // 210 cores, so at most 4 tiles may die before mapping fails.
        let dead = [
            Tile { x: 2, y: 0 },
            Tile { x: 7, y: 1 },
            Tile { x: 4, y: 2 },
        ];
        let d = run_network_degraded(&net, [64, 56, 56], Strategy::Heuristic, &c, &dead).unwrap();
        assert_eq!(d.failed_tiles, 3);
        assert!(
            d.mean_chain_hops > 1.0,
            "chains should hop over holes: {}",
            d.mean_chain_hops
        );
        assert!(
            d.latency_penalty() > 1.0,
            "degraded run must be slower: penalty {}",
            d.latency_penalty()
        );
        // every placement avoids the dead tiles
        for g in d.placements.iter().flatten() {
            assert!(!dead.contains(&g.dc));
            for t in &g.computing {
                assert!(!dead.contains(t));
            }
        }
    }

    #[test]
    fn massive_failure_yields_typed_error() {
        let net = resnet18(1000);
        let c = cfg();
        // kill the first 190 tiles of the serpentine: 20 cores cannot map
        // ResNet-18
        let dead: Vec<Tile> = crate::mapping::zigzag_order().into_iter().take(190).collect();
        let err = run_network_degraded(&net, [64, 56, 56], Strategy::Heuristic, &c, &dead)
            .expect_err("20 healthy cores cannot map resnet18");
        assert!(
            matches!(
                err,
                ExecError::LayerTooLarge { .. } | ExecError::PlacementOverflow { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn throughput_matches_latency() {
        let net = resnet18(1000);
        let c = cfg();
        let r = run_network(&net, [64, 56, 56], Strategy::Heuristic, &c).unwrap();
        let t = r.throughput(&c);
        assert!((t * r.total_cycles / c.freq_hz - 1.0).abs() < 1e-9);
    }
}
