//! Layer segmentation strategies (§4.3, Table 6).
//!
//! * **single-layer** — no segmentation: every layer maps alone with as
//!   many cores as are useful, and layers run one after another through
//!   DRAM;
//! * **greedy** — pack as many consecutive layers as fit, each at its
//!   minimum core count;
//! * **heuristic** — the paper's algorithm: group consecutive layers with
//!   the *same ifmap size* (pooling shrinks fmaps exponentially, so equal
//!   ifmap size ⇒ similar expected running time `H·W·T`), then distribute
//!   the remaining cores to minimize the maximum per-layer period — the
//!   Equation (1) min-max.

use crate::alloc::{LayerAlloc, LayerCapacity};
use crate::config::ExecConfig;
use crate::ExecError;
use maicc_nn::graph::LayerShape;
use serde::{Deserialize, Serialize};

/// The three Table-6 strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// One layer per segment, maximum useful parallelism.
    SingleLayer,
    /// As many layers per segment as fit, at minimum core counts.
    Greedy,
    /// Same-ifmap-size grouping plus min-max core allocation.
    Heuristic,
}

impl Strategy {
    /// All three, in Table-6 column order.
    pub const ALL: [Strategy; 3] = [
        Strategy::SingleLayer,
        Strategy::Greedy,
        Strategy::Heuristic,
    ];
}

/// A mapped segment: consecutive layers resident on the array together.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Global layer indices (into the network's topological order).
    pub layer_indices: Vec<usize>,
    /// Allocation per layer, aligned with `layer_indices`.
    pub allocs: Vec<LayerAlloc>,
}

impl Segment {
    /// Total nodes the segment occupies.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.allocs.iter().map(LayerAlloc::nodes).sum()
    }
}

fn close_segment(seg: &mut Segment) {
    if let Some(first) = seg.allocs.first_mut() {
        first.fed_from_dram = true;
    }
    if let Some(last) = seg.allocs.last_mut() {
        last.drains_to_dram = true;
    }
}

/// Runs a strategy over a network's layer shapes.
///
/// # Errors
///
/// Returns [`ExecError::LayerTooLarge`] if some layer cannot fit on the
/// array at all.
pub fn segment(
    shapes: &[LayerShape],
    strategy: Strategy,
    cfg: &ExecConfig,
) -> Result<Vec<Segment>, ExecError> {
    match strategy {
        Strategy::SingleLayer => single_layer(shapes, cfg),
        Strategy::Greedy => greedy(shapes, cfg),
        Strategy::Heuristic => heuristic(shapes, cfg),
    }
}

fn check_fits(shape: &LayerShape, cfg: &ExecConfig) -> Result<usize, ExecError> {
    let cap = LayerCapacity::of_bits(shape, cfg.n_bits);
    let min = cap.min_cores(&shape.name)?;
    if min + 1 > cfg.cores {
        return Err(ExecError::LayerTooLarge {
            layer: shape.name.clone(),
            needed: min + 1,
            available: cfg.cores,
        });
    }
    Ok(min)
}

fn single_layer(shapes: &[LayerShape], cfg: &ExecConfig) -> Result<Vec<Segment>, ExecError> {
    shapes
        .iter()
        .enumerate()
        .map(|(i, s)| {
            check_fits(s, cfg)?;
            let cap = LayerCapacity::of_bits(s, cfg.n_bits);
            let cores = cap.max_useful_cores().min(cfg.cores - 1);
            let mut seg = Segment {
                layer_indices: vec![i],
                allocs: vec![LayerAlloc::with_bits(s.clone(), cores, cfg.n_bits)],
            };
            close_segment(&mut seg);
            Ok(seg)
        })
        .collect()
}

fn greedy(shapes: &[LayerShape], cfg: &ExecConfig) -> Result<Vec<Segment>, ExecError> {
    let mut out = Vec::new();
    let mut cur = Segment {
        layer_indices: Vec::new(),
        allocs: Vec::new(),
    };
    let mut used = 0usize;
    for (i, s) in shapes.iter().enumerate() {
        let min = check_fits(s, cfg)?;
        let need = min + 1;
        if used + need > cfg.cores && !cur.allocs.is_empty() {
            close_segment(&mut cur);
            out.push(std::mem::replace(
                &mut cur,
                Segment {
                    layer_indices: Vec::new(),
                    allocs: Vec::new(),
                },
            ));
            used = 0;
        }
        cur.layer_indices.push(i);
        cur.allocs.push(LayerAlloc::with_bits(s.clone(), min, cfg.n_bits));
        used += need;
    }
    if !cur.allocs.is_empty() {
        close_segment(&mut cur);
        out.push(cur);
    }
    Ok(out)
}

fn heuristic(shapes: &[LayerShape], cfg: &ExecConfig) -> Result<Vec<Segment>, ExecError> {
    // 1. group consecutive layers with the same ifmap size
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, s) in shapes.iter().enumerate() {
        let same = groups.last().is_some_and(|g| {
            let p = &shapes[g[0]];
            p.in_h == s.in_h && p.in_w == s.in_w && !p.is_linear && !s.is_linear
        });
        if same {
            groups.last_mut().expect("just checked").push(i);
        } else {
            groups.push(vec![i]);
        }
    }
    // 2. split groups that do not fit, greedily
    let mut segments: Vec<Vec<usize>> = Vec::new();
    for g in groups {
        let mut cur: Vec<usize> = Vec::new();
        let mut used = 0usize;
        for i in g {
            let min = check_fits(&shapes[i], cfg)?;
            if used + min + 1 > cfg.cores && !cur.is_empty() {
                segments.push(std::mem::take(&mut cur));
                used = 0;
            }
            cur.push(i);
            used += min + 1;
        }
        if !cur.is_empty() {
            segments.push(cur);
        }
    }
    // 3. per segment: start at minimum allocation, then hand leftover cores
    //    to the layer with the largest period (Equation (1) min-max)
    segments
        .into_iter()
        .map(|idxs| {
            let mut allocs: Vec<LayerAlloc> = idxs
                .iter()
                .map(|&i| {
                    let cap = LayerCapacity::of_bits(&shapes[i], cfg.n_bits);
                    let min = cap
                        .min_cores(&shapes[i].name)
                        .expect("checked by check_fits");
                    LayerAlloc::with_bits(shapes[i].clone(), min, cfg.n_bits)
                })
                .collect();
            let mut leftover = cfg.cores - allocs.iter().map(LayerAlloc::nodes).sum::<usize>();
            loop {
                // the current bottleneck layer that can still grow
                let grow = allocs
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| a.computing_cores < a.capacity.max_useful_cores())
                    .max_by(|(_, a), (_, b)| {
                        a.timing(cfg)
                            .t_cc
                            .partial_cmp(&b.timing(cfg).t_cc)
                            .expect("periods are finite")
                    })
                    .map(|(i, _)| i);
                match grow {
                    Some(i) if leftover > 0 => {
                        allocs[i].computing_cores += 1;
                        leftover -= 1;
                    }
                    _ => break,
                }
            }
            let mut seg = Segment {
                layer_indices: idxs,
                allocs,
            };
            close_segment(&mut seg);
            Ok(seg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use maicc_nn::resnet::resnet18;

    fn shapes() -> Vec<LayerShape> {
        resnet18(1000).shapes([64, 56, 56]).unwrap()
    }

    #[test]
    fn single_layer_makes_twenty_segments() {
        let segs = segment(&shapes(), Strategy::SingleLayer, &ExecConfig::default()).unwrap();
        assert_eq!(segs.len(), 20);
        for s in &segs {
            assert!(s.allocs[0].fed_from_dram);
            assert!(s.allocs[0].drains_to_dram);
            assert!(s.nodes() <= 210);
        }
    }

    #[test]
    fn greedy_packs_multiple_layers() {
        let segs = segment(&shapes(), Strategy::Greedy, &ExecConfig::default()).unwrap();
        assert!(segs.len() < 20, "greedy must merge layers: {}", segs.len());
        assert!(segs[0].allocs.len() > 4, "first segment packs many layers");
        for s in &segs {
            assert!(s.nodes() <= 210, "segment overflows: {}", s.nodes());
            // only segment boundaries touch DRAM
            for (i, a) in s.allocs.iter().enumerate() {
                if i > 0 {
                    assert!(!a.fed_from_dram);
                }
            }
        }
    }

    #[test]
    fn heuristic_groups_by_ifmap_size() {
        let segs = segment(&shapes(), Strategy::Heuristic, &ExecConfig::default()).unwrap();
        // within a (multi-layer) segment all ifmap sizes agree
        for s in &segs {
            let first = &s.allocs[0].shape;
            for a in &s.allocs {
                assert_eq!(
                    (a.shape.in_h, a.shape.in_w),
                    (first.in_h, first.in_w),
                    "mixed ifmap sizes in one segment"
                );
            }
        }
        // the paper's heuristic finds three multi-layer segments (1-6,
        // 7-11, 12-15) followed by the single big conv4 layers + linear
        let multi = segs.iter().filter(|s| s.allocs.len() > 1).count();
        assert_eq!(multi, 3, "{segs:#?}");
        assert_eq!(segs[0].allocs.len(), 6);
        assert_eq!(segs[1].allocs.len(), 5);
        assert_eq!(segs[2].allocs.len(), 4);
    }

    #[test]
    fn heuristic_uses_leftover_cores() {
        let cfg = ExecConfig::default();
        let g = segment(&shapes(), Strategy::Greedy, &cfg).unwrap();
        let h = segment(&shapes(), Strategy::Heuristic, &cfg).unwrap();
        // the heuristic's first segment gives its layers more cores than
        // the greedy minimum
        let gn: usize = g[0].allocs[0].computing_cores;
        let hn: usize = h[0].allocs[0].computing_cores;
        assert!(hn > gn, "heuristic {hn} vs greedy {gn}");
        for s in &h {
            assert!(s.nodes() <= cfg.cores);
        }
    }

    #[test]
    fn heuristic_balances_periods() {
        let cfg = ExecConfig::default();
        let h = segment(&shapes(), Strategy::Heuristic, &cfg).unwrap();
        // in a balanced multi-layer segment, max/min compute period stays
        // within an order of magnitude (single-layer imbalance is ~20×)
        let seg = &h[0];
        let periods: Vec<f64> = seg.allocs.iter().map(|a| a.timing(&cfg).t_cc).collect();
        let max = periods.iter().cloned().fold(0.0, f64::max);
        let min = periods.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min < 8.0, "periods {periods:?}");
    }

    #[test]
    fn conv4_layers_stand_alone_in_all_strategies() {
        let cfg = ExecConfig::default();
        for strat in Strategy::ALL {
            let segs = segment(&shapes(), strat, &cfg).unwrap();
            for s in &segs {
                let has_conv4 = s
                    .allocs
                    .iter()
                    .any(|a| a.shape.name.starts_with("conv4_") && a.shape.in_c == 512);
                if has_conv4 {
                    assert_eq!(
                        s.allocs.len(),
                        1,
                        "512-channel conv4 layers need ~206 nodes and sit alone"
                    );
                }
            }
        }
    }

    #[test]
    fn impossible_layer_is_reported() {
        let cfg = ExecConfig {
            cores: 10,
            ..ExecConfig::default()
        };
        let err = segment(&shapes(), Strategy::Greedy, &cfg);
        assert!(matches!(err, Err(ExecError::LayerTooLarge { .. })));
    }
}
