//! Edge cases of segmentation and allocation.

use maicc_exec::alloc::{LayerAlloc, LayerCapacity};
use maicc_exec::config::ExecConfig;
use maicc_exec::pipeline_model::run_network;
use maicc_exec::segment::{segment, Strategy};
use maicc_nn::graph::{Network, Node, NodeInput, NodeOp};
use maicc_nn::layer::ConvLayer;
use maicc_nn::quant::Requantizer;
use maicc_nn::tensor::{ConvShape, Tensor};

fn one_conv(c: usize, m: usize) -> Network {
    Network::new(
        "one",
        vec![Node {
            name: "only".into(),
            op: NodeOp::Conv(ConvLayer {
                shape: ConvShape {
                    out_channels: m,
                    in_channels: c,
                    kernel_h: 3,
                    kernel_w: 3,
                    stride: 1,
                    padding: 1,
                },
                weights: Tensor::filled(&[m, c, 3, 3], 1),
                bias: vec![0; m],
                requant: Requantizer::from_real_multiplier(0.01, 0),
                relu: true,
                pool: None,
            }),
            input: NodeInput::External,
            residual: None,
        }],
    )
    .unwrap()
}

#[test]
fn single_layer_network_runs_under_all_strategies() {
    let net = one_conv(32, 16);
    let cfg = ExecConfig::default();
    for strat in Strategy::ALL {
        let r = run_network(&net, [32, 8, 8], strat, &cfg).unwrap();
        assert_eq!(r.layers.len(), 1);
        assert_eq!(r.segments.len(), 1);
        assert!(r.layers[0].timing.t_dc > 0.0);
    }
}

#[test]
fn exactly_fitting_array() {
    // a layer whose minimum is the whole array still maps
    let net = one_conv(256, 16);
    let shapes = net.shapes([256, 8, 8]).unwrap();
    let cap = LayerCapacity::of(&shapes[0]);
    let min = cap.min_cores("only").unwrap();
    let cfg = ExecConfig {
        cores: min + 1,
        ..ExecConfig::default()
    };
    let segs = segment(&shapes, Strategy::Greedy, &cfg).unwrap();
    assert_eq!(segs[0].nodes(), min + 1);
    // one core fewer fails
    let too_small = ExecConfig {
        cores: min,
        ..ExecConfig::default()
    };
    assert!(segment(&shapes, Strategy::Greedy, &too_small).is_err());
}

#[test]
fn heuristic_never_exceeds_the_array() {
    let net = maicc_nn::resnet::resnet18(1000);
    for cores in [207, 210, 250, 400] {
        let cfg = ExecConfig {
            cores,
            ..ExecConfig::default()
        };
        let shapes = net.shapes([64, 56, 56]).unwrap();
        if let Ok(segs) = segment(&shapes, Strategy::Heuristic, &cfg) {
            for s in &segs {
                assert!(s.nodes() <= cores, "{} > {cores}", s.nodes());
            }
        }
    }
}

#[test]
fn allocation_timing_monotone_in_cores() {
    let net = one_conv(64, 64);
    let shapes = net.shapes([64, 16, 16]).unwrap();
    let cfg = ExecConfig::default();
    let mut prev = f64::INFINITY;
    for cores in [4usize, 8, 16, 32, 64] {
        let t = LayerAlloc::new(shapes[0].clone(), cores).timing(&cfg);
        assert!(t.t_cmem <= prev + 1e-9, "cores {cores}");
        prev = t.t_cmem;
    }
}
