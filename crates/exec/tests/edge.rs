//! Edge cases of segmentation and allocation.

use maicc_exec::alloc::{LayerAlloc, LayerCapacity};
use maicc_exec::config::ExecConfig;
use maicc_exec::pipeline_model::run_network;
use maicc_exec::segment::{segment, Strategy};
use maicc_nn::graph::{Network, Node, NodeInput, NodeOp};
use maicc_nn::layer::ConvLayer;
use maicc_nn::quant::Requantizer;
use maicc_nn::tensor::{ConvShape, Tensor};

fn one_conv(c: usize, m: usize) -> Network {
    Network::new(
        "one",
        vec![Node {
            name: "only".into(),
            op: NodeOp::Conv(ConvLayer {
                shape: ConvShape {
                    out_channels: m,
                    in_channels: c,
                    kernel_h: 3,
                    kernel_w: 3,
                    stride: 1,
                    padding: 1,
                },
                weights: Tensor::filled(&[m, c, 3, 3], 1),
                bias: vec![0; m],
                requant: Requantizer::from_real_multiplier(0.01, 0),
                relu: true,
                pool: None,
            }),
            input: NodeInput::External,
            residual: None,
        }],
    )
    .unwrap()
}

#[test]
fn single_layer_network_runs_under_all_strategies() {
    let net = one_conv(32, 16);
    let cfg = ExecConfig::default();
    for strat in Strategy::ALL {
        let r = run_network(&net, [32, 8, 8], strat, &cfg).unwrap();
        assert_eq!(r.layers.len(), 1);
        assert_eq!(r.segments.len(), 1);
        assert!(r.layers[0].timing.t_dc > 0.0);
    }
}

#[test]
fn exactly_fitting_array() {
    // a layer whose minimum is the whole array still maps
    let net = one_conv(256, 16);
    let shapes = net.shapes([256, 8, 8]).unwrap();
    let cap = LayerCapacity::of(&shapes[0]);
    let min = cap.min_cores("only").unwrap();
    let cfg = ExecConfig {
        cores: min + 1,
        ..ExecConfig::default()
    };
    let segs = segment(&shapes, Strategy::Greedy, &cfg).unwrap();
    assert_eq!(segs[0].nodes(), min + 1);
    // one core fewer fails
    let too_small = ExecConfig {
        cores: min,
        ..ExecConfig::default()
    };
    assert!(segment(&shapes, Strategy::Greedy, &too_small).is_err());
}

#[test]
fn heuristic_never_exceeds_the_array() {
    let net = maicc_nn::resnet::resnet18(1000);
    for cores in [207, 210, 250, 400] {
        let cfg = ExecConfig {
            cores,
            ..ExecConfig::default()
        };
        let shapes = net.shapes([64, 56, 56]).unwrap();
        if let Ok(segs) = segment(&shapes, Strategy::Heuristic, &cfg) {
            for s in &segs {
                assert!(s.nodes() <= cores, "{} > {cores}", s.nodes());
            }
        }
    }
}

/// A chain of stride-2 convolutions: every layer halves the fmap, so
/// consecutive ifmap sizes are strictly decreasing.
fn shrinking_chain(layers: usize, c: usize) -> Network {
    let nodes = (0..layers)
        .map(|i| Node {
            name: format!("shrink{i}"),
            op: NodeOp::Conv(ConvLayer {
                shape: ConvShape {
                    out_channels: c,
                    in_channels: c,
                    kernel_h: 3,
                    kernel_w: 3,
                    stride: 2,
                    padding: 1,
                },
                weights: Tensor::filled(&[c, c, 3, 3], 1),
                bias: vec![0; c],
                requant: Requantizer::from_real_multiplier(0.01, 0),
                relu: true,
                pool: None,
            }),
            input: if i == 0 {
                NodeInput::External
            } else {
                NodeInput::Node(i - 1)
            },
            residual: None,
        })
        .collect();
    Network::new("shrinking", nodes).unwrap()
}

#[test]
fn single_layer_network_yields_exactly_one_segment() {
    let net = one_conv(32, 16);
    let shapes = net.shapes([32, 8, 8]).unwrap();
    let cfg = ExecConfig::default();
    for strat in Strategy::ALL {
        let segs = segment(&shapes, strat, &cfg).unwrap();
        assert_eq!(segs.len(), 1, "{strat:?}");
        assert_eq!(segs[0].layer_indices, [0], "{strat:?}");
        // a lone segment both loads from and drains to DRAM
        assert!(segs[0].allocs[0].fed_from_dram, "{strat:?}");
        assert!(segs[0].allocs[0].drains_to_dram, "{strat:?}");
    }
}

#[test]
fn strictly_decreasing_ifmaps_defeat_equal_ifmap_grouping() {
    // The heuristic groups consecutive layers with the *same* ifmap size.
    // A stride-2 chain never repeats a size, so no multi-layer group can
    // form: every heuristic segment holds exactly one layer.
    let net = shrinking_chain(4, 16);
    let shapes = net.shapes([16, 32, 32]).unwrap();
    for w in shapes.windows(2) {
        assert!(
            w[1].in_h * w[1].in_w < w[0].in_h * w[0].in_w,
            "chain must shrink strictly"
        );
    }
    let cfg = ExecConfig::default();
    let segs = segment(&shapes, Strategy::Heuristic, &cfg).unwrap();
    assert_eq!(segs.len(), shapes.len());
    for (i, s) in segs.iter().enumerate() {
        assert_eq!(s.layer_indices, [i]);
    }
}

#[test]
fn segment_count_never_exceeds_layer_count() {
    // However generous the array, a strategy cannot produce more segments
    // than layers, and must place every layer exactly once, in order.
    let cfg = ExecConfig {
        cores: 4000, // far more than any of these networks can use
        ..ExecConfig::default()
    };
    let cases: Vec<(Network, [usize; 3])> = vec![
        (one_conv(32, 16), [32, 8, 8]),
        (shrinking_chain(3, 16), [16, 32, 32]),
        (maicc_nn::resnet::tinynet(10), [32, 32, 32]),
    ];
    for (net, input) in cases {
        let shapes = net.shapes(input).unwrap();
        for strat in Strategy::ALL {
            let segs = segment(&shapes, strat, &cfg).unwrap();
            assert!(
                segs.len() <= shapes.len(),
                "{strat:?} made {} segments from {} layers",
                segs.len(),
                shapes.len()
            );
            let placed: Vec<usize> = segs.iter().flat_map(|s| s.layer_indices.clone()).collect();
            let expect: Vec<usize> = (0..shapes.len()).collect();
            assert_eq!(placed, expect, "{strat:?} must cover each layer once, in order");
        }
    }
}

#[test]
fn allocation_timing_monotone_in_cores() {
    let net = one_conv(64, 64);
    let shapes = net.shapes([64, 16, 16]).unwrap();
    let cfg = ExecConfig::default();
    let mut prev = f64::INFINITY;
    for cores in [4usize, 8, 16, 32, 64] {
        let t = LayerAlloc::new(shapes[0].clone(), cores).timing(&cfg);
        assert!(t.t_cmem <= prev + 1e-9, "cores {cores}");
        prev = t.t_cmem;
    }
}
