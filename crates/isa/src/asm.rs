//! A small two-pass assembler with label resolution.
//!
//! Kernels and tests build instruction sequences programmatically; labels
//! spare them from computing branch displacements by hand. The assembler
//! checks displacement ranges against the B-type (±4 KiB) and J-type
//! (±1 MiB) immediate fields.
//!
//! # Example
//!
//! ```
//! use maicc_isa::asm::Assembler;
//! use maicc_isa::inst::{BranchKind, Instruction};
//! use maicc_isa::reg::Reg;
//!
//! # fn main() -> Result<(), maicc_isa::IsaError> {
//! let mut a = Assembler::new();
//! a.inst(Instruction::li(Reg::A0, 10));
//! a.inst(Instruction::li(Reg::A1, 0));
//! a.label("loop");
//! a.inst(Instruction::add(Reg::A1, Reg::A1, Reg::A0));
//! a.inst(Instruction::addi(Reg::A0, Reg::A0, -1));
//! a.branch(BranchKind::Bne, Reg::A0, Reg::Zero, "loop");
//! a.inst(Instruction::Ebreak);
//! let program = a.assemble()?;
//! assert_eq!(program.len(), 6);
//! # Ok(())
//! # }
//! ```

use crate::inst::{BranchKind, Instruction};
use crate::reg::Reg;
use crate::IsaError;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Item {
    Inst(Instruction),
    Branch {
        kind: BranchKind,
        rs1: Reg,
        rs2: Reg,
        label: String,
    },
    Jal {
        rd: Reg,
        label: String,
    },
}

/// Programmatic two-pass assembler.
#[derive(Debug, Clone, Default)]
pub struct Assembler {
    items: Vec<Item>,
    labels: HashMap<String, usize>,
}

impl Assembler {
    /// Creates an empty assembler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a fully resolved instruction.
    pub fn inst(&mut self, i: Instruction) -> &mut Self {
        self.items.push(Item::Inst(i));
        self
    }

    /// Defines a label at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined (a programming error in the
    /// kernel generator).
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        let prev = self.labels.insert(name.clone(), self.items.len());
        assert!(prev.is_none(), "label `{name}` defined twice");
        self
    }

    /// Appends a conditional branch to a label.
    pub fn branch(&mut self, kind: BranchKind, rs1: Reg, rs2: Reg, label: impl Into<String>) -> &mut Self {
        self.items.push(Item::Branch {
            kind,
            rs1,
            rs2,
            label: label.into(),
        });
        self
    }

    /// Appends a `jal` to a label.
    pub fn jal(&mut self, rd: Reg, label: impl Into<String>) -> &mut Self {
        self.items.push(Item::Jal {
            rd,
            label: label.into(),
        });
        self
    }

    /// Appends an unconditional jump (`jal x0`) to a label.
    pub fn jump(&mut self, label: impl Into<String>) -> &mut Self {
        self.jal(Reg::Zero, label)
    }

    /// Loads an arbitrary 32-bit constant with `lui` + `addi`.
    pub fn li32(&mut self, rd: Reg, value: i32) -> &mut Self {
        let lo = (value << 20) >> 20; // sign-extended low 12 bits
        let hi = value.wrapping_sub(lo);
        if hi != 0 {
            self.inst(Instruction::Lui { rd, imm: hi });
            if lo != 0 {
                self.inst(Instruction::addi(rd, rd, lo));
            }
        } else {
            self.inst(Instruction::li(rd, lo));
        }
        self
    }

    /// Number of instructions emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no instructions have been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Resolves labels and returns the instruction sequence.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UndefinedLabel`] for a dangling reference or
    /// [`IsaError::OffsetOutOfRange`] for unreachable displacements.
    pub fn assemble(&self) -> Result<Vec<Instruction>, IsaError> {
        let resolve = |label: &str, from: usize, bits: u32| -> Result<i32, IsaError> {
            let target = self
                .labels
                .get(label)
                .ok_or_else(|| IsaError::UndefinedLabel {
                    label: label.to_string(),
                })?;
            let offset = (*target as i64 - from as i64) * 4;
            let max = (1i64 << (bits - 1)) - 1;
            let min = -(1i64 << (bits - 1));
            if offset < min || offset > max {
                return Err(IsaError::OffsetOutOfRange { offset, bits });
            }
            Ok(offset as i32)
        };
        self.items
            .iter()
            .enumerate()
            .map(|(pc, item)| match item {
                Item::Inst(i) => Ok(*i),
                Item::Branch {
                    kind,
                    rs1,
                    rs2,
                    label,
                } => Ok(Instruction::Branch {
                    kind: *kind,
                    rs1: *rs1,
                    rs2: *rs2,
                    offset: resolve(label, pc, 13)?,
                }),
                Item::Jal { rd, label } => Ok(Instruction::Jal {
                    rd: *rd,
                    offset: resolve(label, pc, 21)?,
                }),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Instruction as I;

    #[test]
    fn backward_branch_resolves_negative() {
        let mut a = Assembler::new();
        a.label("top");
        a.inst(I::nop());
        a.branch(BranchKind::Bne, Reg::A0, Reg::Zero, "top");
        let p = a.assemble().unwrap();
        match p[1] {
            I::Branch { offset, .. } => assert_eq!(offset, -4),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn forward_jump_resolves_positive() {
        let mut a = Assembler::new();
        a.jump("end");
        a.inst(I::nop());
        a.inst(I::nop());
        a.label("end");
        a.inst(I::Ebreak);
        let p = a.assemble().unwrap();
        match p[0] {
            I::Jal { offset, .. } => assert_eq!(offset, 12),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn undefined_label_errors() {
        let mut a = Assembler::new();
        a.jump("nowhere");
        assert!(matches!(
            a.assemble(),
            Err(IsaError::UndefinedLabel { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_label_panics() {
        let mut a = Assembler::new();
        a.label("x");
        a.label("x");
    }

    #[test]
    fn li32_small_uses_single_addi() {
        let mut a = Assembler::new();
        a.li32(Reg::A0, 42);
        assert_eq!(a.assemble().unwrap(), vec![I::li(Reg::A0, 42)]);
    }

    #[test]
    fn li32_large_uses_lui_pair() {
        let mut a = Assembler::new();
        a.li32(Reg::A0, 0x1234_5678);
        let p = a.assemble().unwrap();
        assert_eq!(p.len(), 2);
        // semantics check: lui imm + addi low == value
        match (p[0], p[1]) {
            (I::Lui { imm, .. }, I::OpImm { imm: lo, .. }) => {
                assert_eq!(imm.wrapping_add(lo), 0x1234_5678);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn li32_negative_low_carries() {
        let mut a = Assembler::new();
        a.li32(Reg::A0, 0x0000_0FFF); // low 12 bits sign-extend negative
        let p = a.assemble().unwrap();
        match (p[0], p[1]) {
            (I::Lui { imm, .. }, I::OpImm { imm: lo, .. }) => {
                assert_eq!(imm.wrapping_add(lo), 0xFFF);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn branch_out_of_range_rejected() {
        let mut a = Assembler::new();
        a.label("top");
        for _ in 0..2000 {
            a.inst(I::nop());
        }
        a.branch(BranchKind::Beq, Reg::Zero, Reg::Zero, "top");
        assert!(matches!(
            a.assemble(),
            Err(IsaError::OffsetOutOfRange { .. })
        ));
    }
}
