//! Bit-exact 32-bit instruction decoding (inverse of [`crate::encode`]).

use crate::inst::{
    AmoKind, BranchKind, Instruction, LoadKind, OpImmKind, OpKind, StoreKind, VecWidth,
};
use crate::reg::Reg;
use crate::{IsaError, CUSTOM0};

fn reg(word: u32, lsb: u32) -> Reg {
    Reg::from_index((word >> lsb) & 0x1F).expect("5-bit field is always a valid register")
}

fn sext(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

fn i_imm(w: u32) -> i32 {
    sext(w >> 20, 12)
}

fn s_imm(w: u32) -> i32 {
    sext(((w >> 25) << 5) | ((w >> 7) & 0x1F), 12)
}

fn b_imm(w: u32) -> i32 {
    let imm = (((w >> 31) & 1) << 12)
        | (((w >> 7) & 1) << 11)
        | (((w >> 25) & 0x3F) << 5)
        | (((w >> 8) & 0xF) << 1);
    sext(imm, 13)
}

fn j_imm(w: u32) -> i32 {
    let imm = (((w >> 31) & 1) << 20)
        | (((w >> 12) & 0xFF) << 12)
        | (((w >> 20) & 1) << 11)
        | (((w >> 21) & 0x3FF) << 1);
    sext(imm, 21)
}

/// Decodes a 32-bit word into an instruction.
///
/// # Errors
///
/// Returns [`IsaError::IllegalInstruction`] for any word that is not a
/// supported RV32IMA or CMem-extension encoding.
pub fn decode(word: u32) -> Result<Instruction, IsaError> {
    let opcode = word & 0x7F;
    let f3 = (word >> 12) & 7;
    let f7 = word >> 25;
    let illegal = || IsaError::IllegalInstruction { word };
    Ok(match opcode {
        0x37 => Instruction::Lui {
            rd: reg(word, 7),
            imm: (word & 0xFFFF_F000) as i32,
        },
        0x17 => Instruction::Auipc {
            rd: reg(word, 7),
            imm: (word & 0xFFFF_F000) as i32,
        },
        0x6F => Instruction::Jal {
            rd: reg(word, 7),
            offset: j_imm(word),
        },
        0x67 => {
            if f3 != 0 {
                return Err(illegal());
            }
            Instruction::Jalr {
                rd: reg(word, 7),
                rs1: reg(word, 15),
                offset: i_imm(word),
            }
        }
        0x63 => {
            let kind = match f3 {
                0 => BranchKind::Beq,
                1 => BranchKind::Bne,
                4 => BranchKind::Blt,
                5 => BranchKind::Bge,
                6 => BranchKind::Bltu,
                7 => BranchKind::Bgeu,
                _ => return Err(illegal()),
            };
            Instruction::Branch {
                kind,
                rs1: reg(word, 15),
                rs2: reg(word, 20),
                offset: b_imm(word),
            }
        }
        0x03 => {
            let kind = match f3 {
                0 => LoadKind::Lb,
                1 => LoadKind::Lh,
                2 => LoadKind::Lw,
                4 => LoadKind::Lbu,
                5 => LoadKind::Lhu,
                _ => return Err(illegal()),
            };
            Instruction::Load {
                kind,
                rd: reg(word, 7),
                rs1: reg(word, 15),
                offset: i_imm(word),
            }
        }
        0x23 => {
            let kind = match f3 {
                0 => StoreKind::Sb,
                1 => StoreKind::Sh,
                2 => StoreKind::Sw,
                _ => return Err(illegal()),
            };
            Instruction::Store {
                kind,
                rs1: reg(word, 15),
                rs2: reg(word, 20),
                offset: s_imm(word),
            }
        }
        0x13 => {
            let (kind, imm) = match f3 {
                0 => (OpImmKind::Addi, i_imm(word)),
                2 => (OpImmKind::Slti, i_imm(word)),
                3 => (OpImmKind::Sltiu, i_imm(word)),
                4 => (OpImmKind::Xori, i_imm(word)),
                6 => (OpImmKind::Ori, i_imm(word)),
                7 => (OpImmKind::Andi, i_imm(word)),
                1 => {
                    if f7 != 0 {
                        return Err(illegal());
                    }
                    (OpImmKind::Slli, ((word >> 20) & 0x1F) as i32)
                }
                5 => match f7 {
                    0x00 => (OpImmKind::Srli, ((word >> 20) & 0x1F) as i32),
                    0x20 => (OpImmKind::Srai, ((word >> 20) & 0x1F) as i32),
                    _ => return Err(illegal()),
                },
                _ => return Err(illegal()),
            };
            Instruction::OpImm {
                kind,
                rd: reg(word, 7),
                rs1: reg(word, 15),
                imm,
            }
        }
        0x33 => {
            let kind = match (f7, f3) {
                (0x00, 0) => OpKind::Add,
                (0x20, 0) => OpKind::Sub,
                (0x00, 1) => OpKind::Sll,
                (0x00, 2) => OpKind::Slt,
                (0x00, 3) => OpKind::Sltu,
                (0x00, 4) => OpKind::Xor,
                (0x00, 5) => OpKind::Srl,
                (0x20, 5) => OpKind::Sra,
                (0x00, 6) => OpKind::Or,
                (0x00, 7) => OpKind::And,
                (0x01, 0) => OpKind::Mul,
                (0x01, 1) => OpKind::Mulh,
                (0x01, 2) => OpKind::Mulhsu,
                (0x01, 3) => OpKind::Mulhu,
                (0x01, 4) => OpKind::Div,
                (0x01, 5) => OpKind::Divu,
                (0x01, 6) => OpKind::Rem,
                (0x01, 7) => OpKind::Remu,
                _ => return Err(illegal()),
            };
            Instruction::Op {
                kind,
                rd: reg(word, 7),
                rs1: reg(word, 15),
                rs2: reg(word, 20),
            }
        }
        0x2F => {
            if f3 != 2 {
                return Err(illegal());
            }
            let kind = match f7 >> 2 {
                0b00010 => AmoKind::LrW,
                0b00011 => AmoKind::ScW,
                0b00001 => AmoKind::Swap,
                0b00000 => AmoKind::Add,
                0b00100 => AmoKind::Xor,
                0b01100 => AmoKind::And,
                0b01000 => AmoKind::Or,
                0b10000 => AmoKind::Min,
                0b10100 => AmoKind::Max,
                0b11000 => AmoKind::Minu,
                0b11100 => AmoKind::Maxu,
                _ => return Err(illegal()),
            };
            Instruction::Amo {
                kind,
                rd: reg(word, 7),
                rs1: reg(word, 15),
                rs2: reg(word, 20),
            }
        }
        0x0F => Instruction::Fence,
        0x73 => match word >> 20 {
            0 => Instruction::Ecall,
            1 => Instruction::Ebreak,
            _ => return Err(illegal()),
        },
        CUSTOM0 => match f3 {
            0 => Instruction::MacC {
                rd: reg(word, 7),
                slice: ((word >> 15) & 7) as u8,
                row_a: ((word >> 18) & 0x3F) as u8,
                row_b: ((word >> 24) & 0x3F) as u8,
                width: VecWidth::from_code(word >> 30),
            },
            1 => Instruction::MoveC {
                src_slice: ((word >> 7) & 7) as u8,
                width: VecWidth::from_code(word >> 10),
                src_row: ((word >> 15) & 0x3F) as u8,
                dst_slice: ((word >> 21) & 7) as u8,
                dst_row: ((word >> 24) & 0x3F) as u8,
            },
            2 => Instruction::SetRowC {
                slice: ((word >> 7) & 7) as u8,
                value: (word >> 10) & 1 == 1,
                row: ((word >> 15) & 0x3F) as u8,
            },
            3 => Instruction::ShiftRowC {
                slice: ((word >> 7) & 7) as u8,
                left: (word >> 10) & 1 == 1,
                granules: ((word >> 15) & 7) as u8,
                row: ((word >> 20) & 0x3F) as u8,
            },
            4 => Instruction::LoadRowRC {
                slice: ((word >> 7) & 7) as u8,
                rs1: reg(word, 15),
                row: ((word >> 20) & 0x3F) as u8,
            },
            5 => Instruction::StoreRowRC {
                slice: ((word >> 7) & 7) as u8,
                rs1: reg(word, 15),
                row: ((word >> 20) & 0x3F) as u8,
            },
            6 => Instruction::SetMaskC {
                slice: ((word >> 7) & 7) as u8,
                rs1: reg(word, 15),
            },
            _ => return Err(illegal()),
        },
        _ => return Err(illegal()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use proptest::prelude::*;

    #[test]
    fn illegal_word_rejected() {
        assert!(decode(0xFFFF_FFFF).is_err());
        assert!(decode(0).is_err());
    }

    #[test]
    fn negative_immediates_roundtrip() {
        for imm in [-1, -2048, 2047, 0, 1] {
            let i = Instruction::addi(Reg::A0, Reg::A1, imm);
            assert_eq!(decode(encode(&i)).unwrap(), i);
        }
    }

    #[test]
    fn branch_offsets_roundtrip() {
        for off in [-4096, -2, 0, 2, 4094] {
            let i = Instruction::Branch {
                kind: BranchKind::Bne,
                rs1: Reg::T0,
                rs2: Reg::T1,
                offset: off,
            };
            assert_eq!(decode(encode(&i)).unwrap(), i);
        }
    }

    #[test]
    fn jal_offsets_roundtrip() {
        for off in [-1_048_576, -2, 0, 2, 1_048_574] {
            let i = Instruction::Jal {
                rd: Reg::Ra,
                offset: off,
            };
            assert_eq!(decode(encode(&i)).unwrap(), i);
        }
    }

    fn arb_reg() -> impl Strategy<Value = Reg> {
        (0u32..32).prop_map(|i| Reg::from_index(i).unwrap())
    }

    fn arb_instruction() -> impl Strategy<Value = Instruction> {
        prop_oneof![
            (arb_reg(), any::<i32>()).prop_map(|(rd, v)| Instruction::Lui {
                rd,
                imm: v & 0xFFFF_F000u32 as i32
            }),
            (arb_reg(), arb_reg(), -2048i32..2048)
                .prop_map(|(rd, rs1, imm)| Instruction::addi(rd, rs1, imm)),
            (arb_reg(), arb_reg(), arb_reg(), 0usize..18).prop_map(|(rd, rs1, rs2, k)| {
                let kinds = [
                    OpKind::Add,
                    OpKind::Sub,
                    OpKind::Sll,
                    OpKind::Slt,
                    OpKind::Sltu,
                    OpKind::Xor,
                    OpKind::Srl,
                    OpKind::Sra,
                    OpKind::Or,
                    OpKind::And,
                    OpKind::Mul,
                    OpKind::Mulh,
                    OpKind::Mulhsu,
                    OpKind::Mulhu,
                    OpKind::Div,
                    OpKind::Divu,
                    OpKind::Rem,
                    OpKind::Remu,
                ];
                Instruction::Op {
                    kind: kinds[k],
                    rd,
                    rs1,
                    rs2,
                }
            }),
            (arb_reg(), arb_reg(), -2048i32..2048).prop_map(|(rd, rs1, off)| {
                Instruction::lw(rd, rs1, off)
            }),
            (arb_reg(), arb_reg(), -2048i32..2048).prop_map(|(rs2, rs1, off)| {
                Instruction::sw(rs2, rs1, off)
            }),
            (arb_reg(), 0u8..8, 0u8..64, 0u8..64, 0u32..4).prop_map(
                |(rd, slice, row_a, row_b, w)| Instruction::MacC {
                    rd,
                    slice,
                    row_a,
                    row_b,
                    width: VecWidth::from_code(w),
                }
            ),
            (0u8..8, 0u8..64, 0u8..8, 0u8..64, 0u32..4).prop_map(
                |(ss, sr, ds, dr, w)| Instruction::MoveC {
                    src_slice: ss,
                    src_row: sr,
                    dst_slice: ds,
                    dst_row: dr,
                    width: VecWidth::from_code(w),
                }
            ),
            (0u8..8, 0u8..64, any::<bool>()).prop_map(|(slice, row, value)| {
                Instruction::SetRowC { slice, row, value }
            }),
            (0u8..8, 0u8..64, any::<bool>(), 0u8..8).prop_map(|(slice, row, left, g)| {
                Instruction::ShiftRowC {
                    slice,
                    row,
                    left,
                    granules: g,
                }
            }),
            (arb_reg(), 0u8..8, 0u8..64).prop_map(|(rs1, slice, row)| Instruction::LoadRowRC {
                rs1,
                slice,
                row
            }),
            (arb_reg(), 0u8..8, 0u8..64).prop_map(|(rs1, slice, row)| Instruction::StoreRowRC {
                rs1,
                slice,
                row
            }),
            (arb_reg(), 0u8..8).prop_map(|(rs1, slice)| Instruction::SetMaskC { rs1, slice }),
        ]
    }

    proptest! {
        #[test]
        fn prop_encode_decode_roundtrip(inst in arb_instruction()) {
            prop_assert_eq!(decode(encode(&inst)).unwrap(), inst);
        }

        #[test]
        fn prop_decode_never_panics(word in any::<u32>()) {
            let _ = decode(word);
        }

        #[test]
        fn prop_decoded_reencodes_identically(word in any::<u32>()) {
            if let Ok(inst) = decode(word) {
                // encode(decode(w)) need not equal w (don't-care bits), but a
                // second decode must be a fixed point.
                let w2 = encode(&inst);
                prop_assert_eq!(decode(w2).unwrap(), inst);
            }
        }
    }
}
