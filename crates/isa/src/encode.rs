//! Bit-exact 32-bit instruction encoding.
//!
//! RV32IMA encodings follow the unprivileged spec; the CMem extension packs
//! its operands into the *custom-0* major opcode (0x0B) with `funct3`
//! selecting the operation:
//!
//! | funct3 | op |
//! |---|---|
//! | 000 | `MAC.C` — slice\[17:15\], row_a\[23:18\], row_b\[29:24\], width\[31:30\] |
//! | 001 | `Move.C` — src_slice\[9:7\], width\[11:10\], src_row\[20:15\], dst_slice\[23:21\], dst_row\[29:24\] |
//! | 010 | `SetRow.C` — slice\[9:7\], value\[10\], row\[20:15\] |
//! | 011 | `ShiftRow.C` — slice\[9:7\], left\[10\], granules\[17:15\], row\[25:20\] |
//! | 100 | `LoadRow.RC` — slice\[9:7\], rs1\[19:15\], row\[25:20\] |
//! | 101 | `StoreRow.RC` — slice\[9:7\], rs1\[19:15\], row\[25:20\] |
//! | 110 | `SetMask.C` — slice\[9:7\], rs1\[19:15\] |

use crate::inst::{AmoKind, BranchKind, Instruction, LoadKind, OpImmKind, OpKind, StoreKind};
use crate::reg::Reg;
use crate::CUSTOM0;

fn r(reg: Reg) -> u32 {
    reg.index() as u32
}

fn rtype(op: u32, rd: Reg, f3: u32, rs1: Reg, rs2: Reg, f7: u32) -> u32 {
    op | (r(rd) << 7) | (f3 << 12) | (r(rs1) << 15) | (r(rs2) << 20) | (f7 << 25)
}

fn itype(op: u32, rd: Reg, f3: u32, rs1: Reg, imm: i32) -> u32 {
    op | (r(rd) << 7) | (f3 << 12) | (r(rs1) << 15) | (((imm as u32) & 0xFFF) << 20)
}

fn stype(op: u32, f3: u32, rs1: Reg, rs2: Reg, imm: i32) -> u32 {
    let imm = imm as u32;
    op | ((imm & 0x1F) << 7)
        | (f3 << 12)
        | (r(rs1) << 15)
        | (r(rs2) << 20)
        | (((imm >> 5) & 0x7F) << 25)
}

fn btype(op: u32, f3: u32, rs1: Reg, rs2: Reg, imm: i32) -> u32 {
    let imm = imm as u32;
    op | (((imm >> 11) & 1) << 7)
        | (((imm >> 1) & 0xF) << 8)
        | (f3 << 12)
        | (r(rs1) << 15)
        | (r(rs2) << 20)
        | (((imm >> 5) & 0x3F) << 25)
        | (((imm >> 12) & 1) << 31)
}

fn jtype(op: u32, rd: Reg, imm: i32) -> u32 {
    let imm = imm as u32;
    op | (r(rd) << 7)
        | (((imm >> 12) & 0xFF) << 12)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 20) & 1) << 31)
}

/// Encodes an instruction to its 32-bit word.
///
/// Field overflow (e.g. a branch offset beyond ±4 KiB) silently truncates,
/// matching what an assembler emitting raw fields would produce; the
/// [`crate::asm::Assembler`] checks ranges before calling this.
#[must_use]
pub fn encode(inst: &Instruction) -> u32 {
    match *inst {
        Instruction::Lui { rd, imm } => 0x37 | (r(rd) << 7) | ((imm as u32) & 0xFFFF_F000),
        Instruction::Auipc { rd, imm } => 0x17 | (r(rd) << 7) | ((imm as u32) & 0xFFFF_F000),
        Instruction::Jal { rd, offset } => jtype(0x6F, rd, offset),
        Instruction::Jalr { rd, rs1, offset } => itype(0x67, rd, 0, rs1, offset),
        Instruction::Branch {
            kind,
            rs1,
            rs2,
            offset,
        } => {
            let f3 = match kind {
                BranchKind::Beq => 0,
                BranchKind::Bne => 1,
                BranchKind::Blt => 4,
                BranchKind::Bge => 5,
                BranchKind::Bltu => 6,
                BranchKind::Bgeu => 7,
            };
            btype(0x63, f3, rs1, rs2, offset)
        }
        Instruction::Load {
            kind,
            rd,
            rs1,
            offset,
        } => {
            let f3 = match kind {
                LoadKind::Lb => 0,
                LoadKind::Lh => 1,
                LoadKind::Lw => 2,
                LoadKind::Lbu => 4,
                LoadKind::Lhu => 5,
            };
            itype(0x03, rd, f3, rs1, offset)
        }
        Instruction::Store {
            kind,
            rs1,
            rs2,
            offset,
        } => {
            let f3 = match kind {
                StoreKind::Sb => 0,
                StoreKind::Sh => 1,
                StoreKind::Sw => 2,
            };
            stype(0x23, f3, rs1, rs2, offset)
        }
        Instruction::OpImm { kind, rd, rs1, imm } => match kind {
            OpImmKind::Addi => itype(0x13, rd, 0, rs1, imm),
            OpImmKind::Slti => itype(0x13, rd, 2, rs1, imm),
            OpImmKind::Sltiu => itype(0x13, rd, 3, rs1, imm),
            OpImmKind::Xori => itype(0x13, rd, 4, rs1, imm),
            OpImmKind::Ori => itype(0x13, rd, 6, rs1, imm),
            OpImmKind::Andi => itype(0x13, rd, 7, rs1, imm),
            OpImmKind::Slli => itype(0x13, rd, 1, rs1, imm & 0x1F),
            OpImmKind::Srli => itype(0x13, rd, 5, rs1, imm & 0x1F),
            OpImmKind::Srai => itype(0x13, rd, 5, rs1, (imm & 0x1F) | 0x400),
        },
        Instruction::Op { kind, rd, rs1, rs2 } => {
            let (f3, f7) = match kind {
                OpKind::Add => (0, 0x00),
                OpKind::Sub => (0, 0x20),
                OpKind::Sll => (1, 0x00),
                OpKind::Slt => (2, 0x00),
                OpKind::Sltu => (3, 0x00),
                OpKind::Xor => (4, 0x00),
                OpKind::Srl => (5, 0x00),
                OpKind::Sra => (5, 0x20),
                OpKind::Or => (6, 0x00),
                OpKind::And => (7, 0x00),
                OpKind::Mul => (0, 0x01),
                OpKind::Mulh => (1, 0x01),
                OpKind::Mulhsu => (2, 0x01),
                OpKind::Mulhu => (3, 0x01),
                OpKind::Div => (4, 0x01),
                OpKind::Divu => (5, 0x01),
                OpKind::Rem => (6, 0x01),
                OpKind::Remu => (7, 0x01),
            };
            rtype(0x33, rd, f3, rs1, rs2, f7)
        }
        Instruction::Amo { kind, rd, rs1, rs2 } => {
            let f5 = match kind {
                AmoKind::LrW => 0b00010,
                AmoKind::ScW => 0b00011,
                AmoKind::Swap => 0b00001,
                AmoKind::Add => 0b00000,
                AmoKind::Xor => 0b00100,
                AmoKind::And => 0b01100,
                AmoKind::Or => 0b01000,
                AmoKind::Min => 0b10000,
                AmoKind::Max => 0b10100,
                AmoKind::Minu => 0b11000,
                AmoKind::Maxu => 0b11100,
            };
            rtype(0x2F, rd, 2, rs1, rs2, f5 << 2)
        }
        Instruction::Fence => 0x0F,
        Instruction::Ecall => 0x73,
        Instruction::Ebreak => 0x0010_0073,
        Instruction::MacC {
            rd,
            slice,
            row_a,
            row_b,
            width,
        } => {
            CUSTOM0
                | (r(rd) << 7)
                | ((slice as u32 & 7) << 15)
                | ((row_a as u32 & 0x3F) << 18)
                | ((row_b as u32 & 0x3F) << 24)
                | (width.code() << 30)
        }
        Instruction::MoveC {
            src_slice,
            src_row,
            dst_slice,
            dst_row,
            width,
        } => {
            CUSTOM0
                | (1 << 12)
                | ((src_slice as u32 & 7) << 7)
                | (width.code() << 10)
                | ((src_row as u32 & 0x3F) << 15)
                | ((dst_slice as u32 & 7) << 21)
                | ((dst_row as u32 & 0x3F) << 24)
        }
        Instruction::SetRowC { slice, row, value } => {
            CUSTOM0
                | (2 << 12)
                | ((slice as u32 & 7) << 7)
                | (u32::from(value) << 10)
                | ((row as u32 & 0x3F) << 15)
        }
        Instruction::ShiftRowC {
            slice,
            row,
            left,
            granules,
        } => {
            CUSTOM0
                | (3 << 12)
                | ((slice as u32 & 7) << 7)
                | (u32::from(left) << 10)
                | ((granules as u32 & 7) << 15)
                | ((row as u32 & 0x3F) << 20)
        }
        Instruction::LoadRowRC { rs1, slice, row } => {
            CUSTOM0
                | (4 << 12)
                | ((slice as u32 & 7) << 7)
                | (r(rs1) << 15)
                | ((row as u32 & 0x3F) << 20)
        }
        Instruction::StoreRowRC { rs1, slice, row } => {
            CUSTOM0
                | (5 << 12)
                | ((slice as u32 & 7) << 7)
                | (r(rs1) << 15)
                | ((row as u32 & 0x3F) << 20)
        }
        Instruction::SetMaskC { rs1, slice } => {
            CUSTOM0 | (6 << 12) | ((slice as u32 & 7) << 7) | (r(rs1) << 15)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_nop_encoding() {
        assert_eq!(encode(&Instruction::nop()), 0x0000_0013);
    }

    #[test]
    fn known_encodings_from_spec() {
        // addi a0, a0, 1  →  0x00150513
        assert_eq!(encode(&Instruction::addi(Reg::A0, Reg::A0, 1)), 0x0015_0513);
        // add a0, a1, a2  →  0x00C58533
        assert_eq!(
            encode(&Instruction::add(Reg::A0, Reg::A1, Reg::A2)),
            0x00C5_8533
        );
        // lw a0, 4(sp)  →  0x00412503
        assert_eq!(encode(&Instruction::lw(Reg::A0, Reg::Sp, 4)), 0x0041_2503);
        // sw a0, 4(sp)  →  0x00A12223
        assert_eq!(encode(&Instruction::sw(Reg::A0, Reg::Sp, 4)), 0x00A1_2223);
        // ecall / ebreak
        assert_eq!(encode(&Instruction::Ecall), 0x0000_0073);
        assert_eq!(encode(&Instruction::Ebreak), 0x0010_0073);
    }

    #[test]
    fn mul_uses_m_funct7() {
        let w = encode(&Instruction::Op {
            kind: OpKind::Mul,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        });
        assert_eq!(w >> 25, 0x01);
        assert_eq!(w & 0x7F, 0x33);
    }

    #[test]
    fn cmem_ops_use_custom0() {
        let m = Instruction::MacC {
            rd: Reg::T0,
            slice: 7,
            row_a: 63,
            row_b: 0,
            width: crate::inst::VecWidth::W16,
        };
        assert_eq!(encode(&m) & 0x7F, CUSTOM0);
    }
}
