use std::fmt;

/// Errors raised while decoding or assembling instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// The 32-bit word does not decode to a supported instruction.
    IllegalInstruction {
        /// The raw instruction word.
        word: u32,
    },
    /// An assembler label was referenced but never defined.
    UndefinedLabel {
        /// The label name.
        label: String,
    },
    /// A branch/jump displacement does not fit its immediate field.
    OffsetOutOfRange {
        /// The displacement in bytes.
        offset: i64,
        /// The number of immediate bits available.
        bits: u32,
    },
    /// An operand value does not fit its encoding field.
    FieldOutOfRange {
        /// Which field.
        field: &'static str,
        /// The offending value.
        value: i64,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::IllegalInstruction { word } => {
                write!(f, "illegal instruction word {word:#010x}")
            }
            IsaError::UndefinedLabel { label } => write!(f, "undefined label `{label}`"),
            IsaError::OffsetOutOfRange { offset, bits } => {
                write!(f, "offset {offset} does not fit in {bits} bits")
            }
            IsaError::FieldOutOfRange { field, value } => {
                write!(f, "value {value} does not fit field `{field}`")
            }
        }
    }
}

impl std::error::Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_word() {
        let e = IsaError::IllegalInstruction { word: 0xdeadbeef };
        assert!(e.to_string().contains("0xdeadbeef"));
    }
}
