//! Instruction definitions with dataflow metadata.
//!
//! The enum covers the full RV32IMA base ISA plus the CMem extension of
//! Table 2. Beyond representing instructions, it answers the questions the
//! pipeline model asks: which register does this define, which does it use,
//! which CMem slice does it occupy, and how many cycles does its execution
//! unit need.

use crate::reg::Reg;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Conditional branch comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BranchKind {
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
}

/// Load widths/signedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum LoadKind {
    Lb,
    Lh,
    Lw,
    Lbu,
    Lhu,
}

/// Store widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum StoreKind {
    Sb,
    Sh,
    Sw,
}

/// Register–immediate ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum OpImmKind {
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
}

/// Register–register ALU/M-extension operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum OpKind {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    // M extension
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
}

impl OpKind {
    /// Whether this is an M-extension multiply.
    #[must_use]
    pub fn is_mul(self) -> bool {
        matches!(self, OpKind::Mul | OpKind::Mulh | OpKind::Mulhsu | OpKind::Mulhu)
    }

    /// Whether this is an M-extension divide/remainder.
    #[must_use]
    pub fn is_div(self) -> bool {
        matches!(self, OpKind::Div | OpKind::Divu | OpKind::Rem | OpKind::Remu)
    }
}

/// A-extension atomic memory operations (all word-width).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum AmoKind {
    LrW,
    ScW,
    Swap,
    Add,
    Xor,
    And,
    Or,
    Min,
    Max,
    Minu,
    Maxu,
}

/// Vector element widths the CMem supports (§2.2: 16/8/4/2-bit fixed point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VecWidth {
    /// 2-bit elements.
    W2,
    /// 4-bit elements.
    W4,
    /// 8-bit elements (the evaluation's precision).
    W8,
    /// 16-bit elements.
    W16,
}

impl VecWidth {
    /// Element width in bits.
    #[must_use]
    pub fn bits(self) -> usize {
        match self {
            VecWidth::W2 => 2,
            VecWidth::W4 => 4,
            VecWidth::W8 => 8,
            VecWidth::W16 => 16,
        }
    }

    /// 2-bit encoding field.
    #[must_use]
    pub fn code(self) -> u32 {
        match self {
            VecWidth::W2 => 0,
            VecWidth::W4 => 1,
            VecWidth::W8 => 2,
            VecWidth::W16 => 3,
        }
    }

    /// Width from its 2-bit encoding field.
    #[must_use]
    pub fn from_code(c: u32) -> VecWidth {
        match c & 3 {
            0 => VecWidth::W2,
            1 => VecWidth::W4,
            2 => VecWidth::W8,
            _ => VecWidth::W16,
        }
    }
}

/// One RV32IMA + CMem instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instruction {
    /// Load upper immediate (`imm` is the full 32-bit value with low 12 bits zero).
    Lui {
        /// Destination.
        rd: Reg,
        /// Upper-immediate value (low 12 bits zero).
        imm: i32,
    },
    /// Add upper immediate to PC.
    Auipc {
        /// Destination.
        rd: Reg,
        /// Upper-immediate value (low 12 bits zero).
        imm: i32,
    },
    /// Jump and link.
    Jal {
        /// Destination for the return address.
        rd: Reg,
        /// Byte displacement from this instruction.
        offset: i32,
    },
    /// Indirect jump and link.
    Jalr {
        /// Destination for the return address.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Byte displacement added to `rs1`.
        offset: i32,
    },
    /// Conditional branch.
    Branch {
        /// Comparison kind.
        kind: BranchKind,
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
        /// Byte displacement from this instruction.
        offset: i32,
    },
    /// Memory load.
    Load {
        /// Width/signedness.
        kind: LoadKind,
        /// Destination.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Byte displacement.
        offset: i32,
    },
    /// Memory store.
    Store {
        /// Width.
        kind: StoreKind,
        /// Base register.
        rs1: Reg,
        /// Value register.
        rs2: Reg,
        /// Byte displacement.
        offset: i32,
    },
    /// Register–immediate ALU operation.
    OpImm {
        /// Operation.
        kind: OpImmKind,
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// Immediate (shift amount for shifts).
        imm: i32,
    },
    /// Register–register ALU / M-extension operation.
    Op {
        /// Operation.
        kind: OpKind,
        /// Destination.
        rd: Reg,
        /// Left source.
        rs1: Reg,
        /// Right source.
        rs2: Reg,
    },
    /// A-extension atomic (word).
    Amo {
        /// Operation.
        kind: AmoKind,
        /// Destination (old memory value).
        rd: Reg,
        /// Address register.
        rs1: Reg,
        /// Operand register (x0 for `LrW`).
        rs2: Reg,
    },
    /// Memory fence (modelled as a pipeline drain).
    Fence,
    /// Environment call (the simulator's service trap).
    Ecall,
    /// Breakpoint (halts the simulated core).
    Ebreak,

    // ----- CMem extension (Table 2), custom-0 major opcode -----
    /// `MAC.C` — inner product of two transposed vectors in one slice,
    /// result written to `rd`. Takes `n²` CMem cycles.
    MacC {
        /// Destination register for the scalar result.
        rd: Reg,
        /// Slice index 0–7.
        slice: u8,
        /// First word-line of operand A.
        row_a: u8,
        /// First word-line of operand B.
        row_b: u8,
        /// Element width.
        width: VecWidth,
    },
    /// `Move.C` — copy an n-bit vector between slices. Takes `n` cycles.
    MoveC {
        /// Source slice.
        src_slice: u8,
        /// Source word-line.
        src_row: u8,
        /// Destination slice.
        dst_slice: u8,
        /// Destination word-line.
        dst_row: u8,
        /// Element width.
        width: VecWidth,
    },
    /// `SetRow.C` — set one row to all zeros or all ones. One cycle.
    SetRowC {
        /// Slice index.
        slice: u8,
        /// Word-line.
        row: u8,
        /// Fill value.
        value: bool,
    },
    /// `ShiftRow.C` — shift one row by a multiple of 32 bit-lines. Two cycles.
    ShiftRowC {
        /// Slice index.
        slice: u8,
        /// Word-line.
        row: u8,
        /// Shift towards lower bit-line indices.
        left: bool,
        /// Number of 32-bit-line granules.
        granules: u8,
    },
    /// `LoadRow.RC` — load one row from a remote node's CMem (address in
    /// `rs1`) into the local (slice, row).
    LoadRowRC {
        /// Remote address register.
        rs1: Reg,
        /// Local destination slice.
        slice: u8,
        /// Local destination word-line.
        row: u8,
    },
    /// `StoreRow.RC` — store the local (slice, row) to a remote node's CMem
    /// (address in `rs1`).
    StoreRowRC {
        /// Remote address register.
        rs1: Reg,
        /// Local source slice.
        slice: u8,
        /// Local source word-line.
        row: u8,
    },
    /// Write a slice's 8-bit mask CSR from `rs1`.
    SetMaskC {
        /// Value register (low 8 bits used).
        rs1: Reg,
        /// Slice index.
        slice: u8,
    },
}

impl Instruction {
    /// Convenience `addi rd, rs1, imm`.
    #[must_use]
    pub fn addi(rd: Reg, rs1: Reg, imm: i32) -> Self {
        Instruction::OpImm {
            kind: OpImmKind::Addi,
            rd,
            rs1,
            imm,
        }
    }

    /// Convenience `add rd, rs1, rs2`.
    #[must_use]
    pub fn add(rd: Reg, rs1: Reg, rs2: Reg) -> Self {
        Instruction::Op {
            kind: OpKind::Add,
            rd,
            rs1,
            rs2,
        }
    }

    /// Convenience `li rd, imm` for 12-bit immediates (`addi rd, x0, imm`).
    #[must_use]
    pub fn li(rd: Reg, imm: i32) -> Self {
        Instruction::addi(rd, Reg::Zero, imm)
    }

    /// Convenience `nop` (`addi x0, x0, 0`).
    #[must_use]
    pub fn nop() -> Self {
        Instruction::addi(Reg::Zero, Reg::Zero, 0)
    }

    /// Convenience `lw rd, offset(rs1)`.
    #[must_use]
    pub fn lw(rd: Reg, rs1: Reg, offset: i32) -> Self {
        Instruction::Load {
            kind: LoadKind::Lw,
            rd,
            rs1,
            offset,
        }
    }

    /// Convenience `sw rs2, offset(rs1)`.
    #[must_use]
    pub fn sw(rs2: Reg, rs1: Reg, offset: i32) -> Self {
        Instruction::Store {
            kind: StoreKind::Sw,
            rs1,
            rs2,
            offset,
        }
    }

    /// The register this instruction defines, if any (never `x0`).
    #[must_use]
    pub fn def(&self) -> Option<Reg> {
        let rd = match *self {
            Instruction::Lui { rd, .. }
            | Instruction::Auipc { rd, .. }
            | Instruction::Jal { rd, .. }
            | Instruction::Jalr { rd, .. }
            | Instruction::Load { rd, .. }
            | Instruction::OpImm { rd, .. }
            | Instruction::Op { rd, .. }
            | Instruction::Amo { rd, .. }
            | Instruction::MacC { rd, .. } => rd,
            _ => return None,
        };
        (rd != Reg::Zero).then_some(rd)
    }

    /// The registers this instruction reads (x0 excluded).
    #[must_use]
    pub fn uses(&self) -> Vec<Reg> {
        let mut v = Vec::with_capacity(2);
        match *self {
            Instruction::Jalr { rs1, .. }
            | Instruction::Load { rs1, .. }
            | Instruction::OpImm { rs1, .. }
            | Instruction::LoadRowRC { rs1, .. }
            | Instruction::StoreRowRC { rs1, .. }
            | Instruction::SetMaskC { rs1, .. } => v.push(rs1),
            Instruction::Branch { rs1, rs2, .. }
            | Instruction::Store { rs1, rs2, .. }
            | Instruction::Op { rs1, rs2, .. }
            | Instruction::Amo { rs1, rs2, .. } => {
                v.push(rs1);
                v.push(rs2);
            }
            _ => {}
        }
        v.retain(|&r| r != Reg::Zero);
        v
    }

    /// Whether this is one of the CMem extension instructions.
    #[must_use]
    pub fn is_cmem(&self) -> bool {
        matches!(
            self,
            Instruction::MacC { .. }
                | Instruction::MoveC { .. }
                | Instruction::SetRowC { .. }
                | Instruction::ShiftRowC { .. }
                | Instruction::LoadRowRC { .. }
                | Instruction::StoreRowRC { .. }
                | Instruction::SetMaskC { .. }
        )
    }

    /// The CMem slices this instruction occupies while executing.
    #[must_use]
    pub fn cmem_slices(&self) -> Vec<u8> {
        match *self {
            Instruction::MacC { slice, .. }
            | Instruction::SetRowC { slice, .. }
            | Instruction::ShiftRowC { slice, .. }
            | Instruction::LoadRowRC { slice, .. }
            | Instruction::StoreRowRC { slice, .. }
            | Instruction::SetMaskC { slice, .. } => vec![slice],
            Instruction::MoveC {
                src_slice,
                dst_slice,
                ..
            } => {
                if src_slice == dst_slice {
                    vec![src_slice]
                } else {
                    vec![src_slice, dst_slice]
                }
            }
            _ => Vec::new(),
        }
    }

    /// Occupancy of the instruction's execution unit, in cycles
    /// (Table 2 for CMem ops; conventional latencies otherwise).
    #[must_use]
    pub fn exec_cycles(&self) -> u32 {
        match *self {
            Instruction::MacC { width, .. } => (width.bits() * width.bits()) as u32,
            Instruction::MoveC { width, .. } => width.bits() as u32,
            Instruction::SetRowC { .. } => 1,
            Instruction::ShiftRowC { .. } => 2,
            Instruction::LoadRowRC { .. } | Instruction::StoreRowRC { .. } => 1,
            Instruction::SetMaskC { .. } => 1,
            Instruction::Op { kind, .. } if kind.is_mul() => 3,
            Instruction::Op { kind, .. } if kind.is_div() => 34,
            Instruction::Load { .. } | Instruction::Store { .. } | Instruction::Amo { .. } => 1,
            _ => 1,
        }
    }

    /// Whether this instruction changes control flow.
    #[must_use]
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instruction::Jal { .. } | Instruction::Jalr { .. } | Instruction::Branch { .. }
        )
    }

    /// Whether this instruction touches data memory (loads/stores/AMOs).
    #[must_use]
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Instruction::Load { .. } | Instruction::Store { .. } | Instruction::Amo { .. }
        )
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", (imm as u32) >> 12),
            Instruction::Auipc { rd, imm } => write!(f, "auipc {rd}, {:#x}", (imm as u32) >> 12),
            Instruction::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Instruction::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Instruction::Branch {
                kind,
                rs1,
                rs2,
                offset,
            } => write!(f, "{kind:?} {rs1}, {rs2}, {offset}").map(|()| ()),
            Instruction::Load {
                kind,
                rd,
                rs1,
                offset,
            } => write!(f, "{kind:?} {rd}, {offset}({rs1})"),
            Instruction::Store {
                kind,
                rs1,
                rs2,
                offset,
            } => write!(f, "{kind:?} {rs2}, {offset}({rs1})"),
            Instruction::OpImm { kind, rd, rs1, imm } => {
                write!(f, "{kind:?} {rd}, {rs1}, {imm}")
            }
            Instruction::Op { kind, rd, rs1, rs2 } => write!(f, "{kind:?} {rd}, {rs1}, {rs2}"),
            Instruction::Amo { kind, rd, rs1, rs2 } => {
                write!(f, "amo.{kind:?} {rd}, {rs2}, ({rs1})")
            }
            Instruction::Fence => write!(f, "fence"),
            Instruction::Ecall => write!(f, "ecall"),
            Instruction::Ebreak => write!(f, "ebreak"),
            Instruction::MacC {
                rd,
                slice,
                row_a,
                row_b,
                width,
            } => write!(
                f,
                "mac.c {rd}, s{slice}[{row_a}], s{slice}[{row_b}], n{}",
                width.bits()
            ),
            Instruction::MoveC {
                src_slice,
                src_row,
                dst_slice,
                dst_row,
                width,
            } => write!(
                f,
                "move.c s{dst_slice}[{dst_row}], s{src_slice}[{src_row}], n{}",
                width.bits()
            ),
            Instruction::SetRowC { slice, row, value } => {
                write!(f, "setrow.c s{slice}[{row}], {}", u8::from(value))
            }
            Instruction::ShiftRowC {
                slice,
                row,
                left,
                granules,
            } => write!(
                f,
                "shiftrow.c s{slice}[{row}], {}{granules}",
                if left { "-" } else { "+" }
            ),
            Instruction::LoadRowRC { rs1, slice, row } => {
                write!(f, "loadrow.rc s{slice}[{row}], ({rs1})")
            }
            Instruction::StoreRowRC { rs1, slice, row } => {
                write!(f, "storerow.rc s{slice}[{row}], ({rs1})")
            }
            Instruction::SetMaskC { rs1, slice } => write!(f, "setmask.c s{slice}, {rs1}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_excludes_x0() {
        assert_eq!(Instruction::nop().def(), None);
        assert_eq!(
            Instruction::add(Reg::A0, Reg::A1, Reg::A2).def(),
            Some(Reg::A0)
        );
    }

    #[test]
    fn uses_exclude_x0() {
        let i = Instruction::add(Reg::A0, Reg::Zero, Reg::A2);
        assert_eq!(i.uses(), vec![Reg::A2]);
    }

    #[test]
    fn mac_defines_rd_and_occupies_slice() {
        let m = Instruction::MacC {
            rd: Reg::T0,
            slice: 3,
            row_a: 0,
            row_b: 8,
            width: VecWidth::W8,
        };
        assert!(m.is_cmem());
        assert_eq!(m.def(), Some(Reg::T0));
        assert_eq!(m.cmem_slices(), vec![3]);
        assert_eq!(m.exec_cycles(), 64);
    }

    #[test]
    fn move_occupies_both_slices() {
        let mv = Instruction::MoveC {
            src_slice: 0,
            src_row: 0,
            dst_slice: 5,
            dst_row: 8,
            width: VecWidth::W8,
        };
        assert_eq!(mv.cmem_slices(), vec![0, 5]);
        assert_eq!(mv.exec_cycles(), 8);
    }

    #[test]
    fn latency_classes() {
        assert_eq!(
            Instruction::Op {
                kind: OpKind::Div,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2
            }
            .exec_cycles(),
            34
        );
        assert_eq!(
            Instruction::Op {
                kind: OpKind::Mul,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2
            }
            .exec_cycles(),
            3
        );
        assert_eq!(Instruction::nop().exec_cycles(), 1);
    }

    #[test]
    fn width_codes_roundtrip() {
        for w in [VecWidth::W2, VecWidth::W4, VecWidth::W8, VecWidth::W16] {
            assert_eq!(VecWidth::from_code(w.code()), w);
        }
    }

    #[test]
    fn control_and_mem_classification() {
        assert!(Instruction::Jal {
            rd: Reg::Zero,
            offset: 8
        }
        .is_control());
        assert!(Instruction::lw(Reg::A0, Reg::Sp, 0).is_mem());
        assert!(!Instruction::nop().is_mem());
    }

    #[test]
    fn display_is_readable() {
        let m = Instruction::MacC {
            rd: Reg::T0,
            slice: 1,
            row_a: 0,
            row_b: 8,
            width: VecWidth::W8,
        };
        assert_eq!(m.to_string(), "mac.c t0, s1[0], s1[8], n8");
    }
}
