#![warn(missing_docs)]

//! # maicc-isa — RV32IMA instruction set with the CMem extension
//!
//! Every MAICC node is a lightweight RISC-V core with the **RV32IMA** base
//! ISA (§3.1) extended by the six computing-memory instructions of Table 2:
//! `MAC.C`, `Move.C`, `SetRow.C`, `ShiftRow.C`, `LoadRow.RC`, `StoreRow.RC`,
//! plus a mask-CSR write. This crate defines:
//!
//! * [`reg`] — the integer register file names (x0–x31 / ABI);
//! * [`inst`] — the [`inst::Instruction`] enum with dataflow metadata
//!   (defs/uses, latency class) consumed by the scoreboard and the static
//!   scheduler in `maicc-core`;
//! * [`encode`]/[`decode`] — bit-exact 32-bit encodings; the CMem extension
//!   lives in the *custom-0* major opcode (0x0B), the slot the RISC-V spec
//!   reserves for vendor extensions;
//! * [`asm`] — a small two-pass assembler with label support, used by the
//!   kernels, tests and examples;
//! * [`parse`] — a textual assembly front end over the same builder.
//!
//! ## Example
//!
//! ```
//! use maicc_isa::inst::Instruction;
//! use maicc_isa::reg::Reg;
//! use maicc_isa::{decode, encode};
//!
//! let add = Instruction::add(Reg::A0, Reg::A1, Reg::A2);
//! let word = encode::encode(&add);
//! assert_eq!(decode::decode(word).unwrap(), add);
//! ```

pub mod asm;
pub mod decode;
pub mod encode;
pub mod inst;
pub mod parse;
pub mod reg;

mod error;

pub use error::IsaError;

/// Major opcode used by the CMem extension instructions (RISC-V *custom-0*).
pub const CUSTOM0: u32 = 0x0B;
