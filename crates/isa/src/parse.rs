//! Textual assembly parser.
//!
//! Parses a human-readable assembly dialect — the same one
//! [`crate::inst::Instruction`]'s `Display` emits for the CMem extension,
//! plus conventional RISC-V mnemonics — into an [`Assembler`] program.
//! Labels end with `:`; comments start with `#` or `;`.
//!
//! ```text
//!     li    a0, 10
//!     li    a1, 0
//! loop:
//!     add   a1, a1, a0
//!     addi  a0, a0, -1
//!     bne   a0, zero, loop
//!     mac.c t0, s1[0], s1[8], n8
//!     ebreak
//! ```

use crate::asm::Assembler;
use crate::inst::{
    AmoKind, BranchKind, Instruction, LoadKind, OpImmKind, OpKind, StoreKind, VecWidth,
};
use crate::reg::Reg;
use crate::IsaError;
use std::fmt;

/// A parse failure with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    let tok = tok.trim();
    for r in Reg::ALL {
        if r.to_string() == tok {
            return Ok(r);
        }
    }
    // also accept x0..x31
    if let Some(idx) = tok.strip_prefix('x').and_then(|n| n.parse::<u32>().ok()) {
        if let Some(r) = Reg::from_index(idx) {
            return Ok(r);
        }
    }
    Err(err(line, format!("unknown register `{tok}`")))
}

fn parse_imm(tok: &str, line: usize) -> Result<i32, ParseError> {
    let tok = tok.trim();
    let (neg, body) = match tok.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, tok),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| err(line, format!("bad immediate `{tok}`")))?;
    let v = if neg { -v } else { v };
    i32::try_from(v).map_err(|_| err(line, format!("immediate `{tok}` out of 32-bit range")))
}

/// Parses `imm(reg)` address syntax.
fn parse_mem_operand(tok: &str, line: usize) -> Result<(Reg, i32), ParseError> {
    let tok = tok.trim();
    let open = tok
        .find('(')
        .ok_or_else(|| err(line, format!("expected `imm(reg)`, got `{tok}`")))?;
    if !tok.ends_with(')') {
        return Err(err(line, format!("unterminated address `{tok}`")));
    }
    let imm = if open == 0 {
        0
    } else {
        parse_imm(&tok[..open], line)?
    };
    let reg = parse_reg(&tok[open + 1..tok.len() - 1], line)?;
    Ok((reg, imm))
}

/// Parses `s3[12]` slice-row syntax.
fn parse_slice_row(tok: &str, line: usize) -> Result<(u8, u8), ParseError> {
    let tok = tok.trim();
    let rest = tok
        .strip_prefix('s')
        .ok_or_else(|| err(line, format!("expected `s<slice>[<row>]`, got `{tok}`")))?;
    let open = rest
        .find('[')
        .ok_or_else(|| err(line, format!("expected `[row]` in `{tok}`")))?;
    let slice: u8 = rest[..open]
        .parse()
        .map_err(|_| err(line, format!("bad slice in `{tok}`")))?;
    let row: u8 = rest[open + 1..]
        .strip_suffix(']')
        .ok_or_else(|| err(line, format!("unterminated `{tok}`")))?
        .parse()
        .map_err(|_| err(line, format!("bad row in `{tok}`")))?;
    if slice > 7 || row > 63 {
        return Err(err(line, format!("slice/row out of range in `{tok}`")));
    }
    Ok((slice, row))
}

fn parse_width(tok: &str, line: usize) -> Result<VecWidth, ParseError> {
    match tok.trim() {
        "n2" => Ok(VecWidth::W2),
        "n4" => Ok(VecWidth::W4),
        "n8" => Ok(VecWidth::W8),
        "n16" => Ok(VecWidth::W16),
        other => Err(err(line, format!("bad width `{other}` (n2/n4/n8/n16)"))),
    }
}

/// Parses a whole program into an [`Assembler`] (labels unresolved until
/// [`Assembler::assemble`]).
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
pub fn parse_program(src: &str) -> Result<Assembler, ParseError> {
    let mut asm = Assembler::new();
    for (i, raw) in src.lines().enumerate() {
        let line = i + 1;
        let text = raw.split(['#', ';']).next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        if let Some(label) = text.strip_suffix(':') {
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(err(line, format!("bad label `{text}`")));
            }
            asm.label(label);
            continue;
        }
        let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (text, ""),
        };
        let ops: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let need = |n: usize| -> Result<(), ParseError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(
                    line,
                    format!("`{mnemonic}` takes {n} operands, got {}", ops.len()),
                ))
            }
        };
        match mnemonic.to_ascii_lowercase().as_str() {
            "nop" => {
                need(0)?;
                asm.inst(Instruction::nop());
            }
            "ebreak" => {
                need(0)?;
                asm.inst(Instruction::Ebreak);
            }
            "ecall" => {
                need(0)?;
                asm.inst(Instruction::Ecall);
            }
            "fence" => {
                need(0)?;
                asm.inst(Instruction::Fence);
            }
            "li" => {
                need(2)?;
                asm.li32(parse_reg(ops[0], line)?, parse_imm(ops[1], line)?);
            }
            "mv" => {
                need(2)?;
                asm.inst(Instruction::addi(
                    parse_reg(ops[0], line)?,
                    parse_reg(ops[1], line)?,
                    0,
                ));
            }
            "lui" => {
                need(2)?;
                asm.inst(Instruction::Lui {
                    rd: parse_reg(ops[0], line)?,
                    imm: parse_imm(ops[1], line)?.wrapping_shl(12),
                });
            }
            "j" => {
                need(1)?;
                asm.jump(ops[0]);
            }
            "jal" => {
                need(2)?;
                asm.jal(parse_reg(ops[0], line)?, ops[1]);
            }
            "jalr" => {
                need(2)?;
                let (rs1, offset) = parse_mem_operand(ops[1], line)?;
                asm.inst(Instruction::Jalr {
                    rd: parse_reg(ops[0], line)?,
                    rs1,
                    offset,
                });
            }
            b @ ("beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu") => {
                need(3)?;
                let kind = match b {
                    "beq" => BranchKind::Beq,
                    "bne" => BranchKind::Bne,
                    "blt" => BranchKind::Blt,
                    "bge" => BranchKind::Bge,
                    "bltu" => BranchKind::Bltu,
                    _ => BranchKind::Bgeu,
                };
                asm.branch(
                    kind,
                    parse_reg(ops[0], line)?,
                    parse_reg(ops[1], line)?,
                    ops[2],
                );
            }
            l @ ("lb" | "lh" | "lw" | "lbu" | "lhu") => {
                need(2)?;
                let kind = match l {
                    "lb" => LoadKind::Lb,
                    "lh" => LoadKind::Lh,
                    "lw" => LoadKind::Lw,
                    "lbu" => LoadKind::Lbu,
                    _ => LoadKind::Lhu,
                };
                let (rs1, offset) = parse_mem_operand(ops[1], line)?;
                asm.inst(Instruction::Load {
                    kind,
                    rd: parse_reg(ops[0], line)?,
                    rs1,
                    offset,
                });
            }
            st @ ("sb" | "sh" | "sw") => {
                need(2)?;
                let kind = match st {
                    "sb" => StoreKind::Sb,
                    "sh" => StoreKind::Sh,
                    _ => StoreKind::Sw,
                };
                let (rs1, offset) = parse_mem_operand(ops[1], line)?;
                asm.inst(Instruction::Store {
                    kind,
                    rs1,
                    rs2: parse_reg(ops[0], line)?,
                    offset,
                });
            }
            oi @ ("addi" | "slti" | "sltiu" | "xori" | "ori" | "andi" | "slli" | "srli"
            | "srai") => {
                need(3)?;
                let kind = match oi {
                    "addi" => OpImmKind::Addi,
                    "slti" => OpImmKind::Slti,
                    "sltiu" => OpImmKind::Sltiu,
                    "xori" => OpImmKind::Xori,
                    "ori" => OpImmKind::Ori,
                    "andi" => OpImmKind::Andi,
                    "slli" => OpImmKind::Slli,
                    "srli" => OpImmKind::Srli,
                    _ => OpImmKind::Srai,
                };
                asm.inst(Instruction::OpImm {
                    kind,
                    rd: parse_reg(ops[0], line)?,
                    rs1: parse_reg(ops[1], line)?,
                    imm: parse_imm(ops[2], line)?,
                });
            }
            op @ ("add" | "sub" | "sll" | "slt" | "sltu" | "xor" | "srl" | "sra" | "or"
            | "and" | "mul" | "mulh" | "mulhsu" | "mulhu" | "div" | "divu" | "rem"
            | "remu") => {
                need(3)?;
                let kind = match op {
                    "add" => OpKind::Add,
                    "sub" => OpKind::Sub,
                    "sll" => OpKind::Sll,
                    "slt" => OpKind::Slt,
                    "sltu" => OpKind::Sltu,
                    "xor" => OpKind::Xor,
                    "srl" => OpKind::Srl,
                    "sra" => OpKind::Sra,
                    "or" => OpKind::Or,
                    "and" => OpKind::And,
                    "mul" => OpKind::Mul,
                    "mulh" => OpKind::Mulh,
                    "mulhsu" => OpKind::Mulhsu,
                    "mulhu" => OpKind::Mulhu,
                    "div" => OpKind::Div,
                    "divu" => OpKind::Divu,
                    "rem" => OpKind::Rem,
                    _ => OpKind::Remu,
                };
                asm.inst(Instruction::Op {
                    kind,
                    rd: parse_reg(ops[0], line)?,
                    rs1: parse_reg(ops[1], line)?,
                    rs2: parse_reg(ops[2], line)?,
                });
            }
            am @ ("amoswap.w" | "amoadd.w" | "amoxor.w" | "amoand.w" | "amoor.w"
            | "amomin.w" | "amomax.w" | "amominu.w" | "amomaxu.w" | "lr.w" | "sc.w") => {
                let kind = match am {
                    "amoswap.w" => AmoKind::Swap,
                    "amoadd.w" => AmoKind::Add,
                    "amoxor.w" => AmoKind::Xor,
                    "amoand.w" => AmoKind::And,
                    "amoor.w" => AmoKind::Or,
                    "amomin.w" => AmoKind::Min,
                    "amomax.w" => AmoKind::Max,
                    "amominu.w" => AmoKind::Minu,
                    "amomaxu.w" => AmoKind::Maxu,
                    "lr.w" => AmoKind::LrW,
                    _ => AmoKind::ScW,
                };
                if kind == AmoKind::LrW {
                    need(2)?;
                    let (rs1, _) = parse_mem_operand(ops[1], line)?;
                    asm.inst(Instruction::Amo {
                        kind,
                        rd: parse_reg(ops[0], line)?,
                        rs1,
                        rs2: Reg::Zero,
                    });
                } else {
                    need(3)?;
                    let (rs1, _) = parse_mem_operand(ops[2], line)?;
                    asm.inst(Instruction::Amo {
                        kind,
                        rd: parse_reg(ops[0], line)?,
                        rs1,
                        rs2: parse_reg(ops[1], line)?,
                    });
                }
            }
            "mac.c" => {
                need(4)?;
                let rd = parse_reg(ops[0], line)?;
                let (slice, row_a) = parse_slice_row(ops[1], line)?;
                let (slice_b, row_b) = parse_slice_row(ops[2], line)?;
                if slice != slice_b {
                    return Err(err(line, "mac.c operands must share a slice"));
                }
                asm.inst(Instruction::MacC {
                    rd,
                    slice,
                    row_a,
                    row_b,
                    width: parse_width(ops[3], line)?,
                });
            }
            "move.c" => {
                need(3)?;
                let (dst_slice, dst_row) = parse_slice_row(ops[0], line)?;
                let (src_slice, src_row) = parse_slice_row(ops[1], line)?;
                asm.inst(Instruction::MoveC {
                    src_slice,
                    src_row,
                    dst_slice,
                    dst_row,
                    width: parse_width(ops[2], line)?,
                });
            }
            "setrow.c" => {
                need(2)?;
                let (slice, row) = parse_slice_row(ops[0], line)?;
                let value = match ops[1] {
                    "0" => false,
                    "1" => true,
                    other => return Err(err(line, format!("setrow.c value `{other}`"))),
                };
                asm.inst(Instruction::SetRowC { slice, row, value });
            }
            "shiftrow.c" => {
                need(2)?;
                let (slice, row) = parse_slice_row(ops[0], line)?;
                let spec = ops[1];
                let (left, g) = if let Some(g) = spec.strip_prefix('-') {
                    (true, g)
                } else if let Some(g) = spec.strip_prefix('+') {
                    (false, g)
                } else {
                    (false, spec)
                };
                let granules: u8 = g
                    .parse()
                    .map_err(|_| err(line, format!("bad shift `{spec}`")))?;
                asm.inst(Instruction::ShiftRowC {
                    slice,
                    row,
                    left,
                    granules,
                });
            }
            "loadrow.rc" => {
                need(2)?;
                let (slice, row) = parse_slice_row(ops[0], line)?;
                let (rs1, _) = parse_mem_operand(ops[1], line)?;
                asm.inst(Instruction::LoadRowRC { rs1, slice, row });
            }
            "storerow.rc" => {
                need(2)?;
                let (slice, row) = parse_slice_row(ops[0], line)?;
                let (rs1, _) = parse_mem_operand(ops[1], line)?;
                asm.inst(Instruction::StoreRowRC { rs1, slice, row });
            }
            "setmask.c" => {
                need(2)?;
                let rest = ops[0].trim();
                let slice: u8 = rest
                    .strip_prefix('s')
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| err(line, format!("bad slice `{rest}`")))?;
                asm.inst(Instruction::SetMaskC {
                    rs1: parse_reg(ops[1], line)?,
                    slice,
                });
            }
            other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
        }
    }
    Ok(asm)
}

/// Convenience: parse, resolve labels, return instructions.
///
/// # Errors
///
/// Returns [`ParseError`] for syntax errors; label-resolution failures are
/// wrapped with line 0.
pub fn assemble_text(src: &str) -> Result<Vec<Instruction>, ParseError> {
    parse_program(src)?.assemble().map_err(|e: IsaError| err(0, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Instruction as I;

    #[test]
    fn loop_program_parses_and_runs_shape() {
        let prog = assemble_text(
            "
            # sum 1..=10
            li   a0, 10
            li   a1, 0
        loop:
            add  a1, a1, a0
            addi a0, a0, -1
            bne  a0, zero, loop
            ebreak
            ",
        )
        .unwrap();
        assert_eq!(prog.len(), 6);
        assert!(matches!(prog[4], I::Branch { offset: -8, .. }));
    }

    #[test]
    fn memory_and_amo_syntax() {
        let prog = assemble_text(
            "
            lw   a0, 4(sp)
            sb   a1, -1(a0)
            amoadd.w a2, a3, (a0)
            lr.w a4, (a0)
            ",
        )
        .unwrap();
        assert!(matches!(
            prog[0],
            I::Load {
                kind: LoadKind::Lw,
                offset: 4,
                ..
            }
        ));
        assert!(matches!(prog[1], I::Store { offset: -1, .. }));
        assert!(matches!(
            prog[2],
            I::Amo {
                kind: AmoKind::Add,
                ..
            }
        ));
    }

    #[test]
    fn cmem_extension_syntax() {
        let prog = assemble_text(
            "
            mac.c      t0, s1[0], s1[8], n8
            move.c     s2[0], s0[0], n8
            setrow.c   s3[5], 1
            shiftrow.c s3[5], -2
            loadrow.rc s0[0], (a0)
            storerow.rc s1[8], (a1)
            setmask.c  s4, a2
            ",
        )
        .unwrap();
        assert_eq!(
            prog[0],
            I::MacC {
                rd: Reg::T0,
                slice: 1,
                row_a: 0,
                row_b: 8,
                width: VecWidth::W8
            }
        );
        assert_eq!(
            prog[1],
            I::MoveC {
                src_slice: 0,
                src_row: 0,
                dst_slice: 2,
                dst_row: 0,
                width: VecWidth::W8
            }
        );
        assert!(matches!(prog[2], I::SetRowC { value: true, .. }));
        assert!(matches!(
            prog[3],
            I::ShiftRowC {
                left: true,
                granules: 2,
                ..
            }
        ));
        assert!(matches!(prog[6], I::SetMaskC { slice: 4, .. }));
    }

    #[test]
    fn display_roundtrip_for_cmem_ops() {
        // the Display form of CMem instructions parses back to itself
        let insts = [
            I::MacC {
                rd: Reg::A0,
                slice: 3,
                row_a: 0,
                row_b: 16,
                width: VecWidth::W4,
            },
            I::MoveC {
                src_slice: 0,
                src_row: 2,
                dst_slice: 5,
                dst_row: 40,
                width: VecWidth::W16,
            },
            I::SetRowC {
                slice: 6,
                row: 63,
                value: false,
            },
        ];
        for i in insts {
            let text = i.to_string();
            let parsed = assemble_text(&text).unwrap();
            assert_eq!(parsed, vec![i], "{text}");
        }
    }

    #[test]
    fn hex_immediates_and_x_registers() {
        let prog = assemble_text("addi x10, x0, 0x7f").unwrap();
        assert_eq!(prog, vec![I::addi(Reg::A0, Reg::Zero, 0x7F)]);
    }

    #[test]
    fn li_expands_large_constants() {
        let prog = assemble_text("li a0, 0x12345678").unwrap();
        assert_eq!(prog.len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble_text("nop\nbogus a0, a1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
        let e = assemble_text("addi a0, a1").unwrap_err();
        assert!(e.message.contains("3 operands"));
        let e = assemble_text("lw a0, 4[sp]").unwrap_err();
        assert!(e.message.contains("imm(reg)"));
    }

    #[test]
    fn undefined_label_reported() {
        let e = assemble_text("j nowhere").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let prog = assemble_text("\n  # comment\n ; other\nnop # trailing\n").unwrap();
        assert_eq!(prog, vec![I::nop()]);
    }

    #[test]
    fn parsed_program_executes_like_builder_program() {
        // end-to-end: text → instructions → the same encodings as a
        // builder-constructed program
        use crate::encode::encode;
        let text = assemble_text(
            "
            li a0, 5
            li a1, 7
            mul a2, a0, a1
            ebreak
            ",
        )
        .unwrap();
        let mut b = Assembler::new();
        b.li32(Reg::A0, 5);
        b.li32(Reg::A1, 7);
        b.inst(I::Op {
            kind: OpKind::Mul,
            rd: Reg::A2,
            rs1: Reg::A0,
            rs2: Reg::A1,
        });
        b.inst(I::Ebreak);
        let built = b.assemble().unwrap();
        assert_eq!(
            text.iter().map(encode).collect::<Vec<_>>(),
            built.iter().map(encode).collect::<Vec<_>>()
        );
    }
}
