//! The `maicc` command-line tool.
//!
//! ```text
//! maicc map    [--model resnet18|vgg11|tinynet] [--strategy heuristic|greedy|single] [--cores N]
//! maicc node   [--width 4|8|16]          # Table-4 single-node conv
//! maicc asm    <file.s>                  # assemble and hex-dump a program
//! maicc run    <file.s> [--max-steps N]  # execute a program on one node
//! maicc stream                           # conv pipeline through the mesh
//! maicc campaign [--workload small|resnet18] [--seed N] [--ecc off|detect|correct]
//!                [--retry on|off] [--assert-no-unrecoverable] [--json]
//! maicc serve  [--policy fcfs|sjf|partitioned|time-shared] [--trace file.json]
//!              [--seed N] [--horizon N] [--bursty] [--zipf EXP] [--overload] [--pool N]
//!              [--weight-cache] [--cold-cache] [--cache-llc-bytes N]
//!              [--fabrics N] [--replicas K] [--heartbeat N]
//!              [--fabric-fault SPEC]... [--serve-only]
//!              [--engine event|cycle] [--threads N] [--quick] [--json]
//! maicc soak   [--fabrics N] [--replicas K] [--heartbeat N] [--pool N]
//!              [--horizon N] [--interval N] [--seed N] [--no-churn]
//!              [--churn-period N] [--out FILE]
//!              [--engine event|cycle] [--threads N] [--quick]
//! ```
//!
//! `--fabrics N` routes the trace through the multi-fabric cluster
//! front-end instead of a single serving loop. `--fabric-fault` injects
//! fabric-level faults and repeats; a SPEC is one of
//! `outage:FABRIC:AT[:DURATION]`, `brownout:FABRIC:AT:FACTOR:DURATION`,
//! or `tileloss:FABRIC:AT:TILES` (cycles and counts are decimal).
//! `--serve-only` prints just the merged serve report JSON — byte-
//! comparable against a plain `serve --json` run when `--fabrics 1` and
//! no faults are given (the CI parity check).
//!
//! `soak` runs a long diurnal Zipf trace through the full cluster stack
//! under continuous seeded fault churn and streams interval telemetry
//! (one JSON line per `--interval` simulated cycles — the `maicc-obs`
//! schema) to stdout or `--out FILE`; the human summary goes to stderr,
//! so the stream stays byte-comparable across engines and thread counts.

use maicc::core::kernels::{CmemConvKernel, ConvWorkload};
use maicc::core::node::{Node, NullPort};
use maicc::core::pipeline::{PipelineConfig, Timing};
use maicc::exec::config::ExecConfig;
use maicc::exec::pipeline_model::run_network;
use maicc::exec::segment::Strategy;
use maicc::isa::inst::VecWidth;
use maicc::isa::parse::assemble_text;
use maicc::isa::reg::Reg;
use maicc::model::power::EnergyBreakdown;
use maicc::nn::graph::Network;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("map") => cmd_map(&args[1..]),
        Some("node") => cmd_node(&args[1..]),
        Some("asm") => cmd_asm(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("stream") => cmd_stream(),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("soak") => cmd_soak(&args[1..]),
        Some("help") | None => {
            print_help();
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}` (try `maicc help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "maicc — the MAICC many-core with in-cache computing\n\n\
         SUBCOMMANDS:\n  \
         map       map a DNN onto the array and report latency/power (Table 6)\n  \
         node      run the Table-4 single-node convolution on one core\n  \
         asm       assemble a RISC-V + CMem-extension program and hex-dump it\n  \
         run       execute an assembly program on one node and dump registers\n  \
         stream    push a 2-layer conv pipeline through the bit-level mesh\n  \
         campaign  sweep fault injections with ECC/retry/replay recovery\n  \
         serve     online multi-tenant serving: request trace -> scheduler -> SLO report\n  \
         soak      long diurnal cluster run with fault churn, streaming interval telemetry\n  \
         help      print this overview\n\n\
         USAGE:\n  maicc map    [--model M] [--strategy S] [--cores N]\n  \
         maicc node   [--width 4|8|16]\n  maicc asm    <file.s>\n  \
         maicc run    <file.s> [--max-steps N]\n  maicc stream\n  \
         maicc campaign [--workload small|resnet18] [--seed N] [--ecc off|detect|correct]\n  \
         \u{20}              [--retry on|off] [--assert-no-unrecoverable] [--json]\n  \
         maicc serve  [--policy fcfs|sjf|partitioned|time-shared] [--trace file.json]\n  \
         \u{20}            [--seed N] [--horizon N] [--bursty] [--zipf EXP] [--overload] [--pool N]\n  \
         \u{20}            [--weight-cache] [--cold-cache] [--cache-llc-bytes N]\n  \
         \u{20}            [--fabrics N] [--replicas K] [--heartbeat N]\n  \
         \u{20}            [--fabric-fault SPEC]... [--serve-only]\n  \
         \u{20}            [--engine event|cycle] [--threads N] [--quick] [--json]\n  \
         maicc soak   [--fabrics N] [--replicas K] [--heartbeat N] [--pool N]\n  \
         \u{20}            [--horizon N] [--interval N] [--seed N] [--no-churn]\n  \
         \u{20}            [--churn-period N] [--out FILE]\n  \
         \u{20}            [--engine event|cycle] [--threads N] [--quick]\n\n\
         models: resnet18 (default), vgg11, tinynet\n\
         strategies: heuristic (default), greedy, single\n\
         serve policies: fcfs (default), sjf, partitioned, time-shared\n\
         serve --overload: 2x-rate tiered mix + admission control, shedding,\n\
         \u{20}                preemption, retry, brownout, and fault churn\n\
         serve --weight-cache: pin model weights on tiles between requests\n\
         \u{20}                    (--cold-cache models a full reload per admission;\n\
         \u{20}                     --zipf EXP offers a repeat-heavy skewed trace)\n\
         serve --fabrics N: dispatch across N independent fabrics with heartbeat\n\
         \u{20}                 failover; --fabric-fault outage:F:AT[:DUR] |\n\
         \u{20}                 brownout:F:AT:FACTOR:DUR | tileloss:F:AT:TILES kills,\n\
         \u{20}                 slows, or shrinks a fabric mid-run (repeatable)"
    );
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn cmd_map(args: &[String]) -> Result<(), String> {
    let model = flag(args, "--model").unwrap_or_else(|| "resnet18".into());
    let (net, input): (Network, [usize; 3]) = match model.as_str() {
        "resnet18" => (maicc::nn::resnet::resnet18(1000), [64, 56, 56]),
        "vgg11" => (maicc::nn::resnet::vgg11(1000), [64, 32, 32]),
        "tinynet" => (maicc::nn::resnet::tinynet(10), [32, 32, 32]),
        other => return Err(format!("unknown model `{other}`")),
    };
    let strategy = match flag(args, "--strategy").as_deref() {
        None | Some("heuristic") => Strategy::Heuristic,
        Some("greedy") => Strategy::Greedy,
        Some("single") => Strategy::SingleLayer,
        Some(other) => return Err(format!("unknown strategy `{other}`")),
    };
    let cores = match flag(args, "--cores") {
        Some(c) => c.parse().map_err(|_| format!("bad core count `{c}`"))?,
        None => 210,
    };
    let cfg = ExecConfig {
        cores,
        ..ExecConfig::default()
    };
    let run = run_network(&net, input, strategy, &cfg).map_err(|e| e.to_string())?;
    println!("{model} under {strategy:?} on {cores} cores\n");
    println!("{:<4}{:<12}{:>7}{:>5}{:>12}{:>12}", "#", "layer", "nodes", "seg", "period", "iters");
    for (i, l) in run.layers.iter().enumerate() {
        println!(
            "{:<4}{:<12}{:>7}{:>5}{:>12.0}{:>12}",
            i + 1,
            l.name,
            l.nodes,
            l.segment,
            l.effective_period,
            l.timing.iterations
        );
    }
    let e = EnergyBreakdown::from_counters(&run.counters);
    println!(
        "\nlatency {:.3} ms | throughput {:.1} samples/s | power {:.1} W | energy {:.1} mJ",
        run.total_ms(&cfg),
        run.throughput(&cfg),
        e.average_power(run.counters.seconds),
        e.total() * 1e3
    );
    // floor plan of the first segment's node groups (Figure 7(c) zig-zag)
    use maicc::exec::mapping::{place_groups, render_ascii};
    let seg0: Vec<usize> = run
        .layers
        .iter()
        .filter(|l| l.segment == 0)
        .map(|l| l.nodes - 1)
        .collect();
    if let Some(g) = place_groups(&seg0) {
        println!("\nsegment 0 floor plan (DC upper-case, cores lower-case):");
        print!("{}", render_ascii(&g));
    }
    Ok(())
}

fn cmd_node(args: &[String]) -> Result<(), String> {
    let width = match flag(args, "--width").as_deref() {
        None | Some("8") => VecWidth::W8,
        Some("4") => VecWidth::W4,
        Some("16") => VecWidth::W16,
        Some(other) => return Err(format!("unsupported width `{other}`")),
    };
    let wl = if width == VecWidth::W16 {
        ConvWorkload::tiny()
    } else {
        ConvWorkload::table4()
    };
    let kernel = CmemConvKernel::with_width(wl, width).map_err(|e| e.to_string())?;
    let sched = kernel.with_program(kernel.scheduled_program());
    let ifmap = wl.synthetic_ifmap();
    let weights = wl.synthetic_weights();
    let mut node = sched
        .prepare(&ifmap, &weights, 4)
        .map_err(|e| e.to_string())?;
    let mut t = Timing::new(PipelineConfig::default());
    node.run_with(200_000_000, |e| t.on_retire(e))
        .map_err(|e| e.to_string())?;
    let ok = sched.read_ofmap(&node).map_err(|e| e.to_string())? == wl.golden(&ifmap, &weights);
    let r = t.finish();
    println!(
        "{}-bit conv {}x({}x{}x{}) on {}x{}x{}: {} cycles, IPC {:.2}",
        width.bits(),
        wl.filters,
        wl.r,
        wl.s,
        wl.c,
        wl.h,
        wl.w,
        wl.c,
        r.total_cycles,
        r.ipc(),
    );
    println!("functional check vs golden conv: {}", if ok { "PASS" } else { "FAIL" });
    if !ok {
        return Err("ofmap mismatch".into());
    }
    Ok(())
}

fn cmd_asm(args: &[String]) -> Result<(), String> {
    use std::io::Write;
    let path = args.first().ok_or("usage: maicc asm <file.s>")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let prog = assemble_text(&src).map_err(|e| e.to_string())?;
    // ignore write failures so `maicc asm … | head` exits cleanly
    let mut out = std::io::stdout().lock();
    for (i, inst) in prog.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:08x}:  {:08x}  {}",
            i * 4,
            maicc::isa::encode::encode(inst),
            inst
        );
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: maicc run <file.s>")?;
    let max_steps = match flag(args, "--max-steps") {
        Some(v) => v.parse().map_err(|_| format!("bad step count `{v}`"))?,
        None => 10_000_000u64,
    };
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let prog = assemble_text(&src).map_err(|e| e.to_string())?;
    let mut node = Node::new(prog, Box::new(NullPort::default()));
    let mut timing = Timing::new(PipelineConfig::default());
    node.run_with(max_steps, |e| timing.on_retire(e))
        .map_err(|e| e.to_string())?;
    let r = timing.finish();
    println!(
        "halted after {} instructions, {} cycles (IPC {:.2})",
        r.instructions, r.total_cycles, r.ipc()
    );
    if !node.output().is_empty() {
        println!("output: {:?}", node.output());
    }
    // ignore write failures so `maicc run … | head` exits cleanly
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    for chunk in Reg::ALL.chunks(4) {
        let row: Vec<String> = chunk
            .iter()
            .map(|&r| format!("{:<5}= {:#010x}", r.to_string(), node.reg(r)))
            .collect();
        let _ = writeln!(out, "  {}", row.join("  "));
    }
    Ok(())
}

fn cmd_campaign(args: &[String]) -> Result<(), String> {
    use maicc::noc::RetryPolicy;
    use maicc::sim::campaign::{FaultCampaign, Outcome, RecoveryConfig};
    use maicc::sram::ecc::EccMode;
    let seed = match flag(args, "--seed") {
        Some(v) => v.parse().map_err(|_| format!("bad seed `{v}`"))?,
        None => 42u64,
    };
    let mut campaign = match flag(args, "--workload").as_deref() {
        None | Some("small") => FaultCampaign::small_default(seed),
        Some("resnet18") => FaultCampaign::resnet18_default(seed),
        Some(other) => return Err(format!("unknown workload `{other}`")),
    };
    let ecc = match flag(args, "--ecc").as_deref() {
        None | Some("correct") => EccMode::Correct,
        Some("detect") => EccMode::DetectOnly,
        Some("off") => EccMode::Off,
        Some(other) => return Err(format!("unknown ECC mode `{other}`")),
    };
    let noc_retry = match flag(args, "--retry").as_deref() {
        None | Some("on") => Some(RetryPolicy::default()),
        Some("off") => None,
        Some(other) => return Err(format!("bad retry setting `{other}`")),
    };
    campaign.recovery = Some(RecoveryConfig {
        ecc,
        noc_retry,
        ..RecoveryConfig::default()
    });
    let report = campaign.run().map_err(|e| e.to_string())?;
    if args.iter().any(|a| a == "--json") {
        println!("{}", report.to_json());
    } else {
        println!(
            "fault campaign over {} points (clean baseline {} cycles):",
            report.runs.len(),
            report.clean_cycles
        );
        for r in &report.runs {
            println!(
                "  {:<13} faults={:<6} replays={:<3} corrected={:<6} overhead={} cycles{}",
                r.outcome.label(),
                r.faults_injected,
                r.replays,
                r.corrected,
                r.recovery_overhead_cycles,
                if r.detail.is_empty() {
                    String::new()
                } else {
                    format!("  ({})", r.detail)
                },
            );
        }
    }
    let unrecoverable = report.count(Outcome::Unrecoverable);
    if args.iter().any(|a| a == "--assert-no-unrecoverable") && unrecoverable > 0 {
        return Err(format!("{unrecoverable} run(s) ended unrecoverable"));
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use maicc::serve::cache::WeightCacheConfig;
    use maicc::serve::overload::RetryBudget;
    use maicc::serve::registry::{overload_mix, three_model_mix};
    use maicc::serve::server::{serve, FaultConfig, Policy, ServeConfig};
    use maicc::serve::trace::Trace;
    use maicc::sim::stream::{Engine, RecoveryPolicy};

    let overload = args.iter().any(|a| a == "--overload");
    let policy = match flag(args, "--policy") {
        None if overload => Policy::Sjf,
        None => Policy::Fcfs,
        Some(p) => Policy::from_label(&p).ok_or(format!("unknown policy `{p}`"))?,
    };
    let seed = match flag(args, "--seed") {
        Some(v) => v.parse().map_err(|_| format!("bad seed `{v}`"))?,
        None => 42u64,
    };
    let quick = args.iter().any(|a| a == "--quick");
    let horizon = match flag(args, "--horizon") {
        Some(v) => v.parse().map_err(|_| format!("bad horizon `{v}`"))?,
        None if quick => 300_000u64,
        None => 1_500_000u64,
    };
    let engine = match flag(args, "--engine").as_deref() {
        None | Some("event") => Engine::EventDriven,
        Some("cycle") => Engine::CycleAccurate,
        Some(other) => return Err(format!("unknown engine `{other}` (event|cycle)")),
    };
    let threads = match flag(args, "--threads") {
        Some(v) => v.parse().map_err(|_| format!("bad thread count `{v}`"))?,
        None => 1usize,
    };
    let pool_tiles = match flag(args, "--pool") {
        Some(v) => v.parse().map_err(|_| format!("bad pool size `{v}`"))?,
        None if overload => 10usize,
        None => 16usize,
    };

    // `--overload` swaps in the 2×-rate mix with priority tiers and the
    // full hardening kit; otherwise the fair-weather three-model mix.
    let (registry, loads, overload_cfg) = if overload {
        let (r, l, o) = overload_mix();
        (r, l, Some(o))
    } else {
        let (r, l) = three_model_mix();
        (r, l, None)
    };
    let zipf = match (
        args.iter().any(|a| a == "--zipf"),
        flag(args, "--zipf"),
    ) {
        (false, _) => None,
        (true, Some(v)) => {
            Some(v.parse::<f64>().map_err(|_| format!("bad zipf exponent `{v}`"))?)
        }
        (true, None) => return Err("--zipf takes an exponent (e.g. --zipf 2.0)".into()),
    };
    let trace = match flag(args, "--trace") {
        Some(path) => {
            let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
            Trace::from_json(&text).map_err(|e| e.to_string())?
        }
        None if zipf.is_some() => {
            // Popularity ranks lightest-first (the repeat-heavy shape the
            // weight cache serves): reverse the mix so `small` is rank 0.
            let mut ranked = loads.clone();
            ranked.reverse();
            Trace::zipf(&ranked, horizon, 14_000, zipf.unwrap_or(2.0), seed)
        }
        None if overload || args.iter().any(|a| a == "--bursty") => {
            Trace::bursty(&loads, horizon, 200_000, seed)
        }
        None => Trace::poisson(&loads, horizon, seed),
    };

    let cold_cache = args.iter().any(|a| a == "--cold-cache");
    let weight_cache = if args.iter().any(|a| a == "--weight-cache") || cold_cache {
        let mut wc = WeightCacheConfig {
            enabled: !cold_cache,
            ..WeightCacheConfig::default()
        };
        if let Some(v) = flag(args, "--cache-llc-bytes") {
            wc.llc_capacity_bytes =
                v.parse().map_err(|_| format!("bad LLC capacity `{v}`"))?;
        }
        Some(wc)
    } else {
        None
    };

    // Under overload, keep the hardware churning too: hard-fault the
    // first two Hard-tier arrivals (deterministic ids), so remap
    // recovery retires tiles mid-service while the scheduler sheds,
    // preempts, and retries around the shrinking pool.
    let (recovery, fault) = if overload {
        let fail_at: Vec<u64> = trace
            .requests
            .iter()
            .filter(|r| r.tenant == "vision")
            .take(2)
            .map(|r| r.id)
            .collect();
        (
            Some(RecoveryPolicy {
                max_replays: 8,
                remap: true,
                checkpoint_values: 8,
            }),
            Some(FaultConfig {
                fail_at_requests: fail_at,
                ..FaultConfig::default()
            }),
        )
    } else {
        (None, None)
    };

    let cfg = ServeConfig {
        policy,
        engine,
        threads,
        pool_tiles,
        recovery,
        fault,
        overload: overload_cfg,
        retry_budget: overload.then(RetryBudget::default),
        weight_cache,
        ..ServeConfig::default()
    };
    let cluster_only_flags = ["--replicas", "--heartbeat", "--fabric-fault", "--serve-only"];
    match flag(args, "--fabrics") {
        Some(v) => {
            let fabrics = v.parse().map_err(|_| format!("bad fabric count `{v}`"))?;
            return cmd_serve_cluster(args, fabrics, cfg, &registry, &trace);
        }
        None => {
            if let Some(f) = cluster_only_flags
                .iter()
                .find(|f| args.iter().any(|a| a.as_str() == **f))
            {
                return Err(format!("{f} needs --fabrics N (cluster mode)"));
            }
        }
    }
    let report = serve(&registry, &trace, &cfg).map_err(|e| e.to_string())?;
    if args.iter().any(|a| a == "--json") {
        println!("{}", report.to_json());
    } else {
        println!(
            "served {} requests under {} on a {}-tile pool ({} degraded)",
            report.requests, report.policy, report.pool_tiles, report.degraded_tiles
        );
        println!(
            "  completed {} | dropped {} | makespan {} cycles | utilization {:.1}%",
            report.completed,
            report.dropped,
            report.makespan_cycles,
            report.utilization * 100.0
        );
        if overload {
            println!(
                "  shed {} | unrecoverable {} | preemptions {} | retries {}",
                report.shed, report.unrecoverable, report.preemptions, report.retries
            );
        }
        println!(
            "  latency p50/p95/p99 = {}/{}/{} cycles | miss rate {:.1}% | {:.0} pJ/request",
            report.p50_latency_cycles,
            report.p95_latency_cycles,
            report.p99_latency_cycles,
            report.deadline_miss_rate * 100.0,
            report.energy_pj_per_request
        );
        if let Some(c) = &report.cache {
            println!(
                "  weight cache: {} hits / {} misses (hit rate {:.1}%) | {} evictions | {} llc hits",
                c.hits,
                c.misses,
                c.hit_rate * 100.0,
                c.evictions,
                c.llc_hits
            );
            println!(
                "  prefetch {}/{} used (accuracy {:.1}%) | warm p50 {} vs cold p50 {} cycles",
                c.prefetch_used,
                c.prefetch_issued,
                c.prefetch_accuracy * 100.0,
                c.warm_p50_latency_cycles,
                c.cold_p50_latency_cycles
            );
        }
        for t in &report.tenants {
            print!(
                "  {:<10} {:>4} reqs  p99 {:>9} cycles  misses {:>3} ({:.1}%)  {:.0} pJ/req",
                t.tenant,
                t.requests,
                t.p99_latency_cycles,
                t.deadline_misses,
                t.miss_rate * 100.0,
                t.energy_pj_per_request
            );
            if overload {
                print!("  shed {:>3}  unrec {:>2}", t.shed, t.unrecoverable);
            }
            println!();
        }
    }
    Ok(())
}

/// `maicc soak`: a long diurnal cluster run with continuous seeded
/// fault churn, streaming the `maicc-obs` interval telemetry (JSONL) to
/// stdout or `--out FILE` while the human summary goes to stderr.
fn cmd_soak(args: &[String]) -> Result<(), String> {
    use maicc::serve::cache::WeightCacheConfig;
    use maicc::serve::cluster::{
        serve_cluster_with_obs, ClusterConfig, ClusterFaultPlan,
        ClusterShedConfig,
    };
    use maicc::serve::overload::Tier;
    use maicc::serve::registry::three_model_mix;
    use maicc::serve::server::{Policy, ServeConfig};
    use maicc::serve::trace::Trace;
    use maicc::sim::stream::Engine;

    let quick = args.iter().any(|a| a == "--quick");
    let num = |name: &str, default: u64| -> Result<u64, String> {
        match flag(args, name) {
            Some(v) => v.parse().map_err(|_| format!("bad {name} `{v}`")),
            None => Ok(default),
        }
    };
    let seed = num("--seed", 42)?;
    let horizon = num("--horizon", if quick { 600_000 } else { 2_000_000 })?;
    let interval = num("--interval", 50_000)?;
    let fabrics = num("--fabrics", 4)? as usize;
    let replicas = num("--replicas", 2.min(fabrics as u64))? as usize;
    let heartbeat = num("--heartbeat", 20_000)?;
    let pool_tiles = num("--pool", 16)? as usize;
    let churn_period = num("--churn-period", 150_000)?;
    let engine = match flag(args, "--engine").as_deref() {
        None | Some("event") => Engine::EventDriven,
        Some("cycle") => Engine::CycleAccurate,
        Some(other) => return Err(format!("unknown engine `{other}` (event|cycle)")),
    };
    let threads = match flag(args, "--threads") {
        Some(v) => v.parse().map_err(|_| format!("bad thread count `{v}`"))?,
        None => 1usize,
    };

    // The repeat-heavy diurnal mix: popularity ranks lightest-first so
    // the weight cache has a head model to keep warm, exactly as the
    // zipf serve path does.
    let (registry, loads) = three_model_mix();
    let mut ranked = loads;
    ranked.reverse();
    let trace = Trace::diurnal(&ranked, horizon, 12_000, 1.1, 200_000, seed);

    let faults = if args.iter().any(|a| a == "--no-churn") {
        ClusterFaultPlan::default()
    } else {
        ClusterFaultPlan::churn(fabrics, horizon, churn_period, seed)
    };
    let cfg = ClusterConfig {
        fabrics,
        replicas,
        heartbeat_interval: heartbeat,
        prewarm_replicas: true,
        tiers: vec![
            ("vision".into(), Tier::Hard),
            ("assist".into(), Tier::Soft),
            ("keyword".into(), Tier::BestEffort),
        ],
        shed: Some(ClusterShedConfig::default()),
        faults,
        base: ServeConfig {
            policy: Policy::Sjf,
            engine,
            threads,
            pool_tiles,
            weight_cache: Some(WeightCacheConfig::default()),
            ..ServeConfig::default()
        },
        ..ClusterConfig::default()
    };
    let (report, jsonl) =
        serve_cluster_with_obs(&registry, &trace, &cfg, interval)
            .map_err(|e| e.to_string())?;
    match flag(args, "--out") {
        Some(path) => {
            std::fs::write(&path, &jsonl).map_err(|e| format!("{path}: {e}"))?;
        }
        None => print!("{jsonl}"),
    }
    eprintln!(
        "soak: {} fabrics x {} tiles | horizon {} cycles | {} windows of {}",
        fabrics,
        pool_tiles,
        horizon,
        jsonl.lines().count(),
        interval.max(1)
    );
    eprintln!(
        "  requests {} | completed {} | lost {} (hard {}) | shed {} | failovers {}",
        report.serve.requests,
        report.serve.completed,
        report.requests_lost,
        report.hard_requests_lost,
        report.serve.shed,
        report.failovers
    );
    eprintln!(
        "  faults {} | detect p50/max {}/{} cycles | failover p99 {} | p99 latency {} cycles",
        report.faults_injected,
        report.detect_p50_cycles,
        report.detect_max_cycles,
        report.failover_p99_cycles,
        report.serve.p99_latency_cycles
    );
    if let Some(c) = &report.serve.cache {
        eprintln!(
            "  weight cache: hit rate {:.1}% | {} evictions | prefetch {}/{} used",
            c.hit_rate * 100.0,
            c.evictions,
            c.prefetch_used,
            c.prefetch_issued
        );
    }
    Ok(())
}

/// One `--fabric-fault SPEC`: `outage:FABRIC:AT[:DURATION]`,
/// `brownout:FABRIC:AT:FACTOR:DURATION`, or `tileloss:FABRIC:AT:TILES`.
fn parse_fabric_fault(spec: &str) -> Result<maicc::serve::cluster::FabricFault, String> {
    use maicc::serve::cluster::{FabricFault, FabricFaultKind};
    let num = |s: &str, what: &str| -> Result<u64, String> {
        s.parse()
            .map_err(|_| format!("bad {what} `{s}` in --fabric-fault `{spec}`"))
    };
    let parts: Vec<&str> = spec.split(':').collect();
    let (fabric, at, kind) = match parts.as_slice() {
        ["outage", f, at] => (*f, *at, FabricFaultKind::Outage { duration: None }),
        ["outage", f, at, dur] => (
            *f,
            *at,
            FabricFaultKind::Outage {
                duration: Some(num(dur, "duration")?),
            },
        ),
        ["brownout", f, at, factor, dur] => (
            *f,
            *at,
            FabricFaultKind::Brownout {
                factor: num(factor, "slow factor")?,
                duration: num(dur, "duration")?,
            },
        ),
        ["tileloss", f, at, tiles] => (
            *f,
            *at,
            FabricFaultKind::TileLoss {
                tiles: num(tiles, "tile count")? as usize,
            },
        ),
        _ => {
            return Err(format!(
                "bad --fabric-fault `{spec}` (want outage:FABRIC:AT[:DURATION], \
                 brownout:FABRIC:AT:FACTOR:DURATION, or tileloss:FABRIC:AT:TILES)"
            ))
        }
    };
    Ok(FabricFault {
        fabric: num(fabric, "fabric index")? as usize,
        at: num(at, "fault cycle")?,
        kind,
    })
}

fn cmd_serve_cluster(
    args: &[String],
    fabrics: usize,
    base: maicc::serve::server::ServeConfig,
    registry: &maicc::serve::registry::ModelRegistry,
    trace: &maicc::serve::trace::Trace,
) -> Result<(), String> {
    use maicc::serve::cluster::{serve_cluster, ClusterConfig, ClusterFaultPlan};

    let replicas = match flag(args, "--replicas") {
        Some(v) => v.parse().map_err(|_| format!("bad replica factor `{v}`"))?,
        None => 1usize,
    };
    let mut ccfg = ClusterConfig {
        fabrics,
        replicas,
        base,
        ..ClusterConfig::default()
    };
    if let Some(v) = flag(args, "--heartbeat") {
        ccfg.heartbeat_interval = v
            .parse()
            .map_err(|_| format!("bad heartbeat interval `{v}`"))?;
    }
    let mut events = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--fabric-fault" {
            let spec = args
                .get(i + 1)
                .ok_or("--fabric-fault takes a SPEC argument")?;
            events.push(parse_fabric_fault(spec)?);
            i += 2;
        } else {
            i += 1;
        }
    }
    ccfg.faults = ClusterFaultPlan { events };

    let report = serve_cluster(registry, trace, &ccfg).map_err(|e| e.to_string())?;
    if args.iter().any(|a| a == "--serve-only") {
        println!("{}", report.serve.to_json());
    } else if args.iter().any(|a| a == "--json") {
        println!("{}", report.to_json());
    } else {
        println!(
            "cluster of {} fabrics x {} tiles | replicas {} | heartbeat {} cycles",
            report.fabrics, report.serve.pool_tiles / report.fabrics, report.replicas,
            report.heartbeat_interval
        );
        println!(
            "  faults {} | failovers {} | lost {} (hard {}) | cluster shed {}",
            report.faults_injected,
            report.failovers,
            report.requests_lost,
            report.hard_requests_lost,
            report.cluster_shed
        );
        println!(
            "  detect p50/max = {}/{} cycles | failover p99 = {} cycles",
            report.detect_p50_cycles, report.detect_max_cycles, report.failover_p99_cycles
        );
        for f in &report.per_fabric {
            println!(
                "  fabric {:<2} dispatched {:>4} completed {:>4} drained {:>3} \
                 degraded {:>2}{}",
                f.fabric,
                f.dispatched,
                f.completed,
                f.drained,
                f.degraded_tiles,
                if f.killed { "  KILLED" } else { "" }
            );
        }
        println!(
            "  fleet: {} requests | completed {} | dropped {} | p99 {} cycles | miss rate {:.1}%",
            report.serve.requests,
            report.serve.completed,
            report.serve.dropped,
            report.serve.p99_latency_cycles,
            report.serve.deadline_miss_rate * 100.0
        );
    }
    Ok(())
}

fn cmd_stream() -> Result<(), String> {
    use maicc::sim::stream::{StreamConfig, StreamSim};
    let cfg = StreamConfig::two_layer_test();
    let mut sim = StreamSim::new(&cfg).map_err(|e| e.to_string())?;
    let r = sim.run(50_000_000).map_err(|e| e.to_string())?;
    let ok = r.ofmap == cfg.golden();
    println!(
        "2-layer conv pipeline over the mesh: {} cycles, {} packets, {} flit-hops",
        r.cycles, r.noc.packets_delivered, r.noc.flit_hops
    );
    println!("golden match: {}", if ok { "PASS" } else { "FAIL" });
    if !ok {
        return Err("ofmap mismatch".into());
    }
    Ok(())
}
