#![warn(missing_docs)]

//! # MAICC — a lightweight many-core architecture with in-cache computing
//!
//! This crate is the façade of the MAICC reproduction workspace
//! (Fan et al., MICRO 2023). It re-exports every subsystem:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sram`] | `maicc-sram` | bit-serial in-SRAM computing, the CMem, the Neural Cache baseline |
//! | [`isa`] | `maicc-isa` | RV32IMA + the CMem instruction extension, assembler |
//! | [`core`] | `maicc-core` | the node: functional interpreter + cycle-accurate pipeline, kernels |
//! | [`noc`] | `maicc-noc` | the flit-level 2D-mesh network |
//! | [`mem`] | `maicc-mem` | banked DRAM channels and the LLC tiles |
//! | [`nn`] | `maicc-nn` | tensors, quantized layers, ResNet-18, the golden model |
//! | [`exec`] | `maicc-exec` | segmentation, zig-zag mapping, the pipelined execution model |
//! | [`model`] | `maicc-model` | area/power/energy models and CPU/GPU baselines |
//! | [`sim`] | `maicc-sim` | full-system streaming simulation and multi-DNN scenarios |
//! | [`serve`] | `maicc-serve` | online multi-tenant serving: traces, fabric schedulers, SLO accounting |
//!
//! ## Quickstart
//!
//! ```
//! use maicc::sram::cmem::Cmem;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // a dot product computed inside the cache, Figure 4(b) style
//! let mut cmem = Cmem::new();
//! cmem.write_vector_i8(1, 0, &[3i8; 256])?;
//! cmem.write_vector_i8(1, 8, &[-2i8; 256])?;
//! assert_eq!(cmem.mac_i8(1, 0, 8)?, 256 * 3 * -2);
//! # Ok(())
//! # }
//! ```
//!
//! See the `examples/` directory for end-to-end scenarios: the Table-4
//! node comparison, ResNet-18 mapping (Table 6), a live streaming
//! convolution through the mesh, and multi-DNN parallel inference.

pub use maicc_core as core;
pub use maicc_exec as exec;
pub use maicc_isa as isa;
pub use maicc_mem as mem;
pub use maicc_model as model;
pub use maicc_nn as nn;
pub use maicc_noc as noc;
pub use maicc_serve as serve;
pub use maicc_sim as sim;
pub use maicc_sram as sram;
