//! Banked DRAM channel timing with an open-page row-buffer policy.
//!
//! Each channel has eight banks; each bank keeps its last-activated row
//! open. A request pays:
//!
//! * **row hit**: `tCAS + tBURST`;
//! * **row miss (bank idle)**: `tRCD + tCAS + tBURST`;
//! * **row conflict (other row open)**: `tRP + tRCD + tCAS + tBURST`;
//!
//! all serialized behind the channel's data bus. Timing constants are in
//! core cycles at 1 GHz and sized like DDR4-2400; the evaluation consumes
//! relative behaviour (hit/miss ratios, bandwidth ceilings), not vendor
//! datasheet fidelity.

use serde::{Deserialize, Serialize};

/// Precharge latency (cycles).
pub const T_RP: u64 = 14;
/// Activate-to-read latency (cycles).
pub const T_RCD: u64 = 14;
/// Column access latency (cycles).
pub const T_CAS: u64 = 14;
/// Data burst occupancy of the channel per 32-byte line (cycles).
pub const T_BURST: u64 = 4;
/// Row-buffer size in bytes.
pub const ROW_BYTES: u32 = 2048;
/// Banks per channel.
pub const BANKS: usize = 8;
/// Refresh interval in cycles (DDR4 tREFI ≈ 7.8 µs at 1 GHz).
pub const T_REFI: u64 = 7800;
/// Refresh duration in cycles (tRFC ≈ 350 ns); all banks blocked and all
/// rows closed.
pub const T_RFC: u64 = 350;

/// Energy of one row activation (activate + precharge), pJ.
pub const ACTIVATE_PJ: f64 = 1800.0;
/// Energy of one 32-byte read burst, pJ.
pub const READ_PJ: f64 = 650.0;
/// Energy of one 32-byte write burst, pJ.
pub const WRITE_PJ: f64 = 700.0;
/// Static/background power per channel, watts.
pub const CHANNEL_STATIC_W: f64 = 0.015;

/// Per-channel statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Read bursts served.
    pub reads: u64,
    /// Write bursts served.
    pub writes: u64,
    /// Requests that hit an open row.
    pub row_hits: u64,
    /// Requests that required activating a row.
    pub row_misses: u64,
    /// Requests that also required a precharge first.
    pub row_conflicts: u64,
    /// Requests delayed by a refresh window.
    pub refresh_stalls: u64,
}

impl DramStats {
    /// Row-buffer hit rate.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.reads + self.writes;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Dynamic energy in picojoules.
    #[must_use]
    pub fn dynamic_pj(&self) -> f64 {
        (self.row_misses + self.row_conflicts) as f64 * ACTIVATE_PJ
            + self.reads as f64 * READ_PJ
            + self.writes as f64 * WRITE_PJ
    }
}

/// One DRAM channel.
#[derive(Debug, Clone)]
pub struct DramChannel {
    /// Open row per bank (`None` = all precharged).
    open_row: [Option<u32>; BANKS],
    /// When the channel's bus frees.
    bus_free: u64,
    /// When each bank frees.
    bank_free: [u64; BANKS],
    /// The refresh epoch (`now / T_REFI`) last observed; crossing an epoch
    /// closes every row.
    refresh_epoch: u64,
    stats: DramStats,
}

impl Default for DramChannel {
    fn default() -> Self {
        Self::new()
    }
}

impl DramChannel {
    /// Creates an idle channel with all banks precharged.
    #[must_use]
    pub fn new() -> Self {
        DramChannel {
            open_row: [None; BANKS],
            bus_free: 0,
            bank_free: [0; BANKS],
            refresh_epoch: 0,
            stats: DramStats::default(),
        }
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Serves one 32-byte access to channel-local address `addr` at time
    /// `now`; returns the completion cycle.
    pub fn access(&mut self, addr: u32, is_write: bool, now: u64) -> u64 {
        let row = addr / ROW_BYTES;
        let bank = ((addr / ROW_BYTES) as usize) % BANKS;
        let mut start = now.max(self.bank_free[bank]).max(self.bus_free);
        // refresh: every T_REFI the channel stalls T_RFC and closes rows
        let epoch = start / T_REFI;
        if epoch > self.refresh_epoch {
            self.refresh_epoch = epoch;
            self.open_row = [None; BANKS];
        }
        if start % T_REFI < T_RFC && epoch > 0 {
            start = epoch * T_REFI + T_RFC;
            self.stats.refresh_stalls += 1;
        }
        let core = match self.open_row[bank] {
            Some(r) if r == row => {
                self.stats.row_hits += 1;
                T_CAS
            }
            None => {
                self.stats.row_misses += 1;
                T_RCD + T_CAS
            }
            Some(_) => {
                self.stats.row_conflicts += 1;
                T_RP + T_RCD + T_CAS
            }
        };
        self.open_row[bank] = Some(row);
        let done = start + core + T_BURST;
        self.bank_free[bank] = done;
        // the data bus is held only for the burst
        self.bus_free = done;
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        done
    }
}

/// The full striped DRAM: one channel per LLC tile.
#[derive(Debug, Clone)]
pub struct Dram {
    channels: Vec<DramChannel>,
}

impl Dram {
    /// Creates `n` idle channels.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Dram {
            channels: (0..n).map(|_| DramChannel::new()).collect(),
        }
    }

    /// Number of channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// Serves an access on a specific channel.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn access(&mut self, channel: usize, addr: u32, is_write: bool, now: u64) -> u64 {
        self.channels[channel].access(addr, is_write, now)
    }

    /// Aggregated statistics over all channels.
    #[must_use]
    pub fn total_stats(&self) -> DramStats {
        let mut t = DramStats::default();
        for c in &self.channels {
            t.reads += c.stats.reads;
            t.writes += c.stats.writes;
            t.row_hits += c.stats.row_hits;
            t.row_misses += c.stats.row_misses;
            t.row_conflicts += c.stats.row_conflicts;
            t.refresh_stalls += c.stats.refresh_stalls;
        }
        t
    }

    /// Total dynamic energy in picojoules.
    #[must_use]
    pub fn dynamic_pj(&self) -> f64 {
        self.total_stats().dynamic_pj()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cold_access_is_row_miss() {
        let mut ch = DramChannel::new();
        let done = ch.access(0, false, 0);
        assert_eq!(done, T_RCD + T_CAS + T_BURST);
        assert_eq!(ch.stats().row_misses, 1);
    }

    #[test]
    fn sequential_same_row_hits() {
        let mut ch = DramChannel::new();
        let t1 = ch.access(0, false, 0);
        let t2 = ch.access(32, false, t1);
        assert_eq!(t2 - t1, T_CAS + T_BURST);
        assert_eq!(ch.stats().row_hits, 1);
    }

    #[test]
    fn different_row_same_bank_conflicts() {
        let mut ch = DramChannel::new();
        let t1 = ch.access(0, false, 0);
        // +8 rows lands in the same bank, different row
        let t2 = ch.access(ROW_BYTES * BANKS as u32, false, t1);
        assert_eq!(t2 - t1, T_RP + T_RCD + T_CAS + T_BURST);
        assert_eq!(ch.stats().row_conflicts, 1);
    }

    #[test]
    fn bank_parallelism_beats_one_bank() {
        // interleaved banks: bus serializes only the bursts
        let mut multi = DramChannel::new();
        let mut t = 0;
        for b in 0..4u32 {
            t = multi.access(b * ROW_BYTES, false, 0);
        }
        let mut single = DramChannel::new();
        let mut t2 = 0;
        for r in 0..4u32 {
            t2 = single.access(r * ROW_BYTES * BANKS as u32, false, 0);
        }
        assert!(t < t2, "bank-parallel {t} vs serial {t2}");
    }

    #[test]
    fn writes_counted_separately() {
        let mut ch = DramChannel::new();
        ch.access(0, true, 0);
        ch.access(32, false, 100);
        assert_eq!(ch.stats().writes, 1);
        assert_eq!(ch.stats().reads, 1);
    }

    #[test]
    fn hit_rate_and_energy() {
        let mut ch = DramChannel::new();
        let mut t = 0;
        for i in 0..10u32 {
            t = ch.access(i * 32, false, t);
        }
        assert!(ch.stats().hit_rate() > 0.8);
        assert!(ch.stats().dynamic_pj() > 0.0);
    }

    #[test]
    fn dram_aggregates_channels() {
        let mut d = Dram::new(4);
        d.access(0, 0, false, 0);
        d.access(3, 0, true, 0);
        let s = d.total_stats();
        assert_eq!(s.reads + s.writes, 2);
        assert_eq!(d.channels(), 4);
    }

    #[test]
    fn refresh_window_stalls_and_closes_rows() {
        let mut ch = DramChannel::new();
        // open a row well before the first refresh
        let t1 = ch.access(0, false, 100);
        assert_eq!(ch.stats().row_misses, 1);
        let _ = t1;
        // an access landing inside the first refresh window gets pushed out
        let t2 = ch.access(32, false, T_REFI + 10);
        assert!(t2 >= T_REFI + T_RFC, "t2 = {t2}");
        assert_eq!(ch.stats().refresh_stalls, 1);
        // and the previously open row was closed by the refresh
        assert_eq!(ch.stats().row_hits, 0);
        assert_eq!(ch.stats().row_misses, 2);
    }

    #[test]
    fn accesses_between_refreshes_unaffected() {
        let mut ch = DramChannel::new();
        let t = ch.access(0, false, T_RFC + 1);
        assert_eq!(t, T_RFC + 1 + T_RCD + T_CAS + T_BURST);
        assert_eq!(ch.stats().refresh_stalls, 0);
    }

    proptest! {
        #[test]
        fn prop_completion_monotonic(addrs in proptest::collection::vec(any::<u32>(), 1..50)) {
            let mut ch = DramChannel::new();
            let mut t = 0;
            for a in addrs {
                let done = ch.access(a & 0x0FFF_FFE0, false, t);
                prop_assert!(done > t);
                t = done;
            }
        }

        #[test]
        fn prop_latency_bounded(a in any::<u32>(), b in any::<u32>()) {
            let mut ch = DramChannel::new();
            let t1 = ch.access(a & !31, false, 0);
            let t2 = ch.access(b & !31, false, t1);
            let max = T_RP + T_RCD + T_CAS + T_BURST;
            prop_assert!(t2 - t1 <= max);
            prop_assert!(t2 - t1 >= T_CAS + T_BURST);
        }
    }
}
