#![warn(missing_docs)]

//! # maicc-mem — many-core DRAM and last-level cache models
//!
//! MAICC's memory system (§3.1, Table 1): the 2 GB many-core DRAM is
//! striped over **32 channels**, each attached to one last-level-cache tile
//! in the top/bottom rows of the mesh. This crate is the workspace's
//! substitute for DRAMsim3:
//!
//! * [`dram`] — a banked, row-buffer-aware channel timing model with
//!   open-page policy and per-access energy accounting;
//! * [`llc`] — a set-associative write-back cache with LRU replacement;
//! * [`system`] — the 32-tile memory system combining both, as the mesh's
//!   edge tiles see it;
//! * [`tier`] — replay-derived load costs for streaming whole model weight
//!   images out of either tier (the serving layer's weight cache prices
//!   cold vs. warm loads with these).
//!
//! ## Example
//!
//! ```
//! use maicc_mem::system::MemorySystem;
//!
//! let mut mem = MemorySystem::new_maicc();
//! // a cold read misses the LLC and pays DRAM timing
//! let t1 = mem.access(0x0000_0100, false, 0);
//! // the hot re-read hits the LLC
//! let t2 = mem.access(0x0000_0100, false, t1);
//! assert!(t2 - t1 < t1);
//! ```

pub mod dram;
pub mod llc;
pub mod system;
pub mod tier;

/// Cache-line / DRAM-burst size in bytes (one transposed CMem row is 32 B).
pub const LINE_BYTES: u32 = 32;

/// Number of DRAM channels / LLC tiles (Table 1).
pub const CHANNELS: usize = 32;
