//! Set-associative write-back last-level cache with LRU replacement.
//!
//! One such cache sits in each of the 32 edge tiles (Figure 3(a)), caching
//! its DRAM channel. The model tracks tags, dirtiness and recency; data
//! values live in whatever backing store the simulator attaches (the LLC's
//! job in the evaluation is timing and filtering DRAM traffic).

use serde::{Deserialize, Serialize};

/// Cache access latency in cycles.
pub const LLC_HIT_CYCLES: u64 = 6;

/// Energy of one LLC access, pJ (McPAT-derived estimate for a 64 KB bank).
pub const LLC_ACCESS_PJ: f64 = 25.0;

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LookupResult {
    /// Whether the line was present.
    pub hit: bool,
    /// A dirty victim line's base address, if one was evicted.
    pub writeback: Option<u32>,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit rate over all lookups.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }

    /// Dynamic energy in picojoules (each lookup touches the array once;
    /// fills and writebacks touch it again).
    #[must_use]
    pub fn dynamic_pj(&self) -> f64 {
        (self.hits + 2 * self.misses + self.writebacks) as f64 * LLC_ACCESS_PJ
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u32,
    valid: bool,
    dirty: bool,
    /// Higher = more recently used.
    lru: u64,
}

/// One LLC tile.
#[derive(Debug, Clone)]
pub struct Llc {
    sets: usize,
    ways: usize,
    line_bytes: u32,
    lines: Vec<Line>,
    tick: u64,
    stats: CacheStats,
}

impl Llc {
    /// Creates a cache of `capacity_bytes` with `ways` associativity and
    /// 32-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways, capacity not a
    /// multiple of `ways × 32`, or a non-power-of-two set count).
    #[must_use]
    pub fn new(capacity_bytes: usize, ways: usize) -> Self {
        let line_bytes = crate::LINE_BYTES;
        assert!(ways > 0, "need at least one way");
        let lines_total = capacity_bytes / line_bytes as usize;
        assert_eq!(
            lines_total % ways,
            0,
            "capacity must divide into whole sets"
        );
        let sets = lines_total / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Llc {
            sets,
            ways,
            line_bytes,
            lines: vec![Line::default(); lines_total],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The standard MAICC LLC tile: 64 KB, 8-way.
    #[must_use]
    pub fn new_maicc_tile() -> Self {
        Self::new(64 * 1024, 8)
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.sets * self.ways * self.line_bytes as usize
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Looks up (and on miss, fills) the line containing `addr`; marks it
    /// dirty on writes. Returns hit/miss and any dirty victim.
    pub fn access(&mut self, addr: u32, is_write: bool) -> LookupResult {
        self.tick += 1;
        let line_addr = addr / self.line_bytes;
        let set = (line_addr as usize) % self.sets;
        let tag = line_addr / self.sets as u32;
        let base = set * self.ways;
        // hit?
        for i in 0..self.ways {
            let line = &mut self.lines[base + i];
            if line.valid && line.tag == tag {
                line.lru = self.tick;
                line.dirty |= is_write;
                self.stats.hits += 1;
                return LookupResult {
                    hit: true,
                    writeback: None,
                };
            }
        }
        // miss: choose LRU victim
        self.stats.misses += 1;
        let victim = (0..self.ways)
            .min_by_key(|&i| {
                let l = &self.lines[base + i];
                if l.valid {
                    l.lru + 1
                } else {
                    0
                }
            })
            .expect("ways > 0");
        let line = &mut self.lines[base + victim];
        let writeback = if line.valid && line.dirty {
            self.stats.writebacks += 1;
            Some((line.tag * self.sets as u32 + set as u32) * self.line_bytes)
        } else {
            None
        };
        *line = Line {
            tag,
            valid: true,
            dirty: is_write,
            lru: self.tick,
        };
        LookupResult {
            hit: false,
            writeback,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Llc::new(1024, 2);
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        assert!(c.access(0x11F, false).hit, "same 32-byte line");
        assert!(!c.access(0x120, false).hit, "next line");
    }

    #[test]
    fn capacity_geometry() {
        let c = Llc::new_maicc_tile();
        assert_eq!(c.capacity(), 64 * 1024);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2-way, tiny: lines mapping to the same set
        let mut c = Llc::new(128, 2); // 4 lines, 2 sets
        let set_stride = 2 * 32; // same set every 64 bytes
        c.access(0, false);
        c.access(set_stride as u32, false);
        c.access(0, false); // refresh line 0
        c.access(2 * set_stride as u32, false); // evicts set_stride line
        assert!(c.access(0, false).hit);
        assert!(!c.access(set_stride as u32, false).hit);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = Llc::new(128, 2);
        let set_stride = 64u32;
        c.access(0, true); // dirty
        c.access(set_stride, false);
        let r = c.access(2 * set_stride, false); // evicts addr 0 (LRU, dirty)
        assert_eq!(r.writeback, Some(0));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = Llc::new(128, 2);
        let set_stride = 64u32;
        c.access(0, false);
        c.access(set_stride, false);
        let r = c.access(2 * set_stride, false);
        assert_eq!(r.writeback, None);
    }

    #[test]
    fn streaming_larger_than_capacity_misses() {
        let mut c = Llc::new(1024, 4);
        for pass in 0..2 {
            for i in 0..64u32 {
                let r = c.access(i * 32, false);
                assert!(!r.hit, "pass {pass} line {i} should miss (thrashing)");
            }
        }
    }

    #[test]
    fn hit_rate_reflects_locality() {
        let mut c = Llc::new_maicc_tile();
        for _ in 0..10 {
            for i in 0..16u32 {
                c.access(i * 32, false);
            }
        }
        assert!(c.stats().hit_rate() > 0.85);
    }

    proptest! {
        #[test]
        fn prop_second_access_always_hits(addr in any::<u32>()) {
            let mut c = Llc::new(4096, 4);
            c.access(addr, false);
            prop_assert!(c.access(addr, true).hit);
        }

        #[test]
        fn prop_writeback_address_maps_to_same_set(
            addrs in proptest::collection::vec(any::<u32>(), 1..100)
        ) {
            let mut c = Llc::new(1024, 2);
            let sets = 16u32; // 1024/32/2
            for a in addrs {
                let set = (a / 32) % sets;
                if let Some(wb) = c.access(a, true).writeback {
                    prop_assert_eq!((wb / 32) % sets, set);
                }
            }
        }
    }
}
