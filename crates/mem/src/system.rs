//! The combined 32-tile memory system: one LLC tile in front of each DRAM
//! channel, addressed through the Table-1 DRAM window.

use crate::dram::{Dram, DramStats};
use crate::llc::{CacheStats, Llc, LLC_HIT_CYCLES};
use crate::{CHANNELS, LINE_BYTES};
use serde::{Deserialize, Serialize};

/// Interleave granularity across channels (2 KB, matching
/// `maicc_core::mem_map`).
pub const CHANNEL_STRIDE: u32 = 2048;

/// Timing and traffic summary of a memory-system run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MemStats {
    /// Aggregated LLC statistics.
    pub llc: CacheStats,
    /// Aggregated DRAM statistics.
    pub dram: DramStats,
}

impl MemStats {
    /// Total dynamic energy, picojoules.
    #[must_use]
    pub fn dynamic_pj(&self) -> f64 {
        self.llc.dynamic_pj() + self.dram.dynamic_pj()
    }
}

/// The memory system the mesh's edge tiles implement.
#[derive(Debug)]
pub struct MemorySystem {
    tiles: Vec<Llc>,
    dram: Dram,
}

impl MemorySystem {
    /// The standard MAICC configuration: 32 channels, 64 KB 8-way LLC each
    /// (2 MB LLC total).
    #[must_use]
    pub fn new_maicc() -> Self {
        MemorySystem {
            tiles: (0..CHANNELS).map(|_| Llc::new_maicc_tile()).collect(),
            dram: Dram::new(CHANNELS),
        }
    }

    /// Creates a custom-sized system.
    #[must_use]
    pub fn new(channels: usize, llc_bytes: usize, ways: usize) -> Self {
        MemorySystem {
            tiles: (0..channels).map(|_| Llc::new(llc_bytes, ways)).collect(),
            dram: Dram::new(channels),
        }
    }

    /// Which channel a DRAM-window offset maps to.
    #[must_use]
    pub fn channel_of(&self, dram_offset: u32) -> usize {
        ((dram_offset / CHANNEL_STRIDE) as usize) % self.tiles.len()
    }

    /// Serves one 32-byte-line access at DRAM-window offset `dram_offset`;
    /// returns the completion cycle.
    pub fn access(&mut self, dram_offset: u32, is_write: bool, now: u64) -> u64 {
        let ch = self.channel_of(dram_offset);
        let line = dram_offset & !(LINE_BYTES - 1);
        let r = self.tiles[ch].access(line, is_write);
        let mut done = now + LLC_HIT_CYCLES;
        if !r.hit {
            done = self.dram.access(ch, line, false, done);
        }
        if let Some(victim) = r.writeback {
            // the write-back drains behind the fill on the same channel
            done = done.max(self.dram.access(ch, victim, true, done));
        }
        done
    }

    /// Aggregated statistics.
    #[must_use]
    pub fn stats(&self) -> MemStats {
        let mut llc = CacheStats::default();
        for t in &self.tiles {
            llc.hits += t.stats().hits;
            llc.misses += t.stats().misses;
            llc.writebacks += t.stats().writebacks;
        }
        MemStats {
            llc,
            dram: self.dram.total_stats(),
        }
    }

    /// Effective streaming bandwidth in bytes/cycle for `lines` sequential
    /// line reads starting cold (used by the execution model to bound
    /// data-collection cores).
    #[must_use]
    pub fn streaming_bandwidth(&mut self, lines: u32) -> f64 {
        let mut t = 0;
        for i in 0..lines {
            t = self.access(i * LINE_BYTES, false, t);
        }
        (lines * LINE_BYTES) as f64 / t as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_is_faster_than_miss() {
        let mut m = MemorySystem::new_maicc();
        let t1 = m.access(0x40, false, 0);
        let t2 = m.access(0x40, false, t1) - t1;
        assert!(t2 < t1);
        assert_eq!(t2, LLC_HIT_CYCLES);
    }

    #[test]
    fn addresses_interleave_across_channels() {
        let m = MemorySystem::new_maicc();
        assert_eq!(m.channel_of(0), 0);
        assert_eq!(m.channel_of(2048), 1);
        assert_eq!(m.channel_of(31 * 2048), 31);
        assert_eq!(m.channel_of(32 * 2048), 0);
    }

    #[test]
    fn writeback_traffic_reaches_dram() {
        let mut m = MemorySystem::new(1, 128, 2);
        let mut t = 0;
        // dirty lines that thrash the tiny cache
        for i in 0..32u32 {
            t = m.access(i * 64, true, t);
        }
        let s = m.stats();
        assert!(s.dram.writes > 0, "{s:?}");
        assert!(s.llc.writebacks > 0);
    }

    #[test]
    fn parallel_channels_outpace_single() {
        // same number of lines, spread vs single channel
        let mut spread = MemorySystem::new_maicc();
        let mut t_spread = 0;
        for i in 0..64u32 {
            let done = spread.access(i * CHANNEL_STRIDE, false, 0);
            t_spread = t_spread.max(done);
        }
        let mut single = MemorySystem::new_maicc();
        let mut t_single = 0;
        for i in 0..64u32 {
            t_single = single.access(i * LINE_BYTES, false, t_single).max(t_single);
        }
        assert!(t_spread < t_single);
    }

    #[test]
    fn streaming_bandwidth_is_positive_and_bounded() {
        let mut m = MemorySystem::new_maicc();
        let bw = m.streaming_bandwidth(256);
        assert!(bw > 0.5, "{bw}");
        assert!(bw < 32.0, "{bw}");
    }

    #[test]
    fn stats_energy_accumulates() {
        let mut m = MemorySystem::new_maicc();
        m.access(0, false, 0);
        m.access(0, false, 100);
        assert!(m.stats().dynamic_pj() > 0.0);
        assert_eq!(m.stats().llc.hits, 1);
        assert_eq!(m.stats().llc.misses, 1);
    }
}
