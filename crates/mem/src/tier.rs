//! Weight-tier load-cost model: what streaming a model's weight image out
//! of the LLC/DRAM hierarchy costs the fabric edge.
//!
//! MAICC's dataflow is weight-stationary, so the serving layer caches
//! model weight images in two tiers above the CMem-resident hot set: the
//! 32 edge-tile LLCs and the channel-interleaved DRAM behind them. The
//! functions here price a whole-image sequential line stream through each
//! tier by *replaying* it against the real [`crate::system::MemorySystem`]
//! timing/energy models — no new constants, no wall clock, and the same
//! byte count always yields the same cost, so cache decisions built on top
//! stay deterministic.

use crate::llc::{LLC_ACCESS_PJ, LLC_HIT_CYCLES};
use crate::system::MemorySystem;
use crate::LINE_BYTES;

/// Cycle and energy cost of streaming one weight image out of a tier.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LoadCost {
    /// Cycles until the last line has arrived at the fabric edge
    /// (serialized line stream; no overlap with compute is assumed).
    pub cycles: u64,
    /// Dynamic energy spent in the memory system, picojoules.
    pub energy_pj: f64,
}

impl LoadCost {
    /// Component-wise sum, for stacking the memory stream with the
    /// fabric-side write phase.
    #[must_use]
    pub fn plus(self, other: LoadCost) -> LoadCost {
        LoadCost {
            cycles: self.cycles + other.cycles,
            energy_pj: self.energy_pj + other.energy_pj,
        }
    }
}

/// Number of 32-byte lines needed to hold `bytes`.
#[must_use]
pub fn lines_of(bytes: usize) -> u64 {
    (bytes as u64).div_ceil(u64::from(LINE_BYTES))
}

/// Cost of a cold load: every line of the image misses the LLC and
/// streams from DRAM, paying activate/CAS/burst timing plus the LLC fill.
/// The replay walks sequential addresses from a cold `MemorySystem`, so
/// channel interleave and row-buffer locality are exactly what the
/// system model says they are.
#[must_use]
pub fn dram_load(bytes: usize) -> LoadCost {
    let lines = lines_of(bytes);
    let mut mem = MemorySystem::new_maicc();
    let mut t = 0u64;
    for i in 0..lines {
        // weight images are far smaller than the 64 MB channel stride
        // window, so u32 addressing cannot wrap
        t = mem.access(i as u32 * LINE_BYTES, false, t);
    }
    LoadCost {
        cycles: t,
        energy_pj: mem.stats().dynamic_pj(),
    }
}

/// Cost of a warm-tier load: the image is already resident in the edge
/// LLCs, so every line is a hit — [`LLC_HIT_CYCLES`] latency and one
/// array touch per line.
#[must_use]
pub fn llc_load(bytes: usize) -> LoadCost {
    let lines = lines_of(bytes);
    LoadCost {
        cycles: lines * LLC_HIT_CYCLES,
        energy_pj: lines as f64 * LLC_ACCESS_PJ,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_cost_nothing() {
        assert_eq!(dram_load(0), LoadCost::default());
        assert_eq!(llc_load(0), LoadCost::default());
    }

    #[test]
    fn llc_tier_is_cheaper_than_dram() {
        for bytes in [256usize, 9_216, 36_864] {
            let cold = dram_load(bytes);
            let warm = llc_load(bytes);
            assert!(warm.cycles < cold.cycles, "{bytes}: {warm:?} vs {cold:?}");
            assert!(warm.energy_pj < cold.energy_pj);
        }
    }

    #[test]
    fn costs_are_deterministic_and_monotone() {
        assert_eq!(dram_load(9_216), dram_load(9_216));
        assert!(dram_load(36_864).cycles > dram_load(9_216).cycles);
        assert!(llc_load(36_864).cycles > llc_load(9_216).cycles);
    }

    #[test]
    fn partial_line_rounds_up() {
        assert_eq!(lines_of(1), 1);
        assert_eq!(lines_of(32), 1);
        assert_eq!(lines_of(33), 2);
        assert_eq!(llc_load(1).cycles, LLC_HIT_CYCLES);
    }
}
