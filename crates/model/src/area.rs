//! 28 nm area model (§5) and the Figure-10(a) breakdown.
//!
//! The constants reproduce the paper's published figures and compose
//! consistently: one node = core + CMem + node SRAM = 0.114 mm² (Table 4),
//! and 210 nodes + NoC + LLC ≈ 28 mm² with CMem ≈ 65 % of the chip
//! (Figure 10(a)).

use serde::{Deserialize, Serialize};

/// Lightweight RV32IMA core area, mm² (§5: 0.014 mm² at 28 nm).
pub const CORE_MM2: f64 = 0.014;
/// CMem slice 0 (8T, transposing) area, mm² (§5).
pub const SLICE0_MM2: f64 = 0.014;
/// One computing slice (1–7) including its adder tree, mm².
///
/// §5 reports the synthesized peripheral+array estimate; the value here is
/// the per-slice share that makes the published node total (0.114 mm²)
/// and chip share (65 % CMem) consistent.
pub const COMPUTE_SLICE_MM2: f64 = 0.0104;
/// Fraction of a computing slice that is the adder tree / shift-accumulate
/// logic rather than memory cells (Figure 10(a): "about one-third").
pub const SLICE_LOGIC_FRACTION: f64 = 1.0 / 3.0;
/// Node instruction cache + data memory (2 × 4 KB), mm².
pub const NODE_SRAM_MM2: f64 = 0.0133;
/// Whole-mesh NoC area, mm² (§5, dsent).
pub const NOC_MM2: f64 = 2.61;
/// One LLC tile (64 KB), mm².
pub const LLC_TILE_MM2: f64 = 0.0437;

/// Table-4 node-area reference points, mm².
pub const SCALAR_NODE_MM2: f64 = 0.052;
/// Neural Cache node (40 KB of compute-capable 8 KB arrays + host share).
pub const NEURAL_CACHE_NODE_MM2: f64 = 0.158;

/// Area of one MAICC node (core + CMem + node SRAM), mm².
#[must_use]
pub fn maicc_node_mm2() -> f64 {
    CORE_MM2 + SLICE0_MM2 + 7.0 * COMPUTE_SLICE_MM2 + NODE_SRAM_MM2
}

/// The Figure-10(a) chip area breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// All CMems (memory cells + adder trees), mm².
    pub cmem: f64,
    /// All scalar cores, mm².
    pub core: f64,
    /// Node instruction caches and data memories, mm².
    pub node_sram: f64,
    /// Mesh network, mm².
    pub noc: f64,
    /// Last-level cache tiles, mm².
    pub llc: f64,
}

impl AreaBreakdown {
    /// Breakdown for a chip of `cores` compute nodes and `llc_tiles` LLC
    /// tiles.
    #[must_use]
    pub fn for_chip(cores: usize, llc_tiles: usize) -> Self {
        AreaBreakdown {
            cmem: cores as f64 * (SLICE0_MM2 + 7.0 * COMPUTE_SLICE_MM2),
            core: cores as f64 * CORE_MM2,
            node_sram: cores as f64 * NODE_SRAM_MM2,
            noc: NOC_MM2,
            llc: llc_tiles as f64 * LLC_TILE_MM2,
        }
    }

    /// Total chip area, mm².
    #[must_use]
    pub fn total(&self) -> f64 {
        self.cmem + self.core + self.node_sram + self.noc + self.llc
    }

    /// Component fractions in Figure-10 order
    /// (cmem, core, node SRAM, NoC, LLC).
    #[must_use]
    pub fn fractions(&self) -> [f64; 5] {
        let t = self.total();
        [
            self.cmem / t,
            self.core / t,
            self.node_sram / t,
            self.noc / t,
            self.llc / t,
        ]
    }

    /// Area of the CMem adder trees alone, mm² (the "computing logic"
    /// third of Figure 10(a)).
    #[must_use]
    pub fn cmem_logic(&self) -> f64 {
        // slice 0 has no adder tree; the logic share applies to slices 1–7
        let compute = self.cmem * (7.0 * COMPUTE_SLICE_MM2)
            / (SLICE0_MM2 + 7.0 * COMPUTE_SLICE_MM2);
        compute * SLICE_LOGIC_FRACTION
    }
}

/// On-chip memory per node in KB (Table 4's "Memory" row): 16 KB CMem +
/// 4 KB data memory — the paper counts the instruction cache separately.
#[must_use]
pub fn maicc_node_memory_kb() -> usize {
    20
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_area_matches_table4() {
        let a = maicc_node_mm2();
        assert!((a - 0.114).abs() < 0.002, "node area {a}");
    }

    #[test]
    fn chip_area_near_28mm2() {
        let b = AreaBreakdown::for_chip(210, 32);
        let t = b.total();
        assert!((26.0..30.0).contains(&t), "chip area {t}");
    }

    #[test]
    fn cmem_dominates_at_65_percent() {
        let b = AreaBreakdown::for_chip(210, 32);
        let f = b.fractions();
        assert!((0.60..0.70).contains(&f[0]), "cmem share {}", f[0]);
        assert!((0.08..0.14).contains(&f[1]), "core share {}", f[1]);
        assert!((0.07..0.13).contains(&f[2]), "sram share {}", f[2]);
        assert!((0.06..0.12).contains(&f[3]), "noc share {}", f[3]);
        assert!((0.03..0.08).contains(&f[4]), "llc share {}", f[4]);
    }

    #[test]
    fn fractions_sum_to_one() {
        let b = AreaBreakdown::for_chip(210, 32);
        let s: f64 = b.fractions().iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cmem_logic_is_about_a_third() {
        let b = AreaBreakdown::for_chip(210, 32);
        let ratio = b.cmem_logic() / b.cmem;
        assert!((0.25..0.35).contains(&ratio), "{ratio}");
    }

    #[test]
    fn table4_node_ordering() {
        assert!(SCALAR_NODE_MM2 < maicc_node_mm2());
        assert!(maicc_node_mm2() < NEURAL_CACHE_NODE_MM2);
    }
}
