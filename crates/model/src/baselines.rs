//! Analytical CPU and GPU baselines for Table 7.
//!
//! The paper measures an Intel i9-13900K (PyTorch + RAPL) and an NVIDIA
//! RTX 4090 (PyTorch + nvidia-smi) running unquantized ResNet-18 at batch
//! 1 (§5). We do not own the devices, so each baseline is a roofline-style
//! model: `latency = macs / (peak_macs_per_s × batch1_efficiency)`, with
//! the peak taken from the public Table-3 specs and the batch-1 efficiency
//! calibrated once so the model reproduces the paper's measured operating
//! point (22.3 ms / 176.4 W for the CPU, 1.02 ms / 228.6 W for the GPU).
//! The calibration is a single scalar per device — model *shape* (how
//! latency scales with work) is preserved for other networks.

use serde::{Deserialize, Serialize};

/// A batch-1 inference device model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Display name.
    pub name: String,
    /// Execution lanes (CPU cores × SIMD lanes, or CUDA cores).
    pub lanes: f64,
    /// Clock, Hz.
    pub freq_hz: f64,
    /// Fused multiply-adds per lane per cycle at peak.
    pub macs_per_lane_cycle: f64,
    /// Fraction of peak achieved on batch-1 CNN inference (calibrated).
    pub batch1_efficiency: f64,
    /// Average board/package power during inference, W (measured value
    /// from the paper; RAPL / nvidia-smi).
    pub average_power_w: f64,
}

impl DeviceModel {
    /// The Table-3 CPU: Intel Core i9-13900K (24 cores, AVX2 ≈ 32 int8
    /// MACs per core-cycle effective).
    #[must_use]
    pub fn cpu_i9_13900k() -> Self {
        DeviceModel {
            name: "Intel i9-13900K".into(),
            lanes: 24.0,
            freq_hz: 3.0e9,
            macs_per_lane_cycle: 32.0,
            // calibrated so resnet18 (≈1.86 GMAC) lands at 22.3 ms
            batch1_efficiency: 0.0362,
            average_power_w: 176.4,
        }
    }

    /// The Table-3 GPU: NVIDIA RTX 4090 (16384 CUDA cores at 2.235 GHz,
    /// 2 FLOPs/core/cycle fused).
    #[must_use]
    pub fn gpu_rtx_4090() -> Self {
        DeviceModel {
            name: "NVIDIA RTX 4090".into(),
            lanes: 16384.0,
            freq_hz: 2.235e9,
            macs_per_lane_cycle: 1.0,
            // calibrated so resnet18 lands at 1.02 ms — batch-1 inference
            // leaves most of a 16k-core GPU idle
            batch1_efficiency: 0.0498,
            average_power_w: 228.6,
        }
    }

    /// Peak MAC rate, MACs/s.
    #[must_use]
    pub fn peak_macs_per_s(&self) -> f64 {
        self.lanes * self.freq_hz * self.macs_per_lane_cycle
    }

    /// Predicted batch-1 latency for a network of `macs`
    /// multiply-accumulates, seconds.
    #[must_use]
    pub fn latency_s(&self, macs: u64) -> f64 {
        macs as f64 / (self.peak_macs_per_s() * self.batch1_efficiency)
    }

    /// Predicted throughput, samples/s.
    #[must_use]
    pub fn throughput(&self, macs: u64) -> f64 {
        1.0 / self.latency_s(macs)
    }

    /// Throughput per watt, samples/s/W (Table 7's last row).
    #[must_use]
    pub fn throughput_per_watt(&self, macs: u64) -> f64 {
        self.throughput(macs) / self.average_power_w
    }
}

/// MAC count of the evaluation network *as the baselines run it*: full
/// ResNet-18 at 224×224 including the stem (the devices cannot skip it).
pub const RESNET18_FULL_MACS: u64 = 1_860_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_calibrated_to_paper_latency() {
        let cpu = DeviceModel::cpu_i9_13900k();
        let ms = cpu.latency_s(RESNET18_FULL_MACS) * 1e3;
        assert!((ms - 22.3).abs() < 1.0, "cpu latency {ms} ms");
    }

    #[test]
    fn gpu_calibrated_to_paper_latency() {
        let gpu = DeviceModel::gpu_rtx_4090();
        let ms = gpu.latency_s(RESNET18_FULL_MACS) * 1e3;
        assert!((ms - 1.02).abs() < 0.1, "gpu latency {ms} ms");
    }

    #[test]
    fn table7_throughput_shape() {
        let cpu = DeviceModel::cpu_i9_13900k();
        let gpu = DeviceModel::gpu_rtx_4090();
        let tc = cpu.throughput(RESNET18_FULL_MACS);
        let tg = gpu.throughput(RESNET18_FULL_MACS);
        assert!((tc - 44.8).abs() < 3.0, "cpu {tc}");
        assert!((tg - 980.0).abs() < 80.0, "gpu {tg}");
        // Table 7 throughput/W: CPU 0.25, GPU 4.29
        assert!((cpu.throughput_per_watt(RESNET18_FULL_MACS) - 0.25).abs() < 0.05);
        assert!((gpu.throughput_per_watt(RESNET18_FULL_MACS) - 4.29).abs() < 0.5);
    }

    #[test]
    fn latency_scales_with_work() {
        let cpu = DeviceModel::cpu_i9_13900k();
        assert!(
            (cpu.latency_s(2 * RESNET18_FULL_MACS) / cpu.latency_s(RESNET18_FULL_MACS) - 2.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn gpu_peak_far_above_cpu() {
        assert!(
            DeviceModel::gpu_rtx_4090().peak_macs_per_s()
                > 10.0 * DeviceModel::cpu_i9_13900k().peak_macs_per_s()
        );
    }
}
