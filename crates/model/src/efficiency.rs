//! Computational-efficiency accounting (GFLOPS/W) and the §6.3
//! Neural Cache comparison.

use serde::{Deserialize, Serialize};

/// Neural Cache's published efficiency on Inception-v3, GFLOPS/W,
/// **without modelling DRAM** (§6.3).
pub const NEURAL_CACHE_GFLOPS_PER_W: f64 = 22.90;

/// Operations per multiply-accumulate (one multiply + one add).
pub const OPS_PER_MAC: f64 = 2.0;

/// A computational-efficiency data point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Efficiency {
    /// Work performed, in MACs.
    pub macs: u64,
    /// Run time, seconds.
    pub seconds: f64,
    /// Energy spent, joules.
    pub joules: f64,
}

impl Efficiency {
    /// Throughput in GFLOPS (counting 2 ops per MAC).
    #[must_use]
    pub fn gflops(&self) -> f64 {
        self.macs as f64 * OPS_PER_MAC / self.seconds / 1e9
    }

    /// Average power, watts.
    #[must_use]
    pub fn watts(&self) -> f64 {
        self.joules / self.seconds
    }

    /// GFLOPS per watt.
    #[must_use]
    pub fn gflops_per_watt(&self) -> f64 {
        self.gflops() / self.watts()
    }

    /// Ratio to the published Neural Cache figure.
    #[must_use]
    pub fn vs_neural_cache(&self) -> f64 {
        self.gflops_per_watt() / NEURAL_CACHE_GFLOPS_PER_W
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let e = Efficiency {
            macs: 1_000_000_000,
            seconds: 1.0,
            joules: 10.0,
        };
        assert!((e.gflops() - 2.0).abs() < 1e-9);
        assert!((e.watts() - 10.0).abs() < 1e-9);
        assert!((e.gflops_per_watt() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn resnet_shaped_run_beats_neural_cache() {
        // ~1.7 GMAC in ~5.1 ms at ~7 W without DRAM → tens of GFLOPS/W
        let e = Efficiency {
            macs: 1_700_000_000,
            seconds: 5.1e-3,
            joules: 7.0 * 5.1e-3,
        };
        assert!(e.vs_neural_cache() > 1.0, "{}", e.gflops_per_watt());
    }

    #[test]
    fn faster_same_energy_is_more_efficient() {
        let slow = Efficiency {
            macs: 1_000_000,
            seconds: 2.0,
            joules: 1.0,
        };
        let fast = Efficiency {
            macs: 1_000_000,
            seconds: 1.0,
            joules: 1.0,
        };
        // same energy for the same work → same GFLOPS/W, higher GFLOPS
        assert!(fast.gflops() > slow.gflops());
        assert!((fast.gflops_per_watt() - slow.gflops_per_watt()).abs() < 1e-12);
    }
}
