#![warn(missing_docs)]

//! # maicc-model — area, power, energy and baseline models
//!
//! Everything §5's "System Model" paragraph measures with RTL synthesis,
//! SPICE, memory compilers, McPAT and dsent is reproduced here as a set of
//! documented constants and composition rules:
//!
//! * [`area`] — 28 nm component areas; composes the Table-4 node areas and
//!   the Figure-10(a) chip breakdown (28 mm² for 210 cores);
//! * [`power`] — static/dynamic power and the Figure-10(b) energy
//!   breakdown, driven by the counters the simulators emit;
//! * [`baselines`] — analytical CPU (i9-13900K) and GPU (RTX 4090) models
//!   for Table 7, calibrated to the paper's measured operating points
//!   (we do not own the physical devices — see DESIGN.md substitution 4);
//! * [`efficiency`] — GFLOPS/W accounting and the §6.3 Neural Cache
//!   comparison.

pub mod area;
pub mod baselines;
pub mod efficiency;
pub mod power;

/// Cores in the evaluated MAICC chip.
pub const MAICC_CORES: usize = 210;

/// LLC tiles (= DRAM channels).
pub const MAICC_LLC_TILES: usize = 32;

/// Core clock, Hz (the paper's conservative 1 GHz, §6.3).
pub const MAICC_FREQ_HZ: f64 = 1.0e9;
