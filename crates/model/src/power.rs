//! Power/energy model and the Figure-10(b) energy breakdown.
//!
//! Static power comes from documented per-component constants; dynamic
//! energy comes from the counters the simulators emit (CMem ops, NoC
//! flit-hops, DRAM accesses, retired instructions). The dominant term at
//! chip level is the many-core DRAM's background power — with only 24.7 W
//! of total chip+memory power, the 2 GB, 32-channel DRAM's standby/refresh
//! floor is what makes DRAM 71 % of the energy pie (Figure 10(b)).

use serde::{Deserialize, Serialize};

/// One lightweight core's power, W (§5: 8 mW at 28 nm / 1 GHz).
pub const CORE_W: f64 = 0.008;
/// One node's CMem leakage/peripheral static power, W. 16 KB of
/// compute-capable SRAM with eight adder trees leaks roughly 10 mW at
/// 28 nm; this is what makes the CMem ≈11 % of chip energy in
/// Figure 10(b) even though each MAC.C costs only 28 pJ.
pub const CMEM_STATIC_W: f64 = 0.010;
/// Node SRAM (icache + data memory) static power, W.
pub const NODE_SRAM_W: f64 = 0.002;
/// NoC static power, W (§5: 2.20 W, dsent).
pub const NOC_STATIC_W: f64 = 2.20;
/// One LLC tile's static power, W.
pub const LLC_TILE_W: f64 = 0.010;
/// Many-core DRAM background power (standby + refresh + PHY) across all
/// 32 channels of the 2 GB device, W.
pub const DRAM_STATIC_W: f64 = 17.2;
/// Dynamic energy per retired scalar instruction, pJ (8 mW / 1 GHz core,
/// roughly half static, half activity-dependent).
pub const CORE_INST_PJ: f64 = 4.0;

/// Dynamic-activity counters a simulation produces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ActivityCounters {
    /// CMem dynamic energy already integrated by `maicc-sram`'s meters, pJ.
    pub cmem_pj: f64,
    /// NoC flit-hops.
    pub noc_flit_hops: u64,
    /// DRAM + LLC dynamic energy from `maicc-mem`, pJ.
    pub mem_pj: f64,
    /// Total instructions retired across all cores.
    pub instructions: u64,
    /// Cores that were powered during the run.
    pub active_cores: usize,
    /// LLC tiles powered.
    pub llc_tiles: usize,
    /// Run length in seconds.
    pub seconds: f64,
}

/// The Figure-10(b) energy breakdown, joules per component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Many-core DRAM (static + dynamic).
    pub dram: f64,
    /// CMem operations.
    pub cmem: f64,
    /// Mesh network (static + per-flit-hop dynamic).
    pub noc: f64,
    /// Scalar cores (static + per-instruction dynamic).
    pub core: f64,
    /// Node SRAMs.
    pub node_sram: f64,
    /// LLC tiles.
    pub llc: f64,
}

impl EnergyBreakdown {
    /// Integrates the power model over one run.
    #[must_use]
    pub fn from_counters(c: &ActivityCounters) -> Self {
        let t = c.seconds;
        EnergyBreakdown {
            dram: DRAM_STATIC_W * t + c.mem_pj * 1e-12,
            cmem: c.active_cores as f64 * CMEM_STATIC_W * t + c.cmem_pj * 1e-12,
            noc: NOC_STATIC_W * t + c.noc_flit_hops as f64 * maicc_noc_flit_pj() * 1e-12,
            core: c.active_cores as f64 * CORE_W * t + c.instructions as f64 * CORE_INST_PJ * 1e-12,
            node_sram: c.active_cores as f64 * NODE_SRAM_W * t,
            llc: c.llc_tiles as f64 * LLC_TILE_W * t,
        }
    }

    /// Total energy, joules.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.dram + self.cmem + self.noc + self.core + self.node_sram + self.llc
    }

    /// Average power over the run, watts.
    #[must_use]
    pub fn average_power(&self, seconds: f64) -> f64 {
        self.total() / seconds
    }

    /// Fractions in Figure-10 order (dram, cmem, noc, core, node SRAM, LLC).
    #[must_use]
    pub fn fractions(&self) -> [f64; 6] {
        let t = self.total();
        [
            self.dram / t,
            self.cmem / t,
            self.noc / t,
            self.core / t,
            self.node_sram / t,
            self.llc / t,
        ]
    }

    /// Total excluding DRAM (for the §6.3 GFLOPS/W comparison, which
    /// excludes DRAM like Neural Cache's published number does).
    #[must_use]
    pub fn total_without_dram(&self) -> f64 {
        self.total() - self.dram
    }
}

impl std::fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let fr = self.fractions();
        write!(
            f,
            "{:.2} mJ (dram {:.0}%, cmem {:.0}%, noc {:.0}%, core {:.0}%, \
             sram {:.0}%, llc {:.0}%)",
            self.total() * 1e3,
            fr[0] * 100.0,
            fr[1] * 100.0,
            fr[2] * 100.0,
            fr[3] * 100.0,
            fr[4] * 100.0,
            fr[5] * 100.0
        )
    }
}

/// Re-exported NoC flit-hop energy (pJ) so callers need only this crate.
#[must_use]
pub fn maicc_noc_flit_pj() -> f64 {
    5.4
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counters shaped like a heuristic-mapped ResNet-18 run: ~5 ms,
    /// ~3 mJ of CMem activity, modest NoC/DRAM dynamic traffic.
    fn resnet_like() -> ActivityCounters {
        ActivityCounters {
            cmem_pj: 1.3e9,        // ≈1.3 mJ of MAC/Move activity
            noc_flit_hops: 60_000_000,
            mem_pj: 1.5e9,
            instructions: 400_000_000,
            active_cores: 210,
            llc_tiles: 32,
            seconds: 5.1e-3,
        }
    }

    #[test]
    fn dram_dominates_like_fig10b() {
        let e = EnergyBreakdown::from_counters(&resnet_like());
        let f = e.fractions();
        assert!((0.60..0.80).contains(&f[0]), "dram share {}", f[0]);
        assert!(f[1] > 0.05, "cmem share {}", f[1]);
        assert!(f[2] > 0.05, "noc share {}", f[2]);
        assert!(f[3] < 0.10, "core share {}", f[3]);
    }

    #[test]
    fn average_power_near_25w() {
        let c = resnet_like();
        let e = EnergyBreakdown::from_counters(&c);
        let p = e.average_power(c.seconds);
        assert!((20.0..30.0).contains(&p), "power {p}");
    }

    #[test]
    fn fractions_sum_to_one() {
        let e = EnergyBreakdown::from_counters(&resnet_like());
        let s: f64 = e.fractions().iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn without_dram_strictly_smaller() {
        let e = EnergyBreakdown::from_counters(&resnet_like());
        assert!(e.total_without_dram() < e.total());
        assert!(e.total_without_dram() > 0.0);
    }

    #[test]
    fn zero_time_is_pure_dynamic() {
        let c = ActivityCounters {
            cmem_pj: 1e6,
            seconds: 0.0,
            ..ActivityCounters::default()
        };
        let e = EnergyBreakdown::from_counters(&c);
        assert!((e.total() - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn display_summarizes_breakdown() {
        let e = EnergyBreakdown::from_counters(&resnet_like());
        let s = e.to_string();
        assert!(s.contains("mJ"));
        assert!(s.contains("dram"));
    }

    #[test]
    fn cmem_share_near_paper_11_percent() {
        let c = resnet_like();
        let e = EnergyBreakdown::from_counters(&c);
        let f = e.fractions();
        assert!((0.05..0.18).contains(&f[1]), "cmem share {}", f[1]);
    }
}
