use std::fmt;

/// Errors raised by tensor and graph operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// Two shapes that must agree did not.
    ShapeMismatch {
        /// What the operation expected.
        expected: Vec<usize>,
        /// What it received.
        got: Vec<usize>,
    },
    /// A layer received an input of the wrong rank or dimensions.
    BadInput {
        /// Name of the layer reporting the problem.
        layer: String,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// The graph is malformed (dangling edge, cycle, missing producer).
    BadGraph {
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected:?}, got {got:?}")
            }
            NnError::BadInput { layer, reason } => {
                write!(f, "bad input to layer {layer}: {reason}")
            }
            NnError::BadGraph { reason } => write!(f, "malformed graph: {reason}"),
        }
    }
}

impl std::error::Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let e = NnError::ShapeMismatch {
            expected: vec![1, 2],
            got: vec![3],
        };
        assert!(e.to_string().contains("shape mismatch"));
    }

    #[test]
    fn is_send_sync_error() {
        fn f<T: std::error::Error + Send + Sync>() {}
        f::<NnError>();
    }
}
