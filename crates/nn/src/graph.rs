//! Layer DAG with residual edges and the golden reference executor.
//!
//! A [`Network`] is the paper's view of a DNN: a directed acyclic graph of
//! *mixed layers* (§4.1), each a computational layer (CONV or FC) fused with
//! its auxiliary functions. Residual (shortcut) additions are expressed as
//! an edge from an earlier node. The executor here is the **golden model**:
//! every hardware simulation in the workspace must reproduce its outputs
//! bit-exactly.

use crate::layer::{
    add_i8, conv2d_i8, global_avgpool_i8, linear_i8, maxpool_i8, relu_i32, requantize, ConvLayer,
    LinearLayer, PoolKind,
};
use crate::tensor::Tensor;
use crate::NnError;
use serde::{Deserialize, Serialize};

/// The computational core of a mixed layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeOp {
    /// A convolution (Table 6 rows `convX_Y` and `shortcut`).
    Conv(ConvLayer),
    /// A fully connected layer (Table 6 row `linear`).
    Linear(LinearLayer),
}

/// Where a node takes its primary input from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeInput {
    /// The network's external input tensor.
    External,
    /// The output of an earlier node.
    Node(usize),
}

/// One mixed layer in the DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Display name (matching Table 6, e.g. `conv2_3`).
    pub name: String,
    /// The computational core.
    pub op: NodeOp,
    /// Primary input edge.
    pub input: NodeInput,
    /// Optional residual edge: that tensor is added (saturating, in i8)
    /// after requantization, before the final ReLU.
    pub residual: Option<NodeInput>,
}

/// Static shape information for one node, produced by shape propagation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerShape {
    /// Node name.
    pub name: String,
    /// Input channels.
    pub in_c: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Output channels (filter count `M` for convs).
    pub out_c: usize,
    /// Output height (1 for linear).
    pub out_h: usize,
    /// Output width (1 for linear).
    pub out_w: usize,
    /// Kernel height (`R`; 1 for linear).
    pub kernel_h: usize,
    /// Kernel width (`S`; 1 for linear).
    pub kernel_w: usize,
    /// Stride (1 for linear).
    pub stride: usize,
    /// Multiply-accumulate count.
    pub macs: u64,
    /// Whether this is the fully connected layer.
    pub is_linear: bool,
}

/// A layer DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    name: String,
    nodes: Vec<Node>,
}

impl Network {
    /// Creates a network from nodes, validating edge sanity.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadGraph`] if any edge points at this node or a
    /// later one (the graph must be topologically ordered), or if the node
    /// list is empty.
    pub fn new(name: impl Into<String>, nodes: Vec<Node>) -> Result<Self, NnError> {
        if nodes.is_empty() {
            return Err(NnError::BadGraph {
                reason: "network has no layers".into(),
            });
        }
        for (i, n) in nodes.iter().enumerate() {
            if let NodeInput::Node(j) = n.input {
                if j >= i {
                    return Err(NnError::BadGraph {
                        reason: format!("node {i} ({}) takes input from node {j}", n.name),
                    });
                }
            }
            if let Some(NodeInput::Node(j)) = n.residual {
                if j >= i {
                    return Err(NnError::BadGraph {
                        reason: format!("node {i} ({}) takes residual from node {j}", n.name),
                    });
                }
            }
        }
        Ok(Network {
            name: name.into(),
            nodes,
        })
    }

    /// The network's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The mixed layers in topological order.
    #[must_use]
    pub fn layers(&self) -> &[Node] {
        &self.nodes
    }

    /// Golden inference on an i8 `[C, H, W]` input; returns the final
    /// node's output.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn infer(&self, input: &Tensor<i8>) -> Result<Tensor<i8>, NnError> {
        let mut outputs: Vec<Tensor<i8>> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let src = match node.input {
                NodeInput::External => input,
                NodeInput::Node(j) => &outputs[j],
            };
            let mut out = match &node.op {
                NodeOp::Conv(conv) => {
                    let acc = conv2d_i8(src, conv)?;
                    let acc = if conv.relu && node.residual.is_none() {
                        relu_i32(&acc)
                    } else {
                        acc
                    };
                    let mut q = requantize(&acc, &conv.requant);
                    if let Some(res) = node.residual {
                        let res_t = match res {
                            NodeInput::External => input,
                            NodeInput::Node(j) => &outputs[j],
                        };
                        q = add_i8(&q, res_t)?;
                        if conv.relu {
                            q = q.map(|x| x.max(0));
                        }
                    }
                    match conv.pool {
                        Some(PoolKind::Max { k }) => maxpool_i8(&q, k)?,
                        Some(PoolKind::GlobalAvg) => global_avgpool_i8(&q),
                        None => q,
                    }
                }
                NodeOp::Linear(lin) => {
                    let flat = if src.shape().len() > 1 {
                        src.reshape(&[src.len()])?
                    } else {
                        src.clone()
                    };
                    let acc = linear_i8(&flat, lin)?;
                    let acc = if lin.relu { relu_i32(&acc) } else { acc };
                    requantize(&acc, &lin.requant)
                }
            };
            // keep saturation invariant for the next consumer
            if out.is_empty() {
                return Err(NnError::BadGraph {
                    reason: format!("node {} produced an empty tensor", node.name),
                });
            }
            outputs.push(std::mem::take(&mut out));
        }
        Ok(outputs.pop().expect("non-empty network"))
    }

    /// Propagates shapes from an external `[C, H, W]` input, returning one
    /// [`LayerShape`] per node.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] if channel counts mismatch along the way.
    pub fn shapes(&self, input: [usize; 3]) -> Result<Vec<LayerShape>, NnError> {
        let mut out_shapes: Vec<[usize; 3]> = Vec::with_capacity(self.nodes.len());
        let mut infos = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let src = match node.input {
                NodeInput::External => input,
                NodeInput::Node(j) => out_shapes[j],
            };
            let (info, out) = match &node.op {
                NodeOp::Conv(conv) => {
                    let s = &conv.shape;
                    if src[0] != s.in_channels {
                        return Err(NnError::BadInput {
                            layer: node.name.clone(),
                            reason: format!(
                                "expects {} input channels, got {}",
                                s.in_channels, src[0]
                            ),
                        });
                    }
                    let (oh, ow) = s.output_hw(src[1], src[2]);
                    let (ph, pw) = match conv.pool {
                        Some(PoolKind::Max { k }) => (oh / k, ow / k),
                        Some(PoolKind::GlobalAvg) => (1, 1),
                        None => (oh, ow),
                    };
                    (
                        LayerShape {
                            name: node.name.clone(),
                            in_c: src[0],
                            in_h: src[1],
                            in_w: src[2],
                            out_c: s.out_channels,
                            out_h: oh,
                            out_w: ow,
                            kernel_h: s.kernel_h,
                            kernel_w: s.kernel_w,
                            stride: s.stride,
                            macs: s.macs(src[1], src[2]),
                            is_linear: false,
                        },
                        [s.out_channels, ph, pw],
                    )
                }
                NodeOp::Linear(lin) => {
                    let in_f = src.iter().product::<usize>();
                    if in_f != lin.in_features() {
                        return Err(NnError::BadInput {
                            layer: node.name.clone(),
                            reason: format!(
                                "expects {} input features, got {in_f}",
                                lin.in_features()
                            ),
                        });
                    }
                    (
                        LayerShape {
                            name: node.name.clone(),
                            in_c: in_f,
                            in_h: 1,
                            in_w: 1,
                            out_c: lin.out_features(),
                            out_h: 1,
                            out_w: 1,
                            kernel_h: 1,
                            kernel_w: 1,
                            stride: 1,
                            macs: (lin.in_features() * lin.out_features()) as u64,
                            is_linear: true,
                        },
                        [lin.out_features(), 1, 1],
                    )
                }
            };
            infos.push(info);
            out_shapes.push(out);
        }
        Ok(infos)
    }

    /// Total MAC count for a given input shape.
    ///
    /// # Errors
    ///
    /// Propagates shape-propagation errors.
    pub fn total_macs(&self, input: [usize; 3]) -> Result<u64, NnError> {
        Ok(self.shapes(input)?.iter().map(|s| s.macs).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::Requantizer;
    use crate::tensor::ConvShape;

    fn conv_node(name: &str, c: usize, m: usize, k: usize, stride: usize, input: NodeInput) -> Node {
        Node {
            name: name.into(),
            op: NodeOp::Conv(ConvLayer {
                shape: ConvShape {
                    out_channels: m,
                    in_channels: c,
                    kernel_h: k,
                    kernel_w: k,
                    stride,
                    padding: k / 2,
                },
                weights: Tensor::filled(&[m, c, k, k], 1),
                bias: vec![0; m],
                requant: Requantizer::from_real_multiplier(0.01, 0),
                relu: true,
                pool: None,
            }),
            input,
            residual: None,
        }
    }

    #[test]
    fn forward_edge_required() {
        let bad = vec![Node {
            input: NodeInput::Node(0),
            ..conv_node("a", 2, 2, 1, 1, NodeInput::External)
        }];
        assert!(Network::new("bad", bad).is_err());
    }

    #[test]
    fn residual_must_point_backward() {
        let mut n = conv_node("a", 2, 2, 1, 1, NodeInput::External);
        n.residual = Some(NodeInput::Node(3));
        assert!(Network::new("bad", vec![n]).is_err());
    }

    #[test]
    fn empty_network_rejected() {
        assert!(Network::new("empty", vec![]).is_err());
    }

    #[test]
    fn two_layer_inference_shapes() {
        let net = Network::new(
            "tiny",
            vec![
                conv_node("c1", 2, 4, 3, 1, NodeInput::External),
                conv_node("c2", 4, 8, 3, 2, NodeInput::Node(0)),
            ],
        )
        .unwrap();
        let out = net.infer(&Tensor::filled(&[2, 8, 8], 1)).unwrap();
        assert_eq!(out.shape(), &[8, 4, 4]);
    }

    #[test]
    fn shape_propagation_reports_macs() {
        let net = Network::new(
            "tiny",
            vec![conv_node("c1", 2, 4, 3, 1, NodeInput::External)],
        )
        .unwrap();
        let shapes = net.shapes([2, 8, 8]).unwrap();
        assert_eq!(shapes.len(), 1);
        assert_eq!(shapes[0].out_h, 8);
        assert_eq!(shapes[0].macs, (8 * 8 * 4 * 2 * 9) as u64);
        assert_eq!(net.total_macs([2, 8, 8]).unwrap(), shapes[0].macs);
    }

    #[test]
    fn residual_add_applies() {
        // c1 then c2 with residual from c1; weights make c2 output zero so
        // the result equals c1's output (positive, relu keeps it).
        let c1 = conv_node("c1", 1, 1, 1, 1, NodeInput::External);
        let mut c2 = conv_node("c2", 1, 1, 1, 1, NodeInput::Node(0));
        if let NodeOp::Conv(ref mut l) = c2.op {
            l.weights = Tensor::filled(&[1, 1, 1, 1], 0);
            l.requant = Requantizer::from_real_multiplier(0.5, 0);
        }
        c2.residual = Some(NodeInput::Node(0));
        let net = Network::new("res", vec![c1, c2]).unwrap();
        let input = Tensor::filled(&[1, 2, 2], 100i8);
        let out = net.infer(&input).unwrap();
        // c1: acc 100, requant(0.01) → 1; c2: 0 + residual 1 = 1
        assert!(out.data().iter().all(|&x| x == 1));
    }

    #[test]
    fn linear_flattens_input() {
        let lin = Node {
            name: "fc".into(),
            op: NodeOp::Linear(LinearLayer {
                weights: Tensor::filled(&[3, 8], 1),
                bias: vec![0; 3],
                requant: Requantizer::from_real_multiplier(0.5, 0),
                relu: false,
            }),
            input: NodeInput::External,
            residual: None,
        };
        let net = Network::new("fc", vec![lin]).unwrap();
        let out = net.infer(&Tensor::filled(&[2, 2, 2], 2)).unwrap();
        assert_eq!(out.shape(), &[3]);
        assert!(out.data().iter().all(|&x| x == 8)); // 8 * 2 * 0.5
    }

    #[test]
    fn shapes_reject_channel_mismatch() {
        let net = Network::new(
            "tiny",
            vec![conv_node("c1", 4, 4, 3, 1, NodeInput::External)],
        )
        .unwrap();
        assert!(net.shapes([2, 8, 8]).is_err());
    }

    #[test]
    fn pooling_halves_shape_in_propagation() {
        let mut n = conv_node("c1", 1, 1, 3, 1, NodeInput::External);
        if let NodeOp::Conv(ref mut l) = n.op {
            l.pool = Some(PoolKind::Max { k: 2 });
        }
        let net = Network::new("pool", vec![n]).unwrap();
        let out = net.infer(&Tensor::filled(&[1, 8, 8], 1)).unwrap();
        assert_eq!(out.shape(), &[1, 4, 4]);
    }
}
