//! An independent convolution path: im2col + matrix multiply.
//!
//! CPUs and GPUs (the paper's baselines) execute convolutions by lowering
//! them to GEMM. Implementing that lowering here serves two purposes: it
//! documents what the baseline devices actually compute, and it gives the
//! workspace a structurally *different* implementation to differentially
//! test the direct convolution against — two independent paths agreeing
//! bit-for-bit is much stronger evidence than either alone.

use crate::layer::ConvLayer;
use crate::tensor::Tensor;
use crate::NnError;

/// Lowers a `[C, H, W]` input to the im2col matrix: one row per output
/// position, one column per (channel, ky, kx) weight, with zero padding
/// materialized.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] on rank/channel mismatch.
pub fn im2col(input: &Tensor<i8>, layer: &ConvLayer) -> Result<Tensor<i8>, NnError> {
    let s = &layer.shape;
    if input.shape().len() != 3 || input.shape()[0] != s.in_channels {
        return Err(NnError::BadInput {
            layer: "im2col".into(),
            reason: format!("input {:?}", input.shape()),
        });
    }
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let (oh, ow) = s.output_hw(h, w);
    let k = c * s.kernel_h * s.kernel_w;
    let mut m = Tensor::<i8>::zeros(&[oh * ow, k]);
    let pad = s.padding as isize;
    for oy in 0..oh {
        for ox in 0..ow {
            let row = oy * ow + ox;
            for ch in 0..c {
                for ky in 0..s.kernel_h {
                    for kx in 0..s.kernel_w {
                        let iy = (oy * s.stride) as isize - pad + ky as isize;
                        let ix = (ox * s.stride) as isize - pad + kx as isize;
                        let v = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                            input.get(&[ch, iy as usize, ix as usize])
                        } else {
                            0
                        };
                        m.set(&[row, (ch * s.kernel_h + ky) * s.kernel_w + kx], v);
                    }
                }
            }
        }
    }
    Ok(m)
}

/// Convolution by im2col + GEMM: returns the same `[M, OH, OW]` i32
/// accumulator tensor as [`crate::layer::conv2d_i8`].
///
/// # Errors
///
/// Propagates [`im2col`]'s and shape errors.
pub fn conv2d_im2col(input: &Tensor<i8>, layer: &ConvLayer) -> Result<Tensor<i32>, NnError> {
    layer.validate()?;
    let s = &layer.shape;
    let (oh, ow) = s.output_hw(input.shape()[1], input.shape()[2]);
    let cols = im2col(input, layer)?;
    let k = s.in_channels * s.kernel_h * s.kernel_w;
    let w = layer.weights.data(); // [M, k] row-major already
    let mut out = Tensor::<i32>::zeros(&[s.out_channels, oh, ow]);
    for m in 0..s.out_channels {
        let wrow = &w[m * k..(m + 1) * k];
        for p in 0..oh * ow {
            let xrow = &cols.data()[p * k..(p + 1) * k];
            let mut acc = layer.bias[m];
            for (xi, wi) in xrow.iter().zip(wrow) {
                acc += *xi as i32 * *wi as i32;
            }
            out.set(&[m, p / ow, p % ow], acc);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::conv2d_i8;
    use crate::quant::Requantizer;
    use crate::tensor::ConvShape;
    use proptest::prelude::*;

    fn layer(m: usize, c: usize, k: usize, stride: usize, padding: usize, w: Vec<i8>) -> ConvLayer {
        ConvLayer {
            shape: ConvShape {
                out_channels: m,
                in_channels: c,
                kernel_h: k,
                kernel_w: k,
                stride,
                padding,
            },
            weights: Tensor::from_vec(&[m, c, k, k], w).unwrap(),
            bias: vec![0; m],
            requant: Requantizer::from_real_multiplier(0.5, 0),
            relu: false,
            pool: None,
        }
    }

    #[test]
    fn im2col_matrix_shape() {
        let l = layer(2, 3, 3, 1, 1, vec![1; 2 * 3 * 9]);
        let x = Tensor::filled(&[3, 5, 5], 1i8);
        let m = im2col(&x, &l).unwrap();
        assert_eq!(m.shape(), &[25, 27]);
    }

    #[test]
    fn padding_materializes_zeros() {
        let l = layer(1, 1, 3, 1, 1, vec![1; 9]);
        let x = Tensor::filled(&[1, 3, 3], 7i8);
        let m = im2col(&x, &l).unwrap();
        // the corner output row has zeros where the window hangs off
        let first_row = &m.data()[..9];
        assert_eq!(first_row[0], 0, "top-left of padded window");
        assert_eq!(first_row[8], 7, "centre of image");
    }

    #[test]
    fn matches_direct_conv_on_fixed_case() {
        let w: Vec<i8> = (0..2 * 3 * 9).map(|i| (i % 7) as i8 - 3).collect();
        let l = layer(2, 3, 3, 2, 1, w);
        let x = Tensor::from_fn(&[3, 7, 7], |i| ((i[0] * 5 + i[1] * 3 + i[2]) % 11) as i8 - 5);
        assert_eq!(
            conv2d_im2col(&x, &l).unwrap(),
            conv2d_i8(&x, &l).unwrap()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_differential_direct_vs_im2col(
            m in 1usize..4,
            c in 1usize..4,
            k in 1usize..4,
            stride in 1usize..3,
            padding in 0usize..2,
            hw in 4usize..8,
            seed in any::<u32>(),
        ) {
            prop_assume!(hw + 2 * padding >= k);
            let n_w = m * c * k * k;
            let w: Vec<i8> = (0..n_w)
                .map(|i| ((i as u32).wrapping_mul(seed | 1) % 15) as i8 - 7)
                .collect();
            let l = layer(m, c, k, stride, padding, w);
            let x = Tensor::from_fn(&[c, hw, hw], |i| {
                (((i[0] * 31 + i[1] * 7 + i[2]) as u32 ^ seed) % 19) as i8 - 9
            });
            prop_assert_eq!(conv2d_im2col(&x, &l).unwrap(), conv2d_i8(&x, &l).unwrap());
        }
    }
}
