//! Quantized computation layers and auxiliary functions (§2.1).
//!
//! The paper splits DNN layers in two classes: **computational layers**
//! (CONV, FC) that dominate MACs and map onto CMem, and **auxiliary
//! function layers** (activation, pooling, batch normalization,
//! quantization) that run on the RISC-V pipeline. This module provides
//! golden integer implementations of both classes; every hardware model in
//! the workspace validates against these.
//!
//! Activations are `i8` tensors in `[C, H, W]` layout (channel-major,
//! Figure 1), accumulators are `i32`, weights are `i8` in `[M, C, R, S]`.

use crate::quant::Requantizer;
use crate::tensor::{ConvShape, Tensor};
use crate::NnError;
use serde::{Deserialize, Serialize};

/// Pooling variants the auxiliary phase supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PoolKind {
    /// Maximum pooling with square window `k` and stride `k`.
    Max {
        /// Window size and stride.
        k: usize,
    },
    /// Global average pooling down to 1×1.
    GlobalAvg,
}

/// A convolution layer with its fused auxiliary functions — the paper's
/// "mixed layer" (§4.1): CONV plus bias, optional residual add, batch-norm
/// (folded into the requantizer), ReLU, optional pooling, requantization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvLayer {
    /// Geometry of the convolution.
    pub shape: ConvShape,
    /// Weights `[M, C, R, S]`, 8-bit.
    pub weights: Tensor<i8>,
    /// Per-filter bias added to the accumulator.
    pub bias: Vec<i32>,
    /// Integer-only requantization back to i8.
    pub requant: Requantizer,
    /// Apply ReLU before requantization.
    pub relu: bool,
    /// Optional pooling applied after requantization.
    pub pool: Option<PoolKind>,
}

impl ConvLayer {
    /// Validates the weight/bias shapes against the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] on any inconsistency.
    pub fn validate(&self) -> Result<(), NnError> {
        let s = &self.shape;
        let expect = [s.out_channels, s.in_channels, s.kernel_h, s.kernel_w];
        if self.weights.shape() != expect {
            return Err(NnError::BadInput {
                layer: "conv".into(),
                reason: format!(
                    "weights {:?} do not match geometry {:?}",
                    self.weights.shape(),
                    expect
                ),
            });
        }
        if self.bias.len() != s.out_channels {
            return Err(NnError::BadInput {
                layer: "conv".into(),
                reason: format!(
                    "bias length {} != out_channels {}",
                    self.bias.len(),
                    s.out_channels
                ),
            });
        }
        Ok(())
    }
}

/// A fully connected layer with fused auxiliaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearLayer {
    /// Weights `[out, in]`, 8-bit.
    pub weights: Tensor<i8>,
    /// Per-output bias.
    pub bias: Vec<i32>,
    /// Integer-only requantization back to i8.
    pub requant: Requantizer,
    /// Apply ReLU before requantization.
    pub relu: bool,
}

impl LinearLayer {
    /// Output feature count.
    #[must_use]
    pub fn out_features(&self) -> usize {
        self.weights.shape()[0]
    }

    /// Input feature count.
    #[must_use]
    pub fn in_features(&self) -> usize {
        self.weights.shape()[1]
    }
}

/// Raw convolution: `i8 × i8 → i32` accumulation with zero padding.
///
/// Input `[C, H, W]`, output `[M, OH, OW]`.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] if the input rank or channel count is wrong.
pub fn conv2d_i8(input: &Tensor<i8>, layer: &ConvLayer) -> Result<Tensor<i32>, NnError> {
    layer.validate()?;
    let s = &layer.shape;
    if input.shape().len() != 3 || input.shape()[0] != s.in_channels {
        return Err(NnError::BadInput {
            layer: "conv".into(),
            reason: format!(
                "input {:?} incompatible with {} input channels",
                input.shape(),
                s.in_channels
            ),
        });
    }
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let (oh, ow) = s.output_hw(h, w);
    let mut out = Tensor::<i32>::zeros(&[s.out_channels, oh, ow]);
    let in_data = input.data();
    let w_data = layer.weights.data();
    let pad = s.padding as isize;
    for m in 0..s.out_channels {
        let bias = layer.bias[m];
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = bias;
                let iy0 = (oy * s.stride) as isize - pad;
                let ix0 = (ox * s.stride) as isize - pad;
                for ch in 0..c {
                    let in_base = ch * h * w;
                    let w_base = (m * c + ch) * s.kernel_h * s.kernel_w;
                    for ky in 0..s.kernel_h {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..s.kernel_w {
                            let ix = ix0 + kx as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let iv = in_data[in_base + iy as usize * w + ix as usize] as i32;
                            let wv = w_data[w_base + ky * s.kernel_w + kx] as i32;
                            acc += iv * wv;
                        }
                    }
                }
                out.set(&[m, oy, ox], acc);
            }
        }
    }
    Ok(out)
}

/// Raw fully-connected layer: `i8 × i8 → i32`.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] if the input length mismatches.
pub fn linear_i8(input: &Tensor<i8>, layer: &LinearLayer) -> Result<Tensor<i32>, NnError> {
    let (out_f, in_f) = (layer.out_features(), layer.in_features());
    if input.len() != in_f {
        return Err(NnError::BadInput {
            layer: "linear".into(),
            reason: format!("input length {} != in_features {in_f}", input.len()),
        });
    }
    let mut out = Tensor::<i32>::zeros(&[out_f]);
    let x = input.data();
    let w = layer.weights.data();
    for o in 0..out_f {
        let mut acc = layer.bias[o];
        let row = &w[o * in_f..(o + 1) * in_f];
        for (xi, wi) in x.iter().zip(row) {
            acc += *xi as i32 * *wi as i32;
        }
        out.set(&[o], acc);
    }
    Ok(out)
}

/// Element-wise ReLU on an i32 accumulator tensor.
#[must_use]
pub fn relu_i32(t: &Tensor<i32>) -> Tensor<i32> {
    t.map(|x| x.max(0))
}

/// Saturating element-wise add of two i8 tensors (residual connection).
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] on differing shapes.
pub fn add_i8(a: &Tensor<i8>, b: &Tensor<i8>) -> Result<Tensor<i8>, NnError> {
    if a.shape() != b.shape() {
        return Err(NnError::ShapeMismatch {
            expected: a.shape().to_vec(),
            got: b.shape().to_vec(),
        });
    }
    let data = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| (x as i16 + y as i16).clamp(-128, 127) as i8)
        .collect();
    Tensor::from_vec(a.shape(), data)
}

/// Requantizes an i32 accumulator tensor to i8.
#[must_use]
pub fn requantize(t: &Tensor<i32>, r: &Requantizer) -> Tensor<i8> {
    t.map(|x| r.apply(x))
}

/// Max pooling with window `k`, stride `k`, on a `[C, H, W]` i8 tensor.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] if the spatial dims are not divisible by `k`.
pub fn maxpool_i8(input: &Tensor<i8>, k: usize) -> Result<Tensor<i8>, NnError> {
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    if h % k != 0 || w % k != 0 {
        return Err(NnError::BadInput {
            layer: "maxpool".into(),
            reason: format!("spatial {h}x{w} not divisible by window {k}"),
        });
    }
    let (oh, ow) = (h / k, w / k);
    let mut out = Tensor::<i8>::filled(&[c, oh, ow], i8::MIN);
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut m = i8::MIN;
                for ky in 0..k {
                    for kx in 0..k {
                        m = m.max(input.get(&[ch, oy * k + ky, ox * k + kx]));
                    }
                }
                out.set(&[ch, oy, ox], m);
            }
        }
    }
    Ok(out)
}

/// Global average pooling: `[C, H, W] → [C]` (rounding to nearest).
#[must_use]
pub fn global_avgpool_i8(input: &Tensor<i8>) -> Tensor<i8> {
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let area = (h * w) as i32;
    let mut out = Tensor::<i8>::zeros(&[c]);
    for ch in 0..c {
        let mut sum = 0i32;
        for y in 0..h {
            for x in 0..w {
                sum += input.get(&[ch, y, x]) as i32;
            }
        }
        let avg = (sum + area.div_euclid(2) * sum.signum()) / area;
        out.set(&[ch], avg.clamp(-128, 127) as i8);
    }
    out
}

/// A 256-entry i8→i8 lookup table — how a lightweight core implements
/// non-linear activations like Sigmoid or Tanh (§2.1 lists them among the
/// auxiliary functions; a LUT in the 4 KB data memory costs one load per
/// value).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivationLut {
    table: Vec<i8>,
}

impl ActivationLut {
    /// Builds a LUT from any scalar function over the i8 domain.
    #[must_use]
    pub fn from_fn(f: impl Fn(i8) -> i8) -> Self {
        ActivationLut {
            table: (-128..=127).map(|v| f(v as i8)).collect(),
        }
    }

    /// A sigmoid quantized as `round(127 · σ(x · scale))`, mapping the i8
    /// domain onto `[0, 127]`.
    #[must_use]
    pub fn sigmoid(scale: f32) -> Self {
        Self::from_fn(|q| {
            let x = q as f32 * scale;
            let s = 1.0 / (1.0 + (-x).exp());
            (s * 127.0).round() as i8
        })
    }

    /// Applies the LUT to one value.
    #[must_use]
    pub fn apply(&self, q: i8) -> i8 {
        self.table[(q as i16 + 128) as usize]
    }

    /// Applies the LUT element-wise.
    #[must_use]
    pub fn apply_tensor(&self, t: &Tensor<i8>) -> Tensor<i8> {
        t.map(|q| self.apply(q))
    }

    /// The raw 256-byte table, as the core would keep it in data memory.
    #[must_use]
    pub fn table(&self) -> &[i8] {
        &self.table
    }
}

/// Per-channel integer batch normalization on an i32 accumulator:
/// `y = (x * mul) >> shift + add` — the folded linear transform of §2.1.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] if parameter lengths differ from the
/// channel count.
pub fn batchnorm_i32(
    t: &Tensor<i32>,
    mul: &[i32],
    shift: u32,
    add: &[i32],
) -> Result<Tensor<i32>, NnError> {
    let c = t.shape()[0];
    if mul.len() != c || add.len() != c {
        return Err(NnError::BadInput {
            layer: "batchnorm".into(),
            reason: format!("expected {c} per-channel parameters"),
        });
    }
    let per_channel: usize = t.shape()[1..].iter().product();
    let mut out = t.clone();
    for ch in 0..c {
        for i in 0..per_channel {
            let idx = ch * per_channel + i;
            let x = out.data()[idx] as i64;
            let y = ((x * mul[ch] as i64) >> shift) + add[ch] as i64;
            out.data_mut()[idx] = y.clamp(i32::MIN as i64, i32::MAX as i64) as i32;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::Requantizer;
    use proptest::prelude::*;

    fn unit_conv(m: usize, c: usize, k: usize, stride: usize, padding: usize) -> ConvLayer {
        ConvLayer {
            shape: ConvShape {
                out_channels: m,
                in_channels: c,
                kernel_h: k,
                kernel_w: k,
                stride,
                padding,
            },
            weights: Tensor::filled(&[m, c, k, k], 1),
            bias: vec![0; m],
            requant: Requantizer::from_real_multiplier(0.5, 0),
            relu: false,
            pool: None,
        }
    }

    #[test]
    fn conv_identity_1x1() {
        let mut l = unit_conv(1, 1, 1, 1, 0);
        l.weights = Tensor::filled(&[1, 1, 1, 1], 2);
        let input = Tensor::from_fn(&[1, 3, 3], |i| (i[1] * 3 + i[2]) as i8);
        let out = conv2d_i8(&input, &l).unwrap();
        for y in 0..3 {
            for x in 0..3 {
                assert_eq!(out.get(&[0, y, x]), 2 * (y * 3 + x) as i32);
            }
        }
    }

    #[test]
    fn conv_sum_window_3x3() {
        let l = unit_conv(1, 1, 3, 1, 0);
        let input = Tensor::filled(&[1, 5, 5], 1i8);
        let out = conv2d_i8(&input, &l).unwrap();
        assert_eq!(out.shape(), &[1, 3, 3]);
        assert!(out.data().iter().all(|&x| x == 9));
    }

    #[test]
    fn conv_padding_shrinks_border_sums() {
        let l = unit_conv(1, 1, 3, 1, 1);
        let input = Tensor::filled(&[1, 4, 4], 1i8);
        let out = conv2d_i8(&input, &l).unwrap();
        assert_eq!(out.shape(), &[1, 4, 4]);
        assert_eq!(out.get(&[0, 0, 0]), 4); // corner sees 2x2
        assert_eq!(out.get(&[0, 0, 1]), 6); // edge sees 2x3
        assert_eq!(out.get(&[0, 1, 1]), 9); // interior sees 3x3
    }

    #[test]
    fn conv_stride_two() {
        let l = unit_conv(1, 1, 1, 2, 0);
        let input = Tensor::from_fn(&[1, 4, 4], |i| (i[1] * 4 + i[2]) as i8);
        let out = conv2d_i8(&input, &l).unwrap();
        assert_eq!(out.shape(), &[1, 2, 2]);
        assert_eq!(out.get(&[0, 0, 0]), 0);
        assert_eq!(out.get(&[0, 0, 1]), 2);
        assert_eq!(out.get(&[0, 1, 0]), 8);
        assert_eq!(out.get(&[0, 1, 1]), 10);
    }

    #[test]
    fn conv_accumulates_channels_and_bias() {
        let mut l = unit_conv(2, 3, 1, 1, 0);
        l.bias = vec![100, -100];
        let input = Tensor::filled(&[3, 2, 2], 5i8);
        let out = conv2d_i8(&input, &l).unwrap();
        assert!(out
            .data()
            .iter()
            .take(4)
            .all(|&x| x == 100 + 3 * 5));
        assert!(out.data().iter().skip(4).all(|&x| x == -100 + 3 * 5));
    }

    #[test]
    fn conv_rejects_bad_channel_count() {
        let l = unit_conv(1, 2, 1, 1, 0);
        let input = Tensor::filled(&[3, 2, 2], 0i8);
        assert!(conv2d_i8(&input, &l).is_err());
    }

    #[test]
    fn conv_validate_catches_weight_shape() {
        let mut l = unit_conv(2, 2, 3, 1, 1);
        l.weights = Tensor::filled(&[2, 2, 2, 2], 1);
        assert!(l.validate().is_err());
        l.weights = Tensor::filled(&[2, 2, 3, 3], 1);
        l.bias = vec![0];
        assert!(l.validate().is_err());
    }

    #[test]
    fn linear_matches_reference() {
        let l = LinearLayer {
            weights: Tensor::from_vec(&[2, 3], vec![1, 2, 3, -1, -2, -3]).unwrap(),
            bias: vec![10, 20],
            requant: Requantizer::from_real_multiplier(0.5, 0),
            relu: false,
        };
        let x = Tensor::from_vec(&[3], vec![1i8, 1, 1]).unwrap();
        let out = linear_i8(&x, &l).unwrap();
        assert_eq!(out.data(), &[16, 14]);
    }

    #[test]
    fn linear_rejects_wrong_len() {
        let l = LinearLayer {
            weights: Tensor::filled(&[2, 3], 1),
            bias: vec![0, 0],
            requant: Requantizer::from_real_multiplier(0.5, 0),
            relu: false,
        };
        assert!(linear_i8(&Tensor::filled(&[4], 1i8), &l).is_err());
    }

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::from_vec(&[4], vec![-5, 0, 5, -1]).unwrap();
        assert_eq!(relu_i32(&t).data(), &[0, 0, 5, 0]);
    }

    #[test]
    fn add_saturates() {
        let a = Tensor::from_vec(&[3], vec![100i8, -100, 1]).unwrap();
        let b = Tensor::from_vec(&[3], vec![100i8, -100, 2]).unwrap();
        assert_eq!(add_i8(&a, &b).unwrap().data(), &[127, -128, 3]);
    }

    #[test]
    fn add_rejects_shape_mismatch() {
        let a = Tensor::filled(&[3], 0i8);
        let b = Tensor::filled(&[4], 0i8);
        assert!(add_i8(&a, &b).is_err());
    }

    #[test]
    fn maxpool_takes_window_max() {
        let input = Tensor::from_fn(&[1, 4, 4], |i| (i[1] * 4 + i[2]) as i8);
        let out = maxpool_i8(&input, 2).unwrap();
        assert_eq!(out.shape(), &[1, 2, 2]);
        assert_eq!(out.get(&[0, 0, 0]), 5);
        assert_eq!(out.get(&[0, 1, 1]), 15);
    }

    #[test]
    fn maxpool_rejects_indivisible() {
        let input = Tensor::filled(&[1, 5, 5], 0i8);
        assert!(maxpool_i8(&input, 2).is_err());
    }

    #[test]
    fn global_avgpool_rounds() {
        let input = Tensor::from_vec(&[1, 2, 2], vec![1i8, 2, 3, 4]).unwrap();
        // mean 2.5 → rounds away from zero to 3
        assert_eq!(global_avgpool_i8(&input).data(), &[3]);
        let neg = Tensor::from_vec(&[1, 2, 2], vec![-1i8, -2, -3, -4]).unwrap();
        assert_eq!(global_avgpool_i8(&neg).data(), &[-3]);
    }

    #[test]
    fn batchnorm_linear_transform() {
        let t = Tensor::from_vec(&[2, 2], vec![8, 16, 8, 16]).unwrap();
        let out = batchnorm_i32(&t, &[2, 4], 2, &[1, -1]).unwrap();
        assert_eq!(out.data(), &[5, 9, 7, 15]);
    }

    #[test]
    fn requantize_applies_elementwise() {
        let t = Tensor::from_vec(&[3], vec![100, 200, -300]).unwrap();
        let r = Requantizer::from_real_multiplier(0.5, 0);
        assert_eq!(requantize(&t, &r).data(), &[50, 100, -128]);
    }

    #[test]
    fn sigmoid_lut_is_monotone_and_bounded() {
        let lut = ActivationLut::sigmoid(0.05);
        let mut prev = i8::MIN;
        for q in -128..=127i16 {
            let v = lut.apply(q as i8);
            assert!((0..=127).contains(&v), "σ out of range: {v}");
            assert!(v >= prev, "σ must be monotone");
            prev = v;
        }
        assert_eq!(lut.apply(0), 64, "σ(0) = 0.5 → 63.5 rounds to 64");
    }

    #[test]
    fn lut_tensor_application() {
        let lut = ActivationLut::from_fn(|q| q.saturating_neg());
        let t = Tensor::from_vec(&[3], vec![-128i8, 0, 5]).unwrap();
        assert_eq!(lut.apply_tensor(&t).data(), &[127, 0, -5]);
        assert_eq!(lut.table().len(), 256);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_conv_1x1_is_channel_mix(
            input in proptest::collection::vec(any::<i8>(), 3 * 4 * 4),
            weights in proptest::collection::vec(any::<i8>(), 2 * 3),
        ) {
            let l = ConvLayer {
                shape: ConvShape { out_channels: 2, in_channels: 3, kernel_h: 1, kernel_w: 1, stride: 1, padding: 0 },
                weights: Tensor::from_vec(&[2, 3, 1, 1], weights.clone()).unwrap(),
                bias: vec![0, 0],
                requant: Requantizer::from_real_multiplier(0.5, 0),
                relu: false,
                pool: None,
            };
            let x = Tensor::from_vec(&[3, 4, 4], input.clone()).unwrap();
            let out = conv2d_i8(&x, &l).unwrap();
            for y in 0..4 {
                for xx in 0..4 {
                    for m in 0..2 {
                        let expect: i32 = (0..3)
                            .map(|c| input[c * 16 + y * 4 + xx] as i32 * weights[m * 3 + c] as i32)
                            .sum();
                        prop_assert_eq!(out.get(&[m, y, xx]), expect);
                    }
                }
            }
        }

        #[test]
        fn prop_linear_matches_dot(
            x in proptest::collection::vec(any::<i8>(), 16),
            w in proptest::collection::vec(any::<i8>(), 16),
        ) {
            let l = LinearLayer {
                weights: Tensor::from_vec(&[1, 16], w.clone()).unwrap(),
                bias: vec![0],
                requant: Requantizer::from_real_multiplier(0.5, 0),
                relu: false,
            };
            let xt = Tensor::from_vec(&[16], x.clone()).unwrap();
            let out = linear_i8(&xt, &l).unwrap();
            let expect: i32 = x.iter().zip(&w).map(|(&a, &b)| a as i32 * b as i32).sum();
            prop_assert_eq!(out.data()[0], expect);
        }
    }
}
