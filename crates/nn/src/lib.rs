#![warn(missing_docs)]

//! # maicc-nn — DNN substrate: tensors, quantized layers, graphs, ResNet-18
//!
//! MAICC's evaluation runs the inference of 8-bit-quantized ResNet-18
//! (He et al. 2016; quantization per Jacob et al. 2018). This crate provides
//! everything that workload needs, independent of any hardware model:
//!
//! * [`tensor`] — dense n-dimensional tensors over `f32`, `i8`, `i32`;
//! * [`quant`] — per-tensor affine quantization (scale + zero-point) and the
//!   integer-only requantization multiplier;
//! * [`layer`] — CONV / FC computation layers and the auxiliary-function
//!   layers (§2.1): ReLU, max/avg pooling, batch normalization, quantize;
//! * [`graph`] — a layer DAG with residual (shortcut) edges and a golden
//!   reference executor, used to validate every hardware simulation;
//! * [`im2col`] — the GEMM-lowered convolution path the CPU/GPU baselines
//!   execute, differentially tested against the direct path;
//! * [`resnet`] — the 20-row ResNet-18 layer table of the paper's Table 6.
//!
//! ## Example
//!
//! ```
//! use maicc_nn::resnet::resnet18;
//! use maicc_nn::tensor::Tensor;
//!
//! let net = resnet18(1000);
//! assert_eq!(net.layers().len(), 20);
//! let input = Tensor::<i8>::filled(&[64, 8, 8], 1);
//! let logits = net.infer(&input).unwrap();
//! assert_eq!(logits.shape(), &[1000]);
//! ```

pub mod graph;
pub mod im2col;
pub mod layer;
pub mod quant;
pub mod resnet;
pub mod tensor;

mod error;

pub use error::NnError;
