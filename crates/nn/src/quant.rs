//! Per-tensor affine quantization (Jacob et al., CVPR 2018).
//!
//! The paper's benchmark is ResNet-18 with 8-bit quantization (§5). Real
//! values map to 8-bit integers as `r ≈ scale · (q − zero_point)`. A layer's
//! i32 accumulator is brought back to i8 with the **integer-only
//! requantization multiplier**: the combined scale `s_in·s_w/s_out` is
//! represented as a fixed-point multiplier `m ∈ [2³⁰, 2³¹)` and a right
//! shift, exactly the arithmetic a RISC-V core performs in the auxiliary
//! phase of a mixed layer.

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Per-tensor affine quantization parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    /// Real-valued step size (> 0).
    pub scale: f32,
    /// Integer the real value 0.0 maps to.
    pub zero_point: i32,
}

impl QuantParams {
    /// Derives parameters covering the real interval `[min, max]`
    /// (widened to include 0, as the scheme requires).
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or either bound is not finite.
    #[must_use]
    pub fn from_range(min: f32, max: f32) -> Self {
        assert!(min.is_finite() && max.is_finite() && min <= max);
        let min = min.min(0.0);
        let max = max.max(0.0);
        let scale = ((max - min) / 255.0).max(f32::EPSILON);
        let zero_point = (-128.0 - min / scale).round().clamp(-128.0, 127.0) as i32;
        QuantParams { scale, zero_point }
    }

    /// Quantizes one real value to i8.
    #[must_use]
    pub fn quantize(&self, r: f32) -> i8 {
        ((r / self.scale).round() as i32 + self.zero_point).clamp(-128, 127) as i8
    }

    /// Dequantizes one i8 back to a real value.
    #[must_use]
    pub fn dequantize(&self, q: i8) -> f32 {
        self.scale * (q as i32 - self.zero_point) as f32
    }

    /// Quantizes a whole `f32` tensor.
    #[must_use]
    pub fn quantize_tensor(&self, t: &Tensor<f32>) -> Tensor<i8> {
        t.map(|r| self.quantize(r))
    }

    /// Dequantizes a whole `i8` tensor.
    #[must_use]
    pub fn dequantize_tensor(&self, t: &Tensor<i8>) -> Tensor<f32> {
        t.map(|q| self.dequantize(q))
    }
}

impl Default for QuantParams {
    fn default() -> Self {
        QuantParams {
            scale: 1.0,
            zero_point: 0,
        }
    }
}

/// Integer-only requantization of an i32 accumulator to i8.
///
/// Represents a real multiplier `m0 · 2^(−shift)` with `m0` a 32-bit
/// fixed-point value in `[2³⁰, 2³¹)`, applied by a rounding doubling
/// high-multiply followed by a rounding right shift — the gemmlowp
/// formulation that integer-only inference uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Requantizer {
    /// Fixed-point multiplier in `[2³⁰, 2³¹)` (or 0 for a zero multiplier).
    pub multiplier: i32,
    /// Right shift applied after the high multiply (≥ 0).
    pub shift: u32,
    /// Output zero point added at the end.
    pub zero_point: i32,
}

impl Requantizer {
    /// Builds a requantizer for the real multiplier `m` (must satisfy
    /// `0 <= m < 1`, which holds for all practical scale ratios).
    ///
    /// # Panics
    ///
    /// Panics if `m` is negative, NaN, or ≥ 1.
    #[must_use]
    pub fn from_real_multiplier(m: f64, zero_point: i32) -> Self {
        assert!((0.0..1.0).contains(&m), "real multiplier out of [0,1): {m}");
        if m == 0.0 {
            return Requantizer {
                multiplier: 0,
                shift: 0,
                zero_point,
            };
        }
        let mut shift = 0u32;
        let mut mm = m;
        while mm < 0.5 {
            mm *= 2.0;
            shift += 1;
        }
        let q = (mm * (1i64 << 31) as f64).round() as i64;
        let (q, shift) = if q == (1i64 << 31) {
            (1i64 << 30, shift.saturating_sub(1))
        } else {
            (q, shift)
        };
        Requantizer {
            multiplier: q as i32,
            shift,
            zero_point,
        }
    }

    /// Saturating rounding doubling high multiply (gemmlowp
    /// `SaturatingRoundingDoublingHighMul`).
    #[must_use]
    fn sat_rounding_doubling_high_mul(a: i32, b: i32) -> i32 {
        if a == i32::MIN && b == i32::MIN {
            return i32::MAX;
        }
        let ab = a as i64 * b as i64;
        let nudge = if ab >= 0 { 1i64 << 30 } else { 1 - (1i64 << 30) };
        // gemmlowp divides (truncating toward zero), it does not shift
        ((ab + nudge) / (1i64 << 31)) as i32
    }

    /// Rounding right shift.
    #[must_use]
    fn rounding_shift_right(x: i32, shift: u32) -> i32 {
        if shift == 0 {
            return x;
        }
        let mask = (1i64 << shift) - 1;
        let remainder = x as i64 & mask;
        let threshold = (mask >> 1) + i64::from(x < 0);
        (x >> shift) + i32::from(remainder > threshold)
    }

    /// Requantizes one accumulator value to i8 with saturation.
    #[must_use]
    pub fn apply(&self, acc: i32) -> i8 {
        let x = Self::sat_rounding_doubling_high_mul(acc, self.multiplier);
        let x = Self::rounding_shift_right(x, self.shift);
        (x + self.zero_point).clamp(-128, 127) as i8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn range_includes_zero() {
        let q = QuantParams::from_range(2.0, 10.0);
        // min widened to 0 → zero maps inside the i8 range
        let z = q.quantize(0.0);
        assert!((-128..=127).contains(&(z as i32)));
        assert!(q.dequantize(z).abs() < q.scale);
    }

    #[test]
    fn quantize_dequantize_error_below_scale() {
        let q = QuantParams::from_range(-4.0, 4.0);
        for i in -40..=40 {
            let r = i as f32 / 10.0;
            let err = (q.dequantize(q.quantize(r)) - r).abs();
            assert!(err <= q.scale * 0.5 + 1e-6, "r={r} err={err}");
        }
    }

    #[test]
    fn quantize_saturates() {
        let q = QuantParams::from_range(-1.0, 1.0);
        assert_eq!(q.quantize(100.0), 127);
        assert_eq!(q.quantize(-100.0), -128);
    }

    #[test]
    fn tensor_roundtrip() {
        let t = Tensor::from_vec(&[4], vec![-1.0f32, 0.0, 0.5, 1.0]).unwrap();
        let q = QuantParams::from_range(-1.0, 1.0);
        let back = q.dequantize_tensor(&q.quantize_tensor(&t));
        for (a, b) in t.data().iter().zip(back.data()) {
            assert!((a - b).abs() <= q.scale);
        }
    }

    #[test]
    fn requantizer_matches_float_reference() {
        let m = 0.0023;
        let r = Requantizer::from_real_multiplier(m, 0);
        for acc in [-100_000i32, -1234, -1, 0, 1, 999, 54_321, 1_000_000] {
            let expect = ((acc as f64 * m).round() as i32).clamp(-128, 127) as i8;
            let got = r.apply(acc);
            assert!(
                (got as i32 - expect as i32).abs() <= 1,
                "acc={acc} got={got} expect={expect}"
            );
        }
    }

    #[test]
    fn requantizer_zero_multiplier() {
        let r = Requantizer::from_real_multiplier(0.0, 5);
        assert_eq!(r.apply(123_456), 5);
    }

    #[test]
    fn requantizer_zero_point_offsets() {
        let r = Requantizer::from_real_multiplier(0.5, 10);
        assert_eq!(r.apply(4), 12);
    }

    proptest! {
        #[test]
        fn prop_requantizer_close_to_float(
            m in 1e-6f64..0.99,
            acc in -1_000_000i32..1_000_000,
        ) {
            let r = Requantizer::from_real_multiplier(m, 0);
            let expect = (acc as f64 * m).round().clamp(-128.0, 127.0) as i32;
            let got = r.apply(acc) as i32;
            prop_assert!((got - expect).abs() <= 1, "m={} acc={} got={} expect={}", m, acc, got, expect);
        }

        #[test]
        fn prop_quantize_monotone(a in -100.0f32..100.0, b in -100.0f32..100.0) {
            let q = QuantParams::from_range(-100.0, 100.0);
            if a <= b {
                prop_assert!(q.quantize(a) <= q.quantize(b));
            }
        }
    }
}
