//! ResNet-18 exactly as the paper's Table 6 lists it, plus small companion
//! networks for multi-DNN scenarios.
//!
//! The evaluation benchmarks ResNet-18 (He et al. 2016) with 8-bit
//! quantization, batch 1, **excluding the first layer** ("because it has
//! very low parallelism with only 3 ifmap channels", §5). What remains is
//! the 20-row table the paper reports: four stages of four 3×3 convolutions
//! (64/128/256/512 channels at 56/28/14/7 spatial resolution), three 1×1
//! projection shortcuts at the stage boundaries, and the final linear layer
//! fed by global average pooling (fused into `conv4_4` as an auxiliary).
//!
//! Weights are synthetic but **deterministic** — the evaluation metrics are
//! latency and energy, which depend only on shapes, while correctness of
//! every hardware model is judged against golden inference on these exact
//! weights.

use crate::graph::{Network, Node, NodeInput, NodeOp};
use crate::layer::{ConvLayer, LinearLayer, PoolKind};
use crate::quant::Requantizer;
use crate::tensor::{ConvShape, Tensor};

/// Deterministic synthetic weight at a 4-D weight coordinate: small signed
/// values in `[-3, 3]` with no shift bias.
#[must_use]
pub fn synthetic_weight(m: usize, c: usize, ky: usize, kx: usize) -> i8 {
    let h = m
        .wrapping_mul(31)
        .wrapping_add(c.wrapping_mul(17))
        .wrapping_add(ky.wrapping_mul(5))
        .wrapping_add(kx.wrapping_mul(3));
    ((h % 7) as i8) - 3
}

/// Deterministic synthetic bias for filter `m`.
#[must_use]
pub fn synthetic_bias(m: usize) -> i32 {
    (((m * 13) % 9) as i32 - 4) * 8
}

#[allow(clippy::too_many_arguments)] // mirrors the paper's layer tuple
fn conv(
    name: &str,
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    relu: bool,
    input: NodeInput,
    residual: Option<NodeInput>,
    pool: Option<PoolKind>,
) -> Node {
    let weights = Tensor::from_fn(&[out_c, in_c, k, k], |i| {
        synthetic_weight(i[0], i[1], i[2], i[3])
    });
    let bias: Vec<i32> = (0..out_c).map(synthetic_bias).collect();
    // keep activation variance roughly unit through the stack: accumulator
    // noise grows with the square root of the receptive volume, so the
    // requantizer divides that back out
    let multiplier = (0.5 / ((in_c * k * k) as f64).sqrt()).min(0.99);
    Node {
        name: name.into(),
        op: NodeOp::Conv(ConvLayer {
            shape: ConvShape {
                out_channels: out_c,
                in_channels: in_c,
                kernel_h: k,
                kernel_w: k,
                stride,
                padding: k / 2,
            },
            weights,
            bias,
            requant: Requantizer::from_real_multiplier(multiplier, 0),
            relu,
            pool,
        }),
        input,
        residual,
    }
}

/// Builds the paper's 20-layer ResNet-18 (Table 6 rows 1–20).
///
/// The external input is the `[64, H, W]` tensor the (excluded) stem would
/// have produced — `[64, 56, 56]` for ImageNet-sized inputs, though the
/// graph adapts to any spatial size that survives three stride-2 stages.
///
/// # Example
///
/// ```
/// let net = maicc_nn::resnet::resnet18(1000);
/// let names: Vec<&str> = net.layers().iter().map(|l| l.name.as_str()).collect();
/// assert_eq!(names[0], "conv1_1");
/// assert_eq!(names[4], "shortcut1");
/// assert_eq!(names[19], "linear");
/// ```
#[must_use]
pub fn resnet18(num_classes: usize) -> Network {
    use NodeInput::{External, Node as N};
    let nodes = vec![
        // stage 1: 64 channels at 56×56
        conv("conv1_1", 64, 64, 3, 1, true, External, None, None),
        conv("conv1_2", 64, 64, 3, 1, true, N(0), Some(External), None),
        conv("conv1_3", 64, 64, 3, 1, true, N(1), None, None),
        conv("conv1_4", 64, 64, 3, 1, true, N(2), Some(N(1)), None),
        // stage 1→2 projection shortcut + stage 2: 128 channels at 28×28
        conv("shortcut1", 64, 128, 1, 2, false, N(3), None, None),
        conv("conv2_1", 64, 128, 3, 2, true, N(3), None, None),
        conv("conv2_2", 128, 128, 3, 1, true, N(5), Some(N(4)), None),
        conv("conv2_3", 128, 128, 3, 1, true, N(6), None, None),
        conv("conv2_4", 128, 128, 3, 1, true, N(7), Some(N(6)), None),
        // stage 2→3 shortcut + stage 3: 256 channels at 14×14
        conv("shortcut2", 128, 256, 1, 2, false, N(8), None, None),
        conv("conv3_1", 128, 256, 3, 2, true, N(8), None, None),
        conv("conv3_2", 256, 256, 3, 1, true, N(10), Some(N(9)), None),
        conv("conv3_3", 256, 256, 3, 1, true, N(11), None, None),
        conv("conv3_4", 256, 256, 3, 1, true, N(12), Some(N(11)), None),
        // stage 3→4 shortcut + stage 4: 512 channels at 7×7
        conv("shortcut3", 256, 512, 1, 2, false, N(13), None, None),
        conv("conv4_1", 256, 512, 3, 2, true, N(13), None, None),
        conv("conv4_2", 512, 512, 3, 1, true, N(15), Some(N(14)), None),
        conv("conv4_3", 512, 512, 3, 1, true, N(16), None, None),
        conv(
            "conv4_4",
            512,
            512,
            3,
            1,
            true,
            N(17),
            Some(N(16)),
            Some(PoolKind::GlobalAvg),
        ),
        // classifier
        Node {
            name: "linear".into(),
            op: NodeOp::Linear(LinearLayer {
                weights: Tensor::from_fn(&[num_classes, 512], |i| {
                    synthetic_weight(i[0], i[1], 0, 0)
                }),
                bias: (0..num_classes).map(synthetic_bias).collect(),
                requant: Requantizer::from_real_multiplier(0.5 / (512.0f64).sqrt(), 0),
                relu: false,
            }),
            input: N(18),
            residual: None,
        },
    ];
    Network::new("resnet18", nodes).expect("resnet18 graph is well-formed")
}

/// A small 5-layer CNN used as the *second* model in multi-DNN parallel
/// inference scenarios (§1 motivates autonomous-driving stacks running many
/// networks of different sizes side by side).
#[must_use]
pub fn tinynet(num_classes: usize) -> Network {
    use NodeInput::{External, Node as N};
    let nodes = vec![
        conv("t_conv1", 32, 32, 3, 1, true, External, None, None),
        conv("t_conv2", 32, 64, 3, 2, true, N(0), None, None),
        conv("t_conv3", 64, 64, 3, 1, true, N(1), Some(N(1)), None),
        conv(
            "t_conv4",
            64,
            128,
            3,
            2,
            true,
            N(2),
            None,
            Some(PoolKind::GlobalAvg),
        ),
        Node {
            name: "t_linear".into(),
            op: NodeOp::Linear(LinearLayer {
                weights: Tensor::from_fn(&[num_classes, 128], |i| {
                    synthetic_weight(i[0], i[1], 1, 1)
                }),
                bias: (0..num_classes).map(synthetic_bias).collect(),
                requant: Requantizer::from_real_multiplier(0.5 / (128.0f64).sqrt(), 0),
                relu: false,
            }),
            input: N(3),
            residual: None,
        },
    ];
    Network::new("tinynet", nodes).expect("tinynet graph is well-formed")
}

/// A VGG-11-style body (Simonyan & Zisserman 2014), starting — like
/// [`resnet18`] — from the post-stem `[64, H, W]` tensor: straight 3×3
/// convolutions with fused max-pooling at the stage boundaries and a
/// classifier head. Exercises pooling auxiliaries and very wide
/// (512-channel) layers without residual edges.
#[must_use]
pub fn vgg11(num_classes: usize) -> Network {
    use NodeInput::{External, Node as N};
    let pool = Some(PoolKind::Max { k: 2 });
    let nodes = vec![
        conv("v_conv1", 64, 128, 3, 1, true, External, None, pool),
        conv("v_conv2", 128, 256, 3, 1, true, N(0), None, None),
        conv("v_conv3", 256, 256, 3, 1, true, N(1), None, pool),
        conv("v_conv4", 256, 512, 3, 1, true, N(2), None, None),
        conv("v_conv5", 512, 512, 3, 1, true, N(3), None, pool),
        conv("v_conv6", 512, 512, 3, 1, true, N(4), None, None),
        conv(
            "v_conv7",
            512,
            512,
            3,
            1,
            true,
            N(5),
            None,
            Some(PoolKind::GlobalAvg),
        ),
        Node {
            name: "v_linear".into(),
            op: NodeOp::Linear(LinearLayer {
                weights: Tensor::from_fn(&[num_classes, 512], |i| {
                    synthetic_weight(i[0], i[1], 2, 1)
                }),
                bias: (0..num_classes).map(synthetic_bias).collect(),
                requant: Requantizer::from_real_multiplier(0.5 / (512.0f64).sqrt(), 0),
                relu: false,
            }),
            input: N(6),
            residual: None,
        },
    ];
    Network::new("vgg11", nodes).expect("vgg11 graph is well-formed")
}

/// A three-layer perceptron — the FC-only shape that LSTM cells and
/// Transformer blocks reduce to (§2.1: "they are essentially composed of
/// fully connected layers and the auxiliary functions").
#[must_use]
pub fn mlp(inputs: usize, hidden: usize, outputs: usize) -> Network {
    use NodeInput::{External, Node as N};
    let linear = |name: &str, in_f: usize, out_f: usize, relu: bool, input| Node {
        name: name.into(),
        op: NodeOp::Linear(LinearLayer {
            weights: Tensor::from_fn(&[out_f, in_f], |i| synthetic_weight(i[0], i[1], 0, 1)),
            bias: (0..out_f).map(synthetic_bias).collect(),
            requant: Requantizer::from_real_multiplier(
                (0.5 / (in_f as f64).sqrt()).min(0.99),
                0,
            ),
            relu,
        }),
        input,
        residual: None,
    };
    let nodes = vec![
        linear("fc1", inputs, hidden, true, External),
        linear("fc2", hidden, hidden, true, N(0)),
        linear("fc3", hidden, outputs, false, N(1)),
    ];
    Network::new("mlp", nodes).expect("mlp graph is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn twenty_rows_matching_table6() {
        let net = resnet18(1000);
        let names: Vec<&str> = net.layers().iter().map(|l| l.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "conv1_1", "conv1_2", "conv1_3", "conv1_4", "shortcut1", "conv2_1", "conv2_2",
                "conv2_3", "conv2_4", "shortcut2", "conv3_1", "conv3_2", "conv3_3", "conv3_4",
                "shortcut3", "conv4_1", "conv4_2", "conv4_3", "conv4_4", "linear",
            ]
        );
    }

    #[test]
    fn shapes_match_imagenet_resnet18() {
        let net = resnet18(1000);
        let shapes = net.shapes([64, 56, 56]).unwrap();
        // stage resolutions: 56 → 28 → 14 → 7
        assert_eq!((shapes[0].in_h, shapes[0].out_h), (56, 56));
        assert_eq!((shapes[5].in_h, shapes[5].out_h), (56, 28));
        assert_eq!((shapes[10].in_h, shapes[10].out_h), (28, 14));
        assert_eq!((shapes[15].in_h, shapes[15].out_h), (14, 7));
        // channel progression
        assert_eq!(shapes[0].out_c, 64);
        assert_eq!(shapes[8].out_c, 128);
        assert_eq!(shapes[13].out_c, 256);
        assert_eq!(shapes[18].out_c, 512);
        assert!(shapes[19].is_linear);
        assert_eq!(shapes[19].out_c, 1000);
    }

    #[test]
    fn total_macs_close_to_published_resnet18() {
        // ResNet-18 (without stem/fc stem) is ~1.7 GMACs at 224×224 input;
        // our 20 rows at 56×56 post-stem should land in that band.
        let net = resnet18(1000);
        let macs = net.total_macs([64, 56, 56]).unwrap();
        assert!(macs > 1_400_000_000, "{macs}");
        assert!(macs < 2_000_000_000, "{macs}");
    }

    #[test]
    fn small_input_inference_runs_end_to_end() {
        let net = resnet18(10);
        let input = Tensor::from_fn(&[64, 8, 8], |i| ((i[0] + i[1] * 3 + i[2] * 7) % 11) as i8 - 5);
        let out = net.infer(&input).unwrap();
        assert_eq!(out.shape(), &[10]);
        // deterministic: same input gives same logits
        let out2 = net.infer(&input).unwrap();
        assert_eq!(out, out2);
    }

    #[test]
    fn inference_is_input_sensitive() {
        let net = resnet18(10);
        let a = Tensor::filled(&[64, 8, 8], 3i8);
        let b = Tensor::filled(&[64, 8, 8], -3i8);
        assert_ne!(net.infer(&a).unwrap(), net.infer(&b).unwrap());
    }

    #[test]
    fn tinynet_runs() {
        let net = tinynet(5);
        let out = net.infer(&Tensor::filled(&[32, 16, 16], 1)).unwrap();
        assert_eq!(out.shape(), &[5]);
    }

    #[test]
    fn vgg11_shapes_and_inference() {
        let net = vgg11(10);
        let shapes = net.shapes([64, 32, 32]).unwrap();
        assert_eq!(shapes.len(), 8);
        // pooling halves the resolution at each stage boundary
        assert_eq!(shapes[1].in_h, 16);
        assert_eq!(shapes[3].in_h, 8);
        assert_eq!(shapes[5].in_h, 4);
        let out = net.infer(&Tensor::filled(&[64, 16, 16], 2)).unwrap();
        assert_eq!(out.shape(), &[10]);
    }

    #[test]
    fn mlp_runs_end_to_end() {
        let net = mlp(256, 128, 16);
        let input = Tensor::from_fn(&[256], |i| ((i[0] * 3) % 13) as i8 - 6);
        let out = net.infer(&input).unwrap();
        assert_eq!(out.shape(), &[16]);
        // determinism and sensitivity
        assert_eq!(out, net.infer(&input).unwrap());
        let other = net.infer(&Tensor::filled(&[256], 1)).unwrap();
        assert_ne!(out, other);
    }

    #[test]
    fn synthetic_weights_are_small_and_varied() {
        let mut seen = std::collections::HashSet::new();
        for m in 0..8 {
            for c in 0..8 {
                let w = synthetic_weight(m, c, 1, 2);
                assert!((-3..=3).contains(&w));
                seen.insert(w);
            }
        }
        assert!(seen.len() > 3, "weights should not be constant");
    }
}
