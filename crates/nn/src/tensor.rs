//! Dense n-dimensional tensors.
//!
//! Feature maps in the paper are 3-D `[C, H, W]` (channel-major, matching
//! Figure 1), convolution weights 4-D `[M, C, R, S]`, and vectors 1-D. The
//! [`Tensor`] type is generic over the element so the same structure serves
//! float reference models (`f32`), quantized activations (`i8`) and
//! accumulators (`i32`).

use crate::NnError;
use serde::{Deserialize, Serialize};

/// A dense row-major n-dimensional tensor.
///
/// # Example
///
/// ```
/// use maicc_nn::tensor::Tensor;
///
/// let mut t = Tensor::<i32>::zeros(&[2, 3]);
/// t.set(&[1, 2], 42);
/// assert_eq!(t.get(&[1, 2]), 42);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor<T> {
    shape: Vec<usize>,
    data: Vec<T>,
}

impl<T: Copy + Default> Tensor<T> {
    /// Creates a tensor of the given shape filled with `T::default()`.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty or any dimension is zero.
    #[must_use]
    pub fn zeros(shape: &[usize]) -> Self {
        Self::filled(shape, T::default())
    }

    /// Creates a tensor of the given shape filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty or any dimension is zero.
    #[must_use]
    pub fn filled(shape: &[usize], value: T) -> Self {
        assert!(!shape.is_empty(), "tensor must have at least one dimension");
        assert!(shape.iter().all(|&d| d > 0), "zero-sized dimension");
        let len = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; len],
        }
    }

    /// Builds a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `data.len()` does not equal the
    /// product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<T>) -> Result<Self, NnError> {
        let len: usize = shape.iter().product();
        if data.len() != len {
            return Err(NnError::ShapeMismatch {
                expected: shape.to_vec(),
                got: vec![data.len()],
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Builds a tensor by evaluating `f` at every multi-index.
    #[must_use]
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(&[usize]) -> T) -> Self {
        let mut t = Self::zeros(shape);
        let mut idx = vec![0usize; shape.len()];
        for flat in 0..t.data.len() {
            t.data[flat] = f(&idx);
            // odometer increment
            for d in (0..shape.len()).rev() {
                idx[d] += 1;
                if idx[d] < shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        t
    }

    /// The tensor's shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or is out of bounds.
    #[must_use]
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "rank mismatch");
        let mut off = 0;
        for (d, (&i, &dim)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(i < dim, "index {i} out of bounds for dim {d} ({dim})");
            off = off * dim + i;
        }
        off
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[must_use]
    pub fn get(&self, idx: &[usize]) -> T {
        self.data[self.offset(idx)]
    }

    /// Writes an element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn set(&mut self, idx: &[usize], value: T) {
        let off = self.offset(idx);
        self.data[off] = value;
    }

    /// The raw row-major data.
    #[must_use]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw row-major data.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor<T>, NnError> {
        Tensor::from_vec(shape, self.data.clone())
    }

    /// Applies `f` to every element, producing a new tensor of type `U`.
    #[must_use]
    pub fn map<U: Copy + Default>(&self, f: impl Fn(T) -> U) -> Tensor<U> {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }
}

impl<T: Copy + Default> Default for Tensor<T> {
    fn default() -> Self {
        Tensor::zeros(&[1])
    }
}

/// Convolution geometry shared by layers and mapping models.
///
/// Stride and padding apply symmetrically in both spatial dimensions,
/// matching every layer the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvShape {
    /// Number of output channels (filters), `M` in Figure 1.
    pub out_channels: usize,
    /// Number of input channels, `C`.
    pub in_channels: usize,
    /// Filter height, `R`.
    pub kernel_h: usize,
    /// Filter width, `S`.
    pub kernel_w: usize,
    /// Spatial stride.
    pub stride: usize,
    /// Symmetric zero padding.
    pub padding: usize,
}

impl ConvShape {
    /// Spatial output size for an `in_h × in_w` input.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    #[must_use]
    pub fn output_hw(&self, in_h: usize, in_w: usize) -> (usize, usize) {
        let eff_h = in_h + 2 * self.padding;
        let eff_w = in_w + 2 * self.padding;
        assert!(
            eff_h >= self.kernel_h && eff_w >= self.kernel_w,
            "kernel larger than padded input"
        );
        (
            (eff_h - self.kernel_h) / self.stride + 1,
            (eff_w - self.kernel_w) / self.stride + 1,
        )
    }

    /// Multiply-accumulate count for an `in_h × in_w` input.
    #[must_use]
    pub fn macs(&self, in_h: usize, in_w: usize) -> u64 {
        let (oh, ow) = self.output_hw(in_h, in_w);
        (oh * ow * self.out_channels * self.in_channels * self.kernel_h * self.kernel_w) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_len() {
        let t = Tensor::<i8>::zeros(&[4, 5, 6]);
        assert_eq!(t.len(), 120);
        assert!(t.data().iter().all(|&x| x == 0));
        assert!(!t.is_empty());
    }

    #[test]
    fn offset_row_major() {
        let t = Tensor::<i32>::zeros(&[2, 3, 4]);
        assert_eq!(t.offset(&[0, 0, 0]), 0);
        assert_eq!(t.offset(&[0, 0, 3]), 3);
        assert_eq!(t.offset(&[0, 1, 0]), 4);
        assert_eq!(t.offset(&[1, 2, 3]), 23);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_checks_bounds() {
        let t = Tensor::<i32>::zeros(&[2, 3]);
        let _ = t.offset(&[2, 0]);
    }

    #[test]
    fn from_vec_validates_len() {
        assert!(Tensor::from_vec(&[2, 2], vec![1i8; 3]).is_err());
        assert!(Tensor::from_vec(&[2, 2], vec![1i8; 4]).is_ok());
    }

    #[test]
    fn from_fn_visits_every_index() {
        let t = Tensor::<i32>::from_fn(&[3, 4], |idx| (idx[0] * 10 + idx[1]) as i32);
        assert_eq!(t.get(&[2, 3]), 23);
        assert_eq!(t.get(&[0, 0]), 0);
        assert_eq!(t.get(&[1, 2]), 12);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], (0..6).collect::<Vec<i32>>()).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.get(&[2, 1]), 5);
        assert!(t.reshape(&[7]).is_err());
    }

    #[test]
    fn map_changes_type() {
        let t = Tensor::from_vec(&[3], vec![-1i8, 0, 1]).unwrap();
        let u: Tensor<i32> = t.map(|x| x as i32 * 100);
        assert_eq!(u.data(), &[-100, 0, 100]);
    }

    #[test]
    fn conv_shape_output() {
        let cs = ConvShape {
            out_channels: 128,
            in_channels: 64,
            kernel_h: 3,
            kernel_w: 3,
            stride: 2,
            padding: 1,
        };
        assert_eq!(cs.output_hw(56, 56), (28, 28));
        let unit = ConvShape {
            out_channels: 1,
            in_channels: 1,
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            padding: 0,
        };
        assert_eq!(unit.output_hw(7, 7), (7, 7));
    }

    #[test]
    fn conv_macs() {
        let cs = ConvShape {
            out_channels: 2,
            in_channels: 3,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 0,
        };
        // 9x9 -> 7x7 out; 7*7*2*3*3*3
        assert_eq!(cs.macs(9, 9), 49 * 2 * 27);
    }

    proptest! {
        #[test]
        fn prop_set_get_roundtrip(
            dims in proptest::collection::vec(1usize..6, 1..4),
            v in any::<i32>(),
        ) {
            let mut t = Tensor::<i32>::zeros(&dims);
            let idx: Vec<usize> = dims.iter().map(|&d| d - 1).collect();
            t.set(&idx, v);
            prop_assert_eq!(t.get(&idx), v);
        }

        #[test]
        fn prop_offsets_unique(dims in proptest::collection::vec(1usize..5, 2..4)) {
            let t = Tensor::<i8>::zeros(&dims);
            let mut seen = std::collections::HashSet::new();
            let total: usize = dims.iter().product();
            let probe = Tensor::<i8>::from_fn(&dims, |idx| {
                seen.insert(t.offset(idx));
                0
            });
            let _ = probe;
            prop_assert_eq!(seen.len(), total);
        }
    }
}
