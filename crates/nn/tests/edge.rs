//! Edge-case tests for the DNN substrate.

use maicc_nn::layer::{conv2d_i8, global_avgpool_i8, maxpool_i8, ConvLayer};
use maicc_nn::quant::{QuantParams, Requantizer};
use maicc_nn::tensor::{ConvShape, Tensor};

fn layer(m: usize, c: usize, kh: usize, kw: usize) -> ConvLayer {
    ConvLayer {
        shape: ConvShape {
            out_channels: m,
            in_channels: c,
            kernel_h: kh,
            kernel_w: kw,
            stride: 1,
            padding: 0,
        },
        weights: Tensor::filled(&[m, c, kh, kw], 1),
        bias: vec![0; m],
        requant: Requantizer::from_real_multiplier(0.5, 0),
        relu: false,
        pool: None,
    }
}

#[test]
fn kernel_equals_input_gives_single_output() {
    let l = layer(3, 2, 4, 4);
    let x = Tensor::filled(&[2, 4, 4], 2i8);
    let out = conv2d_i8(&x, &l).unwrap();
    assert_eq!(out.shape(), &[3, 1, 1]);
    assert!(out.data().iter().all(|&v| v == 2 * 2 * 16));
}

#[test]
fn rectangular_kernels_work() {
    let l = layer(1, 1, 1, 3);
    let x = Tensor::filled(&[1, 4, 6], 1i8);
    let out = conv2d_i8(&x, &l).unwrap();
    assert_eq!(out.shape(), &[1, 4, 4]);
}

#[test]
fn single_pixel_global_avgpool() {
    let x = Tensor::from_vec(&[3, 1, 1], vec![-7i8, 0, 9]).unwrap();
    assert_eq!(global_avgpool_i8(&x).data(), &[-7, 0, 9]);
}

#[test]
fn maxpool_window_equal_to_image() {
    let x = Tensor::from_fn(&[1, 4, 4], |i| (i[1] * 4 + i[2]) as i8);
    let out = maxpool_i8(&x, 4).unwrap();
    assert_eq!(out.data(), &[15]);
}

#[test]
fn requantizer_extreme_accumulators() {
    let r = Requantizer::from_real_multiplier(0.9999, 0);
    assert_eq!(r.apply(i32::MAX), 127);
    assert_eq!(r.apply(i32::MIN), -128);
    assert_eq!(r.apply(0), 0);
}

#[test]
fn quant_params_degenerate_range() {
    // min == max == 0: scale floors at epsilon, roundtrip of 0 is 0
    let q = QuantParams::from_range(0.0, 0.0);
    let z = q.quantize(0.0);
    assert!(q.dequantize(z).abs() < 1e-3);
}

#[test]
#[should_panic(expected = "min <= max")]
fn quant_params_reject_inverted_range() {
    let _ = QuantParams::from_range(1.0, -1.0);
}
