//! Link/router fault injection, typed NoC errors, and the watchdog
//! vocabulary for deadlock/livelock reports.
//!
//! A [`NocFaultPlan`] describes what is broken in the mesh:
//!
//! * **failed routers** — the tile's router is dead: nothing can be
//!   injected there, traverse it, or be delivered to it;
//! * **failed links** — one directed output port is cut;
//! * **transient flit drops** — with a seeded per-hop probability, a flit
//!   vanishes on a link crossing.
//!
//! The mesh degrades instead of hanging: a packet that makes no progress
//! for [`NocFaultPlan::retry_after`] cycles (or whose wormhole lost a
//! flit) is *recalled* — every buffered flit is purged — and re-injected
//! on the alternate Y-X route. After [`NocFaultPlan::max_retries`]
//! recalls the packet is dropped and reported as a typed
//! [`NocError::PacketLost`], so callers observe a delivery failure rather
//! than an infinite stall.
//!
//! Everything is off by default: a mesh without a plan performs no RNG
//! draws and behaves bit- and cycle-identically to the seed model.

use crate::router::{Coord, Direction};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Declarative fault schedule for one mesh.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NocFaultPlan {
    /// Seed for the plan's private RNG stream (transient drops).
    pub seed: u64,
    /// Per-link-crossing probability that a flit is lost.
    pub drop_rate: f64,
    /// Per-link-crossing probability that a flit is *corrupted* in
    /// transit: it keeps moving, but the destination's CRC check rejects
    /// the packet on arrival.
    pub corrupt_rate: f64,
    /// Routers that are completely dead.
    pub failed_routers: Vec<Coord>,
    /// Directed links that are cut: flits cannot leave `Coord` via
    /// `Direction`.
    pub failed_links: Vec<(Coord, Direction)>,
    /// Cycles without progress before a packet is recalled and retried.
    pub retry_after: u64,
    /// Recalls before the packet is abandoned as [`NocError::PacketLost`].
    pub max_retries: u32,
}

impl Default for NocFaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl NocFaultPlan {
    /// The empty plan: attaching it changes nothing.
    #[must_use]
    pub fn none() -> Self {
        NocFaultPlan {
            seed: 0,
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            failed_routers: Vec::new(),
            failed_links: Vec::new(),
            retry_after: 64,
            max_retries: 1,
        }
    }

    /// Starts an otherwise-empty plan with an RNG seed.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        NocFaultPlan {
            seed,
            ..Self::none()
        }
    }

    /// Sets the per-hop transient flit-drop probability.
    #[must_use]
    pub fn drop_rate(mut self, rate: f64) -> Self {
        self.drop_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-hop transient flit-corruption probability (caught by
    /// the destination's packet CRC instead of vanishing silently).
    #[must_use]
    pub fn corrupt_rate(mut self, rate: f64) -> Self {
        self.corrupt_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Marks one router dead.
    #[must_use]
    pub fn fail_router(mut self, at: Coord) -> Self {
        if !self.failed_routers.contains(&at) {
            self.failed_routers.push(at);
        }
        self
    }

    /// Cuts one directed link.
    #[must_use]
    pub fn fail_link(mut self, from: Coord, dir: Direction) -> Self {
        if !self.failed_links.contains(&(from, dir)) {
            self.failed_links.push((from, dir));
        }
        self
    }

    /// Sets the no-progress horizon before a packet recall.
    #[must_use]
    pub fn retry_after(mut self, cycles: u64) -> Self {
        self.retry_after = cycles.max(1);
        self
    }

    /// Sets how many recalls a packet gets before it is abandoned.
    #[must_use]
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// `true` when the plan can never inject anything.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.drop_rate <= 0.0
            && self.corrupt_rate <= 0.0
            && self.failed_routers.is_empty()
            && self.failed_links.is_empty()
    }
}

/// Link-level retransmission policy (the ACK/NACK protocol of a mesh with
/// per-packet CRC).
///
/// Attached to a mesh via [`Mesh::set_retry_policy`](crate::Mesh); without
/// it the mesh keeps the PR-1 behaviour: damaged or stalled wormholes are
/// recalled [`NocFaultPlan::max_retries`] times on the alternate dimension
/// order and then dropped as [`NocError::PacketLost`]. With a policy:
///
/// * the policy's [`max_retries`](RetryPolicy::max_retries) replaces the
///   plan's;
/// * every recall (lost flit, stalled wormhole, or CRC reject at the
///   destination) waits out a bounded exponential backoff —
///   `base_delay << min(retries, 16)` cycles — before re-injecting, so
///   retransmissions do not re-collide with the burst that damaged them;
/// * corrupted packets are NACKed by the receiver and retransmitted
///   instead of being delivered flagged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retransmissions per packet before it is abandoned.
    pub max_retries: u32,
    /// Backoff before the first retransmission, in cycles; doubles per
    /// retry (shift capped at 16).
    pub base_delay: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_delay: 8,
        }
    }
}

impl RetryPolicy {
    /// Backoff delay before retransmission number `retries + 1`.
    #[must_use]
    pub fn backoff(&self, retries: u32) -> u64 {
        self.base_delay << retries.min(16)
    }
}

/// Typed NoC failure, the degraded alternative to a hang.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum NocError {
    /// A packet was abandoned after exhausting its retries.
    PacketLost {
        /// Mesh-assigned packet id.
        packet: u64,
        /// Source tile.
        src: Coord,
        /// Destination tile.
        dst: Coord,
        /// Recalls attempted before giving up.
        retries: u32,
    },
    /// The watchdog saw no progress: credit-stall tracing names the single
    /// most wedged router and port.
    Wedged {
        /// The router whose buffered traffic has waited longest.
        router: Coord,
        /// The wedged port (`Local` = the tile's injection queue).
        port: Direction,
        /// Cycles the head of that queue has been unable to move.
        stalled_for: u64,
        /// Flits queued behind the stalled head.
        occupancy: usize,
    },
    /// The cycle budget elapsed with traffic still in flight but the mesh
    /// still making (slow) progress.
    Budget {
        /// The exhausted budget in cycles.
        budget: u64,
        /// Packets still in flight when the budget ran out.
        in_flight: usize,
    },
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocError::PacketLost {
                packet,
                src,
                dst,
                retries,
            } => write!(
                f,
                "packet {packet} ({src} -> {dst}) lost after {retries} retries"
            ),
            NocError::Wedged {
                router,
                port,
                stalled_for,
                occupancy,
            } => write!(
                f,
                "no NoC progress: router {router} {} wedged for {stalled_for} cycles \
                 ({occupancy} flits queued)",
                match port {
                    Direction::Local => "injection queue".to_string(),
                    d => format!("{d:?}-input"),
                }
            ),
            NocError::Budget { budget, in_flight } => write!(
                f,
                "cycle budget of {budget} elapsed with {in_flight} packets in flight"
            ),
        }
    }
}

impl std::error::Error for NocError {}

/// Tally of injected/observed NoC fault events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NocFaultStats {
    /// Flits lost to transient drops.
    pub flits_dropped: u64,
    /// Flits corrupted in transit (caught later by the packet CRC).
    pub flits_corrupted: u64,
    /// Packet recalls (purge + alternate-route re-injection).
    pub retries: u64,
    /// Packets the destination's CRC rejected and NACKed back for
    /// retransmission (requires a [`RetryPolicy`]).
    pub crc_rejects: u64,
    /// Packets abandoned after exhausting retries.
    pub packets_lost: u64,
}

impl NocFaultStats {
    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &NocFaultStats) {
        self.flits_dropped += other.flits_dropped;
        self.flits_corrupted += other.flits_corrupted;
        self.retries += other.retries;
        self.crc_rejects += other.crc_rejects;
        self.packets_lost += other.packets_lost;
    }
}

/// Deterministic splitmix64 stream for transient drops.
///
/// Private to the NoC so the crate stays dependency-free; the same
/// generator exists in `maicc-sram`'s fault model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct DropRng {
    state: u64,
}

impl DropRng {
    pub(crate) fn new(seed: u64) -> Self {
        DropRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Bernoulli draw; `p <= 0` consumes nothing (identity guarantee).
    pub(crate) fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Live fault state owned by a mesh once a plan is attached.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct NocFaultState {
    pub(crate) plan: NocFaultPlan,
    pub(crate) rng: DropRng,
    pub(crate) stats: NocFaultStats,
}

impl NocFaultState {
    pub(crate) fn new(plan: NocFaultPlan) -> Self {
        let rng = DropRng::new(plan.seed);
        NocFaultState {
            plan,
            rng,
            stats: NocFaultStats::default(),
        }
    }

    pub(crate) fn router_failed(&self, at: Coord) -> bool {
        self.plan.failed_routers.contains(&at)
    }

    pub(crate) fn link_failed(&self, from: Coord, dir: Direction) -> bool {
        self.plan.failed_links.contains(&(from, dir))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_dedupes_and_detects_quiet() {
        let p = NocFaultPlan::none()
            .fail_router(Coord::new(1, 1))
            .fail_router(Coord::new(1, 1))
            .fail_link(Coord::new(0, 0), Direction::East)
            .fail_link(Coord::new(0, 0), Direction::East);
        assert_eq!(p.failed_routers.len(), 1);
        assert_eq!(p.failed_links.len(), 1);
        assert!(!p.is_quiet());
        assert!(NocFaultPlan::none().is_quiet());
        assert!(NocFaultPlan::with_seed(3).is_quiet());
    }

    #[test]
    fn drop_rng_quiet_at_zero() {
        let mut rng = DropRng::new(1);
        let before = rng.clone();
        assert!(!rng.chance(0.0));
        assert_eq!(rng, before);
        let hits = (0..10_000).filter(|_| rng.chance(0.5)).count();
        assert!((4000..6000).contains(&hits), "{hits}");
    }

    #[test]
    fn errors_display_name_the_culprit() {
        let e = NocError::Wedged {
            router: Coord::new(3, 7),
            port: Direction::East,
            stalled_for: 99,
            occupancy: 4,
        };
        let s = e.to_string();
        assert!(s.contains("(3, 7)") && s.contains("East") && s.contains("99"), "{s}");

        let lost = NocError::PacketLost {
            packet: 12,
            src: Coord::new(0, 0),
            dst: Coord::new(1, 1),
            retries: 2,
        }
        .to_string();
        assert!(lost.contains("12") && lost.contains("2 retries"), "{lost}");

        let inj = NocError::Wedged {
            router: Coord::new(0, 0),
            port: Direction::Local,
            stalled_for: 10,
            occupancy: 1,
        }
        .to_string();
        assert!(inj.contains("injection queue"), "{inj}");
    }

    #[test]
    fn stats_merge_adds() {
        let mut a = NocFaultStats {
            flits_dropped: 1,
            flits_corrupted: 2,
            retries: 3,
            crc_rejects: 4,
            packets_lost: 5,
        };
        a.merge(&NocFaultStats {
            flits_dropped: 10,
            flits_corrupted: 20,
            retries: 30,
            crc_rejects: 40,
            packets_lost: 50,
        });
        assert_eq!(a.flits_dropped, 11);
        assert_eq!(a.flits_corrupted, 22);
        assert_eq!(a.retries, 33);
        assert_eq!(a.crc_rejects, 44);
        assert_eq!(a.packets_lost, 55);
    }

    #[test]
    fn retry_policy_backoff_doubles_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(0), p.base_delay);
        assert_eq!(p.backoff(1), p.base_delay * 2);
        assert_eq!(p.backoff(3), p.base_delay * 8);
        // the shift is capped so huge retry counts cannot overflow
        assert_eq!(p.backoff(200), p.base_delay << 16);
        assert!(!NocFaultPlan::none().corrupt_rate(0.1).is_quiet());
    }
}
