#![warn(missing_docs)]

//! # maicc-noc — the 2D-mesh network-on-chip
//!
//! MAICC's 256 tiles (host, 210 compute cores, 32 LLC tiles, spares) are
//! connected by a 2D mesh with **X-Y dimension-order routing** (§3.1). This
//! crate is the workspace's substitute for booksim2: a flit-level,
//! cycle-stepped wormhole mesh with five-port routers, round-robin output
//! arbitration and buffer-credit backpressure, plus the statistics the
//! energy model consumes (5.4 pJ per flit per hop, §5).
//!
//! The payload type is generic so `maicc-sim` can route its remote
//! load/store/AMO/row messages while the crate's own tests use plain
//! integers.
//!
//! ## Example
//!
//! ```
//! use maicc_noc::{Coord, Mesh, Packet};
//!
//! let mut mesh: Mesh<&str> = Mesh::new(4, 4);
//! mesh.send(Packet::new(Coord::new(0, 0), Coord::new(3, 3), 1, "hello"));
//! let delivered = mesh.run_until_idle(1_000);
//! assert_eq!(delivered.len(), 1);
//! assert_eq!(delivered[0].packet.payload, "hello");
//! // X-Y routing: 3 + 3 hops plus injection/ejection
//! assert!(delivered[0].arrived_at >= 6);
//! ```

pub mod fault;
pub mod mesh;
pub mod router;
pub mod stats;

pub use fault::{NocError, NocFaultPlan, NocFaultStats, RetryPolicy};
pub use mesh::{Delivered, Mesh, Packet};
pub use router::{Coord, Direction};
pub use stats::NocStats;

/// Default per-input-port buffer capacity in flits.
pub const DEFAULT_BUFFER: usize = 4;

/// Flits in a single-word remote load/store packet (§3.1: "a package
/// containing 32-bit data" — head/address + payload).
pub const WORD_PACKET_FLITS: usize = 2;

/// Flits in a 256-bit row packet (`LoadRow.RC`/`StoreRow.RC`): head plus
/// eight 32-bit payload flits.
pub const ROW_PACKET_FLITS: usize = 9;
