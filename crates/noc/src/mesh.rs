//! The cycle-stepped wormhole mesh.
//!
//! Movement is evaluated in two phases per cycle — arbitration, then a
//! simultaneous move of at most one flit per link — so results are
//! independent of router iteration order. Backpressure is buffer-credit:
//! a flit advances only if the downstream input FIFO has space after all
//! moves planned this cycle.

use crate::fault::{DropRng, NocError, NocFaultPlan, NocFaultState, NocFaultStats, RetryPolicy};
use crate::router::{Coord, Direction, Flit, Router};
use crate::stats::NocStats;
use crate::DEFAULT_BUFFER;
use std::collections::{HashMap, VecDeque};
use std::hash::BuildHasherDefault;

/// Stall-trace slots per router: the five input ports plus the injection
/// queue.
const STALL_SLOTS: usize = 6;
/// Stall-trace slot of the injection queue.
const INJECT_SLOT: usize = 5;

/// A message travelling through the mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet<T> {
    /// Source tile.
    pub src: Coord,
    /// Destination tile.
    pub dst: Coord,
    /// Length in flits (≥ 1).
    pub flits: usize,
    /// The carried payload (delivered with the tail flit).
    pub payload: T,
}

impl<T> Packet<T> {
    /// Creates a packet.
    ///
    /// # Panics
    ///
    /// Panics if `flits` is zero.
    #[must_use]
    pub fn new(src: Coord, dst: Coord, flits: usize, payload: T) -> Self {
        assert!(flits >= 1, "packets have at least one flit");
        Packet {
            src,
            dst,
            flits,
            payload,
        }
    }
}

/// A packet that reached its destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivered<T> {
    /// The packet, payload included.
    pub packet: Packet<T>,
    /// Cycle the packet was injected.
    pub sent_at: u64,
    /// Cycle the tail flit left the destination router.
    pub arrived_at: u64,
    /// The destination's CRC check failed (a flit was corrupted in
    /// transit) and no [`RetryPolicy`] was attached to retransmit it —
    /// the payload is suspect. Always `false` with a policy attached.
    pub corrupted: bool,
}

#[derive(Clone)]
struct InFlight<T> {
    packet: Packet<T>,
    sent_at: u64,
    delivered_flits: usize,
    /// Last cycle any flit of this packet moved (fault-retry bookkeeping).
    last_progress: u64,
    /// Recalls performed so far.
    retries: u32,
    /// Dimension order of the current attempt (false = X-Y).
    yx: bool,
    /// A flit of this packet was lost in transit; recall at the next
    /// maintenance step.
    damaged: bool,
    /// A flit of this packet was corrupted in transit; the destination's
    /// CRC will reject the packet on arrival.
    crc_damaged: bool,
    /// Backoff deadline: the packet's flits re-enter the injection queue
    /// once the mesh reaches this cycle (retransmission in progress).
    release_at: Option<u64>,
}

/// Deterministic multiply-mix hasher for the flight table. Keys are the
/// mesh's own monotonically increasing packet ids, so a single Fibonacci
/// multiply spreads them perfectly well and every lookup happens on the
/// per-flit hot path where SipHash's setup cost is measurable. All
/// iteration over the table sorts by id first, so the (stable,
/// unseeded) bucket order never leaks into behaviour.
#[derive(Default, Clone)]
struct IdHasher(u64);

impl std::hash::Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u64(&mut self, x: u64) {
        self.0 = (self.0 ^ x).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type IdBuild = BuildHasherDefault<IdHasher>;

/// Per-tick working buffers, kept across ticks so the cycle loop never
/// allocates. All contents are cleared (capacity retained) at tick end.
#[derive(Default)]
struct TickScratch {
    /// Packet ids that made progress this tick.
    progressed: Vec<u64>,
    /// Parallel to `active`: whether that router drained an injection.
    drained: Vec<bool>,
    /// Routers holding buffered flits or pending injections, ascending.
    active: Vec<usize>,
    /// Membership bitmap for `active` (plus move destinations).
    is_active: Vec<bool>,
    /// Routers first occupied by a move this tick (stall-trace aging).
    stall_extra: Vec<usize>,
    /// Planned occupancy per input-port slot (`router * 5 + port`) for
    /// credit checks, reset via `planned_touched`.
    planned_in: Vec<u16>,
    /// Slots of `planned_in` written this tick.
    planned_touched: Vec<usize>,
    /// (router, input_port, output_dir) moves planned this tick.
    moves: Vec<(usize, usize, Direction)>,
    /// Source slots (`router * 5 + port`) that moved a flit this tick.
    moved: Vec<bool>,
    /// Cached input-queue heads per active router, as (packet id, routed
    /// output, is-head) per port; `None` for empty queues. Phases 1 and 2
    /// only inspect queue fronts, which phase 0 finalizes, so reading
    /// them once per tick is exact.
    heads: Vec<[Option<(u64, Direction, bool)>; 5]>,
}

impl TickScratch {
    fn begin(&mut self, n: usize) {
        if self.is_active.len() != n {
            self.is_active = vec![false; n];
            self.moved = vec![false; n * 5];
            self.planned_in = vec![0; n * 5];
        }
    }

    fn end(&mut self) {
        for &i in self.active.iter().chain(&self.stall_extra) {
            self.is_active[i] = false;
        }
        for &(i, ii, _) in &self.moves {
            self.moved[i * 5 + ii] = false;
        }
        for &k in &self.planned_touched {
            self.planned_in[k] = 0;
        }
        self.progressed.clear();
        self.drained.clear();
        self.active.clear();
        self.stall_extra.clear();
        self.planned_touched.clear();
        self.moves.clear();
        self.heads.clear();
    }
}

/// The mesh network.
pub struct Mesh<T> {
    width: u8,
    height: u8,
    buffer_cap: usize,
    routers: Vec<Router>,
    /// Per-tile injection queues (unbounded; drain into local input ports).
    inject: Vec<VecDeque<Flit>>,
    flights: HashMap<u64, InFlight<T>, IdBuild>,
    next_id: u64,
    cycle: u64,
    stats: NocStats,
    /// Flits carried per output-port slot (`router * 5 + port`).
    link_load: Vec<u64>,
    /// Fault-injection state; `None` (the default) is the zero-overhead,
    /// bit-identical path.
    fault: Option<NocFaultState>,
    /// Link-level ACK/NACK retransmission policy; `None` keeps the
    /// recall-then-drop behaviour.
    retry_policy: Option<RetryPolicy>,
    /// Cycles each queue's head has been unable to move, per
    /// `router * STALL_SLOTS + slot` (credit-stall tracing for the
    /// watchdog).
    stall: Vec<u64>,
    /// Typed failures observed so far (lost packets); drained by
    /// [`Mesh::take_errors`].
    errors: Vec<NocError>,
    /// Buffered flits per router, maintained incrementally so quiet
    /// routers can be skipped without scanning their queues.
    occ: Vec<usize>,
    /// Reusable per-tick buffers.
    scratch: TickScratch,
    /// Ownership-partitioned stepping support: when `Some`, the routers
    /// that can possibly act next tick are tracked incrementally (a
    /// superset of those with buffered flits or pending injections), so
    /// [`Mesh::tick_partitioned`] arbitrates in time proportional to the
    /// *live* traffic instead of scanning the whole port table. `None`
    /// (the default, and what the sequential oracle uses) keeps the
    /// full-scan [`Mesh::tick`] as the reference behaviour.
    tracked: Option<Vec<usize>>,
}

impl<T: Clone> Clone for Mesh<T> {
    /// Deep-copies the architectural state (routers, queues, flights,
    /// stats, fault RNG position). The per-tick scratch buffers are empty
    /// between ticks, so the clone starts with fresh ones — checkpointing
    /// a mesh mid-simulation and resuming from the copy is exact.
    fn clone(&self) -> Self {
        Mesh {
            width: self.width,
            height: self.height,
            buffer_cap: self.buffer_cap,
            routers: self.routers.clone(),
            inject: self.inject.clone(),
            flights: self.flights.clone(),
            next_id: self.next_id,
            cycle: self.cycle,
            stats: self.stats,
            link_load: self.link_load.clone(),
            fault: self.fault.clone(),
            retry_policy: self.retry_policy,
            stall: self.stall.clone(),
            errors: self.errors.clone(),
            occ: self.occ.clone(),
            scratch: TickScratch::default(),
            tracked: self.tracked.clone(),
        }
    }
}

impl<T> std::fmt::Debug for Mesh<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mesh")
            .field("width", &self.width)
            .field("height", &self.height)
            .field("cycle", &self.cycle)
            .field("in_flight", &self.flights.len())
            .finish_non_exhaustive()
    }
}

impl<T> Mesh<T> {
    /// Creates a `width × height` mesh with the default buffer depth.
    #[must_use]
    pub fn new(width: u8, height: u8) -> Self {
        Self::with_buffer(width, height, DEFAULT_BUFFER)
    }

    /// Creates a mesh with an explicit per-port buffer depth.
    ///
    /// A `buffer_cap` of zero is legal but starves every router of
    /// credits: nothing can ever be injected, and the watchdog
    /// ([`Mesh::run_guarded`]) reports the first sender's injection queue
    /// as wedged. Useful for exercising deadlock detection.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn with_buffer(width: u8, height: u8, buffer_cap: usize) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        let mut routers = Vec::with_capacity(width as usize * height as usize);
        for y in 0..height {
            for x in 0..width {
                routers.push(Router::new(Coord::new(x, y)));
            }
        }
        let n = routers.len();
        Mesh {
            width,
            height,
            buffer_cap,
            routers,
            inject: vec![VecDeque::new(); n],
            flights: HashMap::default(),
            next_id: 0,
            cycle: 0,
            stats: NocStats::default(),
            link_load: vec![0; n * 5],
            fault: None,
            retry_policy: None,
            stall: vec![0; n * STALL_SLOTS],
            errors: Vec::new(),
            occ: vec![0; n],
            scratch: TickScratch::default(),
            tracked: None,
        }
    }

    /// Attaches (or replaces) a fault plan; injection starts immediately.
    ///
    /// Attaching [`NocFaultPlan::none`] is equivalent to no plan at all.
    pub fn attach_fault_plan(&mut self, plan: NocFaultPlan) {
        self.fault = Some(NocFaultState::new(plan));
    }

    /// The attached fault plan, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&NocFaultPlan> {
        self.fault.as_ref().map(|f| &f.plan)
    }

    /// Fault events observed so far (zero when no plan is attached).
    #[must_use]
    pub fn fault_stats(&self) -> NocFaultStats {
        self.fault.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// Attaches (or removes) the link-level retransmission policy.
    ///
    /// Without a fault plan the policy is inert: nothing is ever dropped,
    /// corrupted, or recalled, so the zero-overhead identity holds.
    pub fn set_retry_policy(&mut self, policy: Option<RetryPolicy>) {
        self.retry_policy = policy;
    }

    /// The attached retransmission policy, if any.
    #[must_use]
    pub fn retry_policy(&self) -> Option<RetryPolicy> {
        self.retry_policy
    }

    /// Re-seeds the attached fault plan's RNG with a replay salt so a
    /// rolled-back re-execution draws a fresh (still deterministic)
    /// drop/corruption schedule. No-op without a plan.
    pub fn reseed_fault_rng(&mut self, salt: u64) {
        if let Some(f) = self.fault.as_mut() {
            f.rng = DropRng::new(f.plan.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
    }

    /// Whether any packet is waiting out a retransmission backoff. While
    /// this holds, a lack of visible progress is the backoff itself — the
    /// watchdog in [`Mesh::run_guarded`] does not count it as a stall.
    #[must_use]
    pub fn has_pending_retx(&self) -> bool {
        self.flights.values().any(|fl| fl.release_at.is_some())
    }

    /// Drains the typed failures (lost packets) recorded since the last
    /// call.
    pub fn take_errors(&mut self) -> Vec<NocError> {
        std::mem::take(&mut self.errors)
    }

    /// Mesh width.
    #[must_use]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Mesh height.
    #[must_use]
    pub fn height(&self) -> u8 {
        self.height
    }

    /// Current cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    fn idx(&self, c: Coord) -> usize {
        c.y as usize * self.width as usize + c.x as usize
    }

    fn neighbor(&self, c: Coord, d: Direction) -> Option<Coord> {
        match d {
            Direction::North => (c.y > 0).then(|| Coord::new(c.x, c.y - 1)),
            Direction::South => (c.y + 1 < self.height).then(|| Coord::new(c.x, c.y + 1)),
            Direction::East => (c.x + 1 < self.width).then(|| Coord::new(c.x + 1, c.y)),
            Direction::West => (c.x > 0).then(|| Coord::new(c.x - 1, c.y)),
            Direction::Local => None,
        }
    }

    /// Injects a packet; flits enter the network as buffer space allows.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is outside the mesh.
    pub fn send(&mut self, packet: Packet<T>) {
        assert!(
            packet.src.x < self.width
                && packet.src.y < self.height
                && packet.dst.x < self.width
                && packet.dst.y < self.height,
            "endpoint outside the mesh"
        );
        let id = self.next_id;
        self.next_id += 1;
        let src = self.idx(packet.src);
        for i in 0..packet.flits {
            self.inject[src].push_back(Flit {
                packet: id,
                dst: packet.dst,
                is_head: i == 0,
                is_tail: i + 1 == packet.flits,
                yx: false,
            });
        }
        self.flights.insert(
            id,
            InFlight {
                packet,
                sent_at: self.cycle,
                delivered_flits: 0,
                last_progress: self.cycle,
                retries: 0,
                yx: false,
                damaged: false,
                crc_damaged: false,
                release_at: None,
            },
        );
        if let Some(cand) = self.tracked.as_mut() {
            cand.push(src);
        }
        self.stats.packets_sent += 1;
    }

    /// Arms incremental active-router tracking for
    /// [`Mesh::tick_partitioned`]. The candidate set is (re)built from the
    /// current queues, so arming mid-flight — e.g. after a checkpoint
    /// rollback restored an older mesh — is exact. Idempotent.
    pub fn enable_partitioned_stepping(&mut self) {
        let cand: Vec<usize> = (0..self.routers.len())
            .filter(|&i| self.occ[i] > 0 || !self.inject[i].is_empty())
            .collect();
        self.tracked = Some(cand);
    }

    /// Disarms active-router tracking (the full-scan [`Mesh::tick`]
    /// neither needs nor maintains it).
    pub fn disable_partitioned_stepping(&mut self) {
        self.tracked = None;
    }

    /// Whether partitioned stepping is armed.
    #[must_use]
    pub fn partitioned_stepping(&self) -> bool {
        self.tracked.is_some()
    }

    /// Drains per-shard packet queues into the mesh in ascending shard
    /// order. Shard order equals node-index order in the fabric layer, so
    /// the resulting injection schedule is exactly the sequential one —
    /// this is the exchange half of the two-phase (compute / exchange)
    /// partitioned schedule.
    pub fn send_from_shards(&mut self, queues: &mut [Vec<Packet<T>>]) {
        for q in queues {
            for p in q.drain(..) {
                self.send(p);
            }
        }
    }

    /// Whether any flit is buffered or awaiting injection.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        if !self.flights.is_empty() {
            return false;
        }
        // the candidate set is a superset of every router with queued
        // work, so checking it alone is exact — and proportional to live
        // traffic, not the port table
        if let Some(cand) = self.tracked.as_ref() {
            return cand
                .iter()
                .all(|&i| self.occ[i] == 0 && self.inject[i].is_empty());
        }
        self.inject.iter().all(VecDeque::is_empty) && self.occ.iter().all(|&o| o == 0)
    }

    /// The next cycle at which the mesh itself can produce an event, or
    /// `None` if it never will again.
    ///
    /// Arbitration, flit movement, credit releases, and the fault-retry
    /// watchdog are all re-evaluated every tick, so whenever any flit is
    /// buffered or awaiting injection the next event is simply
    /// `cycle() + 1`. A fully drained mesh produces no events at all:
    /// ticking it only advances the clock (the fast path in
    /// [`Mesh::tick`]), which is exactly what [`Mesh::advance_to`]
    /// batch-applies.
    #[must_use]
    pub fn next_event_cycle(&self) -> Option<u64> {
        if self.is_idle() {
            None
        } else {
            Some(self.cycle + 1)
        }
    }

    /// Batch-applies idle cycles: advances the clock straight to `cycle`.
    ///
    /// Equivalent to `cycle - self.cycle()` calls to [`Mesh::tick`] on a
    /// drained mesh — each such tick takes the idle fast path, which
    /// delivers nothing, moves nothing, ages no stall trace, and performs
    /// no fault maintenance (there are no in-flight packets to retry), so
    /// the only observable effect is the clock itself. Cycles in the past
    /// are a no-op.
    ///
    /// # Panics
    ///
    /// Panics if the mesh is not idle — skipping over cycles in which
    /// flits could have moved would change delivery order and statistics.
    pub fn advance_to(&mut self, cycle: u64) {
        assert!(
            self.is_idle(),
            "advance_to requires a drained mesh (flits could still move)"
        );
        if cycle > self.cycle {
            self.cycle = cycle;
            self.stats.cycles = cycle;
        }
    }

    /// Advances one cycle; returns packets fully delivered this cycle.
    pub fn tick(&mut self) -> Vec<Delivered<T>> {
        let mut delivered = Vec::new();
        self.tick_core(false, &mut delivered);
        delivered
    }

    /// Advances one cycle using the incrementally tracked candidate set
    /// instead of scanning every router, appending deliveries to `out`
    /// (capacity reused across calls). Byte-identical to [`Mesh::tick`]:
    /// the candidate set is a superset of the true active set, and every
    /// per-router phase is predicate-guarded, so extra (idle) candidates
    /// arbitrate nothing, move nothing, and age no stall slot. With a
    /// fault plan attached, recalls and purges can touch arbitrary
    /// routers, so this degrades to the full scan — still correct, just
    /// without the sparse-stepping win.
    ///
    /// # Panics
    ///
    /// Panics if [`Mesh::enable_partitioned_stepping`] was not called.
    pub fn tick_partitioned(&mut self, out: &mut Vec<Delivered<T>>) {
        assert!(
            self.tracked.is_some(),
            "partitioned stepping is not armed (call enable_partitioned_stepping)"
        );
        self.tick_core(true, out);
    }

    #[allow(clippy::too_many_lines)]
    fn tick_core(&mut self, sparse: bool, delivered: &mut Vec<Delivered<T>>) {
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        let n = self.routers.len();

        // fast path: a fully drained fabric has nothing to arbitrate,
        // move, or age (every flit belongs to a flight, so no flights and
        // no pending injections means every buffer is empty and every
        // stall slot is already zero) — advancing the clock is the cycle
        if self.flights.is_empty() {
            let drained = if let (true, Some(cand)) = (sparse, self.tracked.as_ref()) {
                cand.iter().all(|&i| self.inject[i].is_empty())
            } else {
                self.inject.iter().all(VecDeque::is_empty)
            };
            if drained {
                debug_assert!(self.occ.iter().all(|&o| o == 0));
                return;
            }
        }

        // retransmission release: packets whose backoff elapsed re-enter
        // their source injection queue (ascending id keeps this
        // deterministic regardless of HashMap order)
        if self.retry_policy.is_some() && self.fault.is_some() {
            let mut due: Vec<u64> = self
                .flights
                .iter()
                .filter(|(_, fl)| fl.release_at.is_some_and(|r| r <= self.cycle))
                .map(|(&id, _)| id)
                .collect();
            due.sort_unstable();
            for id in due {
                let fl = self.flights.get_mut(&id).expect("due id is live");
                fl.release_at = None;
                fl.last_progress = self.cycle;
                let (src, dst, flits, yx) = (fl.packet.src, fl.packet.dst, fl.packet.flits, fl.yx);
                let src_i = self.idx(src);
                for k in 0..flits {
                    self.inject[src_i].push_back(Flit {
                        packet: id,
                        dst,
                        is_head: k == 0,
                        is_tail: k + 1 == flits,
                        yx,
                    });
                }
            }
        }

        let mut s = std::mem::take(&mut self.scratch);
        s.begin(n);
        // Routers that can possibly act this cycle: those holding buffered
        // flits or pending injections. Ascending index order matters —
        // phase-2 credit competition resolves in favour of lower indices,
        // so the active set must preserve it.
        //
        // Fault mode always takes the full scan: the retransmission
        // release above can re-fill any source's injection queue, which
        // the tracker does not observe.
        if sparse && self.fault.is_none() {
            let mut cand = self.tracked.take().expect("sparse tick is armed");
            cand.sort_unstable();
            cand.dedup();
            for &i in &cand {
                if self.occ[i] > 0 || !self.inject[i].is_empty() {
                    s.active.push(i);
                    s.is_active[i] = true;
                }
            }
            self.tracked = Some(cand);
        } else {
            for i in 0..n {
                if self.occ[i] > 0 || !self.inject[i].is_empty() {
                    s.active.push(i);
                    s.is_active[i] = true;
                }
            }
        }
        s.drained.resize(s.active.len(), false);

        // phase 0: drain injection queues into local input ports
        for (k, &i) in s.active.iter().enumerate() {
            let dead = self
                .fault
                .as_ref()
                .is_some_and(|f| f.router_failed(self.routers[i].coord));
            while !dead
                && !self.inject[i].is_empty()
                && self.routers[i].inputs[Direction::Local.index()].len() < self.buffer_cap
            {
                let f = self.inject[i].pop_front().expect("checked non-empty");
                s.progressed.push(f.packet);
                s.drained[k] = true;
                self.occ[i] += 1;
                self.routers[i].inputs[Direction::Local.index()].push_back(f);
            }
        }

        // cache each active router's input heads (and their routed output
        // direction) once; queue fronts are final after phase 0
        for &i in &s.active {
            let mut h = [None; 5];
            if self.occ[i] > 0 {
                let here = self.routers[i].coord;
                for (p, q) in self.routers[i].inputs.iter().enumerate() {
                    if let Some(f) = q.front() {
                        h[p] = Some((f.packet, f.route_from(here), f.is_head));
                    }
                }
            }
            s.heads.push(h);
        }

        // phase 1: output arbitration (wormhole allocation); a router
        // without buffered flits has no input heads to arbitrate
        for (k, &i) in s.active.iter().enumerate() {
            if self.occ[i] == 0 {
                continue;
            }
            for out in Direction::ALL {
                let oi = out.index();
                if self.routers[i].outputs[oi].owner.is_some() {
                    continue;
                }
                let rr = self.routers[i].outputs[oi].rr;
                for step in 0..5 {
                    let ii = (rr + step) % 5;
                    if let Some((packet, dir, is_head)) = s.heads[k][ii] {
                        if is_head && dir == out {
                            self.routers[i].outputs[oi].owner = Some(packet);
                            self.routers[i].outputs[oi].rr = (ii + 1) % 5;
                            break;
                        }
                    }
                }
            }
        }

        // phase 2: plan at most one flit move per output port, respecting
        // downstream space after all moves planned this cycle
        for (k, &i) in s.active.iter().enumerate() {
            if self.occ[i] == 0 {
                continue;
            }
            let here = self.routers[i].coord;
            // a dead router forwards nothing
            if self.fault.as_ref().is_some_and(|f| f.router_failed(here)) {
                continue;
            }
            for out in Direction::ALL {
                let oi = out.index();
                let Some(owner) = self.routers[i].outputs[oi].owner else {
                    continue;
                };
                // the owning packet's next flit must be at some input head
                let Some(ii) = (0..5).find(|&ii| {
                    s.heads[k][ii].is_some_and(|(p, dir, _)| p == owner && dir == out)
                }) else {
                    continue;
                };
                if out == Direction::Local {
                    s.moves.push((i, ii, out));
                } else {
                    // a cut link or dead neighbour blocks the move; the
                    // flit waits and the stall trace ages
                    if self.fault.as_ref().is_some_and(|f| f.link_failed(here, out)) {
                        continue;
                    }
                    let nb = self.neighbor(here, out).expect("routing stays in mesh");
                    let nbi = self.idx(nb);
                    if self.fault.as_ref().is_some_and(|f| f.router_failed(nb)) {
                        continue;
                    }
                    let in_port = match out {
                        Direction::North => Direction::South,
                        Direction::South => Direction::North,
                        Direction::East => Direction::West,
                        Direction::West => Direction::East,
                        Direction::Local => unreachable!(),
                    };
                    let key = nbi * 5 + in_port.index();
                    let planned = usize::from(s.planned_in[key]);
                    if self.routers[nbi].inputs[in_port.index()].len() + planned < self.buffer_cap
                    {
                        if s.planned_in[key] == 0 {
                            s.planned_touched.push(key);
                        }
                        s.planned_in[key] += 1;
                        s.moves.push((i, ii, out));
                    }
                }
            }
        }

        // phase 3: apply moves simultaneously
        for mi in 0..s.moves.len() {
            let (i, ii, out) = s.moves[mi];
            let f = self.routers[i].inputs[ii]
                .pop_front()
                .expect("planned move has a flit");
            s.moved[i * 5 + ii] = true;
            self.occ[i] -= 1;
            if f.is_tail {
                self.routers[i].outputs[out.index()].owner = None;
            }
            match out {
                Direction::Local => {
                    s.progressed.push(f.packet);
                    let fl = self
                        .flights
                        .get_mut(&f.packet)
                        .expect("flit belongs to a live packet");
                    fl.delivered_flits += 1;
                    if f.is_tail {
                        // packet CRC check at the receiver: a corrupted
                        // wormhole is NACKed back for retransmission when
                        // a policy is attached, delivered flagged when not
                        if fl.crc_damaged {
                            if let Some(policy) = self.retry_policy {
                                if fl.retries < policy.max_retries {
                                    fl.retries += 1;
                                    fl.crc_damaged = false;
                                    fl.damaged = false;
                                    fl.delivered_flits = 0;
                                    fl.yx = !fl.yx;
                                    fl.last_progress = self.cycle;
                                    fl.release_at =
                                        Some(self.cycle + policy.backoff(fl.retries - 1));
                                    if let Some(fs) = self.fault.as_mut() {
                                        fs.stats.crc_rejects += 1;
                                    }
                                } else {
                                    let fl = self.flights.remove(&f.packet).expect("present");
                                    if let Some(fs) = self.fault.as_mut() {
                                        fs.stats.packets_lost += 1;
                                    }
                                    self.errors.push(NocError::PacketLost {
                                        packet: f.packet,
                                        src: fl.packet.src,
                                        dst: fl.packet.dst,
                                        retries: fl.retries,
                                    });
                                }
                                continue;
                            }
                        }
                        let fl = self.flights.remove(&f.packet).expect("present");
                        debug_assert_eq!(fl.delivered_flits, fl.packet.flits);
                        self.stats.packets_delivered += 1;
                        self.stats.total_latency += self.cycle - fl.sent_at;
                        delivered.push(Delivered {
                            packet: fl.packet,
                            sent_at: fl.sent_at,
                            arrived_at: self.cycle,
                            corrupted: fl.crc_damaged,
                        });
                    }
                }
                _ => {
                    // transient link fault: the flit vanishes in transit
                    // and the wormhole is recalled at maintenance time
                    if let Some(fs) = self.fault.as_mut() {
                        if fs.rng.chance(fs.plan.drop_rate) {
                            fs.stats.flits_dropped += 1;
                            if let Some(fl) = self.flights.get_mut(&f.packet) {
                                fl.damaged = true;
                            }
                            continue;
                        }
                        // a corrupted flit keeps moving; the destination's
                        // packet CRC rejects the wormhole on arrival
                        if fs.rng.chance(fs.plan.corrupt_rate) {
                            fs.stats.flits_corrupted += 1;
                            if let Some(fl) = self.flights.get_mut(&f.packet) {
                                fl.crc_damaged = true;
                            }
                        }
                    }
                    s.progressed.push(f.packet);
                    let nb = self
                        .neighbor(self.routers[i].coord, out)
                        .expect("checked in planning");
                    let nbi = self.idx(nb);
                    let in_port = match out {
                        Direction::North => Direction::South,
                        Direction::South => Direction::North,
                        Direction::East => Direction::West,
                        Direction::West => Direction::East,
                        Direction::Local => unreachable!(),
                    };
                    if !s.is_active[nbi] {
                        s.is_active[nbi] = true;
                        s.stall_extra.push(nbi);
                    }
                    self.routers[nbi].inputs[in_port.index()].push_back(f);
                    self.occ[nbi] += 1;
                    self.stats.flit_hops += 1;
                    self.link_load[i * 5 + out.index()] += 1;
                }
            }
        }

        // credit-stall tracing: age every non-empty queue whose head could
        // not move this cycle; reset the rest. Routers outside the active
        // set (and not reached by a move) have empty queues, whose slots
        // were zeroed when they drained.
        for (k, &i) in s.active.iter().enumerate() {
            for p in 0..5 {
                let slot = i * STALL_SLOTS + p;
                if self.routers[i].inputs[p].is_empty() || s.moved[i * 5 + p] {
                    self.stall[slot] = 0;
                } else {
                    self.stall[slot] += 1;
                }
            }
            let slot = i * STALL_SLOTS + INJECT_SLOT;
            if self.inject[i].is_empty() || s.drained[k] {
                self.stall[slot] = 0;
            } else {
                self.stall[slot] += 1;
            }
        }
        for &i in &s.stall_extra {
            // these routers were empty at tick start, so their injection
            // queue is empty and only the freshly-occupied inputs age
            for p in 0..5 {
                let slot = i * STALL_SLOTS + p;
                if self.routers[i].inputs[p].is_empty() || s.moved[i * 5 + p] {
                    self.stall[slot] = 0;
                } else {
                    self.stall[slot] += 1;
                }
            }
        }

        // phase 4 (fault mode only): recall packets that lost a flit or
        // made no progress for the plan's retry horizon
        if self.fault.is_some() {
            for &id in &s.progressed {
                if let Some(fl) = self.flights.get_mut(&id) {
                    fl.last_progress = self.cycle;
                }
            }
        }
        // refresh the candidate set for the next tick: routers still
        // holding work, plus routers a move just occupied. `s.active` was
        // the complete active set this tick (full scan) or a superset of
        // it (tracked), so this stays a superset invariantly.
        if let Some(cand) = self.tracked.as_mut() {
            cand.clear();
            for &i in &s.active {
                if self.occ[i] > 0 || !self.inject[i].is_empty() {
                    cand.push(i);
                }
            }
            cand.extend_from_slice(&s.stall_extra);
        }
        s.end();
        self.scratch = s;
        if self.fault.is_some() {
            self.retry_maintenance();
            // recalls re-inject at arbitrary sources and purges rewrite
            // occupancy wholesale — rebuild the tracker from scratch
            if self.tracked.is_some() {
                self.enable_partitioned_stepping();
            }
        }
    }

    /// Recalls stalled/damaged packets: purge, then retry on the alternate
    /// dimension order or retire as [`NocError::PacketLost`].
    fn retry_maintenance(&mut self) {
        let Some(fs) = self.fault.as_ref() else {
            return;
        };
        // a quiet plan can never lose a flit, so a long stall is ordinary
        // congestion — recalling would break the identity guarantee
        if fs.plan.is_quiet() {
            return;
        }
        let retry_after = fs.plan.retry_after;
        let max_retries = self
            .retry_policy
            .map_or(fs.plan.max_retries, |p| p.max_retries);
        let cycle = self.cycle;
        let mut stale: Vec<u64> = self
            .flights
            .iter()
            .filter(|(_, fl)| {
                fl.release_at.is_none()
                    && (fl.damaged || cycle.saturating_sub(fl.last_progress) >= retry_after)
            })
            .map(|(&id, _)| id)
            .collect();
        // HashMap iteration order is arbitrary; recall in ascending id
        // order so re-injection order (and everything downstream of it)
        // is deterministic
        stale.sort_unstable();
        for id in stale {
            self.purge_packet(id);
            let fl = self.flights.get(&id).expect("stale id is live");
            let (src, dst, flits, retries) =
                (fl.packet.src, fl.packet.dst, fl.packet.flits, fl.retries);
            if retries < max_retries {
                let src_i = self.idx(src);
                let policy = self.retry_policy;
                let fl = self.flights.get_mut(&id).expect("present");
                fl.retries += 1;
                fl.damaged = false;
                fl.crc_damaged = false;
                fl.delivered_flits = 0;
                fl.last_progress = cycle;
                fl.yx = !fl.yx;
                let yx = fl.yx;
                if let Some(policy) = policy {
                    // with a retransmission policy the recall waits out an
                    // exponential backoff before re-entering the network
                    fl.release_at = Some(cycle + policy.backoff(fl.retries - 1));
                } else {
                    for k in 0..flits {
                        self.inject[src_i].push_back(Flit {
                            packet: id,
                            dst,
                            is_head: k == 0,
                            is_tail: k + 1 == flits,
                            yx,
                        });
                    }
                }
                if let Some(fs) = self.fault.as_mut() {
                    fs.stats.retries += 1;
                }
            } else {
                let fl = self.flights.remove(&id).expect("present");
                if let Some(fs) = self.fault.as_mut() {
                    fs.stats.packets_lost += 1;
                }
                self.errors.push(NocError::PacketLost {
                    packet: id,
                    src: fl.packet.src,
                    dst: fl.packet.dst,
                    retries: fl.retries,
                });
            }
        }
    }

    /// Removes every buffered flit of packet `id` and releases its
    /// wormhole ownerships.
    fn purge_packet(&mut self, id: u64) {
        for (i, r) in self.routers.iter_mut().enumerate() {
            let mut occ = 0;
            for (p, q) in r.inputs.iter_mut().enumerate() {
                q.retain(|f| f.packet != id);
                occ += q.len();
                if q.is_empty() {
                    // inactive routers are skipped by the stall pass, so a
                    // queue emptied here must hand back a zeroed slot
                    self.stall[i * STALL_SLOTS + p] = 0;
                }
            }
            self.occ[i] = occ;
            for o in &mut r.outputs {
                if o.owner == Some(id) {
                    o.owner = None;
                }
            }
        }
        for (i, q) in self.inject.iter_mut().enumerate() {
            q.retain(|f| f.packet != id);
            if q.is_empty() {
                self.stall[i * STALL_SLOTS + INJECT_SLOT] = 0;
            }
        }
    }

    /// Ticks until the mesh drains or `max_cycles` elapse, collecting all
    /// deliveries.
    pub fn run_until_idle(&mut self, max_cycles: u64) -> Vec<Delivered<T>> {
        let mut all = Vec::new();
        for _ in 0..max_cycles {
            all.extend(self.tick());
            if self.is_idle() {
                break;
            }
        }
        all
    }

    /// Runs with a cycle budget and a no-progress watchdog.
    ///
    /// Delivers like [`Mesh::run_until_idle`], but instead of silently
    /// spinning on a deadlock or livelock it returns a typed [`NocError`]:
    ///
    /// * [`NocError::Wedged`] after `horizon` consecutive cycles with zero
    ///   progress (no flit movement, injection, delivery, retry or
    ///   retirement) — the credit-stall trace names the router and port
    ///   whose queue has waited longest;
    /// * [`NocError::Budget`] when `max_cycles` elapse while the mesh is
    ///   still (slowly) making progress.
    ///
    /// Lost packets are *not* errors here: they are degraded outcomes
    /// recorded in [`Mesh::fault_stats`] and drained via
    /// [`Mesh::take_errors`]. When using fault retries, pick a `horizon`
    /// larger than the plan's `retry_after` so recalls count as progress
    /// before the watchdog fires.
    ///
    /// # Errors
    ///
    /// [`NocError::Wedged`] on stall, [`NocError::Budget`] on timeout.
    pub fn run_guarded(
        &mut self,
        max_cycles: u64,
        horizon: u64,
    ) -> Result<Vec<Delivered<T>>, NocError> {
        let mut all = Vec::new();
        let mut last = self.progress_metric();
        let mut stalled = 0u64;
        for _ in 0..max_cycles {
            all.extend(self.tick());
            if self.is_idle() {
                return Ok(all);
            }
            let now = self.progress_metric();
            if now == last {
                // a retransmission backoff is deliberate silence, not a
                // wedge — the release is already scheduled
                if self.has_pending_retx() {
                    stalled = 0;
                } else {
                    stalled += 1;
                    if stalled >= horizon {
                        return Err(self.wedge_report());
                    }
                }
            } else {
                stalled = 0;
                last = now;
            }
        }
        Err(NocError::Budget {
            budget: max_cycles,
            in_flight: self.flights.len(),
        })
    }

    /// Snapshot of everything that changes when the mesh makes progress.
    #[allow(clippy::type_complexity)]
    fn progress_metric(&self) -> (u64, u64, u64, u64, u64, usize, usize) {
        let (retries, rejects, lost) = self.fault.as_ref().map_or((0, 0, 0), |f| {
            (f.stats.retries, f.stats.crc_rejects, f.stats.packets_lost)
        });
        (
            self.stats.flit_hops,
            self.stats.packets_delivered,
            retries,
            rejects,
            lost,
            self.occ.iter().sum(),
            self.inject.iter().map(VecDeque::len).sum(),
        )
    }

    /// Names the router/port whose queue has stalled longest — the
    /// credit-stall trace behind [`NocError::Wedged`]. Public so fabric
    /// layers that give up on a stuck mesh (budget exhaustion with zero
    /// progress) can localize the culprit in their own reports.
    #[must_use]
    pub fn wedge_report(&self) -> NocError {
        let (slot, &age) = self
            .stall
            .iter()
            .enumerate()
            .max_by_key(|&(_, &a)| a)
            .expect("mesh has routers");
        let i = slot / STALL_SLOTS;
        let p = slot % STALL_SLOTS;
        let (port, occupancy) = if p == INJECT_SLOT {
            (Direction::Local, self.inject[i].len())
        } else {
            (Direction::ALL[p], self.routers[i].inputs[p].len())
        };
        NocError::Wedged {
            router: self.routers[i].coord,
            port,
            stalled_for: age,
            occupancy,
        }
    }

    /// The most heavily used link's flit count — the congestion hotspot.
    #[must_use]
    pub fn max_link_load(&self) -> u64 {
        self.link_load.iter().copied().max().unwrap_or(0)
    }

    /// Flit counts per link, as ((router coord), output port index).
    #[must_use]
    pub fn link_loads(&self) -> Vec<(Coord, usize, u64)> {
        let mut v: Vec<(Coord, usize, u64)> = self
            .link_load
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(k, &n)| (self.routers[k / 5].coord, k % 5, n))
            .collect();
        v.sort_by_key(|&(c, p, _)| (c.y, c.x, p));
        v
    }

    /// Analytic zero-load latency: one cycle per hop, one ejection cycle,
    /// plus tail serialization (`hops + flits` in total).
    #[must_use]
    pub fn zero_load_latency(src: Coord, dst: Coord, flits: usize) -> u64 {
        u64::from(src.hops_to(dst)) + 1 + (flits as u64 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_packet_zero_load_latency() {
        let mut mesh: Mesh<u32> = Mesh::new(8, 8);
        mesh.send(Packet::new(Coord::new(0, 0), Coord::new(5, 3), 1, 7));
        let d = mesh.run_until_idle(100);
        assert_eq!(d.len(), 1);
        let lat = d[0].arrived_at - d[0].sent_at;
        assert_eq!(lat, Mesh::<u32>::zero_load_latency(Coord::new(0, 0), Coord::new(5, 3), 1));
    }

    #[test]
    fn multi_flit_serialization_adds_latency() {
        let mut mesh: Mesh<u32> = Mesh::new(4, 4);
        mesh.send(Packet::new(Coord::new(0, 0), Coord::new(3, 0), 9, 0));
        let d = mesh.run_until_idle(100);
        let lat = d[0].arrived_at - d[0].sent_at;
        assert_eq!(lat, 3 + 1 + 8);
    }

    #[test]
    fn local_delivery_same_tile() {
        let mut mesh: Mesh<u32> = Mesh::new(2, 2);
        mesh.send(Packet::new(Coord::new(1, 1), Coord::new(1, 1), 1, 5));
        let d = mesh.run_until_idle(10);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn wormhole_packets_do_not_interleave() {
        // two 9-flit packets fight for the same link; both must arrive whole
        let mut mesh: Mesh<u32> = Mesh::new(4, 1);
        mesh.send(Packet::new(Coord::new(0, 0), Coord::new(3, 0), 9, 1));
        mesh.send(Packet::new(Coord::new(1, 0), Coord::new(3, 0), 9, 2));
        let d = mesh.run_until_idle(200);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn contention_slows_but_delivers() {
        // all tiles fire at one hotspot
        let mut mesh: Mesh<u32> = Mesh::new(4, 4);
        for y in 0..4 {
            for x in 0..4 {
                if (x, y) != (3, 3) {
                    mesh.send(Packet::new(Coord::new(x, y), Coord::new(3, 3), 2, 0));
                }
            }
        }
        let d = mesh.run_until_idle(1000);
        assert_eq!(d.len(), 15);
        assert!(mesh.stats().mean_latency() > 5.0);
    }

    #[test]
    fn stats_count_flit_hops() {
        let mut mesh: Mesh<u32> = Mesh::new(4, 1);
        mesh.send(Packet::new(Coord::new(0, 0), Coord::new(3, 0), 2, 0));
        mesh.run_until_idle(100);
        // 2 flits × 3 hops
        assert_eq!(mesh.stats().flit_hops, 6);
        assert!(mesh.stats().dynamic_pj() > 0.0);
    }

    #[test]
    fn is_idle_after_drain() {
        let mut mesh: Mesh<u32> = Mesh::new(3, 3);
        assert!(mesh.is_idle());
        mesh.send(Packet::new(Coord::new(0, 0), Coord::new(2, 2), 3, 0));
        assert!(!mesh.is_idle());
        mesh.run_until_idle(100);
        assert!(mesh.is_idle());
    }

    #[test]
    #[should_panic(expected = "outside the mesh")]
    fn endpoint_bounds_checked() {
        let mut mesh: Mesh<u32> = Mesh::new(2, 2);
        mesh.send(Packet::new(Coord::new(0, 0), Coord::new(5, 5), 1, 0));
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut mesh: Mesh<u32> = Mesh::new(4, 4);
            for i in 0..10u32 {
                mesh.send(Packet::new(
                    Coord::new((i % 4) as u8, (i / 4) as u8),
                    Coord::new(3, 3),
                    3,
                    i,
                ));
            }
            let mut d = mesh.run_until_idle(1000);
            d.sort_by_key(|x| (x.arrived_at, x.packet.payload));
            d.iter()
                .map(|x| (x.packet.payload, x.arrived_at))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn bisection_traffic_loads_the_cut_evenly() {
        // every west-half tile sends one packet straight east: under X-Y
        // routing each row's middle link carries exactly its row's traffic
        let mut mesh: Mesh<u32> = Mesh::new(8, 8);
        for y in 0..8u8 {
            for x in 0..4u8 {
                mesh.send(Packet::new(Coord::new(x, y), Coord::new(x + 4, y), 2, 0));
            }
        }
        let d = mesh.run_until_idle(10_000);
        assert_eq!(d.len(), 32);
        // links crossing the bisection: column 3 → 4, one per row
        let crossing: Vec<u64> = mesh
            .link_loads()
            .into_iter()
            .filter(|&(c, p, _)| c.x == 3 && p == Direction::East.index())
            .map(|(_, _, n)| n)
            .collect();
        assert_eq!(crossing.len(), 8);
        // each row's cut link carries its 4 packets × 2 flits = 8 flits
        assert!(crossing.iter().all(|&n| n == 8), "{crossing:?}");
        assert_eq!(mesh.max_link_load(), 8);
    }

    #[test]
    fn advance_to_equals_explicit_ticks() {
        // two identical meshes run identical traffic; across the idle gap
        // one ticks N times and the other jumps — every later observable
        // (clock, stats, next delivery) must agree
        let drive = |mesh: &mut Mesh<u32>| {
            mesh.send(Packet::new(Coord::new(0, 0), Coord::new(3, 2), 4, 9));
            mesh.run_until_idle(1_000);
        };
        let mut ticked: Mesh<u32> = Mesh::new(4, 4);
        let mut jumped: Mesh<u32> = Mesh::new(4, 4);
        drive(&mut ticked);
        drive(&mut jumped);
        assert_eq!(ticked.cycle(), jumped.cycle());
        let target = ticked.cycle() + 1_234;
        for _ in 0..1_234 {
            assert!(ticked.tick().is_empty());
        }
        jumped.advance_to(target);
        assert_eq!(ticked.cycle(), jumped.cycle());
        assert_eq!(ticked.stats(), jumped.stats());
        // traffic after the gap behaves identically
        let after = |mesh: &mut Mesh<u32>| {
            mesh.send(Packet::new(Coord::new(1, 3), Coord::new(2, 0), 2, 4));
            mesh.run_until_idle(1_000)
        };
        let a = after(&mut ticked);
        let b = after(&mut jumped);
        assert_eq!(a, b);
        assert_eq!(ticked.stats(), jumped.stats());
    }

    #[test]
    fn next_event_cycle_tracks_idleness() {
        let mut mesh: Mesh<u32> = Mesh::new(4, 4);
        assert_eq!(mesh.next_event_cycle(), None);
        mesh.send(Packet::new(Coord::new(0, 0), Coord::new(3, 3), 2, 0));
        assert_eq!(mesh.next_event_cycle(), Some(mesh.cycle() + 1));
        mesh.run_until_idle(1_000);
        assert_eq!(mesh.next_event_cycle(), None);
        // a past target is a no-op, not a rewind
        let now = mesh.cycle();
        mesh.advance_to(now.saturating_sub(3));
        assert_eq!(mesh.cycle(), now);
    }

    #[test]
    #[should_panic(expected = "drained")]
    fn advance_to_rejects_busy_mesh() {
        let mut mesh: Mesh<u32> = Mesh::new(4, 4);
        mesh.send(Packet::new(Coord::new(0, 0), Coord::new(3, 3), 2, 0));
        mesh.advance_to(100);
    }

    #[test]
    fn hotspot_concentrates_link_load() {
        let mut mesh: Mesh<u32> = Mesh::new(8, 1);
        for x in 0..7u8 {
            mesh.send(Packet::new(Coord::new(x, 0), Coord::new(7, 0), 1, 0));
        }
        mesh.run_until_idle(10_000);
        // the last link before the hotspot carries all seven flits
        assert_eq!(mesh.max_link_load(), 7);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_all_packets_delivered(
            seeds in proptest::collection::vec((0u8..6, 0u8..6, 0u8..6, 0u8..6, 1usize..10), 1..30)
        ) {
            let mut mesh: Mesh<usize> = Mesh::new(6, 6);
            for (i, &(sx, sy, dx, dy, flits)) in seeds.iter().enumerate() {
                mesh.send(Packet::new(Coord::new(sx, sy), Coord::new(dx, dy), flits, i));
            }
            let d = mesh.run_until_idle(50_000);
            prop_assert_eq!(d.len(), seeds.len(), "every packet must arrive");
            prop_assert!(mesh.is_idle());
            // payloads intact
            let mut got: Vec<usize> = d.iter().map(|x| x.packet.payload).collect();
            got.sort_unstable();
            prop_assert_eq!(got, (0..seeds.len()).collect::<Vec<_>>());
        }

        #[test]
        fn prop_latency_at_least_zero_load(
            sx in 0u8..8, sy in 0u8..8, dx in 0u8..8, dy in 0u8..8, flits in 1usize..9
        ) {
            let mut mesh: Mesh<u32> = Mesh::new(8, 8);
            let (s, t) = (Coord::new(sx, sy), Coord::new(dx, dy));
            mesh.send(Packet::new(s, t, flits, 0));
            let d = mesh.run_until_idle(10_000);
            let lat = d[0].arrived_at - d[0].sent_at;
            prop_assert!(lat >= Mesh::<u32>::zero_load_latency(s, t, flits));
        }

        /// The candidate-tracked partitioned tick must be byte-identical
        /// to the full-scan oracle tick, cycle by cycle, under randomized
        /// staggered traffic (including same-destination contention and
        /// multi-flit wormholes).
        #[test]
        fn prop_partitioned_tick_matches_full_scan(
            seeds in proptest::collection::vec(
                (0u8..6, 0u8..6, 0u8..6, 0u8..6, 1usize..10, 0u64..40), 1..30)
        ) {
            let mut full: Mesh<usize> = Mesh::new(6, 6);
            let mut part: Mesh<usize> = Mesh::new(6, 6);
            part.enable_partitioned_stepping();
            let mut queue: Vec<_> = seeds.iter().enumerate().map(|(i, &(sx, sy, dx, dy, flits, at))| {
                (at, Packet::new(Coord::new(sx, sy), Coord::new(dx, dy), flits, i))
            }).collect();
            queue.sort_by_key(|&(at, _)| at);
            let mut out = Vec::new();
            for cycle in 0..50_000u64 {
                while queue.first().is_some_and(|&(at, _)| at <= cycle) {
                    let (_, p) = queue.remove(0);
                    full.send(p.clone());
                    part.send(p);
                }
                let df = full.tick();
                out.clear();
                part.tick_partitioned(&mut out);
                prop_assert_eq!(&df, &out, "delivery divergence at cycle {}", cycle);
                prop_assert_eq!(full.stats(), part.stats());
                prop_assert_eq!(full.is_idle(), part.is_idle());
                if queue.is_empty() && full.is_idle() {
                    break;
                }
            }
            prop_assert!(full.is_idle() && queue.is_empty(), "traffic must drain");
            prop_assert_eq!(full.stats().packets_delivered, seeds.len() as u64);
        }
    }

    #[test]
    fn shard_queue_injection_matches_sequential_sends() {
        // draining per-shard queues in ascending shard order must produce
        // the same flights table (and thus the same downstream schedule)
        // as the equivalent sequence of direct sends
        let mut seq: Mesh<u32> = Mesh::new(4, 4);
        let mut sharded: Mesh<u32> = Mesh::new(4, 4);
        sharded.enable_partitioned_stepping();
        let mk = |k: u32| {
            Packet::new(
                Coord::new((k % 4) as u8, 0),
                Coord::new(3, 3),
                1 + (k as usize % 3),
                k,
            )
        };
        let mut queues = vec![vec![mk(0), mk(1)], vec![], vec![mk(2), mk(3), mk(4)]];
        for k in 0..5 {
            seq.send(mk(k));
        }
        sharded.send_from_shards(&mut queues);
        assert!(queues.iter().all(Vec::is_empty));
        let a = seq.run_until_idle(1_000);
        let mut b = Vec::new();
        for _ in 0..1_000 {
            sharded.tick_partitioned(&mut b);
            if sharded.is_idle() {
                break;
            }
        }
        assert_eq!(a, b);
        assert_eq!(seq.stats(), sharded.stats());
    }
}
