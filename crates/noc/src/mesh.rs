//! The cycle-stepped wormhole mesh.
//!
//! Movement is evaluated in two phases per cycle — arbitration, then a
//! simultaneous move of at most one flit per link — so results are
//! independent of router iteration order. Backpressure is buffer-credit:
//! a flit advances only if the downstream input FIFO has space after all
//! moves planned this cycle.

use crate::router::{xy_route, Coord, Direction, Flit, Router};
use crate::stats::NocStats;
use crate::DEFAULT_BUFFER;
use std::collections::{HashMap, VecDeque};

/// A message travelling through the mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet<T> {
    /// Source tile.
    pub src: Coord,
    /// Destination tile.
    pub dst: Coord,
    /// Length in flits (≥ 1).
    pub flits: usize,
    /// The carried payload (delivered with the tail flit).
    pub payload: T,
}

impl<T> Packet<T> {
    /// Creates a packet.
    ///
    /// # Panics
    ///
    /// Panics if `flits` is zero.
    #[must_use]
    pub fn new(src: Coord, dst: Coord, flits: usize, payload: T) -> Self {
        assert!(flits >= 1, "packets have at least one flit");
        Packet {
            src,
            dst,
            flits,
            payload,
        }
    }
}

/// A packet that reached its destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivered<T> {
    /// The packet, payload included.
    pub packet: Packet<T>,
    /// Cycle the packet was injected.
    pub sent_at: u64,
    /// Cycle the tail flit left the destination router.
    pub arrived_at: u64,
}

struct InFlight<T> {
    packet: Packet<T>,
    sent_at: u64,
    delivered_flits: usize,
}

/// The mesh network.
pub struct Mesh<T> {
    width: u8,
    height: u8,
    buffer_cap: usize,
    routers: Vec<Router>,
    /// Per-tile injection queues (unbounded; drain into local input ports).
    inject: Vec<VecDeque<Flit>>,
    flights: HashMap<u64, InFlight<T>>,
    next_id: u64,
    cycle: u64,
    stats: NocStats,
    /// Flits carried per (router index, output port index).
    link_load: HashMap<(usize, usize), u64>,
}

impl<T> std::fmt::Debug for Mesh<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mesh")
            .field("width", &self.width)
            .field("height", &self.height)
            .field("cycle", &self.cycle)
            .field("in_flight", &self.flights.len())
            .finish_non_exhaustive()
    }
}

impl<T> Mesh<T> {
    /// Creates a `width × height` mesh with the default buffer depth.
    #[must_use]
    pub fn new(width: u8, height: u8) -> Self {
        Self::with_buffer(width, height, DEFAULT_BUFFER)
    }

    /// Creates a mesh with an explicit per-port buffer depth.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `buffer_cap` is zero.
    #[must_use]
    pub fn with_buffer(width: u8, height: u8, buffer_cap: usize) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        assert!(buffer_cap > 0, "buffers need at least one slot");
        let mut routers = Vec::with_capacity(width as usize * height as usize);
        for y in 0..height {
            for x in 0..width {
                routers.push(Router::new(Coord::new(x, y)));
            }
        }
        let n = routers.len();
        Mesh {
            width,
            height,
            buffer_cap,
            routers,
            inject: vec![VecDeque::new(); n],
            flights: HashMap::new(),
            next_id: 0,
            cycle: 0,
            stats: NocStats::default(),
            link_load: HashMap::new(),
        }
    }

    /// Mesh width.
    #[must_use]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Mesh height.
    #[must_use]
    pub fn height(&self) -> u8 {
        self.height
    }

    /// Current cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    fn idx(&self, c: Coord) -> usize {
        c.y as usize * self.width as usize + c.x as usize
    }

    fn neighbor(&self, c: Coord, d: Direction) -> Option<Coord> {
        match d {
            Direction::North => (c.y > 0).then(|| Coord::new(c.x, c.y - 1)),
            Direction::South => (c.y + 1 < self.height).then(|| Coord::new(c.x, c.y + 1)),
            Direction::East => (c.x + 1 < self.width).then(|| Coord::new(c.x + 1, c.y)),
            Direction::West => (c.x > 0).then(|| Coord::new(c.x - 1, c.y)),
            Direction::Local => None,
        }
    }

    /// Injects a packet; flits enter the network as buffer space allows.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is outside the mesh.
    pub fn send(&mut self, packet: Packet<T>) {
        assert!(
            packet.src.x < self.width
                && packet.src.y < self.height
                && packet.dst.x < self.width
                && packet.dst.y < self.height,
            "endpoint outside the mesh"
        );
        let id = self.next_id;
        self.next_id += 1;
        let src = self.idx(packet.src);
        for i in 0..packet.flits {
            self.inject[src].push_back(Flit {
                packet: id,
                dst: packet.dst,
                is_head: i == 0,
                is_tail: i + 1 == packet.flits,
            });
        }
        self.flights.insert(
            id,
            InFlight {
                packet,
                sent_at: self.cycle,
                delivered_flits: 0,
            },
        );
        self.stats.packets_sent += 1;
    }

    /// Whether any flit is buffered or awaiting injection.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.flights.is_empty()
            && self.inject.iter().all(VecDeque::is_empty)
            && self.routers.iter().all(|r| r.occupancy() == 0)
    }

    /// Advances one cycle; returns packets fully delivered this cycle.
    pub fn tick(&mut self) -> Vec<Delivered<T>> {
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        let n = self.routers.len();

        // phase 0: drain injection queues into local input ports
        for i in 0..n {
            while !self.inject[i].is_empty()
                && self.routers[i].inputs[Direction::Local.index()].len() < self.buffer_cap
            {
                let f = self.inject[i].pop_front().expect("checked non-empty");
                self.routers[i].inputs[Direction::Local.index()].push_back(f);
            }
        }

        // phase 1: output arbitration (wormhole allocation)
        for i in 0..n {
            let here = self.routers[i].coord;
            for out in Direction::ALL {
                let oi = out.index();
                if self.routers[i].outputs[oi].owner.is_some() {
                    continue;
                }
                let rr = self.routers[i].outputs[oi].rr;
                for k in 0..5 {
                    let ii = (rr + k) % 5;
                    if let Some(f) = self.routers[i].inputs[ii].front() {
                        if f.is_head && xy_route(here, f.dst) == out {
                            self.routers[i].outputs[oi].owner = Some(f.packet);
                            self.routers[i].outputs[oi].rr = (ii + 1) % 5;
                            break;
                        }
                    }
                }
            }
        }

        // phase 2: plan at most one flit move per output port, respecting
        // downstream space after all moves planned this cycle
        let mut planned_in: HashMap<(usize, usize), usize> = HashMap::new();
        // (router, input_port, output_dir)
        let mut moves: Vec<(usize, usize, Direction)> = Vec::new();
        for i in 0..n {
            let here = self.routers[i].coord;
            for out in Direction::ALL {
                let oi = out.index();
                let Some(owner) = self.routers[i].outputs[oi].owner else {
                    continue;
                };
                // the owning packet's next flit must be at some input head
                let Some(ii) = (0..5).find(|&ii| {
                    self.routers[i].inputs[ii]
                        .front()
                        .is_some_and(|f| f.packet == owner && xy_route(here, f.dst) == out)
                }) else {
                    continue;
                };
                if out == Direction::Local {
                    moves.push((i, ii, out));
                } else {
                    let nb = self.neighbor(here, out).expect("routing stays in mesh");
                    let nbi = self.idx(nb);
                    let in_port = match out {
                        Direction::North => Direction::South,
                        Direction::South => Direction::North,
                        Direction::East => Direction::West,
                        Direction::West => Direction::East,
                        Direction::Local => unreachable!(),
                    };
                    let key = (nbi, in_port.index());
                    let planned = planned_in.get(&key).copied().unwrap_or(0);
                    if self.routers[nbi].inputs[in_port.index()].len() + planned < self.buffer_cap
                    {
                        *planned_in.entry(key).or_insert(0) += 1;
                        moves.push((i, ii, out));
                    }
                }
            }
        }

        // phase 3: apply moves simultaneously
        let mut delivered = Vec::new();
        for (i, ii, out) in moves {
            let f = self.routers[i].inputs[ii]
                .pop_front()
                .expect("planned move has a flit");
            if f.is_tail {
                self.routers[i].outputs[out.index()].owner = None;
            }
            match out {
                Direction::Local => {
                    let fl = self
                        .flights
                        .get_mut(&f.packet)
                        .expect("flit belongs to a live packet");
                    fl.delivered_flits += 1;
                    if f.is_tail {
                        let fl = self.flights.remove(&f.packet).expect("present");
                        debug_assert_eq!(fl.delivered_flits, fl.packet.flits);
                        self.stats.packets_delivered += 1;
                        self.stats.total_latency += self.cycle - fl.sent_at;
                        delivered.push(Delivered {
                            packet: fl.packet,
                            sent_at: fl.sent_at,
                            arrived_at: self.cycle,
                        });
                    }
                }
                _ => {
                    let nb = self
                        .neighbor(self.routers[i].coord, out)
                        .expect("checked in planning");
                    let nbi = self.idx(nb);
                    let in_port = match out {
                        Direction::North => Direction::South,
                        Direction::South => Direction::North,
                        Direction::East => Direction::West,
                        Direction::West => Direction::East,
                        Direction::Local => unreachable!(),
                    };
                    self.routers[nbi].inputs[in_port.index()].push_back(f);
                    self.stats.flit_hops += 1;
                    *self.link_load.entry((i, out.index())).or_insert(0) += 1;
                }
            }
        }
        delivered
    }

    /// Ticks until the mesh drains or `max_cycles` elapse, collecting all
    /// deliveries.
    pub fn run_until_idle(&mut self, max_cycles: u64) -> Vec<Delivered<T>> {
        let mut all = Vec::new();
        for _ in 0..max_cycles {
            all.extend(self.tick());
            if self.is_idle() {
                break;
            }
        }
        all
    }

    /// The most heavily used link's flit count — the congestion hotspot.
    #[must_use]
    pub fn max_link_load(&self) -> u64 {
        self.link_load.values().copied().max().unwrap_or(0)
    }

    /// Flit counts per link, as ((router coord), output port index).
    #[must_use]
    pub fn link_loads(&self) -> Vec<(Coord, usize, u64)> {
        let mut v: Vec<(Coord, usize, u64)> = self
            .link_load
            .iter()
            .map(|(&(r, p), &n)| (self.routers[r].coord, p, n))
            .collect();
        v.sort_by_key(|&(c, p, _)| (c.y, c.x, p));
        v
    }

    /// Analytic zero-load latency: one cycle per hop, one ejection cycle,
    /// plus tail serialization (`hops + flits` in total).
    #[must_use]
    pub fn zero_load_latency(src: Coord, dst: Coord, flits: usize) -> u64 {
        u64::from(src.hops_to(dst)) + 1 + (flits as u64 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_packet_zero_load_latency() {
        let mut mesh: Mesh<u32> = Mesh::new(8, 8);
        mesh.send(Packet::new(Coord::new(0, 0), Coord::new(5, 3), 1, 7));
        let d = mesh.run_until_idle(100);
        assert_eq!(d.len(), 1);
        let lat = d[0].arrived_at - d[0].sent_at;
        assert_eq!(lat, Mesh::<u32>::zero_load_latency(Coord::new(0, 0), Coord::new(5, 3), 1));
    }

    #[test]
    fn multi_flit_serialization_adds_latency() {
        let mut mesh: Mesh<u32> = Mesh::new(4, 4);
        mesh.send(Packet::new(Coord::new(0, 0), Coord::new(3, 0), 9, 0));
        let d = mesh.run_until_idle(100);
        let lat = d[0].arrived_at - d[0].sent_at;
        assert_eq!(lat, 3 + 1 + 8);
    }

    #[test]
    fn local_delivery_same_tile() {
        let mut mesh: Mesh<u32> = Mesh::new(2, 2);
        mesh.send(Packet::new(Coord::new(1, 1), Coord::new(1, 1), 1, 5));
        let d = mesh.run_until_idle(10);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn wormhole_packets_do_not_interleave() {
        // two 9-flit packets fight for the same link; both must arrive whole
        let mut mesh: Mesh<u32> = Mesh::new(4, 1);
        mesh.send(Packet::new(Coord::new(0, 0), Coord::new(3, 0), 9, 1));
        mesh.send(Packet::new(Coord::new(1, 0), Coord::new(3, 0), 9, 2));
        let d = mesh.run_until_idle(200);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn contention_slows_but_delivers() {
        // all tiles fire at one hotspot
        let mut mesh: Mesh<u32> = Mesh::new(4, 4);
        for y in 0..4 {
            for x in 0..4 {
                if (x, y) != (3, 3) {
                    mesh.send(Packet::new(Coord::new(x, y), Coord::new(3, 3), 2, 0));
                }
            }
        }
        let d = mesh.run_until_idle(1000);
        assert_eq!(d.len(), 15);
        assert!(mesh.stats().mean_latency() > 5.0);
    }

    #[test]
    fn stats_count_flit_hops() {
        let mut mesh: Mesh<u32> = Mesh::new(4, 1);
        mesh.send(Packet::new(Coord::new(0, 0), Coord::new(3, 0), 2, 0));
        mesh.run_until_idle(100);
        // 2 flits × 3 hops
        assert_eq!(mesh.stats().flit_hops, 6);
        assert!(mesh.stats().dynamic_pj() > 0.0);
    }

    #[test]
    fn is_idle_after_drain() {
        let mut mesh: Mesh<u32> = Mesh::new(3, 3);
        assert!(mesh.is_idle());
        mesh.send(Packet::new(Coord::new(0, 0), Coord::new(2, 2), 3, 0));
        assert!(!mesh.is_idle());
        mesh.run_until_idle(100);
        assert!(mesh.is_idle());
    }

    #[test]
    #[should_panic(expected = "outside the mesh")]
    fn endpoint_bounds_checked() {
        let mut mesh: Mesh<u32> = Mesh::new(2, 2);
        mesh.send(Packet::new(Coord::new(0, 0), Coord::new(5, 5), 1, 0));
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut mesh: Mesh<u32> = Mesh::new(4, 4);
            for i in 0..10u32 {
                mesh.send(Packet::new(
                    Coord::new((i % 4) as u8, (i / 4) as u8),
                    Coord::new(3, 3),
                    3,
                    i,
                ));
            }
            let mut d = mesh.run_until_idle(1000);
            d.sort_by_key(|x| (x.arrived_at, x.packet.payload));
            d.iter()
                .map(|x| (x.packet.payload, x.arrived_at))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn bisection_traffic_loads_the_cut_evenly() {
        // every west-half tile sends one packet straight east: under X-Y
        // routing each row's middle link carries exactly its row's traffic
        let mut mesh: Mesh<u32> = Mesh::new(8, 8);
        for y in 0..8u8 {
            for x in 0..4u8 {
                mesh.send(Packet::new(Coord::new(x, y), Coord::new(x + 4, y), 2, 0));
            }
        }
        let d = mesh.run_until_idle(10_000);
        assert_eq!(d.len(), 32);
        // links crossing the bisection: column 3 → 4, one per row
        let crossing: Vec<u64> = mesh
            .link_loads()
            .into_iter()
            .filter(|&(c, p, _)| c.x == 3 && p == Direction::East.index())
            .map(|(_, _, n)| n)
            .collect();
        assert_eq!(crossing.len(), 8);
        // each row's cut link carries its 4 packets × 2 flits = 8 flits
        assert!(crossing.iter().all(|&n| n == 8), "{crossing:?}");
        assert_eq!(mesh.max_link_load(), 8);
    }

    #[test]
    fn hotspot_concentrates_link_load() {
        let mut mesh: Mesh<u32> = Mesh::new(8, 1);
        for x in 0..7u8 {
            mesh.send(Packet::new(Coord::new(x, 0), Coord::new(7, 0), 1, 0));
        }
        mesh.run_until_idle(10_000);
        // the last link before the hotspot carries all seven flits
        assert_eq!(mesh.max_link_load(), 7);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_all_packets_delivered(
            seeds in proptest::collection::vec((0u8..6, 0u8..6, 0u8..6, 0u8..6, 1usize..10), 1..30)
        ) {
            let mut mesh: Mesh<usize> = Mesh::new(6, 6);
            for (i, &(sx, sy, dx, dy, flits)) in seeds.iter().enumerate() {
                mesh.send(Packet::new(Coord::new(sx, sy), Coord::new(dx, dy), flits, i));
            }
            let d = mesh.run_until_idle(50_000);
            prop_assert_eq!(d.len(), seeds.len(), "every packet must arrive");
            prop_assert!(mesh.is_idle());
            // payloads intact
            let mut got: Vec<usize> = d.iter().map(|x| x.packet.payload).collect();
            got.sort_unstable();
            prop_assert_eq!(got, (0..seeds.len()).collect::<Vec<_>>());
        }

        #[test]
        fn prop_latency_at_least_zero_load(
            sx in 0u8..8, sy in 0u8..8, dx in 0u8..8, dy in 0u8..8, flits in 1usize..9
        ) {
            let mut mesh: Mesh<u32> = Mesh::new(8, 8);
            let (s, t) = (Coord::new(sx, sy), Coord::new(dx, dy));
            mesh.send(Packet::new(s, t, flits, 0));
            let d = mesh.run_until_idle(10_000);
            let lat = d[0].arrived_at - d[0].sent_at;
            prop_assert!(lat >= Mesh::<u32>::zero_load_latency(s, t, flits));
        }
    }
}
