//! Five-port mesh routers with X-Y dimension-order routing.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// A tile coordinate in the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Coord {
    /// Column (0 at the west edge).
    pub x: u8,
    /// Row (0 at the north edge).
    pub y: u8,
}

impl Coord {
    /// Creates a coordinate.
    #[must_use]
    pub fn new(x: u8, y: u8) -> Self {
        Coord { x, y }
    }

    /// Manhattan distance to another tile — the hop count under X-Y routing.
    #[must_use]
    pub fn hops_to(self, other: Coord) -> u32 {
        (self.x).abs_diff(other.x) as u32 + (self.y).abs_diff(other.y) as u32
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// Router ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Towards decreasing y.
    North,
    /// Towards increasing y.
    South,
    /// Towards increasing x.
    East,
    /// Towards decreasing x.
    West,
    /// The tile attached to this router.
    Local,
}

impl Direction {
    /// All five ports.
    pub const ALL: [Direction; 5] = [
        Direction::North,
        Direction::South,
        Direction::East,
        Direction::West,
        Direction::Local,
    ];

    /// Port index 0–4.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Direction::North => 0,
            Direction::South => 1,
            Direction::East => 2,
            Direction::West => 3,
            Direction::Local => 4,
        }
    }
}

/// X-Y routing decision: which output port at `here` leads to `dst`
/// (X first, then Y; `Local` when arrived).
#[must_use]
pub fn xy_route(here: Coord, dst: Coord) -> Direction {
    if dst.x > here.x {
        Direction::East
    } else if dst.x < here.x {
        Direction::West
    } else if dst.y > here.y {
        Direction::South
    } else if dst.y < here.y {
        Direction::North
    } else {
        Direction::Local
    }
}

/// Y-X routing decision: the alternate dimension order (Y first, then X),
/// used when a recalled packet retries around a failed X-path link.
#[must_use]
pub fn yx_route(here: Coord, dst: Coord) -> Direction {
    if dst.y > here.y {
        Direction::South
    } else if dst.y < here.y {
        Direction::North
    } else if dst.x > here.x {
        Direction::East
    } else if dst.x < here.x {
        Direction::West
    } else {
        Direction::Local
    }
}

/// One flit in flight. Head flits carry the destination; body/tail flits
/// follow their packet's wormhole.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Owning packet.
    pub packet: u64,
    /// Destination tile (copied to every flit for simplicity).
    pub dst: Coord,
    /// First flit of the packet.
    pub is_head: bool,
    /// Last flit of the packet.
    pub is_tail: bool,
    /// Route Y-first instead of X-first (set on fault-retry re-injection;
    /// always `false` on the default path).
    pub yx: bool,
}

impl Flit {
    /// The output port this flit wants at `here`, honouring its dimension
    /// order.
    #[must_use]
    pub fn route_from(&self, here: Coord) -> Direction {
        if self.yx {
            yx_route(here, self.dst)
        } else {
            xy_route(here, self.dst)
        }
    }
}

/// Per-output wormhole allocation state.
#[derive(Debug, Clone, Copy, Default)]
pub struct OutputState {
    /// The packet currently owning this output, if any.
    pub owner: Option<u64>,
    /// Round-robin pointer over input ports.
    pub rr: usize,
}

/// One five-port router: an input buffer per port plus output allocation
/// state.
#[derive(Debug, Clone)]
pub struct Router {
    /// This router's coordinate.
    pub coord: Coord,
    /// Input FIFO per port.
    pub inputs: [VecDeque<Flit>; 5],
    /// Wormhole/arbitration state per output port.
    pub outputs: [OutputState; 5],
}

impl Router {
    /// Creates an empty router at `coord`.
    #[must_use]
    pub fn new(coord: Coord) -> Self {
        Router {
            coord,
            inputs: Default::default(),
            outputs: Default::default(),
        }
    }

    /// Total buffered flits (for idleness checks).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.inputs.iter().map(VecDeque::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hops_is_manhattan() {
        assert_eq!(Coord::new(0, 0).hops_to(Coord::new(3, 4)), 7);
        assert_eq!(Coord::new(5, 5).hops_to(Coord::new(5, 5)), 0);
        assert_eq!(Coord::new(4, 1).hops_to(Coord::new(1, 1)), 3);
    }

    #[test]
    fn xy_goes_x_first() {
        let here = Coord::new(2, 2);
        assert_eq!(xy_route(here, Coord::new(5, 0)), Direction::East);
        assert_eq!(xy_route(here, Coord::new(0, 5)), Direction::West);
        assert_eq!(xy_route(here, Coord::new(2, 5)), Direction::South);
        assert_eq!(xy_route(here, Coord::new(2, 0)), Direction::North);
        assert_eq!(xy_route(here, here), Direction::Local);
    }

    #[test]
    fn direction_indices_unique() {
        let mut seen = std::collections::HashSet::new();
        for d in Direction::ALL {
            assert!(seen.insert(d.index()));
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn router_starts_empty() {
        let r = Router::new(Coord::new(1, 1));
        assert_eq!(r.occupancy(), 0);
    }

    #[test]
    fn yx_goes_y_first() {
        let here = Coord::new(2, 2);
        assert_eq!(yx_route(here, Coord::new(5, 0)), Direction::North);
        assert_eq!(yx_route(here, Coord::new(0, 5)), Direction::South);
        assert_eq!(yx_route(here, Coord::new(5, 2)), Direction::East);
        assert_eq!(yx_route(here, Coord::new(0, 2)), Direction::West);
        assert_eq!(yx_route(here, here), Direction::Local);
    }

    #[test]
    fn flit_route_honours_dimension_order() {
        let f = |yx| Flit {
            packet: 0,
            dst: Coord::new(4, 4),
            is_head: true,
            is_tail: true,
            yx,
        };
        let here = Coord::new(1, 1);
        assert_eq!(f(false).route_from(here), Direction::East);
        assert_eq!(f(true).route_from(here), Direction::South);
    }
}
