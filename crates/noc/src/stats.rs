//! NoC statistics feeding the energy and performance models.

use serde::{Deserialize, Serialize};

/// Dynamic energy per flit per hop in picojoules (§5, measured with dsent).
pub const FLIT_HOP_PJ: f64 = 5.4;

/// Aggregate mesh statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NocStats {
    /// Packets injected.
    pub packets_sent: u64,
    /// Packets fully delivered.
    pub packets_delivered: u64,
    /// Flit-hop events (each flit crossing one link).
    pub flit_hops: u64,
    /// Sum of per-packet latencies (inject → tail delivery), cycles.
    pub total_latency: u64,
    /// Cycles simulated.
    pub cycles: u64,
}

impl NocStats {
    /// Mean packet latency in cycles.
    #[must_use]
    pub fn mean_latency(&self) -> f64 {
        if self.packets_delivered == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.packets_delivered as f64
        }
    }

    /// Dynamic NoC energy in picojoules.
    #[must_use]
    pub fn dynamic_pj(&self) -> f64 {
        self.flit_hops as f64 * FLIT_HOP_PJ
    }

    /// Merges another mesh's statistics into this one.
    pub fn merge(&mut self, other: &NocStats) {
        self.packets_sent += other.packets_sent;
        self.packets_delivered += other.packets_delivered;
        self.flit_hops += other.flit_hops;
        self.total_latency += other.total_latency;
        self.cycles = self.cycles.max(other.cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_latency_handles_zero() {
        assert_eq!(NocStats::default().mean_latency(), 0.0);
    }

    #[test]
    fn energy_scales_with_flit_hops() {
        let s = NocStats {
            flit_hops: 100,
            ..NocStats::default()
        };
        assert!((s.dynamic_pj() - 540.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = NocStats {
            packets_sent: 2,
            flit_hops: 10,
            cycles: 5,
            ..NocStats::default()
        };
        let b = NocStats {
            packets_sent: 3,
            flit_hops: 1,
            cycles: 9,
            ..NocStats::default()
        };
        a.merge(&b);
        assert_eq!(a.packets_sent, 5);
        assert_eq!(a.flit_hops, 11);
        assert_eq!(a.cycles, 9);
    }
}
