//! Mesh edge cases: degenerate shapes, self-delivery, saturation, and the
//! fault/watchdog paths (failed links and routers, zero-credit deadlock,
//! dropped replies).

use maicc_noc::{Coord, Direction, Mesh, NocError, NocFaultPlan, Packet, RetryPolicy};

#[test]
fn one_by_n_mesh_works() {
    let mut mesh: Mesh<u32> = Mesh::new(16, 1);
    mesh.send(Packet::new(Coord::new(0, 0), Coord::new(15, 0), 3, 1));
    let d = mesh.run_until_idle(1_000);
    assert_eq!(d.len(), 1);
}

#[test]
fn one_by_one_mesh_self_delivery() {
    let mut mesh: Mesh<u32> = Mesh::new(1, 1);
    mesh.send(Packet::new(Coord::new(0, 0), Coord::new(0, 0), 9, 7));
    let d = mesh.run_until_idle(100);
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].packet.payload, 7);
}

#[test]
fn many_packets_one_source_serialize_fairly() {
    let mut mesh: Mesh<u32> = Mesh::new(4, 1);
    for i in 0..50 {
        mesh.send(Packet::new(Coord::new(0, 0), Coord::new(3, 0), 2, i));
    }
    let d = mesh.run_until_idle(10_000);
    assert_eq!(d.len(), 50);
    // FIFO per source under wormhole: payloads arrive in order
    let payloads: Vec<u32> = d.iter().map(|x| x.packet.payload).collect();
    let mut sorted = payloads.clone();
    sorted.sort_unstable();
    assert_eq!(payloads, sorted);
}

#[test]
fn tiny_buffers_still_deliver() {
    let mut mesh: Mesh<u32> = Mesh::with_buffer(6, 6, 1);
    for i in 0..20u32 {
        mesh.send(Packet::new(
            Coord::new((i % 6) as u8, 0),
            Coord::new(5, 5),
            4,
            i,
        ));
    }
    let d = mesh.run_until_idle(100_000);
    assert_eq!(d.len(), 20);
}

// ---------------------------------------------------------------------
// Fault injection and watchdog paths
// ---------------------------------------------------------------------

#[test]
fn quiet_fault_plan_is_cycle_identical() {
    let run = |faulty: bool| {
        let mut mesh: Mesh<u32> = Mesh::new(6, 6);
        if faulty {
            mesh.attach_fault_plan(NocFaultPlan::with_seed(99));
        }
        for i in 0..12u32 {
            mesh.send(Packet::new(
                Coord::new((i % 6) as u8, (i / 6) as u8),
                Coord::new(5, 5),
                3,
                i,
            ));
        }
        let mut d = mesh.run_until_idle(10_000);
        d.sort_by_key(|x| (x.arrived_at, x.packet.payload));
        let arrivals: Vec<(u32, u64)> =
            d.iter().map(|x| (x.packet.payload, x.arrived_at)).collect();
        (arrivals, mesh.cycle(), mesh.stats().flit_hops)
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn quiet_plan_never_recalls_congested_traffic() {
    // tiny buffers + converging traffic stall packets far past the
    // retry horizon; a quiet plan must treat that as ordinary congestion
    let run = |faulty: bool| {
        let mut mesh: Mesh<u32> = Mesh::with_buffer(6, 6, 1);
        if faulty {
            mesh.attach_fault_plan(NocFaultPlan::with_seed(4).retry_after(8).max_retries(0));
        }
        for i in 0..30u32 {
            mesh.send(Packet::new(
                Coord::new((i % 6) as u8, (i / 6) as u8),
                Coord::new(5, 5),
                9,
                i,
            ));
        }
        let d = mesh.run_until_idle(200_000);
        assert_eq!(mesh.fault_stats().packets_lost, 0);
        assert_eq!(mesh.fault_stats().retries, 0);
        (d.len(), mesh.cycle(), mesh.stats().flit_hops)
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn single_row_mesh_survives_a_cut_link() {
    // 1×N mesh: cutting the only eastward path makes delivery impossible;
    // the packet must degrade to a typed loss, not a hang.
    let mut mesh: Mesh<u32> = Mesh::new(8, 1);
    mesh.attach_fault_plan(
        NocFaultPlan::none()
            .fail_link(Coord::new(3, 0), Direction::East)
            .retry_after(16)
            .max_retries(1),
    );
    mesh.send(Packet::new(Coord::new(0, 0), Coord::new(7, 0), 2, 5));
    let d = mesh
        .run_guarded(5_000, 200)
        .expect("degrades, does not wedge");
    assert!(d.is_empty(), "no path exists on a single row");
    let errs = mesh.take_errors();
    assert_eq!(errs.len(), 1);
    assert!(
        matches!(errs[0], NocError::PacketLost { retries: 1, .. }),
        "{errs:?}"
    );
    assert_eq!(mesh.fault_stats().packets_lost, 1);
    assert!(mesh.is_idle(), "lost packet leaves no residue");
}

#[test]
fn failed_x_link_reroutes_via_yx_retry() {
    // In a 2D mesh the Y-X dimension order bypasses a cut X-path link.
    let mut mesh: Mesh<u32> = Mesh::new(4, 4);
    mesh.attach_fault_plan(
        NocFaultPlan::none()
            .fail_link(Coord::new(1, 0), Direction::East)
            .retry_after(8)
            .max_retries(2),
    );
    mesh.send(Packet::new(Coord::new(0, 0), Coord::new(3, 2), 3, 9));
    let d = mesh.run_guarded(5_000, 500).expect("rerouted delivery");
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].packet.payload, 9);
    assert!(mesh.fault_stats().retries >= 1);
    assert_eq!(mesh.fault_stats().packets_lost, 0);
}

#[test]
fn failed_router_loses_traffic_through_it_only() {
    // Row 0 traffic must cross the dead router at (2, 0) and dies after
    // retries; a flow in row 3 is untouched.
    let mut mesh: Mesh<u32> = Mesh::new(4, 4);
    mesh.attach_fault_plan(
        NocFaultPlan::none()
            .fail_router(Coord::new(2, 0))
            .retry_after(8)
            .max_retries(1),
    );
    // destination *is* the dead tile: undeliverable on any route
    mesh.send(Packet::new(Coord::new(0, 0), Coord::new(2, 0), 2, 1));
    mesh.send(Packet::new(Coord::new(0, 3), Coord::new(3, 3), 2, 2));
    let d = mesh.run_guarded(5_000, 500).expect("degrades");
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].packet.payload, 2);
    let errs = mesh.take_errors();
    assert_eq!(errs.len(), 1);
    assert!(matches!(
        errs[0],
        NocError::PacketLost { src: Coord { x: 0, y: 0 }, .. }
    ));
}

#[test]
fn certain_drops_exhaust_retries_into_typed_loss() {
    let mut mesh: Mesh<u32> = Mesh::new(4, 1);
    mesh.attach_fault_plan(
        NocFaultPlan::with_seed(7)
            .drop_rate(1.0)
            .retry_after(32)
            .max_retries(2),
    );
    mesh.send(Packet::new(Coord::new(0, 0), Coord::new(3, 0), 4, 0));
    let d = mesh.run_guarded(5_000, 300).expect("degrades");
    assert!(d.is_empty());
    assert_eq!(mesh.fault_stats().packets_lost, 1);
    assert!(mesh.fault_stats().flits_dropped >= 1);
    assert_eq!(mesh.fault_stats().retries, 2);
}

#[test]
fn occasional_drops_recover_by_retry() {
    // 10% per-hop loss: some wormholes are recalled, but every packet must
    // eventually arrive or be reported — never silently vanish.
    let mut mesh: Mesh<u32> = Mesh::new(5, 5);
    mesh.attach_fault_plan(
        NocFaultPlan::with_seed(21)
            .drop_rate(0.10)
            .retry_after(64)
            .max_retries(8),
    );
    for i in 0..10u32 {
        mesh.send(Packet::new(
            Coord::new((i % 5) as u8, (i / 5) as u8),
            Coord::new(4, 4),
            3,
            i,
        ));
    }
    let d = mesh.run_guarded(100_000, 2_000).expect("drains");
    let lost = mesh.take_errors().len();
    assert_eq!(d.len() + lost, 10, "each packet delivered or reported");
    assert!(d.len() >= 5, "10% loss with retries should deliver most");
}

#[test]
fn zero_credit_mesh_wedges_naming_the_injection_queue() {
    // buffer_cap = 0: no router ever has a credit, so the very first
    // sender's injection queue is the wedge the watchdog must name.
    let mut mesh: Mesh<u32> = Mesh::with_buffer(3, 3, 0);
    mesh.send(Packet::new(Coord::new(1, 1), Coord::new(2, 2), 2, 0));
    let err = mesh.run_guarded(1_000, 50).expect_err("cannot progress");
    match err {
        NocError::Wedged {
            router,
            port,
            stalled_for,
            occupancy,
        } => {
            assert_eq!(router, Coord::new(1, 1), "names the stuck sender");
            assert_eq!(port, Direction::Local, "the injection queue");
            assert!(stalled_for >= 50);
            assert_eq!(occupancy, 2);
        }
        other => panic!("expected Wedged, got {other:?}"),
    }
}

#[test]
fn dropped_reply_wedges_waiting_router_not_generic_timeout() {
    // Request/reply over a cut reply path with retries disabled: the
    // requester's reply never arrives. The watchdog must name the router
    // actually wedged on the dead link — not report a generic budget
    // timeout.
    let mut mesh: Mesh<u32> = Mesh::new(4, 1);
    mesh.attach_fault_plan(
        NocFaultPlan::none()
            .fail_link(Coord::new(2, 0), Direction::West)
            // retries off: the stall must surface through the watchdog
            .retry_after(u64::MAX)
            .max_retries(0),
    );
    // request 0→3 arrives fine
    mesh.send(Packet::new(Coord::new(0, 0), Coord::new(3, 0), 2, 1));
    let d = mesh.run_guarded(1_000, 100).expect("request delivers");
    assert_eq!(d.len(), 1);
    // the reply 3→0 hits the cut westward link at router (2, 0)
    mesh.send(Packet::new(Coord::new(3, 0), Coord::new(0, 0), 2, 2));
    let err = mesh.run_guarded(10_000, 100).expect_err("reply is stuck");
    match err {
        NocError::Wedged { router, stalled_for, .. } => {
            assert_eq!(router, Coord::new(2, 0), "the router at the cut link");
            assert!(stalled_for >= 100);
        }
        other => panic!("expected Wedged naming the router, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// CRC + ACK/NACK retransmission (RetryPolicy)
// ---------------------------------------------------------------------

#[test]
fn corruption_without_policy_delivers_flagged() {
    // every link crossing corrupts: the receiver's CRC fails, and with no
    // retransmission policy the payload is delivered flagged as suspect
    let mut mesh: Mesh<u32> = Mesh::new(4, 1);
    mesh.attach_fault_plan(NocFaultPlan::with_seed(3).corrupt_rate(1.0));
    mesh.send(Packet::new(Coord::new(0, 0), Coord::new(3, 0), 2, 11));
    let d = mesh.run_until_idle(1_000);
    assert_eq!(d.len(), 1);
    assert!(d[0].corrupted, "CRC failure must be visible to the caller");
    assert!(mesh.fault_stats().flits_corrupted >= 1);
    assert_eq!(mesh.fault_stats().crc_rejects, 0);
}

#[test]
fn corruption_with_policy_is_nacked_and_retransmitted() {
    // moderate corruption with retransmission: every packet either
    // arrives *clean* or is reported lost — flagged deliveries are gone
    let mut mesh: Mesh<u32> = Mesh::new(5, 5);
    mesh.attach_fault_plan(NocFaultPlan::with_seed(21).corrupt_rate(0.03));
    mesh.set_retry_policy(Some(RetryPolicy {
        max_retries: 8,
        base_delay: 4,
    }));
    for i in 0..10u32 {
        mesh.send(Packet::new(
            Coord::new((i % 5) as u8, (i / 5) as u8),
            Coord::new(4, 4),
            3,
            i,
        ));
    }
    let d = mesh.run_guarded(100_000, 2_000).expect("drains");
    let lost = mesh.take_errors().len();
    assert_eq!(d.len() + lost, 10, "each packet delivered or reported");
    assert!(d.iter().all(|x| !x.corrupted), "no corrupted delivery slips through");
    assert!(mesh.fault_stats().crc_rejects >= 1, "CRC must have fired");
    assert!(d.len() >= 8, "retransmission should recover most packets");
}

#[test]
fn exhausted_crc_retries_become_typed_loss() {
    // certain corruption: every attempt is NACKed until the policy's
    // retry budget runs out, then the packet is a typed loss
    let mut mesh: Mesh<u32> = Mesh::new(4, 1);
    mesh.attach_fault_plan(NocFaultPlan::with_seed(7).corrupt_rate(1.0));
    mesh.set_retry_policy(Some(RetryPolicy {
        max_retries: 2,
        base_delay: 4,
    }));
    mesh.send(Packet::new(Coord::new(0, 0), Coord::new(3, 0), 2, 0));
    let d = mesh.run_guarded(10_000, 500).expect("degrades");
    assert!(d.is_empty());
    let errs = mesh.take_errors();
    assert!(
        matches!(errs[..], [NocError::PacketLost { retries: 2, .. }]),
        "{errs:?}"
    );
    assert_eq!(mesh.fault_stats().crc_rejects, 2);
    assert_eq!(mesh.fault_stats().packets_lost, 1);
    assert!(mesh.is_idle());
}

#[test]
fn backoff_silence_does_not_trip_the_watchdog() {
    // drop with a backoff far longer than the watchdog horizon: the quiet
    // wait must read as a scheduled retransmission, not a wedge
    let mut mesh: Mesh<u32> = Mesh::new(4, 1);
    mesh.attach_fault_plan(
        NocFaultPlan::with_seed(5)
            .drop_rate(1.0)
            .retry_after(16),
    );
    mesh.set_retry_policy(Some(RetryPolicy {
        max_retries: 2,
        base_delay: 256,
    }));
    mesh.send(Packet::new(Coord::new(0, 0), Coord::new(3, 0), 2, 0));
    // horizon 32 < base_delay 256: would wedge without backoff awareness
    let d = mesh.run_guarded(50_000, 32).expect("waits out the backoff");
    assert!(d.is_empty());
    assert_eq!(mesh.fault_stats().packets_lost, 1);
    assert_eq!(mesh.fault_stats().retries, 2);
    // the two exponential backoffs (256, 512) dominate the runtime
    assert!(mesh.cycle() >= 256 + 512, "cycle {} too early", mesh.cycle());
}

#[test]
fn policy_without_fault_plan_is_inert() {
    let run = |policy: bool| {
        let mut mesh: Mesh<u32> = Mesh::new(6, 6);
        if policy {
            mesh.set_retry_policy(Some(RetryPolicy::default()));
        }
        for i in 0..12u32 {
            mesh.send(Packet::new(
                Coord::new((i % 6) as u8, (i / 6) as u8),
                Coord::new(5, 5),
                3,
                i,
            ));
        }
        let mut d = mesh.run_until_idle(10_000);
        d.sort_by_key(|x| (x.arrived_at, x.packet.payload));
        let arrivals: Vec<(u32, u64, bool)> = d
            .iter()
            .map(|x| (x.packet.payload, x.arrived_at, x.corrupted))
            .collect();
        (arrivals, mesh.cycle(), mesh.stats().flit_hops)
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn cloned_mesh_resumes_bit_identically() {
    // checkpoint/replay support: clone a mesh mid-flight (fault RNG
    // position included) and both copies must finish identically
    let mut mesh: Mesh<u32> = Mesh::new(5, 5);
    mesh.attach_fault_plan(
        NocFaultPlan::with_seed(13)
            .drop_rate(0.05)
            .retry_after(32)
            .max_retries(4),
    );
    mesh.set_retry_policy(Some(RetryPolicy {
        max_retries: 4,
        base_delay: 8,
    }));
    for i in 0..8u32 {
        mesh.send(Packet::new(
            Coord::new((i % 5) as u8, (i / 5) as u8),
            Coord::new(4, 4),
            3,
            i,
        ));
    }
    for _ in 0..20 {
        mesh.tick();
    }
    let mut copy = mesh.clone();
    let finish = |m: &mut Mesh<u32>| {
        let mut d = m.run_until_idle(100_000);
        d.sort_by_key(|x| (x.arrived_at, x.packet.payload));
        let tail: Vec<(u32, u64)> = d.iter().map(|x| (x.packet.payload, x.arrived_at)).collect();
        (tail, m.cycle(), m.stats().flit_hops, m.fault_stats())
    };
    assert_eq!(finish(&mut mesh), finish(&mut copy));
}

#[test]
fn reseeding_changes_the_drop_schedule_deterministically() {
    let run = |salt: Option<u64>| {
        let mut mesh: Mesh<u32> = Mesh::new(5, 5);
        mesh.attach_fault_plan(NocFaultPlan::with_seed(17).drop_rate(0.2).retry_after(32));
        mesh.set_retry_policy(Some(RetryPolicy {
            max_retries: 6,
            base_delay: 4,
        }));
        if let Some(s) = salt {
            mesh.reseed_fault_rng(s);
        }
        for i in 0..10u32 {
            mesh.send(Packet::new(
                Coord::new((i % 5) as u8, (i / 5) as u8),
                Coord::new(4, 4),
                3,
                i,
            ));
        }
        mesh.run_guarded(100_000, 2_000).expect("drains");
        (mesh.cycle(), mesh.fault_stats())
    };
    assert_eq!(run(None), run(None));
    assert_eq!(run(Some(2)), run(Some(2)));
    assert_ne!(run(None), run(Some(2)));
}

#[test]
fn budget_error_reports_in_flight_traffic() {
    // a healthy but heavily loaded mesh that simply runs out of budget
    let mut mesh: Mesh<u32> = Mesh::new(8, 8);
    for i in 0..64u32 {
        mesh.send(Packet::new(
            Coord::new((i % 8) as u8, (i / 8) as u8),
            Coord::new(7, 7),
            9,
            i,
        ));
    }
    let err = mesh.run_guarded(3, 100).expect_err("3 cycles is not enough");
    assert!(matches!(err, NocError::Budget { budget: 3, in_flight } if in_flight > 0));
}
