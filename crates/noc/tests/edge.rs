//! Mesh edge cases: degenerate shapes, self-delivery, saturation.

use maicc_noc::{Coord, Mesh, Packet};

#[test]
fn one_by_n_mesh_works() {
    let mut mesh: Mesh<u32> = Mesh::new(16, 1);
    mesh.send(Packet::new(Coord::new(0, 0), Coord::new(15, 0), 3, 1));
    let d = mesh.run_until_idle(1_000);
    assert_eq!(d.len(), 1);
}

#[test]
fn one_by_one_mesh_self_delivery() {
    let mut mesh: Mesh<u32> = Mesh::new(1, 1);
    mesh.send(Packet::new(Coord::new(0, 0), Coord::new(0, 0), 9, 7));
    let d = mesh.run_until_idle(100);
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].packet.payload, 7);
}

#[test]
fn many_packets_one_source_serialize_fairly() {
    let mut mesh: Mesh<u32> = Mesh::new(4, 1);
    for i in 0..50 {
        mesh.send(Packet::new(Coord::new(0, 0), Coord::new(3, 0), 2, i));
    }
    let d = mesh.run_until_idle(10_000);
    assert_eq!(d.len(), 50);
    // FIFO per source under wormhole: payloads arrive in order
    let payloads: Vec<u32> = d.iter().map(|x| x.packet.payload).collect();
    let mut sorted = payloads.clone();
    sorted.sort_unstable();
    assert_eq!(payloads, sorted);
}

#[test]
fn tiny_buffers_still_deliver() {
    let mut mesh: Mesh<u32> = Mesh::with_buffer(6, 6, 1);
    for i in 0..20u32 {
        mesh.send(Packet::new(
            Coord::new((i % 6) as u8, 0),
            Coord::new(5, 5),
            4,
            i,
        ));
    }
    let d = mesh.run_until_idle(100_000);
    assert_eq!(d.len(), 20);
}
