//! Mesh edge cases: degenerate shapes, self-delivery, saturation, and the
//! fault/watchdog paths (failed links and routers, zero-credit deadlock,
//! dropped replies).

use maicc_noc::{Coord, Direction, Mesh, NocError, NocFaultPlan, Packet};

#[test]
fn one_by_n_mesh_works() {
    let mut mesh: Mesh<u32> = Mesh::new(16, 1);
    mesh.send(Packet::new(Coord::new(0, 0), Coord::new(15, 0), 3, 1));
    let d = mesh.run_until_idle(1_000);
    assert_eq!(d.len(), 1);
}

#[test]
fn one_by_one_mesh_self_delivery() {
    let mut mesh: Mesh<u32> = Mesh::new(1, 1);
    mesh.send(Packet::new(Coord::new(0, 0), Coord::new(0, 0), 9, 7));
    let d = mesh.run_until_idle(100);
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].packet.payload, 7);
}

#[test]
fn many_packets_one_source_serialize_fairly() {
    let mut mesh: Mesh<u32> = Mesh::new(4, 1);
    for i in 0..50 {
        mesh.send(Packet::new(Coord::new(0, 0), Coord::new(3, 0), 2, i));
    }
    let d = mesh.run_until_idle(10_000);
    assert_eq!(d.len(), 50);
    // FIFO per source under wormhole: payloads arrive in order
    let payloads: Vec<u32> = d.iter().map(|x| x.packet.payload).collect();
    let mut sorted = payloads.clone();
    sorted.sort_unstable();
    assert_eq!(payloads, sorted);
}

#[test]
fn tiny_buffers_still_deliver() {
    let mut mesh: Mesh<u32> = Mesh::with_buffer(6, 6, 1);
    for i in 0..20u32 {
        mesh.send(Packet::new(
            Coord::new((i % 6) as u8, 0),
            Coord::new(5, 5),
            4,
            i,
        ));
    }
    let d = mesh.run_until_idle(100_000);
    assert_eq!(d.len(), 20);
}

// ---------------------------------------------------------------------
// Fault injection and watchdog paths
// ---------------------------------------------------------------------

#[test]
fn quiet_fault_plan_is_cycle_identical() {
    let run = |faulty: bool| {
        let mut mesh: Mesh<u32> = Mesh::new(6, 6);
        if faulty {
            mesh.attach_fault_plan(NocFaultPlan::with_seed(99));
        }
        for i in 0..12u32 {
            mesh.send(Packet::new(
                Coord::new((i % 6) as u8, (i / 6) as u8),
                Coord::new(5, 5),
                3,
                i,
            ));
        }
        let mut d = mesh.run_until_idle(10_000);
        d.sort_by_key(|x| (x.arrived_at, x.packet.payload));
        let arrivals: Vec<(u32, u64)> =
            d.iter().map(|x| (x.packet.payload, x.arrived_at)).collect();
        (arrivals, mesh.cycle(), mesh.stats().flit_hops)
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn quiet_plan_never_recalls_congested_traffic() {
    // tiny buffers + converging traffic stall packets far past the
    // retry horizon; a quiet plan must treat that as ordinary congestion
    let run = |faulty: bool| {
        let mut mesh: Mesh<u32> = Mesh::with_buffer(6, 6, 1);
        if faulty {
            mesh.attach_fault_plan(NocFaultPlan::with_seed(4).retry_after(8).max_retries(0));
        }
        for i in 0..30u32 {
            mesh.send(Packet::new(
                Coord::new((i % 6) as u8, (i / 6) as u8),
                Coord::new(5, 5),
                9,
                i,
            ));
        }
        let d = mesh.run_until_idle(200_000);
        assert_eq!(mesh.fault_stats().packets_lost, 0);
        assert_eq!(mesh.fault_stats().retries, 0);
        (d.len(), mesh.cycle(), mesh.stats().flit_hops)
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn single_row_mesh_survives_a_cut_link() {
    // 1×N mesh: cutting the only eastward path makes delivery impossible;
    // the packet must degrade to a typed loss, not a hang.
    let mut mesh: Mesh<u32> = Mesh::new(8, 1);
    mesh.attach_fault_plan(
        NocFaultPlan::none()
            .fail_link(Coord::new(3, 0), Direction::East)
            .retry_after(16)
            .max_retries(1),
    );
    mesh.send(Packet::new(Coord::new(0, 0), Coord::new(7, 0), 2, 5));
    let d = mesh
        .run_guarded(5_000, 200)
        .expect("degrades, does not wedge");
    assert!(d.is_empty(), "no path exists on a single row");
    let errs = mesh.take_errors();
    assert_eq!(errs.len(), 1);
    assert!(
        matches!(errs[0], NocError::PacketLost { retries: 1, .. }),
        "{errs:?}"
    );
    assert_eq!(mesh.fault_stats().packets_lost, 1);
    assert!(mesh.is_idle(), "lost packet leaves no residue");
}

#[test]
fn failed_x_link_reroutes_via_yx_retry() {
    // In a 2D mesh the Y-X dimension order bypasses a cut X-path link.
    let mut mesh: Mesh<u32> = Mesh::new(4, 4);
    mesh.attach_fault_plan(
        NocFaultPlan::none()
            .fail_link(Coord::new(1, 0), Direction::East)
            .retry_after(8)
            .max_retries(2),
    );
    mesh.send(Packet::new(Coord::new(0, 0), Coord::new(3, 2), 3, 9));
    let d = mesh.run_guarded(5_000, 500).expect("rerouted delivery");
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].packet.payload, 9);
    assert!(mesh.fault_stats().retries >= 1);
    assert_eq!(mesh.fault_stats().packets_lost, 0);
}

#[test]
fn failed_router_loses_traffic_through_it_only() {
    // Row 0 traffic must cross the dead router at (2, 0) and dies after
    // retries; a flow in row 3 is untouched.
    let mut mesh: Mesh<u32> = Mesh::new(4, 4);
    mesh.attach_fault_plan(
        NocFaultPlan::none()
            .fail_router(Coord::new(2, 0))
            .retry_after(8)
            .max_retries(1),
    );
    // destination *is* the dead tile: undeliverable on any route
    mesh.send(Packet::new(Coord::new(0, 0), Coord::new(2, 0), 2, 1));
    mesh.send(Packet::new(Coord::new(0, 3), Coord::new(3, 3), 2, 2));
    let d = mesh.run_guarded(5_000, 500).expect("degrades");
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].packet.payload, 2);
    let errs = mesh.take_errors();
    assert_eq!(errs.len(), 1);
    assert!(matches!(
        errs[0],
        NocError::PacketLost { src: Coord { x: 0, y: 0 }, .. }
    ));
}

#[test]
fn certain_drops_exhaust_retries_into_typed_loss() {
    let mut mesh: Mesh<u32> = Mesh::new(4, 1);
    mesh.attach_fault_plan(
        NocFaultPlan::with_seed(7)
            .drop_rate(1.0)
            .retry_after(32)
            .max_retries(2),
    );
    mesh.send(Packet::new(Coord::new(0, 0), Coord::new(3, 0), 4, 0));
    let d = mesh.run_guarded(5_000, 300).expect("degrades");
    assert!(d.is_empty());
    assert_eq!(mesh.fault_stats().packets_lost, 1);
    assert!(mesh.fault_stats().flits_dropped >= 1);
    assert_eq!(mesh.fault_stats().retries, 2);
}

#[test]
fn occasional_drops_recover_by_retry() {
    // 10% per-hop loss: some wormholes are recalled, but every packet must
    // eventually arrive or be reported — never silently vanish.
    let mut mesh: Mesh<u32> = Mesh::new(5, 5);
    mesh.attach_fault_plan(
        NocFaultPlan::with_seed(21)
            .drop_rate(0.10)
            .retry_after(64)
            .max_retries(8),
    );
    for i in 0..10u32 {
        mesh.send(Packet::new(
            Coord::new((i % 5) as u8, (i / 5) as u8),
            Coord::new(4, 4),
            3,
            i,
        ));
    }
    let d = mesh.run_guarded(100_000, 2_000).expect("drains");
    let lost = mesh.take_errors().len();
    assert_eq!(d.len() + lost, 10, "each packet delivered or reported");
    assert!(d.len() >= 5, "10% loss with retries should deliver most");
}

#[test]
fn zero_credit_mesh_wedges_naming_the_injection_queue() {
    // buffer_cap = 0: no router ever has a credit, so the very first
    // sender's injection queue is the wedge the watchdog must name.
    let mut mesh: Mesh<u32> = Mesh::with_buffer(3, 3, 0);
    mesh.send(Packet::new(Coord::new(1, 1), Coord::new(2, 2), 2, 0));
    let err = mesh.run_guarded(1_000, 50).expect_err("cannot progress");
    match err {
        NocError::Wedged {
            router,
            port,
            stalled_for,
            occupancy,
        } => {
            assert_eq!(router, Coord::new(1, 1), "names the stuck sender");
            assert_eq!(port, Direction::Local, "the injection queue");
            assert!(stalled_for >= 50);
            assert_eq!(occupancy, 2);
        }
        other => panic!("expected Wedged, got {other:?}"),
    }
}

#[test]
fn dropped_reply_wedges_waiting_router_not_generic_timeout() {
    // Request/reply over a cut reply path with retries disabled: the
    // requester's reply never arrives. The watchdog must name the router
    // actually wedged on the dead link — not report a generic budget
    // timeout.
    let mut mesh: Mesh<u32> = Mesh::new(4, 1);
    mesh.attach_fault_plan(
        NocFaultPlan::none()
            .fail_link(Coord::new(2, 0), Direction::West)
            // retries off: the stall must surface through the watchdog
            .retry_after(u64::MAX)
            .max_retries(0),
    );
    // request 0→3 arrives fine
    mesh.send(Packet::new(Coord::new(0, 0), Coord::new(3, 0), 2, 1));
    let d = mesh.run_guarded(1_000, 100).expect("request delivers");
    assert_eq!(d.len(), 1);
    // the reply 3→0 hits the cut westward link at router (2, 0)
    mesh.send(Packet::new(Coord::new(3, 0), Coord::new(0, 0), 2, 2));
    let err = mesh.run_guarded(10_000, 100).expect_err("reply is stuck");
    match err {
        NocError::Wedged { router, stalled_for, .. } => {
            assert_eq!(router, Coord::new(2, 0), "the router at the cut link");
            assert!(stalled_for >= 100);
        }
        other => panic!("expected Wedged naming the router, got {other:?}"),
    }
}

#[test]
fn budget_error_reports_in_flight_traffic() {
    // a healthy but heavily loaded mesh that simply runs out of budget
    let mut mesh: Mesh<u32> = Mesh::new(8, 8);
    for i in 0..64u32 {
        mesh.send(Packet::new(
            Coord::new((i % 8) as u8, (i / 8) as u8),
            Coord::new(7, 7),
            9,
            i,
        ));
    }
    let err = mesh.run_guarded(3, 100).expect_err("3 cycles is not enough");
    assert!(matches!(err, NocError::Budget { budget: 3, in_flight } if in_flight > 0));
}
