#![warn(missing_docs)]

//! # maicc-obs — deterministic time-series telemetry
//!
//! One-shot serving reports hide exactly the failure modes that matter
//! over long runs: queue oscillation, cache-hit drift after failover,
//! recovery-cost accumulation. This crate turns a serving run into a
//! stream of fixed-width time windows — one JSONL record per
//! `interval_cycles` of *simulated* time — without touching the wall
//! clock or sampling anything.
//!
//! ## Determinism argument
//!
//! The [`Recorder`] never observes the simulation; the serving loops
//! *tell* it what happened, as typed events stamped with the simulated
//! cycle at which they occurred, in nondecreasing cycle order (the
//! discrete-event loops already process events in that order). Window
//! boundaries are computed from those stamps — window `k` covers the
//! half-open range `[k·I, (k+1)·I)` — never from timers. Every value
//! fed in is itself engine- and thread-invariant (counts, integer
//! latencies, ECC/NoC counters already proven invariant by the
//! equivalence matrix), so the emitted stream is byte-identical across
//! engines × thread counts by construction, exactly like the final
//! reports.
//!
//! ## Stream schema
//!
//! One JSON object per line, fields in fixed order:
//!
//! ```text
//! {"interval": k, "start": k*I, "end": (k+1)*I,
//!  "arrivals": n, "admissions": n, "completions": n, "sheds": n,
//!  "lost": n, "failovers": n,
//!  "latency_cycles": {"p50": n, "p99": n},          // over this window's completions
//!  "queue_depth": {"hard": n, "soft": n, "best_effort": n},  // sample-and-hold
//!  "cache": {"hits": n, "misses": n, "evictions": n, "llc_hits": n,
//!            "prefetch_issued": n, "prefetch_used": n, "prefetch_canceled": n},
//!  "retired_tiles": n, "ecc_corrected": n, "noc_retransmits": n,
//!  "heartbeat": {"faults": n, "detections": n, "rejoins": n},
//!  "fabrics_up": "1011"}                            // one char per fabric
//! ```
//!
//! Counter fields are *per-window deltas*: summing any of them across
//! all lines reproduces the corresponding final-report total exactly
//! (no double-count, no loss — the recorder is incremented at the same
//! program points that feed the report). `queue_depth` is the held
//! value at the window's close (carried forward through empty
//! windows); `latency_cycles` percentiles are nearest-rank over the
//! completions that landed in the window, `0` when none did. Empty
//! intervals are emitted, not skipped, so trajectory analysis can
//! index windows by time.

/// Cumulative weight-cache counters, snapshotted by the serving layer.
///
/// The recorder diffs successive snapshots internally, so callers pass
/// the running totals they already have; only integer activity
/// counters appear (prefetch energy is a float and already reported
/// once in the final report).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSample {
    /// Admissions that found the model's weights resident.
    pub hits: u64,
    /// Admissions that paid a tier load.
    pub misses: u64,
    /// Resident sets displaced by cold placements or tile retirement.
    pub evictions: u64,
    /// Cold loads served from the modeled LLC tier instead of DRAM.
    pub llc_hits: u64,
    /// Speculative streams issued.
    pub prefetch_issued: u64,
    /// Speculative streams whose model was then actually requested.
    pub prefetch_used: u64,
    /// Speculative streams cancelled by a competing cold placement.
    pub prefetch_canceled: u64,
}

impl CacheSample {
    fn delta(self, prev: CacheSample) -> CacheSample {
        CacheSample {
            hits: self.hits.saturating_sub(prev.hits),
            misses: self.misses.saturating_sub(prev.misses),
            evictions: self.evictions.saturating_sub(prev.evictions),
            llc_hits: self.llc_hits.saturating_sub(prev.llc_hits),
            prefetch_issued: self.prefetch_issued.saturating_sub(prev.prefetch_issued),
            prefetch_used: self.prefetch_used.saturating_sub(prev.prefetch_used),
            prefetch_canceled: self.prefetch_canceled.saturating_sub(prev.prefetch_canceled),
        }
    }

    /// Adds another sample's counters into this one — merging the
    /// per-fabric snapshots of a cluster into one cumulative sample.
    pub fn add(&mut self, d: CacheSample) {
        self.hits += d.hits;
        self.misses += d.misses;
        self.evictions += d.evictions;
        self.llc_hits += d.llc_hits;
        self.prefetch_issued += d.prefetch_issued;
        self.prefetch_used += d.prefetch_used;
        self.prefetch_canceled += d.prefetch_canceled;
    }
}

/// One accumulating window's counters.
#[derive(Debug, Default)]
struct Window {
    arrivals: u64,
    admissions: u64,
    completions: u64,
    sheds: u64,
    lost: u64,
    failovers: u64,
    retired_tiles: u64,
    ecc_corrected: u64,
    noc_retransmits: u64,
    faults: u64,
    detections: u64,
    rejoins: u64,
    cache: CacheSample,
    latencies: Vec<u64>,
}

/// Nearest-rank percentile of a **sorted** slice; 0 for an empty one
/// (mirrors the SLO accountant so window figures are comparable with
/// report figures).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The interval metrics collector.
///
/// Construct one per run, feed it events in nondecreasing cycle order,
/// and call [`Recorder::finish`] with the run's last event cycle to
/// obtain the JSONL stream. Windows are flushed lazily: an event at
/// cycle `c` first emits every window that closed at or before `c`.
#[derive(Debug)]
pub struct Recorder {
    interval: u64,
    window: u64,
    cur: Window,
    depth: [u64; 3],
    up: Vec<bool>,
    snap: CacheSample,
    out: String,
}

impl Recorder {
    /// A recorder emitting one record per `interval_cycles` of
    /// simulated time, tracking `fabrics` liveness bits (pass 1 for
    /// single-fabric serving). A zero interval is clamped to 1.
    #[must_use]
    pub fn new(interval_cycles: u64, fabrics: usize) -> Self {
        Recorder {
            interval: interval_cycles.max(1),
            window: 0,
            cur: Window::default(),
            depth: [0; 3],
            up: vec![true; fabrics.max(1)],
            snap: CacheSample::default(),
            out: String::new(),
        }
    }

    /// The configured interval, cycles.
    #[must_use]
    pub fn interval_cycles(&self) -> u64 {
        self.interval
    }

    fn emit(&mut self) {
        self.cur.latencies.sort_unstable();
        let p50 = percentile(&self.cur.latencies, 50.0);
        let p99 = percentile(&self.cur.latencies, 99.0);
        let up: String = self.up.iter().map(|&b| if b { '1' } else { '0' }).collect();
        let w = &self.cur;
        let start = self.window * self.interval;
        self.out.push_str(&format!(
            "{{\"interval\": {}, \"start\": {}, \"end\": {}, \
             \"arrivals\": {}, \"admissions\": {}, \"completions\": {}, \
             \"sheds\": {}, \"lost\": {}, \"failovers\": {}, \
             \"latency_cycles\": {{\"p50\": {p50}, \"p99\": {p99}}}, \
             \"queue_depth\": {{\"hard\": {}, \"soft\": {}, \"best_effort\": {}}}, \
             \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
             \"llc_hits\": {}, \"prefetch_issued\": {}, \"prefetch_used\": {}, \
             \"prefetch_canceled\": {}}}, \
             \"retired_tiles\": {}, \"ecc_corrected\": {}, \"noc_retransmits\": {}, \
             \"heartbeat\": {{\"faults\": {}, \"detections\": {}, \"rejoins\": {}}}, \
             \"fabrics_up\": \"{up}\"}}\n",
            self.window,
            start,
            start + self.interval,
            w.arrivals,
            w.admissions,
            w.completions,
            w.sheds,
            w.lost,
            w.failovers,
            self.depth[0],
            self.depth[1],
            self.depth[2],
            w.cache.hits,
            w.cache.misses,
            w.cache.evictions,
            w.cache.llc_hits,
            w.cache.prefetch_issued,
            w.cache.prefetch_used,
            w.cache.prefetch_canceled,
            w.retired_tiles,
            w.ecc_corrected,
            w.noc_retransmits,
            w.faults,
            w.detections,
            w.rejoins,
        ));
        self.cur = Window::default();
    }

    /// Flushes every window that closed strictly before `cycle`'s
    /// window, so the current window is the one containing `cycle`.
    fn advance_to(&mut self, cycle: u64) {
        let target = cycle / self.interval;
        while self.window < target {
            self.emit();
            self.window += 1;
        }
    }

    /// A request arrived at `cycle`.
    pub fn arrival(&mut self, cycle: u64) {
        self.advance_to(cycle);
        self.cur.arrivals += 1;
    }

    /// A request was admitted onto tiles at `cycle`. The run's ECC
    /// corrections, NoC retransmissions, and any tiles its recovery
    /// retired are attributed to the admission window.
    pub fn admission(
        &mut self,
        cycle: u64,
        ecc_corrected: u64,
        noc_retransmits: u64,
        retired_tiles: u64,
    ) {
        self.advance_to(cycle);
        self.cur.admissions += 1;
        self.cur.ecc_corrected += ecc_corrected;
        self.cur.noc_retransmits += noc_retransmits;
        self.cur.retired_tiles += retired_tiles;
    }

    /// Tiles left the schedulable pool at `cycle` outside an admission
    /// (fabric-level tile-bank loss).
    pub fn retired(&mut self, cycle: u64, tiles: u64) {
        self.advance_to(cycle);
        self.cur.retired_tiles += tiles;
    }

    /// A request finished with the given end-to-end latency at `cycle`.
    pub fn completion(&mut self, cycle: u64, latency_cycles: u64) {
        self.advance_to(cycle);
        self.cur.completions += 1;
        self.cur.latencies.push(latency_cycles);
    }

    /// Admission control deliberately shed a request at `cycle`.
    pub fn shed(&mut self, cycle: u64) {
        self.advance_to(cycle);
        self.cur.sheds += 1;
    }

    /// A request was dropped unrecoverably (not a shed) at `cycle`.
    pub fn lost(&mut self, cycle: u64) {
        self.advance_to(cycle);
        self.cur.lost += 1;
    }

    /// A request was re-dispatched to another fabric at `cycle`.
    pub fn failover(&mut self, cycle: u64) {
        self.advance_to(cycle);
        self.cur.failovers += 1;
    }

    /// A fabric-level fault fired at `cycle`; `down` marks the fabric
    /// as no longer alive (outages do, brownouts and tile losses
    /// don't).
    pub fn fault(&mut self, cycle: u64, fabric: usize, down: bool) {
        self.advance_to(cycle);
        self.cur.faults += 1;
        if down {
            if let Some(b) = self.up.get_mut(fabric) {
                *b = false;
            }
        }
    }

    /// The heartbeat detected a dead fabric at `cycle`.
    pub fn detection(&mut self, cycle: u64, fabric: usize) {
        self.advance_to(cycle);
        self.cur.detections += 1;
        if let Some(b) = self.up.get_mut(fabric) {
            *b = false;
        }
    }

    /// A repaired fabric rejoined the routable set at `cycle`.
    pub fn rejoin(&mut self, cycle: u64, fabric: usize) {
        self.advance_to(cycle);
        self.cur.rejoins += 1;
        if let Some(b) = self.up.get_mut(fabric) {
            *b = true;
        }
    }

    /// Reports the admission-queue depth per priority tier after the
    /// event at `cycle` settled. Sample-and-hold: the value standing at
    /// a window's close is what the window reports, and it carries
    /// forward through empty windows.
    pub fn queue_depth(&mut self, cycle: u64, hard: u64, soft: u64, best_effort: u64) {
        self.advance_to(cycle);
        self.depth = [hard, soft, best_effort];
    }

    /// Synchronizes against the serving layer's *cumulative* cache
    /// counters at `cycle`; the recorder attributes the delta since the
    /// previous sync to the current window.
    pub fn cache_sync(&mut self, cycle: u64, cumulative: CacheSample) {
        self.advance_to(cycle);
        let d = cumulative.delta(self.snap);
        self.cur.cache.add(d);
        self.snap = cumulative;
    }

    /// Flushes through the window containing `end_cycle` and returns
    /// the JSONL stream. Always emits at least one window, so a run
    /// shorter than one interval still produces a single well-formed
    /// record.
    #[must_use]
    pub fn finish(mut self, end_cycle: u64) -> String {
        self.advance_to(end_cycle);
        self.emit();
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_lines(s: &str) -> usize {
        s.lines().count()
    }

    #[test]
    fn short_run_emits_a_single_well_formed_window() {
        let r = Recorder::new(50_000, 1);
        let s = r.finish(0);
        assert_eq!(count_lines(&s), 1);
        assert!(s.starts_with("{\"interval\": 0, \"start\": 0, \"end\": 50000, "));
        assert!(s.ends_with("\"fabrics_up\": \"1\"}\n"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn events_land_in_their_cycle_window() {
        let mut r = Recorder::new(100, 1);
        r.arrival(0);
        r.arrival(99); // still window 0
        r.arrival(100); // window 1
        r.completion(250, 40); // window 2
        let s = r.finish(250);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"arrivals\": 2"));
        assert!(lines[1].contains("\"arrivals\": 1"));
        assert!(lines[2].contains("\"arrivals\": 0"));
        assert!(lines[2].contains("\"completions\": 1"));
        assert!(lines[2].contains("\"latency_cycles\": {\"p50\": 40, \"p99\": 40}"));
    }

    #[test]
    fn empty_intervals_are_emitted_not_skipped() {
        let mut r = Recorder::new(10, 1);
        r.arrival(0);
        r.arrival(45);
        let s = r.finish(45);
        assert_eq!(count_lines(&s), 5, "windows 0..=4:\n{s}");
        for (i, line) in s.lines().enumerate() {
            assert!(line.contains(&format!("\"interval\": {i}, ")));
        }
    }

    #[test]
    fn queue_depth_is_sample_and_hold_across_empty_windows() {
        let mut r = Recorder::new(10, 1);
        r.queue_depth(5, 2, 1, 0);
        let s = r.finish(35);
        for line in s.lines() {
            assert!(
                line.contains("\"queue_depth\": {\"hard\": 2, \"soft\": 1, \"best_effort\": 0}"),
                "{line}"
            );
        }
    }

    #[test]
    fn cache_sync_attributes_deltas_per_window() {
        let mut r = Recorder::new(10, 1);
        r.cache_sync(
            3,
            CacheSample {
                hits: 1,
                misses: 2,
                ..CacheSample::default()
            },
        );
        r.cache_sync(
            17,
            CacheSample {
                hits: 4,
                misses: 2,
                evictions: 1,
                ..CacheSample::default()
            },
        );
        let s = r.finish(17);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("\"cache\": {\"hits\": 1, \"misses\": 2, \"evictions\": 0,"));
        assert!(lines[1].contains("\"cache\": {\"hits\": 3, \"misses\": 0, \"evictions\": 1,"));
        // deltas across all windows sum to the final cumulative counters
        let total: u64 = lines
            .iter()
            .map(|l| {
                let i = l.find("\"hits\": ").unwrap() + 8;
                l[i..].chars().take_while(char::is_ascii_digit).collect::<String>()
            })
            .map(|d| d.parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn liveness_tracks_fault_and_rejoin() {
        let mut r = Recorder::new(10, 3);
        r.fault(5, 1, true);
        r.rejoin(25, 1);
        let s = r.finish(25);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("\"fabrics_up\": \"101\""));
        assert!(lines[0].contains("\"heartbeat\": {\"faults\": 1, \"detections\": 0, \"rejoins\": 0}"));
        assert!(lines[1].contains("\"fabrics_up\": \"101\""));
        assert!(lines[2].contains("\"fabrics_up\": \"111\""));
        assert!(lines[2].contains("\"rejoins\": 1"));
    }

    #[test]
    fn brownout_fault_does_not_mark_fabric_down() {
        let mut r = Recorder::new(10, 2);
        r.fault(0, 0, false);
        let s = r.finish(0);
        assert!(s.contains("\"fabrics_up\": \"11\""));
        assert!(s.contains("\"faults\": 1"));
    }

    #[test]
    fn window_percentiles_are_nearest_rank() {
        let mut r = Recorder::new(1000, 1);
        for lat in [10, 20, 30, 40] {
            r.completion(5, lat);
        }
        let s = r.finish(5);
        assert!(s.contains("\"latency_cycles\": {\"p50\": 20, \"p99\": 40}"), "{s}");
    }

    #[test]
    fn counters_sum_across_windows() {
        let mut r = Recorder::new(7, 1);
        let mut arrivals = 0u64;
        let mut sheds = 0u64;
        for c in (0..200).step_by(13) {
            r.arrival(c);
            arrivals += 1;
            if c % 3 == 0 {
                r.shed(c);
                sheds += 1;
            }
        }
        let s = r.finish(200);
        let sum = |key: &str| -> u64 {
            s.lines()
                .map(|l| {
                    let i = l.find(key).unwrap() + key.len();
                    l[i..]
                        .chars()
                        .take_while(char::is_ascii_digit)
                        .collect::<String>()
                        .parse::<u64>()
                        .unwrap()
                })
                .sum()
        };
        assert_eq!(sum("\"arrivals\": "), arrivals);
        assert_eq!(sum("\"sheds\": "), sheds);
    }

    #[test]
    fn zero_interval_is_clamped() {
        let r = Recorder::new(0, 1);
        assert_eq!(r.interval_cycles(), 1);
        let s = r.finish(0);
        assert_eq!(count_lines(&s), 1);
    }
}
