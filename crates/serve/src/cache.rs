//! Two-tier model-weight cache for weight-stationary serving.
//!
//! MAICC's dataflow is weight-stationary: once a model's filter vectors
//! are written into CMem, inference streams ifmaps past them. The serving
//! loop historically discarded that investment on every completion and
//! re-streamed the full weight set per admitted request. This module
//! keeps weights where they already are:
//!
//! * **Hot set (resident-in-CMem)** — when a request completes (or a
//!   preemption checkpoints a victim), its tiles keep the model's weights.
//!   A later request for the same model whose resident tiles are still
//!   free is admitted *warm*: zero load cycles, zero load energy, and the
//!   identical placement, so the memoized simulation result is reused.
//! * **LLC / DRAM tier** — a cold admission streams the weight image
//!   through the modeled memory system ([`maicc_mem::tier`]): images
//!   recently streamed and still within the modeled edge-LLC capacity pay
//!   [`llc_load`] (hit latency per line), everything else pays
//!   [`dram_load`] (full activate/CAS/burst replay). Either way the
//!   fabric then pays a serialized vertical-write phase sized by the
//!   busiest computing core.
//!
//! **Eviction** is cost-aware: resident sets are protected in descending
//! *retention score* — re-load cycle cost times the model's observed
//! arrival rate over a sliding window of trace arrivals — and a cold
//! placement evicts only the unprotected sets its tiles actually overlap.
//! Under tied scores the least-recently-used set goes first.
//!
//! **Prefetch** is arrival-rate-driven: when the fabric has free tiles,
//! the highest-rate model that is neither resident nor running is
//! streamed into them speculatively; a request arriving mid-stream waits
//! only the remaining cycles, and a cold placement that needs the tiles
//! cancels the stream (counted, so prefetch accuracy is observable).
//!
//! Every decision is a pure function of trace-derived state — arrival
//! times, completion times, byte counts, tile coordinates — compared with
//! integer cross-multiplication. No wall clock, no floats in ordering, so
//! serving stays byte-identical across engines and thread counts.

use std::collections::{BTreeMap, VecDeque};

use maicc_exec::mapping::Tile;
use maicc_mem::tier::{dram_load, llc_load, LoadCost};

use crate::registry::{ModelEntry, ModelRegistry};

/// Fabric-side cycles to vertical-write one weight byte into CMem,
/// mirroring the execution framework's transpose cost
/// (`ExecConfig::transpose_per_byte`).
pub const WRITE_CYCLES_PER_BYTE: u64 = 3;

/// Energy to vertical-write one weight byte, picojoules (the CMem
/// write-driver figure `maicc_sram::energy::VERTICAL_WRITE_PJ`).
pub const WRITE_PJ_PER_BYTE: f64 = maicc_sram::energy::VERTICAL_WRITE_PJ;

/// Tuning knobs for the weight cache.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightCacheConfig {
    /// When `false`, every admission pays the full DRAM stream and no
    /// state is retained — the "cache off" arm of the benchmark, with
    /// load costs modeled but never amortized.
    pub enabled: bool,
    /// Modeled capacity of the edge-LLC weight tier, bytes. Images
    /// beyond this fall to DRAM in LRU order.
    pub llc_capacity_bytes: usize,
    /// Whether to speculatively stream a predicted model into free tiles.
    pub prefetch: bool,
    /// Arrivals per model retained for the rate estimate.
    pub arrival_window: usize,
}

impl Default for WeightCacheConfig {
    fn default() -> Self {
        WeightCacheConfig {
            enabled: true,
            llc_capacity_bytes: 64 * 1024,
            prefetch: true,
            arrival_window: 8,
        }
    }
}

/// One model's weights pinned on a set of currently-idle tiles.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidentSet {
    /// Monotonic identity (creation order).
    pub id: u64,
    /// The model whose weights the tiles hold.
    pub model: String,
    /// The exact placement, in serpentine order.
    pub tiles: Vec<Tile>,
    /// Cycle the set was last created or refreshed.
    pub last_use: u64,
    /// Cold re-load cycle cost used by the retention score.
    pub reload_cycles: u64,
    /// Whether a speculative prefetch created this set.
    pub from_prefetch: bool,
}

/// An in-flight speculative weight stream.
#[derive(Debug, Clone, PartialEq)]
struct PrefetchState {
    model: String,
    tiles: Vec<Tile>,
    done_at: u64,
    /// Cold reload cycles for the settled resident set's retention score.
    reload_cycles: u64,
}

/// Observable cache activity, reported through the SLO accountant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheCounters {
    /// Admissions that found the model's weights resident (or in-flight).
    pub hits: u64,
    /// Admissions that paid a tier load.
    pub misses: u64,
    /// Resident sets displaced by cold placements (includes sets lost to
    /// tile retirement).
    pub evictions: u64,
    /// Cold loads served from the modeled LLC tier instead of DRAM.
    pub llc_hits: u64,
    /// Speculative streams issued.
    pub prefetch_issued: u64,
    /// Speculative streams whose model was then actually requested.
    pub prefetch_used: u64,
    /// Speculative streams cancelled by a competing cold placement.
    pub prefetch_canceled: u64,
    /// Energy spent on speculative streams, picojoules (accrued to the
    /// cache, not to any single request).
    pub prefetch_pj: f64,
}

impl CacheCounters {
    /// `hits / (hits + misses)`, 0 when nothing was admitted.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        #[allow(clippy::cast_precision_loss)]
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// `prefetch_used / prefetch_issued`, 0 when none were issued.
    #[must_use]
    pub fn prefetch_accuracy(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        if self.prefetch_issued == 0 {
            0.0
        } else {
            self.prefetch_used as f64 / self.prefetch_issued as f64
        }
    }
}

/// What admitting one request would do to the cache: where it runs, what
/// the load costs, and which state changes [`WeightCache::commit`] must
/// apply. Planning is pure so schedulers can probe fit without mutating.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionPlan {
    /// The placement, in serpentine order.
    pub tiles: Vec<Tile>,
    /// Whether the weights were already on the tiles.
    pub warm: bool,
    /// Whether a cold load streamed from the LLC tier (vs. DRAM).
    pub llc_hit: bool,
    /// Load cycles/energy the request pays before compute starts (the
    /// remaining stream time, for a hit on an in-flight prefetch).
    pub load: LoadCost,
    /// Resident set consumed by a warm hit.
    hit_set: Option<u64>,
    /// Resident sets a cold placement displaces.
    evict: Vec<u64>,
    /// Whether the plan consumes the in-flight prefetch as its warm hit.
    use_prefetch: bool,
    /// Whether a cold placement overruns the in-flight prefetch's tiles.
    cancel_prefetch: bool,
}

/// The two-tier weight cache. One instance lives inside a serving run;
/// all methods take `now` in fabric cycles.
#[derive(Debug, Clone)]
pub struct WeightCache {
    cfg: WeightCacheConfig,
    next_set: u64,
    residents: Vec<ResidentSet>,
    /// LLC-tier occupancy, LRU order (front = coldest): model → bytes.
    llc: VecDeque<(String, usize)>,
    /// Recent arrival cycles per model (bounded window).
    arrivals: BTreeMap<String, VecDeque<u64>>,
    prefetch: Option<PrefetchState>,
    counters: CacheCounters,
    /// Memoized DRAM replay costs keyed by byte count.
    dram_memo: BTreeMap<usize, LoadCost>,
    /// Every tile recovery ever retired, sorted by (y, x). Prefetch
    /// target selection and cold planning exclude these defensively —
    /// the serving loop's own busy sets already contain them, but a
    /// caller-supplied placement closure that forgets a casualty must
    /// not be able to stream weights onto dead cells.
    retired: Vec<Tile>,
}

fn disjoint(a: &[Tile], b: &[Tile]) -> bool {
    a.iter().all(|t| !b.contains(t))
}

impl WeightCache {
    /// A fresh cache.
    #[must_use]
    pub fn new(cfg: WeightCacheConfig) -> Self {
        WeightCache {
            cfg,
            next_set: 0,
            residents: Vec::new(),
            llc: VecDeque::new(),
            arrivals: BTreeMap::new(),
            prefetch: None,
            counters: CacheCounters::default(),
            dram_memo: BTreeMap::new(),
            retired: Vec::new(),
        }
    }

    /// The configuration the cache was built with.
    #[must_use]
    pub fn config(&self) -> &WeightCacheConfig {
        &self.cfg
    }

    /// Activity counters so far.
    #[must_use]
    pub fn counters(&self) -> &CacheCounters {
        &self.counters
    }

    /// Current resident sets (inspection / tests).
    #[must_use]
    pub fn residents(&self) -> &[ResidentSet] {
        &self.residents
    }

    /// Whether a speculative stream is currently in flight.
    #[must_use]
    pub fn prefetch_in_flight(&self) -> Option<(&str, u64)> {
        self.prefetch.as_ref().map(|p| (p.model.as_str(), p.done_at))
    }

    /// The in-flight speculative stream's target tiles, if any.
    #[must_use]
    pub fn prefetch_tiles(&self) -> Option<&[Tile]> {
        self.prefetch.as_ref().map(|p| p.tiles.as_slice())
    }

    /// Tiles the cache knows to be retired (fault casualties).
    #[must_use]
    pub fn retired(&self) -> &[Tile] {
        &self.retired
    }

    /// Notes one trace arrival for the rate estimator.
    pub fn record_arrival(&mut self, model: &str, now: u64) {
        let q = self.arrivals.entry(model.to_string()).or_default();
        q.push_back(now);
        while q.len() > self.cfg.arrival_window {
            q.pop_front();
        }
    }

    /// Fabric-side serialized vertical-write phase for one image: the
    /// busiest core bounds the cycles, every byte costs write energy.
    #[must_use]
    pub fn write_phase(entry: &ModelEntry) -> LoadCost {
        #[allow(clippy::cast_precision_loss)]
        LoadCost {
            cycles: entry.max_tile_weight_bytes as u64 * WRITE_CYCLES_PER_BYTE,
            energy_pj: entry.weight_bytes as f64 * WRITE_PJ_PER_BYTE,
        }
    }

    fn dram_cost(&mut self, bytes: usize) -> LoadCost {
        if let Some(c) = self.dram_memo.get(&bytes) {
            return *c;
        }
        let c = dram_load(bytes);
        self.dram_memo.insert(bytes, c);
        c
    }

    /// Full cold (DRAM + write) reload cycles for a model — the retention
    /// score's cost term.
    fn reload_cycles(&mut self, entry: &ModelEntry) -> u64 {
        self.dram_cost(entry.weight_bytes)
            .plus(Self::write_phase(entry))
            .cycles
    }

    /// Cost of the tier stream + write phase a cold admission would pay
    /// right now, and whether it comes from the LLC tier.
    #[must_use]
    pub fn tier_cost(&mut self, entry: &ModelEntry) -> (LoadCost, bool) {
        let llc_hit = self.cfg.enabled && self.llc.iter().any(|(m, _)| m == &entry.name);
        let stream = if llc_hit {
            llc_load(entry.weight_bytes)
        } else {
            self.dram_cost(entry.weight_bytes)
        };
        (stream.plus(Self::write_phase(entry)), llc_hit)
    }

    /// Load cycles the scheduler should assume for ordering and
    /// deadline-shed decisions: zero when the model's weights are
    /// resident or being prefetched, the tier cost otherwise. Pure, so
    /// policy picks can probe every queued request without mutating.
    #[must_use]
    pub fn load_estimate(&self, entry: &ModelEntry) -> u64 {
        if self.cfg.enabled {
            if self.residents.iter().any(|s| s.model == entry.name) {
                return 0;
            }
            if let Some(p) = &self.prefetch {
                if p.model == entry.name {
                    return 0;
                }
            }
        }
        self.peek_tier_cost(entry).0.cycles
    }

    /// Folds a finished speculative stream into the resident hot set.
    pub fn settle_prefetch(&mut self, now: u64) {
        let done = matches!(&self.prefetch, Some(p) if p.done_at <= now);
        if done {
            let p = self.prefetch.take().expect("checked above");
            let id = self.next_set;
            self.next_set += 1;
            self.residents.push(ResidentSet {
                id,
                model: p.model,
                tiles: p.tiles,
                last_use: p.done_at,
                reload_cycles: p.reload_cycles,
                from_prefetch: true,
            });
        }
    }

    /// Pins `entry`'s weights on `tiles` after a completed run (or a
    /// checkpointed preemption — the victim's weights stay put so its
    /// resume is warm).
    pub fn on_release(&mut self, entry: &ModelEntry, tiles: &[Tile], now: u64) {
        if !self.cfg.enabled || tiles.is_empty() {
            return;
        }
        let reload = self.reload_cycles(entry);
        // A resume on the same tiles refreshes the existing set instead
        // of duplicating it.
        if let Some(s) = self
            .residents
            .iter_mut()
            .find(|s| s.model == entry.name && s.tiles == tiles)
        {
            s.last_use = now;
            s.reload_cycles = reload;
            return;
        }
        let id = self.next_set;
        self.next_set += 1;
        self.residents.push(ResidentSet {
            id,
            model: entry.name.clone(),
            tiles: tiles.to_vec(),
            last_use: now,
            reload_cycles: reload,
            from_prefetch: false,
        });
    }

    /// Drops resident sets (and any in-flight prefetch) that overlap
    /// tiles fault recovery just retired — the weights died with the
    /// cells.
    pub fn retire_tiles(&mut self, retired: &[Tile]) {
        if retired.is_empty() {
            return;
        }
        let before = self.residents.len();
        self.residents.retain(|s| disjoint(&s.tiles, retired));
        self.counters.evictions += (before - self.residents.len()) as u64;
        if let Some(p) = &self.prefetch {
            if !disjoint(&p.tiles, retired) {
                self.prefetch = None;
                self.counters.prefetch_canceled += 1;
            }
        }
        // Remember the casualties: later prefetch target selection and
        // cold planning must never land a stream on them, even if the
        // caller's placement closure forgets to exclude them.
        for t in retired {
            if !self.retired.contains(t) {
                self.retired.push(*t);
            }
        }
        self.retired.sort_unstable_by_key(|t| (t.y, t.x));
    }

    /// Drops every warm state the cache holds — resident sets, the
    /// in-flight prefetch, the modeled LLC tier, and the arrival-rate
    /// window — while keeping the activity counters and the retired-tile
    /// memory. A cluster fabric that suffers a whole-fabric outage calls
    /// this when the failover drains it: the weights died with the
    /// power, so the fabric rejoins cold.
    pub fn invalidate(&mut self) {
        self.counters.evictions += self.residents.len() as u64;
        self.residents.clear();
        if self.prefetch.take().is_some() {
            self.counters.prefetch_canceled += 1;
        }
        self.llc.clear();
        self.arrivals.clear();
    }

    /// Retention ordering: protect high score first. Score is
    /// `reload_cycles × arrivals / span` compared by u128
    /// cross-multiplication; ties fall back to LRU (later `last_use`
    /// protected first), then creation order.
    fn retention_order(&self, now: u64) -> Vec<usize> {
        let rate = |model: &str| -> (u64, u64) {
            match self.arrivals.get(model) {
                Some(q) if !q.is_empty() => {
                    let span = now.saturating_sub(*q.front().expect("non-empty")).max(1);
                    (q.len() as u64, span)
                }
                _ => (0, 1),
            }
        };
        let mut order: Vec<usize> = (0..self.residents.len()).collect();
        order.sort_by(|&ia, &ib| {
            let (a, b) = (&self.residents[ia], &self.residents[ib]);
            let (ca, sa) = rate(&a.model);
            let (cb, sb) = rate(&b.model);
            let score_a = u128::from(a.reload_cycles) * u128::from(ca) * u128::from(sb);
            let score_b = u128::from(b.reload_cycles) * u128::from(cb) * u128::from(sa);
            score_b
                .cmp(&score_a)
                .then(b.last_use.cmp(&a.last_use))
                .then(a.id.cmp(&b.id))
        });
        order
    }

    /// Plans one admission. `place` maps (tiles needed, extra tiles to
    /// avoid beyond the scheduler's own busy set) to a placement; `busy`
    /// is that busy set (pool mask + degraded + running tiles). Returns
    /// `None` when the model cannot be placed even after evicting every
    /// resident set — the scheduler head-blocks exactly as before.
    ///
    /// Planning never mutates: schedulers may probe and discard.
    pub fn plan<P>(
        &self,
        entry: &ModelEntry,
        now: u64,
        busy: &[Tile],
        place: P,
    ) -> Option<AdmissionPlan>
    where
        P: Fn(usize, &[Tile]) -> Option<Vec<Tile>>,
    {
        if self.cfg.enabled {
            // Warm hit on a resident set: most recently used wins.
            let best = self
                .residents
                .iter()
                .filter(|s| {
                    s.model == entry.name
                        && s.tiles.len() == entry.tiles
                        && disjoint(&s.tiles, busy)
                })
                .max_by_key(|s| (s.last_use, s.id));
            if let Some(s) = best {
                return Some(AdmissionPlan {
                    tiles: s.tiles.clone(),
                    warm: true,
                    llc_hit: false,
                    load: LoadCost::default(),
                    hit_set: Some(s.id),
                    evict: Vec::new(),
                    use_prefetch: false,
                    cancel_prefetch: false,
                });
            }
            // Warm hit on the in-flight prefetch: wait out the remainder.
            if let Some(p) = &self.prefetch {
                if p.model == entry.name
                    && p.tiles.len() == entry.tiles
                    && disjoint(&p.tiles, busy)
                {
                    return Some(AdmissionPlan {
                        tiles: p.tiles.clone(),
                        warm: true,
                        llc_hit: false,
                        load: LoadCost {
                            cycles: p.done_at.saturating_sub(now),
                            energy_pj: 0.0,
                        },
                        hit_set: None,
                        evict: Vec::new(),
                        use_prefetch: true,
                        cancel_prefetch: false,
                    });
                }
            }
        }

        // Cold: protect resident sets greedily in retention order, then
        // the prefetch, and evict only what the placement overlaps.
        // Retired tiles seed every trial so a forgetful placement
        // closure can never land weights on dead cells (the serving
        // loop's own busy set already contains them, so this changes
        // nothing there).
        place(entry.tiles, &self.retired)?; // cannot fit at all → head-block
        let mut extra: Vec<Tile> = self.retired.clone();
        let mut protected: Vec<u64> = Vec::new();
        if self.cfg.enabled {
            for i in self.retention_order(now) {
                let s = &self.residents[i];
                let mut trial = extra.clone();
                trial.extend_from_slice(&s.tiles);
                if place(entry.tiles, &trial).is_some() {
                    protected.push(s.id);
                    extra = trial;
                }
            }
        }
        let mut keep_prefetch = false;
        if let Some(p) = &self.prefetch {
            let mut trial = extra.clone();
            trial.extend_from_slice(&p.tiles);
            if place(entry.tiles, &trial).is_some() {
                keep_prefetch = true;
                extra = trial;
            }
        }
        let tiles = place(entry.tiles, &extra).expect("protected subset still fits");
        let evict: Vec<u64> = self
            .residents
            .iter()
            .filter(|s| !protected.contains(&s.id) && !disjoint(&s.tiles, &tiles))
            .map(|s| s.id)
            .collect();
        let cancel_prefetch = match &self.prefetch {
            Some(p) => !keep_prefetch && !disjoint(&p.tiles, &tiles),
            None => false,
        };
        let (load, llc_hit) = self.peek_tier_cost(entry);
        Some(AdmissionPlan {
            tiles,
            warm: false,
            llc_hit,
            load,
            hit_set: None,
            evict,
            use_prefetch: false,
            cancel_prefetch,
        })
    }

    /// Non-mutating tier cost (planning must not touch the DRAM memo).
    fn peek_tier_cost(&self, entry: &ModelEntry) -> (LoadCost, bool) {
        let llc_hit = self.cfg.enabled && self.llc.iter().any(|(m, _)| m == &entry.name);
        let stream = if llc_hit {
            llc_load(entry.weight_bytes)
        } else {
            self.dram_memo
                .get(&entry.weight_bytes)
                .copied()
                .unwrap_or_else(|| dram_load(entry.weight_bytes))
        };
        (stream.plus(Self::write_phase(entry)), llc_hit)
    }

    /// Applies a plan the scheduler decided to admit.
    pub fn commit(&mut self, plan: &AdmissionPlan, entry: &ModelEntry, now: u64) {
        let _ = now;
        if plan.warm {
            self.counters.hits += 1;
            if let Some(id) = plan.hit_set {
                if let Some(pos) = self.residents.iter().position(|s| s.id == id) {
                    let s = self.residents.remove(pos);
                    if s.from_prefetch {
                        self.counters.prefetch_used += 1;
                    }
                }
            }
            if plan.use_prefetch {
                self.prefetch = None;
                self.counters.prefetch_used += 1;
            }
            return;
        }
        self.counters.misses += 1;
        if plan.cancel_prefetch {
            self.prefetch = None;
            self.counters.prefetch_canceled += 1;
        }
        for id in &plan.evict {
            if let Some(pos) = self.residents.iter().position(|s| s.id == *id) {
                self.residents.remove(pos);
                self.counters.evictions += 1;
            }
        }
        if self.cfg.enabled {
            if plan.llc_hit {
                self.counters.llc_hits += 1;
            }
            self.touch_llc(&entry.name, entry.weight_bytes);
            // warm the DRAM memo so later planning reuses the replay
            let _ = self.dram_cost(entry.weight_bytes);
        }
    }

    /// Marks a model's image most-recently-streamed in the LLC tier and
    /// trims the tier to capacity in LRU order.
    fn touch_llc(&mut self, model: &str, bytes: usize) {
        self.llc.retain(|(m, _)| m != model);
        self.llc.push_back((model.to_string(), bytes));
        let mut total: usize = self.llc.iter().map(|(_, b)| b).sum();
        while total > self.cfg.llc_capacity_bytes {
            match self.llc.pop_front() {
                Some((_, b)) => total -= b,
                None => break,
            }
        }
    }

    /// Issues a speculative stream for the hottest non-resident,
    /// non-running model that fits the free tiles without evicting
    /// anything. `running` holds the model names currently on the
    /// fabric; `place` is the same closure [`Self::plan`] takes.
    pub fn maybe_prefetch<P>(
        &mut self,
        now: u64,
        running: &[&str],
        registry: &ModelRegistry,
        place: P,
    ) where
        P: Fn(usize, &[Tile]) -> Option<Vec<Tile>>,
    {
        if !self.cfg.enabled || !self.cfg.prefetch || self.prefetch.is_some() {
            return;
        }
        // Rank candidates by observed arrival rate (count/span, integer
        // cross-compare), name ascending on ties.
        let mut cands: Vec<(&str, u64, u64)> = Vec::new();
        for (model, q) in &self.arrivals {
            if q.len() < 2
                || running.contains(&model.as_str())
                || self.residents.iter().any(|s| &s.model == model)
                || registry.get(model).is_none()
            {
                continue;
            }
            let span = now.saturating_sub(*q.front().expect("non-empty")).max(1);
            cands.push((model.as_str(), q.len() as u64, span));
        }
        cands.sort_by(|a, b| {
            let ra = u128::from(a.1) * u128::from(b.2);
            let rb = u128::from(b.1) * u128::from(a.2);
            rb.cmp(&ra).then(a.0.cmp(b.0))
        });
        // Protect resident weights — and exclude retired tiles, so the
        // free-tile scan can never pick a casualty as a stream target
        // even under a placement closure that forgot the retirement.
        let mut protect: Vec<Tile> = self
            .residents
            .iter()
            .flat_map(|s| s.tiles.iter().copied())
            .collect();
        protect.extend_from_slice(&self.retired);
        for (model, _, _) in cands {
            let entry = registry.get(model).expect("filtered above").clone();
            if let Some(tiles) = place(entry.tiles, &protect) {
                let (load, _llc) = self.tier_cost(&entry);
                let reload = self.reload_cycles(&entry);
                self.touch_llc(&entry.name, entry.weight_bytes);
                self.counters.prefetch_issued += 1;
                self.counters.prefetch_pj += load.energy_pj;
                self.prefetch = Some(PrefetchState {
                    model: entry.name.clone(),
                    tiles,
                    done_at: now + load.cycles,
                    reload_cycles: reload,
                });
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maicc_sim::stream::StreamConfig;

    fn tile(x: u8) -> Tile {
        Tile { x, y: 0 }
    }

    /// A linear 1-D "fabric" of `n` tiles for placement in tests.
    fn place_fn(n: u8, busy: Vec<Tile>) -> impl Fn(usize, &[Tile]) -> Option<Vec<Tile>> {
        move |need, extra| {
            let free: Vec<Tile> = (0..n)
                .map(tile)
                .filter(|t| !busy.contains(t) && !extra.contains(t))
                .collect();
            (free.len() >= need).then(|| free[..need].to_vec())
        }
    }

    fn entry(name: &str, tiles: usize, bytes: usize) -> ModelEntry {
        ModelEntry {
            name: name.into(),
            stream: StreamConfig::small_test(),
            tiles,
            est_cycles: 1,
            golden: vec![],
            weight_bytes: bytes,
            max_tile_weight_bytes: bytes.min(49 * 256),
            weight_image: vec![],
        }
    }

    #[test]
    fn warm_hit_costs_nothing_and_consumes_the_set() {
        let mut c = WeightCache::new(WeightCacheConfig::default());
        let e = entry("a", 3, 9_216);
        c.on_release(&e, &[tile(0), tile(1), tile(2)], 100);
        let plan = c
            .plan(&e, 200, &[], place_fn(8, vec![]))
            .expect("fits");
        assert!(plan.warm);
        assert_eq!(plan.load, LoadCost::default());
        assert_eq!(plan.tiles, vec![tile(0), tile(1), tile(2)]);
        c.commit(&plan, &e, 200);
        assert_eq!(c.counters().hits, 1);
        assert!(c.residents().is_empty(), "hit consumes the set");
    }

    #[test]
    fn disabled_cache_always_pays_dram_and_keeps_nothing() {
        let cfg = WeightCacheConfig {
            enabled: false,
            ..WeightCacheConfig::default()
        };
        let mut c = WeightCache::new(cfg);
        let e = entry("a", 3, 9_216);
        c.on_release(&e, &[tile(0), tile(1), tile(2)], 100);
        assert!(c.residents().is_empty(), "disabled cache retains nothing");
        let plan = c.plan(&e, 200, &[], place_fn(8, vec![])).expect("fits");
        assert!(!plan.warm);
        assert!(!plan.llc_hit);
        assert!(plan.load.cycles > 0);
        c.commit(&plan, &e, 200);
        // a second admission still misses and still pays DRAM
        let plan2 = c.plan(&e, 300, &[], place_fn(8, vec![])).expect("fits");
        assert!(!plan2.warm && !plan2.llc_hit);
        assert_eq!(plan2.load, plan.load, "cost model is deterministic");
        assert_eq!(c.counters().hits, 0);
    }

    #[test]
    fn eviction_order_under_tied_costs_is_lru() {
        let mut c = WeightCache::new(WeightCacheConfig::default());
        let a = entry("a", 3, 9_216);
        let b = entry("b", 3, 9_216);
        // identical reload costs, identical (absent) arrival history —
        // scores tie, so LRU decides: `a` (older last_use) goes first.
        c.on_release(&a, &[tile(0), tile(1), tile(2)], 10);
        c.on_release(&b, &[tile(3), tile(4), tile(5)], 20);
        // a 6-tile model on a 9-tile fabric can protect exactly one set
        let big = entry("big", 6, 27_648);
        let plan = c.plan(&big, 30, &[], place_fn(9, vec![])).expect("fits");
        assert!(!plan.warm);
        c.commit(&plan, &big, 30);
        assert_eq!(c.counters().evictions, 1);
        let survivors: Vec<&str> =
            c.residents().iter().map(|s| s.model.as_str()).collect();
        assert_eq!(survivors, ["b"], "LRU victim under tied scores is `a`");
    }

    #[test]
    fn hot_model_outranks_recent_cold_one() {
        let mut c = WeightCache::new(WeightCacheConfig::default());
        let a = entry("a", 3, 9_216);
        let b = entry("b", 3, 9_216);
        // `a` arrives constantly; `b` arrived once long ago. Despite `b`
        // being more recently released, `a`'s retention score wins.
        for t in [10, 20, 30, 40] {
            c.record_arrival("a", t);
        }
        c.record_arrival("b", 1);
        c.on_release(&a, &[tile(0), tile(1), tile(2)], 15);
        c.on_release(&b, &[tile(3), tile(4), tile(5)], 25);
        let big = entry("big", 6, 27_648);
        let plan = c.plan(&big, 50, &[], place_fn(9, vec![])).expect("fits");
        c.commit(&plan, &big, 50);
        let survivors: Vec<&str> =
            c.residents().iter().map(|s| s.model.as_str()).collect();
        assert_eq!(survivors, ["a"], "arrival rate outweighs recency");
    }

    #[test]
    fn prefetch_cancelled_when_predicted_model_never_arrives() {
        let mut c = WeightCache::new(WeightCacheConfig::default());
        let x = entry("x", 3, 9_216);
        let (mut reg, _) = crate::registry::three_model_mix();
        // register `x` raw so the registry can resolve the prediction
        reg.insert_raw(x.clone());
        c.record_arrival("x", 10);
        c.record_arrival("x", 20);
        c.maybe_prefetch(30, &[], &reg, place_fn(8, vec![]));
        assert_eq!(c.counters().prefetch_issued, 1);
        assert!(c.prefetch_in_flight().is_some());
        // `x` never arrives; a cold placement for a fabric-filling model
        // overruns the speculative tiles and cancels the stream.
        let big = entry("big", 8, 36_864);
        let plan = c.plan(&big, 40, &[], place_fn(8, vec![])).expect("fits");
        c.commit(&plan, &big, 40);
        assert_eq!(c.counters().prefetch_canceled, 1);
        assert_eq!(c.counters().prefetch_used, 0);
        assert!(c.prefetch_in_flight().is_none());
        assert!((c.counters().prefetch_accuracy() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn prefetch_hit_waits_only_the_remainder() {
        let mut c = WeightCache::new(WeightCacheConfig::default());
        let x = entry("x", 3, 9_216);
        let (mut reg, _) = crate::registry::three_model_mix();
        reg.insert_raw(x.clone());
        c.record_arrival("x", 10);
        c.record_arrival("x", 20);
        c.maybe_prefetch(30, &[], &reg, place_fn(8, vec![]));
        let (_, done_at) = c.prefetch_in_flight().expect("issued");
        // the predicted model arrives mid-stream
        let plan = c
            .plan(&x, 30 + 5, &[], place_fn(8, vec![]))
            .expect("fits");
        assert!(plan.warm);
        assert_eq!(plan.load.cycles, done_at - 35);
        c.commit(&plan, &x, 35);
        assert_eq!(c.counters().prefetch_used, 1);
        assert_eq!(c.counters().hits, 1);
    }

    #[test]
    fn llc_tier_is_lru_bounded() {
        let cfg = WeightCacheConfig {
            llc_capacity_bytes: 10_000,
            ..WeightCacheConfig::default()
        };
        let mut c = WeightCache::new(cfg);
        let a = entry("a", 3, 9_216);
        let b = entry("b", 3, 9_216);
        let plan = c.plan(&a, 10, &[], place_fn(8, vec![])).expect("fits");
        assert!(!plan.llc_hit, "first stream is cold");
        c.commit(&plan, &a, 10);
        // `a` again: the image is within capacity → LLC tier hit
        let (cost_a2, hit) = c.tier_cost(&a);
        assert!(hit);
        assert!(cost_a2.cycles < c.tier_cost(&entry("a2", 3, 9_216)).0.cycles);
        // streaming `b` exceeds 10 kB capacity → `a` falls out, LRU
        let plan_b = c.plan(&b, 20, &[tile(0), tile(1), tile(2)], place_fn(8, vec![tile(0), tile(1), tile(2)])).expect("fits");
        c.commit(&plan_b, &b, 20);
        let (_, hit_a_after) = c.tier_cost(&a);
        assert!(!hit_a_after, "LRU trim dropped `a`");
    }

    #[test]
    fn retired_tiles_kill_overlapping_sets() {
        let mut c = WeightCache::new(WeightCacheConfig::default());
        let a = entry("a", 3, 9_216);
        c.on_release(&a, &[tile(0), tile(1), tile(2)], 10);
        c.retire_tiles(&[tile(1)]);
        assert!(c.residents().is_empty());
        assert_eq!(c.counters().evictions, 1);
    }

    #[test]
    fn retirement_during_prefetch_cancels_and_bans_the_tiles() {
        let mut c = WeightCache::new(WeightCacheConfig::default());
        let x = entry("x", 3, 9_216);
        let (mut reg, _) = crate::registry::three_model_mix();
        reg.insert_raw(x.clone());
        c.record_arrival("x", 10);
        c.record_arrival("x", 20);
        // a speculative stream is mid-flight on tiles 0..3 when recovery
        // remap retires tile 0 — the stream dies with the cells
        c.maybe_prefetch(30, &[], &reg, place_fn(8, vec![]));
        assert_eq!(c.prefetch_tiles(), Some(&[tile(0), tile(1), tile(2)][..]));
        c.retire_tiles(&[tile(0)]);
        assert!(c.prefetch_in_flight().is_none(), "in-flight stream cancelled");
        assert_eq!(c.counters().prefetch_canceled, 1);
        // the next target selection steers around the casualty even
        // though this placement closure never excludes it
        c.record_arrival("x", 40);
        c.maybe_prefetch(50, &[], &reg, place_fn(8, vec![]));
        let tiles = c.prefetch_tiles().expect("re-issued on healthy tiles");
        assert_eq!(tiles, &[tile(1), tile(2), tile(3)]);
        assert!(!tiles.contains(&tile(0)), "retired tile must never be a target");
    }

    #[test]
    fn cold_plan_excludes_retired_tiles_defensively() {
        let mut c = WeightCache::new(WeightCacheConfig::default());
        c.retire_tiles(&[tile(0), tile(1)]);
        let a = entry("a", 3, 9_216);
        // naive closure again: offers tiles 0.. freely
        let plan = c.plan(&a, 10, &[], place_fn(8, vec![])).expect("fits");
        assert_eq!(plan.tiles, vec![tile(2), tile(3), tile(4)]);
        // and when the casualties shrink the fabric below the footprint,
        // planning head-blocks instead of placing on dead cells
        let big = entry("big", 7, 36_864);
        assert!(c.plan(&big, 10, &[], place_fn(8, vec![])).is_none());
    }

    #[test]
    fn invalidate_drops_warm_state_but_keeps_counters_and_casualties() {
        let mut c = WeightCache::new(WeightCacheConfig::default());
        let a = entry("a", 3, 9_216);
        let plan = c.plan(&a, 10, &[], place_fn(8, vec![])).expect("fits");
        c.commit(&plan, &a, 10);
        c.on_release(&a, &plan.tiles, 20);
        c.retire_tiles(&[tile(7)]);
        assert_eq!(c.residents().len(), 1);
        c.invalidate();
        assert!(c.residents().is_empty());
        assert!(c.prefetch_in_flight().is_none());
        assert_eq!(c.counters().misses, 1, "history survives the outage");
        assert_eq!(c.counters().evictions, 1, "dropped set counted");
        assert_eq!(c.retired(), &[tile(7)], "casualties are permanent");
        // the LLC tier was cleared too: the next admission re-pays DRAM
        let plan2 = c.plan(&a, 30, &[], place_fn(8, vec![])).expect("fits");
        assert!(!plan2.warm && !plan2.llc_hit);
    }
}
