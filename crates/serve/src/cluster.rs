//! Multi-fabric cluster serving: fault domains, health-checked
//! failover, and deterministic request re-dispatch (DESIGN.md §16).
//!
//! One fabric is one fault domain. The cluster router owns the shared
//! trace and dispatches every arrival to exactly one of N independent
//! fabrics, each running the existing fair-weather `serve()` machinery
//! (same admission, same weight cache, same [`run_request`] execution
//! path — the per-run semantics literally cannot drift because both
//! layers call the one function). On top, the router adds what a single
//! fabric cannot express:
//!
//! * **Fabric-level fault injection** — a [`ClusterFaultPlan`] schedules
//!   whole-fabric outages, slow-fabric brownouts, and partial tile-bank
//!   losses at fixed simulated cycles.
//! * **Health-checked failover** — fabrics are observed through a
//!   heartbeat modeled in simulated cycles. A dead fabric keeps
//!   *receiving* work until the router misses enough heartbeats; at the
//!   detection edge the fabric is drained and its queued plus stranded
//!   (checkpointed) requests are deterministically re-dispatched to
//!   surviving replicas at elevated priority, under a bounded failover
//!   budget. The dead fabric's weight-cache warm state is invalidated —
//!   a rejoin comes back cold.
//! * **Per-model replica placement** — model `m` (by registry order) is
//!   considered "home" on fabrics `(m + j) mod N` for `j < replicas`;
//!   the router prefers home fabrics so repeat traffic concentrates
//!   where the weights are, and prewarming (optional) pins each home
//!   model's weights before serving starts so failover admits warm
//!   where possible.
//! * **Cluster-level shedding** — when aggregate believed-healthy
//!   capacity drops below a configured fraction of nominal, best-effort
//!   arrivals are shed at the router and (optionally) deadline-hopeless
//!   soft arrivals too. Hard arrivals are never cluster-shed.
//!
//! Determinism carries the same bar as every other subsystem: all
//! routing and failover decisions key on integer tuples (request id,
//! fabric index, cycle), so the merged report is byte-identical across
//! engines and node-stepping thread counts — and a zero-fault N=1
//! cluster reproduces the single-fabric [`ServeReport`] bit-for-bit
//! (the embedded serve report, pinned by a fixture test).

use std::collections::BTreeMap;

use maicc_exec::mapping::{healthy_order, zigzag_order, Tile};
use maicc_obs::{CacheSample, Recorder};

use crate::cache::{AdmissionPlan, CacheCounters, WeightCache};
use crate::overload::Tier;
use crate::registry::{ModelEntry, ModelRegistry};
use crate::server::{
    cache_sample, placement_for, run_request, validate_requests, Policy,
    RunMemo, ServeConfig,
};
use crate::slo::{percentile, CacheReport, RequestOutcome, ServeReport};
use crate::trace::Trace;
use crate::ServeError;

/// What happens to one fabric at one scheduled cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricFaultKind {
    /// The whole fabric goes dark: running work is stranded at its last
    /// checkpoint, queued work sits until the heartbeat detector fires.
    /// With a `duration` the fabric rejoins (empty and cache-cold) at
    /// the first heartbeat edge after the outage ends; `None` is a
    /// permanent kill.
    Outage {
        /// Cycles until repair; `None` is a permanent kill.
        duration: Option<u64>,
    },
    /// The fabric keeps serving but every admission in the window runs
    /// `factor`× slower (thermal throttling, a flaky power rail). The
    /// router deprioritizes it while the window lasts.
    Brownout {
        /// Service-time multiplier while the window lasts (>= 1).
        factor: u64,
        /// Window length, fabric cycles.
        duration: u64,
    },
    /// A tile bank dies: the first `tiles` tiles of the fabric's
    /// remaining healthy pool retire permanently. Overlapping runs are
    /// stranded and re-dispatched immediately — the fabric itself
    /// observes the loss, no heartbeat needed.
    TileLoss {
        /// How many tiles of the remaining healthy pool retire.
        tiles: usize,
    },
}

/// One scheduled fabric-level fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricFault {
    /// Target fabric index.
    pub fabric: usize,
    /// Fabric cycle at which the fault fires.
    pub at: u64,
    /// What happens.
    pub kind: FabricFaultKind,
}

/// The cluster's fault schedule (empty by default).
#[derive(Debug, Clone, Default)]
pub struct ClusterFaultPlan {
    /// Scheduled events; ties on `at` apply in schedule order.
    pub events: Vec<FabricFault>,
}

impl ClusterFaultPlan {
    /// A seeded rotation of continuous fault churn for soak runs:
    /// repairable outages, brownout waves, and rolling single-tile bank
    /// losses cycle across fabrics roughly every `period` cycles until
    /// `horizon`. Every outage carries a repair duration (no permanent
    /// kills) and tile losses are capped at two per fabric, so the
    /// cluster keeps recovering instead of grinding to a halt.
    #[must_use]
    pub fn churn(fabrics: usize, horizon: u64, period: u64, seed: u64) -> Self {
        let mut events = Vec::new();
        if fabrics == 0 || period == 0 {
            return ClusterFaultPlan { events };
        }
        let mut rng =
            crate::rng::Rng::new(seed.wrapping_add(0x5EED_C1DE_50A6_2026));
        let half = (period / 2).max(1);
        let mut tile_losses = vec![0u32; fabrics];
        let mut k = 0u64;
        let mut at = period;
        while at < horizon {
            #[allow(clippy::cast_possible_truncation)]
            let fabric = (k % fabrics as u64) as usize;
            let brownout = FabricFaultKind::Brownout {
                factor: 2 + rng.next_u64() % 2,
                duration: half,
            };
            let kind = match k % 3 {
                0 => FabricFaultKind::Outage {
                    duration: Some(half),
                },
                1 => brownout,
                _ if tile_losses[fabric] < 2 => {
                    tile_losses[fabric] += 1;
                    FabricFaultKind::TileLoss { tiles: 1 }
                }
                // This fabric already lost its quota of banks: another
                // brownout wave keeps the churn cadence instead.
                _ => brownout,
            };
            events.push(FabricFault { fabric, at, kind });
            k += 1;
            at += period + rng.next_u64() % half;
        }
        ClusterFaultPlan { events }
    }
}

/// Cluster-level shedding: active while believed-healthy capacity is
/// below `capacity_fraction` of nominal.
#[derive(Debug, Clone, Copy)]
pub struct ClusterShedConfig {
    /// Healthy-capacity fraction below which the router starts shedding
    /// best-effort arrivals; must be in `(0, 1]`.
    pub capacity_fraction: f64,
    /// Also shed non-Hard arrivals whose deadline is already hopeless
    /// at arrival (by the analytic estimate).
    pub shed_late: bool,
}

impl Default for ClusterShedConfig {
    fn default() -> Self {
        ClusterShedConfig {
            capacity_fraction: 0.5,
            shed_late: true,
        }
    }
}

/// Configuration of a cluster serving run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of independent fabrics (fault domains).
    pub fabrics: usize,
    /// Replica factor: model `m` is home on fabrics `(m + j) mod
    /// fabrics` for `j < replicas`. Must be in `1..=fabrics`.
    pub replicas: usize,
    /// Heartbeat period in fabric cycles; health checks land on
    /// multiples of this.
    pub heartbeat_interval: u64,
    /// Consecutive missed heartbeats before a fabric is declared dead
    /// and drained.
    pub missed_heartbeats: u32,
    /// How many times one request may be re-dispatched (failover,
    /// capacity bounce, or unrecoverable-run retry) before it is lost.
    pub failover_budget: u32,
    /// Pin each home model's weights on its replica fabrics before
    /// serving starts (weight cache only). Off by default so an N=1
    /// cluster reproduces the single-fabric report bit-for-bit.
    pub prewarm_replicas: bool,
    /// Per-tenant tiers for cluster shedding and loss accounting;
    /// unlisted tenants are [`Tier::Soft`]. Empty leaves outcome tiers
    /// unset (single-fabric parity).
    pub tiers: Vec<(String, Tier)>,
    /// Cluster-level shedding; `None` routes everything.
    pub shed: Option<ClusterShedConfig>,
    /// Scheduled fabric-level faults.
    pub faults: ClusterFaultPlan,
    /// The per-fabric serving config (policy, engine, pool carve,
    /// recovery, per-request fault churn, weight cache). Applies to
    /// every fabric; `overload` must be `None` — the cluster router is
    /// the overload layer at this scale.
    pub base: ServeConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            fabrics: 1,
            replicas: 1,
            heartbeat_interval: 50_000,
            missed_heartbeats: 2,
            failover_budget: 3,
            prewarm_replicas: false,
            tiers: Vec::new(),
            shed: None,
            faults: ClusterFaultPlan::default(),
            base: ServeConfig::default(),
        }
    }
}

/// Per-fabric activity counters for the cluster report.
#[derive(Debug, Clone)]
pub struct FabricSummary {
    /// Fabric index.
    pub fabric: usize,
    /// Requests routed here (arrivals plus received re-dispatches).
    pub dispatched: u64,
    /// Requests that completed here.
    pub completed: u64,
    /// Requests drained away by failover detection.
    pub drained: u64,
    /// Tiles this fabric lost (recovery remap plus tile-bank loss).
    pub degraded_tiles: usize,
    /// Outage events that hit this fabric.
    pub outages: u32,
    /// Brownout events that hit this fabric.
    pub brownouts: u32,
    /// Tile-bank-loss events that hit this fabric.
    pub tile_losses: u32,
    /// Whether an outage ever hit this fabric.
    pub killed: bool,
}

/// The cluster-level report: failover accounting wrapped around the
/// merged single-namespace [`ServeReport`].
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Fabric count the cluster ran with.
    pub fabrics: usize,
    /// Replica factor the router placed by.
    pub replicas: usize,
    /// Heartbeat period, fabric cycles.
    pub heartbeat_interval: u64,
    /// Missed-heartbeat threshold for declaring a fabric dead.
    pub missed_heartbeats: u32,
    /// Scheduled fabric-level fault events.
    pub faults_injected: usize,
    /// Successful re-dispatches (failover, capacity bounce, retry).
    pub failovers: u64,
    /// Requests dropped by the cluster layer or unrecoverable on every
    /// fabric they were offered to (equals the merged report's
    /// unrecoverable count).
    pub requests_lost: u64,
    /// The subset of `requests_lost` from Hard-tier tenants — the
    /// number the failover machinery exists to hold at zero.
    pub hard_requests_lost: u64,
    /// Arrivals shed at the router by cluster-level capacity shedding.
    pub cluster_shed: u64,
    /// Outage-to-detection latency, p50 over all detections.
    pub detect_p50_cycles: u64,
    /// Outage-to-detection latency, worst case.
    pub detect_max_cycles: u64,
    /// p99 end-to-end latency of completed requests that survived at
    /// least one re-dispatch — the failover-recovery tail.
    pub failover_p99_cycles: u64,
    /// Per-fabric activity breakdown, fabric order.
    pub per_fabric: Vec<FabricSummary>,
    /// The merged report over every outcome in the cluster, in the
    /// single-fabric format (pool/degraded/busy summed across fabrics).
    pub serve: ServeReport,
}

impl ClusterReport {
    /// Renders the report as a deterministic JSON document: a
    /// `"cluster"` block followed by the embedded merged `"serve"`
    /// report (byte-identical to [`ServeReport::to_json`] content).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str("  \"cluster\": {\n");
        s.push_str(&format!("    \"fabrics\": {},\n", self.fabrics));
        s.push_str(&format!("    \"replicas\": {},\n", self.replicas));
        s.push_str(&format!(
            "    \"heartbeat_interval_cycles\": {},\n",
            self.heartbeat_interval
        ));
        s.push_str(&format!(
            "    \"missed_heartbeat_threshold\": {},\n",
            self.missed_heartbeats
        ));
        s.push_str(&format!(
            "    \"faults_injected\": {},\n",
            self.faults_injected
        ));
        s.push_str(&format!("    \"failovers\": {},\n", self.failovers));
        s.push_str(&format!(
            "    \"requests_lost\": {},\n",
            self.requests_lost
        ));
        s.push_str(&format!(
            "    \"hard_requests_lost\": {},\n",
            self.hard_requests_lost
        ));
        s.push_str(&format!(
            "    \"cluster_shed\": {},\n",
            self.cluster_shed
        ));
        s.push_str(&format!(
            "    \"detect_latency_cycles\": {{\"p50\": {}, \"max\": {}}},\n",
            self.detect_p50_cycles, self.detect_max_cycles
        ));
        s.push_str(&format!(
            "    \"failover_latency_cycles\": {{\"p99\": {}}},\n",
            self.failover_p99_cycles
        ));
        s.push_str("    \"per_fabric\": [\n");
        for (i, f) in self.per_fabric.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"fabric\": {}, \"dispatched\": {}, \"completed\": {}, \
                 \"drained\": {}, \"degraded_tiles\": {}, \"outages\": {}, \
                 \"brownouts\": {}, \"tile_losses\": {}, \"killed\": {}}}{}\n",
                f.fabric,
                f.dispatched,
                f.completed,
                f.drained,
                f.degraded_tiles,
                f.outages,
                f.brownouts,
                f.tile_losses,
                f.killed,
                if i + 1 < self.per_fabric.len() { "," } else { "" }
            ));
        }
        s.push_str("    ]\n");
        s.push_str("  },\n");
        s.push_str("  \"serve\": ");
        s.push_str(self.serve.to_json().trim_end());
        s.push_str("\n}\n");
        s
    }
}

/// A request waiting in one fabric's admission queue.
#[derive(Debug, Clone)]
struct ClusterPending {
    idx: usize,
    /// Failover survivors admit ahead of fresh arrivals.
    elevated: bool,
    /// Service cycles banked at the last checkpoint of a stranded run.
    progress: u64,
    /// Fabric cycles burned in earlier stranded partial runs.
    executed: u64,
    /// Fault-salt attempt counter (re-dispatches draw fresh seeds).
    attempt: u32,
    retries: u32,
    /// Re-dispatches consumed so far (bounded by the failover budget).
    failovers: u32,
}

/// A request currently holding tiles on one fabric.
struct ClusterRun {
    idx: usize,
    admitted: u64,
    done_at: u64,
    tiles: Vec<Tile>,
    ok: bool,
    energy_pj: f64,
    progress: u64,
    executed: u64,
    ckpt_log: Vec<u64>,
    attempt: u32,
    retries: u32,
    failovers: u32,
    /// Brownout stretch in effect at admission (1 = full speed); maps
    /// elapsed wall cycles back to checkpoint-space progress.
    stretch: u64,
    warm: bool,
    load_cycles: u64,
}

/// One fault domain: a full fabric with its own pool carve, queue,
/// degradation history, and weight cache.
struct Fabric {
    mask: Vec<Tile>,
    degraded: Vec<Tile>,
    queue: Vec<ClusterPending>,
    running: Vec<ClusterRun>,
    /// Runs stranded by an undetected outage, awaiting the drain.
    stranded: Vec<ClusterPending>,
    cache: Option<WeightCache>,
    /// Ground truth: the fabric is actually alive.
    up: bool,
    /// The router's belief: heartbeats have not yet declared it dead.
    routable: bool,
    down_at: u64,
    detect_at: Option<u64>,
    rejoin_at: Option<u64>,
    slow_factor: u64,
    slow_until: u64,
    dispatched: u64,
    completed: u64,
    drained: u64,
    outages: u32,
    brownouts: u32,
    tile_losses: u32,
    killed: bool,
}

struct Cluster<'a> {
    registry: &'a ModelRegistry,
    trace: &'a Trace,
    cfg: &'a ClusterConfig,
    pool_size: usize,
    fabrics: Vec<Fabric>,
    /// Registry position per model name, for replica-home routing.
    model_index: BTreeMap<String, usize>,
    faults: Vec<FabricFault>,
    next_fault: usize,
    /// One memo table shared by every fabric: identical geometry means
    /// identical placements replay identically wherever they land.
    memo: RunMemo,
    outcomes: Vec<RequestOutcome>,
    busy_tile_cycles: u64,
    failovers: u64,
    cluster_shed: u64,
    detect_latencies: Vec<u64>,
    /// Request ids that survived at least one re-dispatch, sorted.
    failover_ids: Vec<u64>,
    /// Set when a re-dispatch landed in some queue mid-pass: the
    /// admission sweep repeats so a bounce to an earlier fabric index
    /// is not stranded until the next event.
    bounced: bool,
    /// Interval telemetry recorder, when the caller asked for one.
    obs: Option<Recorder>,
}

/// Runs a trace against a cluster of identical fabrics and returns the
/// cluster report.
///
/// # Errors
///
/// Everything [`crate::serve`] rejects, plus [`ServeError::BadConfig`]
/// for inconsistent cluster parameters: zero fabrics, a replica factor
/// of zero or above the fabric count, a zero heartbeat interval or
/// missed-heartbeat threshold, a policy other than FCFS/SJF, a base
/// config with single-fabric overload hardening attached, a fault
/// targeting a fabric outside the cluster, a zero brownout factor or
/// tile-loss count, or a shed fraction outside `(0, 1]`.
pub fn serve_cluster(
    registry: &ModelRegistry,
    trace: &Trace,
    cfg: &ClusterConfig,
) -> Result<ClusterReport, ServeError> {
    serve_cluster_impl(registry, trace, cfg, None).map(|(report, _)| report)
}

/// Runs [`serve_cluster`] with an interval telemetry recorder attached
/// and returns the report alongside the JSONL stream (one line per
/// `interval_cycles` of simulated time; see the `maicc-obs` crate for
/// the schema). The stream is byte-identical across engines and
/// stepping thread counts, exactly like the report.
///
/// # Errors
///
/// Everything [`serve_cluster`] rejects.
pub fn serve_cluster_with_obs(
    registry: &ModelRegistry,
    trace: &Trace,
    cfg: &ClusterConfig,
    interval_cycles: u64,
) -> Result<(ClusterReport, String), ServeError> {
    let obs = Recorder::new(interval_cycles, cfg.fabrics.max(1));
    serve_cluster_impl(registry, trace, cfg, Some(obs))
        .map(|(report, jsonl)| (report, jsonl.expect("recorder was attached")))
}

fn serve_cluster_impl(
    registry: &ModelRegistry,
    trace: &Trace,
    cfg: &ClusterConfig,
    obs: Option<Recorder>,
) -> Result<(ClusterReport, Option<String>), ServeError> {
    validate_cluster(cfg)?;
    validate_requests(registry, trace)?;

    let healthy = healthy_order(&cfg.base.initial_failed);
    let pool_size = if cfg.base.pool_tiles == 0 {
        healthy.len()
    } else {
        cfg.base.pool_tiles.min(healthy.len())
    };
    let pool: Vec<Tile> = healthy[..pool_size].to_vec();
    let mask: Vec<Tile> = zigzag_order()
        .into_iter()
        .filter(|t| !pool.contains(t))
        .collect();
    for r in &trace.requests {
        let entry = registry.get(&r.model).expect("validated above");
        if entry.tiles > pool_size {
            return Err(ServeError::PoolTooSmall {
                reason: format!(
                    "model `{}` needs {} tiles, pool holds {pool_size}",
                    entry.name, entry.tiles
                ),
            });
        }
    }

    let fabrics: Vec<Fabric> = (0..cfg.fabrics)
        .map(|_| Fabric {
            mask: mask.clone(),
            degraded: Vec::new(),
            queue: Vec::new(),
            running: Vec::new(),
            stranded: Vec::new(),
            cache: cfg.base.weight_cache.clone().map(WeightCache::new),
            up: true,
            routable: true,
            down_at: 0,
            detect_at: None,
            rejoin_at: None,
            slow_factor: 1,
            slow_until: 0,
            dispatched: 0,
            completed: 0,
            drained: 0,
            outages: 0,
            brownouts: 0,
            tile_losses: 0,
            killed: false,
        })
        .collect();
    let model_index: BTreeMap<String, usize> = registry
        .entries()
        .iter()
        .enumerate()
        .map(|(i, e)| (e.name.clone(), i))
        .collect();
    let mut faults = cfg.faults.events.clone();
    faults.sort_by_key(|f| f.at); // stable: ties keep schedule order

    let mut cluster = Cluster {
        registry,
        trace,
        cfg,
        pool_size,
        fabrics,
        model_index,
        faults,
        next_fault: 0,
        memo: BTreeMap::new(),
        outcomes: Vec::new(),
        busy_tile_cycles: 0,
        failovers: 0,
        cluster_shed: 0,
        detect_latencies: Vec::new(),
        failover_ids: Vec::new(),
        bounced: false,
        obs,
    };
    cluster.prewarm();
    cluster.run()?;
    let end = cluster
        .outcomes
        .iter()
        .map(|o| o.finished)
        .max()
        .unwrap_or(0);
    let jsonl = cluster.obs.take().map(|o| o.finish(end));
    let report = cluster.finish()?;
    Ok((report, jsonl))
}

fn validate_cluster(cfg: &ClusterConfig) -> Result<(), ServeError> {
    let bad = |reason: String| Err(ServeError::BadConfig { reason });
    if cfg.fabrics == 0 {
        return bad("cluster needs at least one fabric".into());
    }
    if cfg.replicas == 0 {
        return bad("replica factor must be at least 1".into());
    }
    if cfg.replicas > cfg.fabrics {
        return bad(format!(
            "replica factor {} exceeds fabric count {}",
            cfg.replicas, cfg.fabrics
        ));
    }
    if cfg.heartbeat_interval == 0 {
        return bad("heartbeat interval must be non-zero".into());
    }
    if cfg.missed_heartbeats == 0 {
        return bad("missed-heartbeat threshold must be non-zero".into());
    }
    if matches!(cfg.base.policy, Policy::Partitioned | Policy::TimeShared) {
        return bad(format!(
            "the cluster router requires fcfs or sjf, not {}",
            cfg.base.policy.label()
        ));
    }
    if cfg.base.overload.is_some() {
        return bad(
            "cluster serving does not compose with the single-fabric \
             overload loop; use cluster shedding and tiers instead"
                .into(),
        );
    }
    for ev in &cfg.faults.events {
        if ev.fabric >= cfg.fabrics {
            return bad(format!(
                "fault at cycle {} targets fabric {}, cluster has {}",
                ev.at, ev.fabric, cfg.fabrics
            ));
        }
        match ev.kind {
            FabricFaultKind::Brownout { factor: 0, .. } => {
                return bad(format!(
                    "brownout at cycle {} has slow factor 0 (must be >= 1)",
                    ev.at
                ));
            }
            FabricFaultKind::TileLoss { tiles: 0 } => {
                return bad(format!(
                    "tile-loss at cycle {} retires 0 tiles (must be >= 1)",
                    ev.at
                ));
            }
            _ => {}
        }
    }
    if let Some(shed) = &cfg.shed {
        if !(shed.capacity_fraction > 0.0 && shed.capacity_fraction <= 1.0) {
            return bad(format!(
                "cluster shed capacity fraction {} must be in (0, 1]",
                shed.capacity_fraction
            ));
        }
    }
    Ok(())
}

impl Cluster<'_> {
    /// The tier the cluster config assigns this tenant (Soft when
    /// unlisted), regardless of whether tiers are configured at all.
    fn tier_of(&self, tenant: &str) -> Tier {
        self.cfg
            .tiers
            .iter()
            .find(|(t, _)| t == tenant)
            .map_or(Tier::Soft, |(_, tier)| *tier)
    }

    /// The outcome-field tier: `None` when no tiers are configured, so
    /// an untier'd cluster report matches the single-fabric one.
    fn tier_field(&self, tenant: &str) -> Option<Tier> {
        if self.cfg.tiers.is_empty() {
            None
        } else {
            Some(self.tier_of(tenant))
        }
    }

    /// Whether fabric `g` is a replica home for registry model `mi`.
    fn is_replica(&self, mi: usize, g: usize) -> bool {
        let n = self.cfg.fabrics;
        (g + n - (mi % n)) % n < self.cfg.replicas
    }

    /// Pins each home model's weights on its replica fabrics before
    /// serving starts, so failover traffic admits warm where possible.
    fn prewarm(&mut self) {
        if !self.cfg.prewarm_replicas
            || !self
                .cfg
                .base
                .weight_cache
                .as_ref()
                .is_some_and(|c| c.enabled)
        {
            return;
        }
        let registry = self.registry;
        for fi in 0..self.cfg.fabrics {
            let mut used = self.fabrics[fi].mask.clone();
            for (mi, entry) in registry.entries().iter().enumerate() {
                if !self.is_replica(mi, fi) {
                    continue;
                }
                let Some(tiles) = placement_for(entry, &used) else {
                    continue; // fabric full: later homes stay cold
                };
                let cache = self.fabrics[fi].cache.as_mut().expect("checked");
                cache.on_release(entry, &tiles, 0);
                used.extend_from_slice(&tiles);
            }
        }
    }

    /// The earliest upcoming event across the whole cluster.
    fn next_event(&self, next_arrival: Option<u64>) -> Option<u64> {
        let mut t = next_arrival;
        let mut fold = |v: Option<u64>| {
            t = match (t, v) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, None) => a,
                (None, b) => b,
            };
        };
        fold(self.faults.get(self.next_fault).map(|f| f.at));
        for f in &self.fabrics {
            if f.up {
                fold(f.running.iter().map(|r| r.done_at).min());
            }
            fold(f.detect_at);
            fold(f.rejoin_at);
        }
        t
    }

    fn run(&mut self) -> Result<(), ServeError> {
        let mut next = 0usize;
        loop {
            let arrival = self.trace.requests.get(next).map(|r| r.arrival);
            let Some(now) = self.next_event(arrival) else {
                break;
            };
            // Phase A: completions and prefetch settlement, fabric order.
            for fi in 0..self.cfg.fabrics {
                if self.fabrics[fi].up {
                    self.complete_at(fi, now);
                    if let Some(c) = self.fabrics[fi].cache.as_mut() {
                        c.settle_prefetch(now);
                    }
                }
            }
            // Phase B: scheduled fabric faults.
            while self.next_fault < self.faults.len()
                && self.faults[self.next_fault].at == now
            {
                let ev = self.faults[self.next_fault];
                self.next_fault += 1;
                self.apply_fault(ev, now);
            }
            // Phase C: heartbeat detections drain dead fabrics.
            for fi in 0..self.cfg.fabrics {
                if self.fabrics[fi].detect_at == Some(now) {
                    self.drain(fi, now);
                }
            }
            // Phase D: repaired fabrics rejoin (empty, cache-cold).
            for fi in 0..self.cfg.fabrics {
                if self.fabrics[fi].rejoin_at == Some(now) {
                    let f = &mut self.fabrics[fi];
                    f.rejoin_at = None;
                    f.up = true;
                    f.routable = true;
                    f.detect_at = None;
                    if let Some(o) = self.obs.as_mut() {
                        o.rejoin(now, fi);
                    }
                }
            }
            // Phase E: route fresh arrivals.
            while next < self.trace.requests.len()
                && self.trace.requests[next].arrival == now
            {
                self.route_arrival(next, now);
                next += 1;
            }
            // Phase F: per-fabric admission and prefetch. The sweep
            // repeats while re-dispatches land work on fabrics whose
            // pass already ran this event.
            loop {
                self.bounced = false;
                for fi in 0..self.cfg.fabrics {
                    if self.fabrics[fi].up {
                        self.admit_pass(fi, now)?;
                        self.try_prefetch(fi, now);
                    }
                }
                if !self.bounced {
                    break;
                }
            }
            if self.obs.is_some() {
                self.obs_sync(now);
            }
        }
        Ok(())
    }

    /// Feeds the recorder the sampled state at the close of one event:
    /// queue depth per tier summed over every fabric's queued and
    /// stranded work, and the cache counters merged across fabrics.
    fn obs_sync(&mut self, now: u64) {
        let mut depth = [0u64; 3];
        for f in &self.fabrics {
            for e in f.queue.iter().chain(f.stranded.iter()) {
                let tier = self.tier_of(&self.trace.requests[e.idx].tenant);
                depth[tier.rank() as usize] += 1;
            }
        }
        let merged = self.cfg.base.weight_cache.is_some().then(|| {
            let mut total = CacheSample::default();
            for f in &self.fabrics {
                let c = f.cache.as_ref().expect("configured").counters();
                total.add(cache_sample(c));
            }
            total
        });
        if let Some(o) = self.obs.as_mut() {
            o.queue_depth(now, depth[0], depth[1], depth[2]);
            if let Some(total) = merged {
                o.cache_sync(now, total);
            }
        }
    }

    fn apply_fault(&mut self, ev: FabricFault, now: u64) {
        let h = self.cfg.heartbeat_interval;
        match ev.kind {
            FabricFaultKind::Outage { duration } => {
                if let Some(o) = self.obs.as_mut() {
                    o.fault(now, ev.fabric, true);
                }
                let missed = u64::from(self.cfg.missed_heartbeats);
                // The first heartbeat the dead fabric misses is the
                // next multiple of the interval; the router declares it
                // dead after `missed` consecutive silent edges.
                let detect = (now / h + 1)
                    .saturating_add(missed - 1)
                    .saturating_mul(h);
                let f = &mut self.fabrics[ev.fabric];
                f.outages += 1;
                f.killed = true;
                if f.up {
                    f.up = false;
                    f.down_at = now;
                    f.detect_at = Some(detect);
                    let runs: Vec<ClusterRun> = f.running.drain(..).collect();
                    for r in runs {
                        self.strand(ev.fabric, r, now);
                    }
                }
                let f = &mut self.fabrics[ev.fabric];
                if let Some(d) = duration {
                    // Repairs report in on a heartbeat edge, never
                    // before the outage was even detected.
                    let back = now.saturating_add(d).div_ceil(h).saturating_mul(h);
                    let back = back.max(f.detect_at.unwrap_or(back));
                    f.rejoin_at =
                        Some(f.rejoin_at.map_or(back, |r| r.max(back)));
                } else {
                    f.rejoin_at = None;
                }
            }
            FabricFaultKind::Brownout { factor, duration } => {
                if let Some(o) = self.obs.as_mut() {
                    o.fault(now, ev.fabric, false);
                }
                let f = &mut self.fabrics[ev.fabric];
                f.brownouts += 1;
                f.slow_factor = factor.max(1);
                f.slow_until = now.saturating_add(duration);
            }
            FabricFaultKind::TileLoss { tiles } => {
                let f = &mut self.fabrics[ev.fabric];
                f.tile_losses += 1;
                let mut avoid = f.mask.clone();
                avoid.extend_from_slice(&f.degraded);
                let order = healthy_order(&avoid);
                let n = tiles.min(order.len());
                // The bank at the head of the serpentine dies: exactly
                // the tiles placements prefer, so running work is hit.
                let lost: Vec<Tile> = order[..n].to_vec();
                let mut newly = 0u64;
                for t in &lost {
                    if !f.degraded.contains(t) {
                        f.degraded.push(*t);
                        newly += 1;
                    }
                }
                if let Some(o) = self.obs.as_mut() {
                    o.fault(now, ev.fabric, false);
                    o.retired(now, newly);
                }
                f.degraded.sort_unstable_by_key(|t| (t.y, t.x));
                if let Some(c) = f.cache.as_mut() {
                    c.retire_tiles(&f.degraded);
                }
                // Strand overlapping runs; the fabric observes its own
                // bank loss, so re-dispatch is immediate (no heartbeat).
                let hit: Vec<usize> = (0..f.running.len())
                    .filter(|&i| {
                        f.running[i].tiles.iter().any(|t| lost.contains(t))
                    })
                    .collect();
                let mut victims = Vec::with_capacity(hit.len());
                for &i in hit.iter().rev() {
                    victims.push(f.running.remove(i));
                }
                victims.sort_by_key(|r| self.trace.requests[r.idx].id);
                for r in victims {
                    self.strand(ev.fabric, r, now);
                }
                // TileLoss strands go straight back through the router.
                let pend: Vec<ClusterPending> =
                    self.fabrics[ev.fabric].stranded.drain(..).collect();
                for e in pend {
                    self.redispatch(e, now);
                }
            }
        }
    }

    /// Converts a running request into a stranded pending entry: busy
    /// accounting is refunded for the unexecuted remainder and progress
    /// rolls back to the last checkpoint at or before the cut.
    fn strand(&mut self, fi: usize, r: ClusterRun, now: u64) {
        self.busy_tile_cycles = self
            .busy_tile_cycles
            .saturating_sub((r.done_at - now) * r.tiles.len() as u64);
        let elapsed = now - r.admitted;
        let position = r.progress + elapsed / r.stretch.max(1);
        let kept = r
            .ckpt_log
            .iter()
            .copied()
            .filter(|&c| c <= position)
            .max()
            .unwrap_or(0);
        self.fabrics[fi].stranded.push(ClusterPending {
            idx: r.idx,
            elevated: true,
            progress: kept,
            executed: r.executed + elapsed,
            attempt: r.attempt,
            retries: r.retries,
            failovers: r.failovers,
        });
    }

    /// The heartbeat detector declares fabric `fi` dead: its queue and
    /// stranded runs re-dispatch to survivors, its warm state dies.
    fn drain(&mut self, fi: usize, now: u64) {
        if let Some(o) = self.obs.as_mut() {
            o.detection(now, fi);
        }
        let f = &mut self.fabrics[fi];
        f.detect_at = None;
        f.routable = false;
        self.detect_latencies.push(now - f.down_at);
        if let Some(c) = f.cache.as_mut() {
            c.invalidate();
        }
        let mut entries: Vec<ClusterPending> = f.queue.drain(..).collect();
        let mut stranded: Vec<ClusterPending> = f.stranded.drain(..).collect();
        stranded.sort_by_key(|e| self.trace.requests[e.idx].id);
        entries.extend(stranded);
        f.drained += entries.len() as u64;
        for e in entries {
            self.redispatch(e, now);
        }
    }

    /// Picks the surviving fabric a request should land on: a believed-
    /// alive fabric with capacity for the model, preferring replica
    /// homes, then full-speed fabrics, then the shortest backlog, with
    /// the fabric index as the deterministic tiebreak.
    fn pick_target(&self, entry: &ModelEntry, now: u64) -> Option<usize> {
        let mi = self.model_index.get(&entry.name).copied().unwrap_or(0);
        (0..self.cfg.fabrics)
            .filter(|&g| {
                let f = &self.fabrics[g];
                f.routable
                    && entry.tiles <= self.pool_size - f.degraded.len()
            })
            .min_by_key(|&g| {
                let f = &self.fabrics[g];
                let not_replica = u8::from(!self.is_replica(mi, g));
                let slow =
                    u8::from(f.slow_factor > 1 && now < f.slow_until);
                (not_replica, slow, f.queue.len() + f.running.len(), g)
            })
    }

    /// Re-dispatches a drained/stranded/bounced entry to a surviving
    /// fabric at elevated priority, or records it lost when the budget
    /// is exhausted or nothing can host it.
    fn redispatch(&mut self, mut e: ClusterPending, now: u64) {
        if e.failovers >= self.cfg.failover_budget {
            self.push_lost(&e, now);
            return;
        }
        let req = &self.trace.requests[e.idx];
        let entry = self.registry.get(&req.model).expect("validated");
        let Some(gi) = self.pick_target(entry, now) else {
            self.push_lost(&e, now);
            return;
        };
        let id = req.id;
        e.elevated = true;
        e.failovers += 1;
        e.retries += 1;
        e.attempt += 1;
        self.failovers += 1;
        if let Some(o) = self.obs.as_mut() {
            o.failover(now);
        }
        if let Err(pos) = self.failover_ids.binary_search(&id) {
            self.failover_ids.insert(pos, id);
        }
        let g = &mut self.fabrics[gi];
        g.dispatched += 1;
        g.queue.push(e);
        self.bounced = true;
    }

    /// Records a request the cluster could not deliver.
    fn push_lost(&mut self, e: &ClusterPending, now: u64) {
        if let Some(o) = self.obs.as_mut() {
            o.lost(now);
        }
        let req = &self.trace.requests[e.idx];
        let latency = now - req.arrival;
        let tier = self.tier_field(&req.tenant);
        self.outcomes.push(RequestOutcome {
            id: req.id,
            tenant: req.tenant.clone(),
            model: req.model.clone(),
            arrival: req.arrival,
            admitted: now,
            finished: now,
            deadline: req.deadline,
            tier,
            ok: false,
            dropped: true,
            shed: false,
            service_cycles: e.executed,
            queue_cycles: latency.saturating_sub(e.executed),
            latency_cycles: latency,
            energy_pj: 0.0,
            preemptions: 0,
            retries: e.retries,
            warm: None,
            load_cycles: 0,
        });
    }

    /// Records an arrival shed at the router.
    fn push_cluster_shed(&mut self, idx: usize, now: u64) {
        if let Some(o) = self.obs.as_mut() {
            o.shed(now);
        }
        let req = &self.trace.requests[idx];
        let latency = now - req.arrival;
        let tier = self.tier_field(&req.tenant);
        self.cluster_shed += 1;
        self.outcomes.push(RequestOutcome {
            id: req.id,
            tenant: req.tenant.clone(),
            model: req.model.clone(),
            arrival: req.arrival,
            admitted: now,
            finished: now,
            deadline: req.deadline,
            tier,
            ok: false,
            dropped: true,
            shed: true,
            service_cycles: 0,
            queue_cycles: latency,
            latency_cycles: latency,
            energy_pj: 0.0,
            preemptions: 0,
            retries: 0,
            warm: None,
            load_cycles: 0,
        });
    }

    /// Routes one fresh arrival: cluster-level shedding first, then
    /// target selection.
    fn route_arrival(&mut self, idx: usize, now: u64) {
        if let Some(o) = self.obs.as_mut() {
            o.arrival(now);
        }
        let req = &self.trace.requests[idx];
        let tier = self.tier_of(&req.tenant);
        if let Some(shed) = &self.cfg.shed {
            let nominal = self.pool_size * self.cfg.fabrics;
            let healthy: usize = self
                .fabrics
                .iter()
                .filter(|f| f.routable)
                .map(|f| self.pool_size - f.degraded.len())
                .sum();
            #[allow(clippy::cast_precision_loss)]
            let browned = (healthy as f64)
                < shed.capacity_fraction * nominal as f64;
            if browned {
                if tier == Tier::BestEffort {
                    self.push_cluster_shed(idx, now);
                    return;
                }
                if shed.shed_late && tier != Tier::Hard {
                    let entry =
                        self.registry.get(&req.model).expect("validated");
                    if req
                        .deadline
                        .is_some_and(|d| now + entry.est_cycles > d)
                    {
                        self.push_cluster_shed(idx, now);
                        return;
                    }
                }
            }
        }
        let req = &self.trace.requests[idx];
        let entry = self.registry.get(&req.model).expect("validated");
        match self.pick_target(entry, now) {
            Some(gi) => {
                let model = req.model.clone();
                let g = &mut self.fabrics[gi];
                if let Some(c) = g.cache.as_mut() {
                    c.record_arrival(&model, now);
                }
                g.dispatched += 1;
                g.queue.push(ClusterPending {
                    idx,
                    elevated: false,
                    progress: 0,
                    executed: 0,
                    attempt: 0,
                    retries: 0,
                    failovers: 0,
                });
            }
            None => {
                let e = ClusterPending {
                    idx,
                    elevated: false,
                    progress: 0,
                    executed: 0,
                    attempt: 0,
                    retries: 0,
                    failovers: 0,
                };
                self.push_lost(&e, now);
            }
        }
    }

    /// The avoid set for a fresh placement on fabric `fi`.
    fn avoid_now(&self, fi: usize) -> Vec<Tile> {
        let f = &self.fabrics[fi];
        let mut avoid = f.mask.clone();
        avoid.extend_from_slice(&f.degraded);
        for r in &f.running {
            avoid.extend_from_slice(&r.tiles);
        }
        avoid
    }

    /// The analytic service estimate on fabric `fi` (load-aware with a
    /// cache, exactly `est_cycles` without — single-fabric parity).
    fn est_for(&self, fi: usize, entry: &ModelEntry) -> u64 {
        let load = self.fabrics[fi]
            .cache
            .as_ref()
            .map_or(0, |c| c.load_estimate(entry));
        entry.est_cycles.saturating_add(load)
    }

    /// The queue position fabric `fi`'s admission wants next: failover
    /// survivors first, then the base policy's order.
    fn pick(&self, fi: usize) -> Option<usize> {
        let f = &self.fabrics[fi];
        if f.queue.is_empty() {
            return None;
        }
        (0..f.queue.len()).min_by_key(|&p| {
            let e = &f.queue[p];
            let req = &self.trace.requests[e.idx];
            let key = match self.cfg.base.policy {
                Policy::Sjf => self
                    .registry
                    .get(&req.model)
                    .map_or(u64::MAX, |m| self.est_for(fi, m))
                    .saturating_sub(e.progress),
                _ => 0,
            };
            (u8::from(!e.elevated), key, req.arrival, req.id)
        })
    }

    /// Plans a cache-mediated admission on fabric `fi` (pure).
    fn plan_for(
        &self,
        fi: usize,
        entry: &ModelEntry,
        now: u64,
    ) -> Option<AdmissionPlan> {
        let base = self.avoid_now(fi);
        let cache = self.fabrics[fi].cache.as_ref().expect("caller checked");
        cache.plan(entry, now, &base, |need, extra| {
            let mut avoid = base.clone();
            avoid.extend_from_slice(extra);
            let order = healthy_order(&avoid);
            (order.len() >= need).then(|| order[..need].to_vec())
        })
    }

    /// Lets fabric `fi`'s cache stream a predicted model into free tiles.
    fn try_prefetch(&mut self, fi: usize, now: u64) {
        if self.fabrics[fi].cache.is_none() {
            return;
        }
        let base = self.avoid_now(fi);
        let registry = self.registry;
        let f = &mut self.fabrics[fi];
        let running: Vec<&str> = f
            .running
            .iter()
            .map(|r| self.trace.requests[r.idx].model.as_str())
            .collect();
        let cache = f.cache.as_mut().expect("checked above");
        cache.maybe_prefetch(now, &running, registry, |need, extra| {
            let mut avoid = base.clone();
            avoid.extend_from_slice(extra);
            let order = healthy_order(&avoid);
            (order.len() >= need).then(|| order[..need].to_vec())
        });
    }

    /// Fabric `fi`'s admission pass: repeatedly admit the pick while it
    /// fits; a head that can never fit this fabric again (empty pool,
    /// no placement) bounces back through the router instead of
    /// head-blocking forever.
    fn admit_pass(&mut self, fi: usize, now: u64) -> Result<(), ServeError> {
        loop {
            let Some(pos) = self.pick(fi) else {
                return Ok(());
            };
            let idx = self.fabrics[fi].queue[pos].idx;
            let entry = self
                .registry
                .get(&self.trace.requests[idx].model)
                .expect("validated");
            if self.fabrics[fi].cache.is_some() {
                match self.plan_for(fi, entry, now) {
                    Some(plan) => {
                        let e = self.fabrics[fi].queue.remove(pos);
                        self.fabrics[fi]
                            .cache
                            .as_mut()
                            .expect("checked above")
                            .commit(&plan, entry, now);
                        self.admit(fi, e, now, &[], Some(&plan))?;
                    }
                    None if self.fabrics[fi].running.is_empty() => {
                        let e = self.fabrics[fi].queue.remove(pos);
                        self.redispatch(e, now);
                    }
                    None => return Ok(()),
                }
                continue;
            }
            let avoid = self.avoid_now(fi);
            if placement_for(entry, &avoid).is_none() {
                if self.fabrics[fi].running.is_empty() {
                    let e = self.fabrics[fi].queue.remove(pos);
                    self.redispatch(e, now);
                    continue;
                }
                return Ok(());
            }
            let e = self.fabrics[fi].queue.remove(pos);
            self.admit(fi, e, now, &avoid, None)?;
        }
    }

    /// Admits one entry on fabric `fi` through [`run_request`], folding
    /// casualties into that fabric's pool. A brownout in effect at
    /// admission stretches the whole service segment. An unrecoverable
    /// run goes back through the router under the failover budget.
    fn admit(
        &mut self,
        fi: usize,
        e: ClusterPending,
        now: u64,
        avoid_in: &[Tile],
        plan: Option<&AdmissionPlan>,
    ) -> Result<(), ServeError> {
        let req = &self.trace.requests[e.idx];
        let req_id = req.id;
        let entry = self.registry.get(&req.model).expect("validated");
        let (avoid, warm, load) = match plan {
            Some(pl) => (
                zigzag_order()
                    .into_iter()
                    .filter(|t| !pl.tiles.contains(t))
                    .collect::<Vec<Tile>>(),
                pl.warm,
                pl.load,
            ),
            None => (
                avoid_in.to_vec(),
                false,
                maicc_mem::tier::LoadCost::default(),
            ),
        };
        let tiles = placement_for(entry, &avoid)
            .expect("caller checked fit before admitting");
        match run_request(
            &self.cfg.base,
            &mut self.memo,
            entry,
            &avoid,
            req_id,
            e.attempt,
            warm,
        ) {
            Ok(out) => {
                let f = &mut self.fabrics[fi];
                let mut newly_degraded = 0u64;
                for t in out.newly_retired {
                    if !f.degraded.contains(&t) {
                        f.degraded.push(t);
                        newly_degraded += 1;
                    }
                }
                f.degraded.sort_unstable_by_key(|t| (t.y, t.x));
                if let Some(c) = f.cache.as_mut() {
                    c.retire_tiles(&f.degraded);
                }
                let occupied = if f.degraded.is_empty() {
                    tiles
                } else {
                    let mut post = avoid.clone();
                    post.extend(f.degraded.iter().copied());
                    match placement_for(entry, &post) {
                        Some(p) => p,
                        None => tiles
                            .into_iter()
                            .filter(|t| !f.degraded.contains(t))
                            .collect(),
                    }
                };
                let compute = if e.progress == 0 {
                    out.cycles
                } else {
                    out.cycles.saturating_sub(e.progress).max(1)
                };
                let stretch = if f.slow_factor > 1 && now < f.slow_until {
                    f.slow_factor
                } else {
                    1
                };
                let total = (compute + load.cycles).saturating_mul(stretch);
                self.busy_tile_cycles += total * occupied.len() as u64;
                f.running.push(ClusterRun {
                    idx: e.idx,
                    admitted: now,
                    done_at: now + total,
                    tiles: occupied,
                    ok: out.ok,
                    energy_pj: out.energy_pj + load.energy_pj,
                    progress: e.progress,
                    executed: e.executed,
                    ckpt_log: out.ckpt_log,
                    attempt: e.attempt,
                    retries: e.retries,
                    failovers: e.failovers,
                    stretch,
                    warm,
                    load_cycles: load.cycles,
                });
                if let Some(o) = self.obs.as_mut() {
                    o.admission(
                        now,
                        out.ecc_corrected,
                        out.noc_retransmits,
                        newly_degraded,
                    );
                }
                Ok(())
            }
            Err(ServeError::Sim(_)) => {
                // Unrecoverable on this fabric: the failover budget
                // covers sim deaths too — re-dispatch with a fresh
                // attempt salt while it lasts, lose the request after.
                self.redispatch(
                    ClusterPending {
                        progress: 0,
                        ..e
                    },
                    now,
                );
                Ok(())
            }
            Err(err) => Err(err),
        }
    }

    /// Retires every run on fabric `fi` finishing exactly at `now` (in
    /// request-id order) and records its outcome.
    fn complete_at(&mut self, fi: usize, now: u64) {
        let registry = self.registry;
        let trace = self.trace;
        let has_cache = self.fabrics[fi].cache.is_some();
        let tiers_on = !self.cfg.tiers.is_empty();
        let f = &mut self.fabrics[fi];
        let done: Vec<usize> = (0..f.running.len())
            .filter(|&i| f.running[i].done_at == now)
            .collect();
        let mut finished: Vec<ClusterRun> = Vec::with_capacity(done.len());
        for &i in done.iter().rev() {
            finished.push(f.running.remove(i));
        }
        finished.sort_by_key(|run| trace.requests[run.idx].id);
        for run in finished {
            let req = &trace.requests[run.idx];
            if let Some(cache) = f.cache.as_mut() {
                let entry = registry.get(&req.model).expect("validated");
                cache.on_release(entry, &run.tiles, now);
            }
            f.completed += 1;
            let segment = run.done_at - run.admitted;
            let service = run.executed + segment;
            let latency = now - req.arrival;
            let tier = if tiers_on {
                Some(
                    self.cfg
                        .tiers
                        .iter()
                        .find(|(t, _)| *t == req.tenant)
                        .map_or(Tier::Soft, |(_, tier)| *tier),
                )
            } else {
                None
            };
            self.outcomes.push(RequestOutcome {
                id: req.id,
                tenant: req.tenant.clone(),
                model: req.model.clone(),
                arrival: req.arrival,
                admitted: run.admitted,
                finished: now,
                deadline: req.deadline,
                tier,
                ok: run.ok,
                dropped: false,
                shed: false,
                service_cycles: service,
                queue_cycles: latency.saturating_sub(service),
                latency_cycles: latency,
                energy_pj: run.energy_pj,
                preemptions: 0,
                retries: run.retries,
                warm: if has_cache { Some(run.warm) } else { None },
                load_cycles: run.load_cycles,
            });
            if let Some(o) = self.obs.as_mut() {
                o.completion(now, latency);
            }
        }
    }

    /// Builds the final cluster report: failover accounting plus the
    /// merged serve report over every outcome.
    fn finish(self) -> Result<ClusterReport, ServeError> {
        let requests_lost = self
            .outcomes
            .iter()
            .filter(|o| o.dropped && !o.shed)
            .count() as u64;
        let hard_requests_lost = self
            .outcomes
            .iter()
            .filter(|o| o.dropped && !o.shed && o.tier == Some(Tier::Hard))
            .count() as u64;
        let mut detect = self.detect_latencies.clone();
        detect.sort_unstable();
        let mut failover_lat: Vec<u64> = self
            .outcomes
            .iter()
            .filter(|o| {
                !o.dropped && self.failover_ids.binary_search(&o.id).is_ok()
            })
            .map(|o| o.latency_cycles)
            .collect();
        failover_lat.sort_unstable();

        let cache_report = if self.cfg.base.weight_cache.is_some() {
            let mut total = CacheCounters::default();
            for f in &self.fabrics {
                let c = f.cache.as_ref().expect("configured").counters();
                total.hits += c.hits;
                total.misses += c.misses;
                total.evictions += c.evictions;
                total.llc_hits += c.llc_hits;
                total.prefetch_issued += c.prefetch_issued;
                total.prefetch_used += c.prefetch_used;
                total.prefetch_canceled += c.prefetch_canceled;
                total.prefetch_pj += c.prefetch_pj;
            }
            Some(CacheReport::build(&total, &self.outcomes))
        } else {
            None
        };
        let per_fabric: Vec<FabricSummary> = self
            .fabrics
            .iter()
            .enumerate()
            .map(|(i, f)| FabricSummary {
                fabric: i,
                dispatched: f.dispatched,
                completed: f.completed,
                drained: f.drained,
                degraded_tiles: f.degraded.len(),
                outages: f.outages,
                brownouts: f.brownouts,
                tile_losses: f.tile_losses,
                killed: f.killed,
            })
            .collect();
        let degraded_total: usize =
            self.fabrics.iter().map(|f| f.degraded.len()).sum();
        let mut serve = ServeReport::from_outcomes(
            self.cfg.base.policy.label(),
            self.pool_size * self.cfg.fabrics,
            degraded_total,
            self.busy_tile_cycles,
            self.outcomes,
        );
        serve.cache = cache_report;
        Ok(ClusterReport {
            fabrics: self.cfg.fabrics,
            replicas: self.cfg.replicas,
            heartbeat_interval: self.cfg.heartbeat_interval,
            missed_heartbeats: self.cfg.missed_heartbeats,
            faults_injected: self.cfg.faults.events.len(),
            failovers: self.failovers,
            requests_lost,
            hard_requests_lost,
            cluster_shed: self.cluster_shed,
            detect_p50_cycles: percentile(&detect, 50.0),
            detect_max_cycles: detect.last().copied().unwrap_or(0),
            failover_p99_cycles: percentile(&failover_lat, 99.0),
            per_fabric,
            serve,
        })
    }
}
