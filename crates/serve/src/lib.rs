#![warn(missing_docs)]

//! # maicc-serve — online multi-tenant inference serving
//!
//! Everything below `maicc-sim` answers "how long does one inference
//! take"; this crate answers the question the paper's motivation actually
//! poses — *multi-DNN parallel inference* under live traffic. Requests
//! arrive over time (seeded synthetic [Poisson/bursty](trace) generators
//! or a JSON trace file), each names a model registered in a
//! [`registry::ModelRegistry`], and carries an optional deadline. A
//! pluggable [fabric scheduler](server::Policy) admits requests onto the
//! 15×14 compute array, every admitted request runs through the *real*
//! bit-level [`maicc_sim::stream::StreamSim`] on the tiles it was granted,
//! and an [SLO accountant](slo) folds the outcomes into per-tenant
//! p50/p95/p99 latency, queueing delay, deadline misses, fabric
//! utilization, and energy per request. Attaching an
//! [`overload::OverloadConfig`] hardens the loop for sustained overload:
//! bounded per-tenant admission queues, deadline-aware shedding, priority
//! tiers with checkpoint-based preemption, bounded-backoff retry of
//! unrecoverable runs, and a brownout mode that squeezes best-effort
//! tile grants first.
//!
//! The serving loop is a discrete-event simulation in *fabric cycles*: it
//! jumps between request arrivals and completions, so its determinism
//! reduces to [`StreamSim`]'s — which is proven bit-identical across
//! [`Engine`](maicc_sim::stream::Engine)s and node-stepping thread
//! counts. A serving report is therefore byte-identical for a fixed trace
//! seed no matter how the underlying simulations are driven
//! (regression- and proptest-enforced in `tests/`).
//!
//! ## Example — a three-model mix under FCFS
//!
//! ```
//! use maicc_serve::registry::three_model_mix;
//! use maicc_serve::server::{serve, Policy, ServeConfig};
//! use maicc_serve::trace::Trace;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (registry, loads) = three_model_mix();
//! let trace = Trace::poisson(&loads, 200_000, 7);
//! let cfg = ServeConfig { policy: Policy::Fcfs, ..ServeConfig::default() };
//! let report = serve(&registry, &trace, &cfg)?;
//! assert_eq!(report.completed + report.dropped, report.requests);
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod cluster;
pub mod overload;
pub mod registry;
pub mod rng;
pub mod server;
pub mod slo;
pub mod trace;

use std::fmt;

/// Errors raised by the serving layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// A request names a model the registry does not hold.
    UnknownModel {
        /// The offending model name.
        model: String,
    },
    /// A trace file (or trace JSON text) could not be parsed.
    BadTrace {
        /// What went wrong, with position information where available.
        reason: String,
    },
    /// The configuration cannot serve: a model (or the partition of all
    /// tenants) needs more tiles than the schedulable pool holds.
    PoolTooSmall {
        /// Human-readable description.
        reason: String,
    },
    /// A model could not be registered (e.g. its layer chain is invalid
    /// or exceeds one CMem).
    BadModel {
        /// Human-readable description.
        reason: String,
    },
    /// A request in the trace is self-contradictory (e.g. `deadline: 0`
    /// or a deadline at/earlier than its own arrival).
    BadRequest {
        /// The offending request's id.
        id: u64,
        /// Human-readable description.
        reason: String,
    },
    /// The serving configuration is self-contradictory (e.g. overload
    /// hardening combined with a scheduler that cannot honor it).
    BadConfig {
        /// Human-readable description.
        reason: String,
    },
    /// An underlying simulation failed in a way serving cannot absorb.
    Sim(maicc_sim::SimError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownModel { model } => {
                write!(f, "request names unregistered model `{model}`")
            }
            ServeError::BadTrace { reason } => write!(f, "bad trace: {reason}"),
            ServeError::PoolTooSmall { reason } => write!(f, "pool too small: {reason}"),
            ServeError::BadModel { reason } => write!(f, "bad model: {reason}"),
            ServeError::BadRequest { id, reason } => {
                write!(f, "bad request {id}: {reason}")
            }
            ServeError::BadConfig { reason } => write!(f, "bad config: {reason}"),
            ServeError::Sim(e) => write!(f, "simulation: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<maicc_sim::SimError> for ServeError {
    fn from(e: maicc_sim::SimError) -> Self {
        ServeError::Sim(e)
    }
}
