//! Overload-robustness configuration: admission control, priority tiers,
//! preemption, request retry, and brownout.
//!
//! The fair-weather serving loop queues every arrival forever and treats
//! all tenants alike; under sustained overload (offered tile-demand above
//! pool capacity) its queues grow without bound and every tenant's tail
//! collapses together. Attaching an [`OverloadConfig`] to a
//! [`ServeConfig`](crate::server::ServeConfig) switches `serve()` to the
//! overload-hardened event loop, which at every event applies the phases
//! **retire → preempt → admit → shed** (documented in DESIGN.md §13):
//!
//! * **bounded admission queues** — each tenant's queue holds at most
//!   [`OverloadConfig::queue_cap`] waiting requests; an arrival past the
//!   cap is shed immediately rather than queued into a latency it can
//!   never meet;
//! * **deadline-aware shedding** — after every admission pass, a queued
//!   request whose analytic SJF estimate already busts its deadline
//!   (`now + est_remaining > deadline`) is shed, with a per-tenant `shed`
//!   counter in the SLO report;
//! * **priority tiers** — tenants map to [`Tier::Hard`], [`Tier::Soft`],
//!   or [`Tier::BestEffort`]; admission is strict-priority across tiers
//!   (policy order within a tier), and a blocked `Hard` arrival may
//!   preempt running `BestEffort` requests. Preemption reuses the
//!   `StreamSim` checkpoint/replay machinery: the victim's sink-progress
//!   [checkpoint log](maicc_sim::stream::StreamSim::checkpoint_log)
//!   gives the latest architectural state at or before the preemption
//!   cycle, and the victim re-enters its tenant queue carrying that much
//!   progress instead of restarting from zero;
//! * **request retry** — a run that ends unrecoverable re-enters
//!   admission after a bounded exponential backoff
//!   ([`RetryBudget`]), at one tier above its own so churned requests
//!   drain instead of starving, counted against a per-tenant budget;
//! * **brownout** — when pool occupancy stays at or above a high-water
//!   mark for a configured window ([`BrownoutConfig`]), aggregate
//!   `BestEffort` tile grants are capped at a fraction of the pool, so
//!   degradation lands on the best-effort tier before `Soft`/`Hard`
//!   tenants feel it.
//!
//! Everything here is deterministic in fabric cycles: the same trace,
//! registry, and config produce byte-identical SLO JSON regardless of
//! simulation engine or thread count (proptest-enforced).

/// A tenant's priority tier under overload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Tier {
    /// Latency-critical: admitted first, may preempt `BestEffort` work.
    Hard,
    /// The default tier: ordinary priority, never preempted.
    #[default]
    Soft,
    /// Scavenger tier: admitted last, preemptible, first to brown out.
    BestEffort,
}

impl Tier {
    /// All tiers, highest priority first.
    pub const ALL: [Tier; 3] = [Tier::Hard, Tier::Soft, Tier::BestEffort];

    /// Stable label used in reports and on the CLI.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Tier::Hard => "hard",
            Tier::Soft => "soft",
            Tier::BestEffort => "best_effort",
        }
    }

    /// Parses a CLI/report label (accepts `-` for `_`).
    #[must_use]
    pub fn from_label(s: &str) -> Option<Tier> {
        match s.replace('-', "_").as_str() {
            "hard" => Some(Tier::Hard),
            "soft" => Some(Tier::Soft),
            "best_effort" => Some(Tier::BestEffort),
            _ => None,
        }
    }

    /// Admission rank: lower admits first.
    #[must_use]
    pub fn rank(self) -> u8 {
        match self {
            Tier::Hard => 0,
            Tier::Soft => 1,
            Tier::BestEffort => 2,
        }
    }

    /// The tier one step more urgent (retries re-enter admission here).
    #[must_use]
    pub fn elevated(self) -> Tier {
        match self {
            Tier::Hard | Tier::Soft => Tier::Hard,
            Tier::BestEffort => Tier::Soft,
        }
    }
}

/// Bounded-exponential-backoff retry for requests whose run ends
/// unrecoverable (the simulation failed past every replay/remap).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryBudget {
    /// Retries allowed per request (0 disables retry).
    pub max_retries_per_request: u32,
    /// Total retries allowed per tenant across the whole run.
    pub per_tenant_retries: u32,
    /// Backoff before the first retry, cycles; attempt `n` waits
    /// `base << n`, capped at [`RetryBudget::max_backoff_cycles`].
    pub base_backoff_cycles: u64,
    /// Upper bound on any single backoff, cycles.
    pub max_backoff_cycles: u64,
}

impl Default for RetryBudget {
    fn default() -> Self {
        RetryBudget {
            max_retries_per_request: 3,
            per_tenant_retries: 16,
            base_backoff_cycles: 10_000,
            max_backoff_cycles: 160_000,
        }
    }
}

impl RetryBudget {
    /// The backoff before retry attempt `attempt` (0-based): bounded
    /// exponential, saturating.
    #[must_use]
    pub fn backoff_cycles(&self, attempt: u32) -> u64 {
        let shifted = if attempt >= 63 {
            u64::MAX
        } else {
            self.base_backoff_cycles.saturating_mul(1u64 << attempt)
        };
        shifted.min(self.max_backoff_cycles)
    }
}

/// Brownout: sustained high occupancy shrinks `BestEffort` tile grants
/// before touching `Soft`/`Hard` tenants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutConfig {
    /// Pool-occupancy fraction at or above which the overload streak
    /// accumulates.
    pub high_water: f64,
    /// Cycles the occupancy must stay at or above the high-water mark
    /// before brownout engages; it disengages the first event occupancy
    /// drops below the mark.
    pub window_cycles: u64,
    /// Fraction of the pool `BestEffort` requests may occupy in
    /// aggregate while brownout is active.
    pub best_effort_fraction: f64,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            high_water: 0.8,
            window_cycles: 100_000,
            best_effort_fraction: 0.25,
        }
    }
}

/// The full overload-hardening configuration; attach to
/// [`ServeConfig::overload`](crate::server::ServeConfig) to switch
/// `serve()` to the overload-aware event loop.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadConfig {
    /// Per-tenant admission-queue bound (0 = unbounded).
    pub queue_cap: usize,
    /// Shed queued requests whose analytic estimate busts their deadline.
    pub shed_late: bool,
    /// Allow a blocked `Hard` request to preempt running `BestEffort`
    /// work.
    pub preempt: bool,
    /// Tenant → tier assignments; unlisted tenants default to
    /// [`Tier::Soft`].
    pub tiers: Vec<(String, Tier)>,
    /// Brownout behaviour, if any.
    pub brownout: Option<BrownoutConfig>,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            queue_cap: 32,
            shed_late: true,
            preempt: true,
            tiers: Vec::new(),
            brownout: Some(BrownoutConfig::default()),
        }
    }
}

impl OverloadConfig {
    /// The tier assigned to a tenant ([`Tier::Soft`] when unlisted).
    #[must_use]
    pub fn tier_of(&self, tenant: &str) -> Tier {
        self.tiers
            .iter()
            .find(|(t, _)| t == tenant)
            .map_or(Tier::default(), |(_, tier)| *tier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_labels_round_trip_and_rank_orders() {
        for t in Tier::ALL {
            assert_eq!(Tier::from_label(t.label()), Some(t));
        }
        assert_eq!(Tier::from_label("best-effort"), Some(Tier::BestEffort));
        assert_eq!(Tier::from_label("nope"), None);
        assert!(Tier::Hard.rank() < Tier::Soft.rank());
        assert!(Tier::Soft.rank() < Tier::BestEffort.rank());
    }

    #[test]
    fn elevation_moves_toward_hard_and_stops() {
        assert_eq!(Tier::BestEffort.elevated(), Tier::Soft);
        assert_eq!(Tier::Soft.elevated(), Tier::Hard);
        assert_eq!(Tier::Hard.elevated(), Tier::Hard);
    }

    #[test]
    fn backoff_is_bounded_exponential() {
        let b = RetryBudget {
            base_backoff_cycles: 1_000,
            max_backoff_cycles: 6_000,
            ..RetryBudget::default()
        };
        assert_eq!(b.backoff_cycles(0), 1_000);
        assert_eq!(b.backoff_cycles(1), 2_000);
        assert_eq!(b.backoff_cycles(2), 4_000);
        assert_eq!(b.backoff_cycles(3), 6_000); // capped
        assert_eq!(b.backoff_cycles(200), 6_000); // no shift overflow
    }

    #[test]
    fn unlisted_tenants_default_to_soft() {
        let cfg = OverloadConfig {
            tiers: vec![("vision".into(), Tier::Hard)],
            ..OverloadConfig::default()
        };
        assert_eq!(cfg.tier_of("vision"), Tier::Hard);
        assert_eq!(cfg.tier_of("anyone-else"), Tier::Soft);
    }
}
