//! The model registry: what a request's `model` name resolves to.
//!
//! Each entry binds a name to a streamed workload
//! ([`StreamConfig`] — chained `maicc-nn` conv layers, the form the
//! bit-level fabric simulator executes), plus two facts the scheduler
//! needs *before* running anything:
//!
//! * **footprint** — the number of fabric tiles one instance occupies
//!   (data-collection core + computing cores per layer + the sink),
//!   mirroring `StreamSim`'s own capacity math and verified against it by
//!   construction in the tests;
//! * **estimated service cycles** — an analytic job-size estimate from
//!   the execution framework: the layer chain is rebuilt as a
//!   [`maicc_nn::graph::Network`] and pushed through
//!   [`maicc_exec::segment`]'s equal-ifmap-size grouping heuristic
//!   (`Strategy::Heuristic`, the paper's Equation-(1) allocator), so
//!   shortest-job-first ordering reuses the same cost model the offline
//!   mapper trusts rather than inventing a second one.

use crate::overload::{OverloadConfig, Tier};
use crate::ServeError;
use maicc_exec::config::ExecConfig;
use maicc_exec::pipeline_model::run_network;
use maicc_exec::segment::Strategy;
use maicc_nn::graph::{Network, Node, NodeInput, NodeOp};
use maicc_sim::stream::{StreamConfig, StreamSim};
use crate::trace::TenantLoad;

/// Filter-vector slots one computing core offers (7 slices × 7 rows of
/// resident vectors — the capacity constant `StreamSim` places with).
const SLOTS_PER_CORE: usize = 49;

/// One registered model.
#[derive(Debug, Clone)]
pub struct ModelEntry {
    /// The name requests use.
    pub name: String,
    /// The streamed workload an admitted request executes.
    pub stream: StreamConfig,
    /// Fabric tiles one running instance occupies (DCs + CCs + sink).
    pub tiles: usize,
    /// Analytic service-time estimate, cycles (heuristic segmentation of
    /// the layer chain; used for SJF ordering, not billing).
    pub est_cycles: u64,
    /// Golden reference ofmap, precomputed once so every completed run
    /// can be checked without re-deriving it.
    pub golden: Vec<i8>,
    /// Total weight-image bytes streamed into CMem on a cold start (the
    /// unit the weight cache's memory-tier costs are priced in).
    pub weight_bytes: usize,
    /// Weight bytes on the busiest computing core — the serialized
    /// vertical-write phase the fabric edge pays after the memory stream.
    pub max_tile_weight_bytes: usize,
    /// The canonical weight image ([`StreamSim::weight_image`]): the
    /// warm-start entry point asserts resident weights equal this before
    /// skipping the load phase.
    pub weight_image: Vec<Vec<i8>>,
}

/// A name → model map with deterministic iteration order (registration
/// order).
#[derive(Debug, Clone, Default)]
pub struct ModelRegistry {
    entries: Vec<ModelEntry>,
}

/// Fabric tiles a streamed workload occupies, mirroring the placement
/// math in `StreamSim::new`: per layer one data-collection core plus
/// `ceil(out_channels / per_core)` computing cores, plus one sink tile.
///
/// # Errors
///
/// Returns [`ServeError::BadModel`] if the workload has no layers or a
/// filter exceeds one CMem (`kernel_h × kernel_w × ceil(C/256) > 49`).
pub fn footprint(cfg: &StreamConfig) -> Result<usize, ServeError> {
    if cfg.layers.is_empty() {
        return Err(ServeError::BadModel {
            reason: "workload has no layers".into(),
        });
    }
    let mut tiles = 1; // the sink
    for l in &cfg.layers {
        let s = &l.shape;
        let groups = s.in_channels.div_ceil(256);
        let vec_per_filter = s.kernel_h * s.kernel_w * groups;
        let per_core = SLOTS_PER_CORE / vec_per_filter;
        if per_core == 0 {
            return Err(ServeError::BadModel {
                reason: format!("filter {}x{} exceeds one CMem", s.kernel_h, s.kernel_w),
            });
        }
        tiles += 1 + s.out_channels.div_ceil(per_core);
    }
    Ok(tiles)
}

/// Weight bytes on the busiest computing core: per layer the first CC
/// holds `min(per_core, out_channels)` filters of
/// `kernel_h × kernel_w × groups` 256-byte filter vectors each, and the
/// serialized vertical-write phase is bounded by the fullest core.
#[must_use]
pub fn max_tile_weight_bytes(cfg: &StreamConfig) -> usize {
    cfg.layers
        .iter()
        .map(|l| {
            let s = &l.shape;
            let groups = s.in_channels.div_ceil(256);
            let vec_per_filter = s.kernel_h * s.kernel_w * groups;
            let per_core = SLOTS_PER_CORE / vec_per_filter.max(1);
            per_core.min(s.out_channels) * vec_per_filter * 256
        })
        .max()
        .unwrap_or(0)
}

/// Rebuilds the streamed layer chain as a `maicc-nn` network (the layers
/// *are* `maicc-nn` conv layers; this just restores the graph form the
/// offline execution framework consumes).
fn as_network(name: &str, cfg: &StreamConfig) -> Result<Network, ServeError> {
    let nodes = cfg
        .layers
        .iter()
        .enumerate()
        .map(|(i, l)| Node {
            name: format!("{name}_l{i}"),
            op: NodeOp::Conv(l.clone()),
            input: if i == 0 {
                NodeInput::External
            } else {
                NodeInput::Node(i - 1)
            },
            residual: None,
        })
        .collect();
    Network::new(name, nodes).map_err(|e| ServeError::BadModel {
        reason: e.to_string(),
    })
}

/// Analytic service-cycle estimate for a streamed workload: the layer
/// chain is segmented with the paper's equal-ifmap-size heuristic and run
/// through the pipelined execution model on a default array.
///
/// # Errors
///
/// Returns [`ServeError::BadModel`] if the chain cannot be segmented
/// (inconsistent shapes, layer too large for the array).
pub fn estimate_service_cycles(name: &str, cfg: &StreamConfig) -> Result<u64, ServeError> {
    let net = as_network(name, cfg)?;
    let input = [
        cfg.input.shape()[0],
        cfg.input.shape()[1],
        cfg.input.shape()[2],
    ];
    let exec = ExecConfig::default();
    let run = run_network(&net, input, Strategy::Heuristic, &exec).map_err(|e| {
        ServeError::BadModel {
            reason: format!("{name}: {e}"),
        }
    })?;
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    Ok(run.total_cycles.max(1.0) as u64)
}

impl ModelRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// Registers a streamed workload under a name, deriving its tile
    /// footprint, analytic service estimate, and golden reference.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadModel`] for an invalid layer chain or a
    /// duplicate name.
    pub fn register(&mut self, name: &str, stream: StreamConfig) -> Result<(), ServeError> {
        if self.get(name).is_some() {
            return Err(ServeError::BadModel {
                reason: format!("model `{name}` registered twice"),
            });
        }
        let tiles = footprint(&stream)?;
        let est_cycles = estimate_service_cycles(name, &stream)?;
        let golden = stream.golden();
        let weight_image = StreamSim::weight_image(&stream);
        let weight_bytes = weight_image.len() * 256;
        let max_tile = max_tile_weight_bytes(&stream);
        self.entries.push(ModelEntry {
            name: name.to_string(),
            stream,
            tiles,
            est_cycles,
            golden,
            weight_bytes,
            max_tile_weight_bytes: max_tile,
            weight_image,
        });
        Ok(())
    }

    /// Inserts a pre-built entry without re-deriving its footprint,
    /// estimate, or golden — an escape hatch for replaying recorded
    /// registries and for tests that need a deliberately inconsistent
    /// entry. `serve()` re-validates the facts it relies on (notably a
    /// non-zero tile footprint) before scheduling anything.
    pub fn insert_raw(&mut self, entry: ModelEntry) {
        self.entries.push(entry);
    }

    /// Looks a model up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&ModelEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// All entries, in registration order.
    #[must_use]
    pub fn entries(&self) -> &[ModelEntry] {
        &self.entries
    }
}

/// The standard three-model serving mix the CLI, bench, and CI smoke all
/// use: the downscaled ResNet-18 stage segment (a heavy "vision" tenant),
/// the two-layer pipeline (a mid-weight "assist" tenant), and the small
/// one-layer net (a latency-sensitive "keyword" tenant) — heterogeneous
/// enough that scheduler policies visibly diverge at the tail.
///
/// Returns the registry plus the tenants' offered loads for the trace
/// generators.
///
/// # Panics
///
/// Panics if the built-in workloads fail to register — a programming
/// error, not a data condition.
#[must_use]
pub fn three_model_mix() -> (ModelRegistry, Vec<TenantLoad>) {
    let mut reg = ModelRegistry::new();
    reg.register("resnet18_segment", StreamConfig::resnet18_segment())
        .expect("built-in workload registers");
    reg.register("two_layer", StreamConfig::two_layer_test())
        .expect("built-in workload registers");
    reg.register("small", StreamConfig::small_test())
        .expect("built-in workload registers");
    let loads = vec![
        TenantLoad {
            tenant: "vision".into(),
            model: "resnet18_segment".into(),
            mean_gap: 250_000,
            deadline: Some(600_000),
        },
        TenantLoad {
            tenant: "assist".into(),
            model: "two_layer".into(),
            mean_gap: 150_000,
            deadline: Some(400_000),
        },
        TenantLoad {
            tenant: "keyword".into(),
            model: "small".into(),
            mean_gap: 60_000,
            deadline: Some(150_000),
        },
    ];
    (reg, loads)
}

/// The overload-scenario mix: the same three models as
/// [`three_model_mix`], offered at **twice** the rate (halved mean
/// gaps), plus the tier map the overload campaign uses — `vision` is
/// latency-critical ([`Tier::Hard`]), `assist` ordinary
/// ([`Tier::Soft`]), and `keyword` a scavenger ([`Tier::BestEffort`]).
/// On the 8-tile contended pool the CLI/bench/CI overload runs use,
/// this offers roughly 2× the fabric's sustainable load.
///
/// # Panics
///
/// Panics if the built-in workloads fail to register — a programming
/// error, not a data condition.
#[must_use]
pub fn overload_mix() -> (ModelRegistry, Vec<TenantLoad>, OverloadConfig) {
    let (reg, mut loads) = three_model_mix();
    for load in &mut loads {
        load.mean_gap /= 2;
    }
    let overload = OverloadConfig {
        tiers: vec![
            ("vision".into(), Tier::Hard),
            ("assist".into(), Tier::Soft),
            ("keyword".into(), Tier::BestEffort),
        ],
        ..OverloadConfig::default()
    };
    (reg, loads, overload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maicc_exec::mapping::{zigzag_order, Tile};
    use maicc_sim::stream::StreamSim;

    /// `footprint` must match the simulator's real appetite: confining
    /// the placement to exactly that many healthy tiles succeeds, one
    /// fewer overflows.
    #[test]
    fn footprint_matches_stream_sim_placement() {
        for cfg in [
            StreamConfig::small_test(),
            StreamConfig::two_layer_test(),
            StreamConfig::resnet18_segment(),
        ] {
            let tiles = footprint(&cfg).unwrap();
            let order = zigzag_order();
            let mask_all_but = |n: usize| -> Vec<Tile> { order[n..].to_vec() };
            assert!(
                StreamSim::new_avoiding(&cfg, &mask_all_but(tiles)).is_ok(),
                "{tiles} tiles must suffice"
            );
            assert!(
                StreamSim::new_avoiding(&cfg, &mask_all_but(tiles - 1)).is_err(),
                "{} tiles must overflow",
                tiles - 1
            );
        }
    }

    #[test]
    fn footprints_are_small_and_ordered() {
        let small = footprint(&StreamConfig::small_test()).unwrap();
        let two = footprint(&StreamConfig::two_layer_test()).unwrap();
        let seg = footprint(&StreamConfig::resnet18_segment()).unwrap();
        assert!(small < two && two < seg, "{small} {two} {seg}");
        assert_eq!(small, 3);
        assert_eq!(seg, 7);
    }

    #[test]
    fn estimate_orders_models_by_size() {
        let small = estimate_service_cycles("small", &StreamConfig::small_test()).unwrap();
        let seg =
            estimate_service_cycles("seg", &StreamConfig::resnet18_segment()).unwrap();
        assert!(small > 0);
        assert!(seg > small, "resnet segment {seg} vs small {small}");
    }

    #[test]
    fn registry_rejects_duplicates_and_resolves_names() {
        let (reg, loads) = three_model_mix();
        assert_eq!(reg.entries().len(), 3);
        for load in &loads {
            assert!(reg.get(&load.model).is_some(), "{} unresolved", load.model);
        }
        assert!(reg.get("nope").is_none());
        let mut reg = reg;
        match reg.register("small", StreamConfig::small_test()) {
            Err(ServeError::BadModel { reason }) => assert!(reason.contains("twice")),
            other => panic!("expected duplicate rejection, got {other:?}"),
        }
    }

    #[test]
    fn empty_chain_is_rejected() {
        let cfg = StreamConfig {
            layers: vec![],
            input: maicc_nn::tensor::Tensor::from_fn(&[1, 1, 1], |_| 0),
        };
        assert!(matches!(footprint(&cfg), Err(ServeError::BadModel { .. })));
    }
}
