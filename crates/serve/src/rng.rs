//! A tiny seeded PRNG for trace generation.
//!
//! The workspace runs offline (no `rand` crate), so trace generators use
//! this self-contained splitmix64 stream. Determinism matters more than
//! statistical perfection here: the same seed must produce byte-identical
//! traces — and therefore byte-identical serving reports — on every run.

/// A splitmix64 generator (Steele et al., "Fast splittable pseudorandom
/// number generators").
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a stream from a seed. Distinct seeds give independent
    /// streams for practical purposes.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Rng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform double in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// An exponentially distributed sample with the given mean (inverse
    /// transform), for Poisson inter-arrival gaps.
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        // 1 - u is in (0, 1], so ln is finite
        -mean * (1.0 - self.next_f64()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn exp_mean_roughly_right() {
        let mut r = Rng::new(9);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.next_exp(100.0)).sum();
        let mean = sum / f64::from(n);
        assert!((80.0..120.0).contains(&mean), "mean {mean}");
    }
}
