//! The serving loop: a discrete-event scheduler over the 15×14 fabric.
//!
//! Time is fabric cycles. The loop jumps between request arrivals and
//! completions; at every event it first retires finished runs (in
//! request-id order, so simultaneous completions are deterministic),
//! then enqueues new arrivals, then lets the active [`Policy`] admit as
//! much queued work as currently fits. An admitted request is executed
//! immediately through the real bit-level [`StreamSim`] on exactly the
//! tiles the scheduler granted (placement is confined by passing the
//! complement as the avoid set), so service times, energy, and golden
//! checks all come from the simulator, not a model of it.
//!
//! Faults flow through the same machinery as offline runs: a
//! [`FaultConfig`] arms CMem/NoC fault plans (optionally targeted at
//! specific request ids), and when an attached
//! [`RecoveryPolicy`](maicc_sim::RecoveryPolicy) remaps around a hard
//! fault mid-run, the scheduler diffs [`StreamSim::retired_tiles`]
//! against the avoid set it supplied and permanently shrinks the
//! schedulable pool — later admissions steer around the casualty.

use std::collections::{BTreeMap, VecDeque};

use maicc_exec::mapping::{healthy_order, zigzag_order, Tile};
use maicc_noc::{NocFaultPlan, RetryPolicy};
use maicc_obs::{CacheSample, Recorder};
use maicc_sim::stream::{Engine, StreamSim};
use maicc_sim::RecoveryPolicy;
use maicc_sram::ecc::EccMode;
use maicc_sram::fault::FaultPlan;

use crate::cache::{AdmissionPlan, WeightCache, WeightCacheConfig};
use crate::overload::{OverloadConfig, RetryBudget, Tier};
use crate::registry::{ModelEntry, ModelRegistry};
use crate::slo::{CacheReport, RequestOutcome, ServeReport};
use crate::trace::Trace;
use crate::ServeError;

/// How the scheduler shares the fabric between queued requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// First come, first served: one FIFO queue, head-blocking — the
    /// oldest request admits as soon as its footprint fits.
    Fcfs,
    /// Shortest job first: the queued request with the smallest analytic
    /// service estimate (from the segmentation heuristic) admits next.
    Sjf,
    /// Static spatial partitioning: each tenant owns a fixed region of
    /// tiles sized for its largest model; tenants never contend, at the
    /// cost of idle regions.
    Partitioned,
    /// Temporal time-slicing: the whole pool is granted to one request
    /// at a time, round-robin across tenants.
    TimeShared,
}

impl Policy {
    /// All policies, in a stable order.
    pub const ALL: [Policy; 4] = [
        Policy::Fcfs,
        Policy::Sjf,
        Policy::Partitioned,
        Policy::TimeShared,
    ];

    /// The label used in reports and on the CLI.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Policy::Fcfs => "fcfs",
            Policy::Sjf => "sjf",
            Policy::Partitioned => "partitioned",
            Policy::TimeShared => "time_shared",
        }
    }

    /// Parses a CLI label (accepts `-` for `_`).
    #[must_use]
    pub fn from_label(s: &str) -> Option<Policy> {
        match s.replace('-', "_").as_str() {
            "fcfs" => Some(Policy::Fcfs),
            "sjf" => Some(Policy::Sjf),
            "partitioned" => Some(Policy::Partitioned),
            "time_shared" => Some(Policy::TimeShared),
            _ => None,
        }
    }
}

/// Fault-injection knobs for a serving run, mirroring the offline
/// campaign's layers.
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    /// CMem fault plan attached to every computing core of every run
    /// (seed re-salted per request so runs fault independently but
    /// deterministically).
    pub cmem: Option<FaultPlan>,
    /// NoC fault plan attached to every run's mesh.
    pub noc: Option<NocFaultPlan>,
    /// ECC protection level for all CMems.
    pub ecc: EccMode,
    /// CRC-checked ACK/NACK retransmission on the mesh.
    pub retry: Option<RetryPolicy>,
    /// Request ids whose run gets a dead CMem slice on its first
    /// computing core — a hard fault that (with remap recovery) retires
    /// a tile from the pool mid-service. Fires only on a request's
    /// first attempt: a retry re-runs on clean hardware.
    pub fail_at_requests: Vec<u64>,
}

/// Configuration of a serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Scheduling policy.
    pub policy: Policy,
    /// Simulation engine driving each admitted request (does not affect
    /// results — engines are bit-identical).
    pub engine: Engine,
    /// Node-stepping worker threads per admitted request's simulation
    /// (ownership-partitioned stepping, DESIGN.md §14 — trades
    /// wall-clock for cores without affecting results: reports stay
    /// byte-identical at any count).
    pub threads: usize,
    /// Schedulable pool size in tiles, carved from the start of the
    /// serpentine order; `0` means the whole healthy array.
    pub pool_tiles: usize,
    /// Cycle budget per admitted request's simulation.
    pub run_budget: u64,
    /// Checkpoint/replay recovery attached to every run.
    pub recovery: Option<RecoveryPolicy>,
    /// Fault injection, if any.
    pub fault: Option<FaultConfig>,
    /// Tiles already known-bad before serving starts.
    pub initial_failed: Vec<Tile>,
    /// Overload hardening (bounded admission, tiers, preemption,
    /// brownout); `None` keeps the fair-weather loop. Only
    /// [`Policy::Fcfs`] and [`Policy::Sjf`] support it.
    pub overload: Option<OverloadConfig>,
    /// Retry of unrecoverable runs with bounded exponential backoff.
    /// Only honored by the overload loop; the fair-weather loop drops
    /// unrecoverable requests immediately.
    pub retry_budget: Option<RetryBudget>,
    /// Two-tier model-weight cache ([`crate::cache`]). `None` keeps the
    /// historical loop with no weight-load modeling at all (reports are
    /// byte-identical to pre-cache serving); `Some` models every load
    /// through the LLC/DRAM tier — with `enabled: false` nothing is ever
    /// retained (the "cache off" measurement arm), with `enabled: true`
    /// completed requests pin their weights for warm admissions. Only
    /// [`Policy::Fcfs`] and [`Policy::Sjf`] (and the overload loop over
    /// them) support it.
    pub weight_cache: Option<WeightCacheConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            policy: Policy::Fcfs,
            engine: Engine::EventDriven,
            threads: 1,
            pool_tiles: 0,
            run_budget: 5_000_000,
            recovery: None,
            fault: None,
            initial_failed: Vec::new(),
            overload: None,
            retry_budget: None,
            weight_cache: None,
        }
    }
}

/// What one simulated request run produced.
pub(crate) struct RunOutput {
    pub(crate) cycles: u64,
    pub(crate) energy_pj: f64,
    pub(crate) ok: bool,
    pub(crate) newly_retired: Vec<Tile>,
    /// Cycles at which the run took sink-progress checkpoints (empty
    /// without a [`RecoveryPolicy`]); the overload loop's preemption
    /// resumes a victim from the last of these.
    pub(crate) ckpt_log: Vec<u64>,
    /// ECC single-bit corrections the run's CMems performed. Memoized
    /// replays report 0 — only fault-free runs are memoized, and a
    /// fault-free run corrects nothing.
    pub(crate) ecc_corrected: u64,
    /// NoC ACK/NACK retransmissions the run's mesh performed (same
    /// memoization argument).
    pub(crate) noc_retransmits: u64,
}

/// A request currently holding tiles.
struct Running {
    idx: usize,
    admitted: u64,
    done_at: u64,
    tiles: Vec<Tile>,
    ok: bool,
    energy_pj: f64,
    // Overload-loop state; the fair-weather loop leaves the defaults.
    tier: Tier,
    /// Service cycles banked at a checkpoint before this admission
    /// (non-zero only for resumed preemption victims).
    progress: u64,
    /// Fabric cycles burned in earlier preempted partial runs.
    executed: u64,
    ckpt_log: Vec<u64>,
    attempt: u32,
    retries: u32,
    preemptions: u32,
    /// Whether this admission found its weights resident (weight cache
    /// only; `false` on the no-cache path).
    warm: bool,
    /// Weight-load cycles this admission paid before compute started.
    load_cycles: u64,
}

/// A request waiting for admission under the overload loop.
struct Pending {
    idx: usize,
    tier: Tier,
    /// Service cycles banked at the last sink-progress checkpoint of a
    /// preempted run (0 for fresh arrivals).
    progress: u64,
    /// Fabric cycles already burned across preempted partial runs.
    executed: u64,
    /// 0 = first run; retries increment it (re-salting fault plans).
    attempt: u32,
    retries: u32,
    preemptions: u32,
    /// Earliest cycle admission may consider this entry (retry backoff).
    available_at: u64,
}

/// Key for memoizing fault-free runs: model name plus the exact tiles
/// the run was placed on (placement fully determines the simulation).
pub(crate) type RunKey = (String, Vec<(u8, u8)>);

/// The memo table [`run_request`] reads and writes: fault-free results
/// keyed by [`RunKey`]. The cluster router shares one table across all
/// fabrics — every fabric has the same 15×14 geometry, so identical
/// placements replay identically wherever they land.
pub(crate) type RunMemo = BTreeMap<RunKey, (u64, f64, bool, Vec<u64>)>;

struct Server<'a> {
    registry: &'a ModelRegistry,
    trace: &'a Trace,
    cfg: &'a ServeConfig,
    /// Tiles outside the schedulable pool (complement of the pool).
    mask: Vec<Tile>,
    /// Original pool size, for utilization accounting.
    pool_size: usize,
    /// Tiles retired by mid-run recovery, sorted.
    degraded: Vec<Tile>,
    running: Vec<Running>,
    outcomes: Vec<RequestOutcome>,
    busy_tile_cycles: u64,
    memo: RunMemo,
    /// The two-tier weight cache; `None` preserves the historical
    /// no-load-modeling loop byte-for-byte.
    cache: Option<WeightCache>,
    /// Interval telemetry recorder; `None` (the plain [`serve`] entry
    /// point) leaves every loop untouched.
    obs: Option<Recorder>,
}

/// Converts the weight cache's counters into the recorder's snapshot
/// form (integer activity counters only).
pub(crate) fn cache_sample(c: &crate::cache::CacheCounters) -> CacheSample {
    CacheSample {
        hits: c.hits,
        misses: c.misses,
        evictions: c.evictions,
        llc_hits: c.llc_hits,
        prefetch_issued: c.prefetch_issued,
        prefetch_used: c.prefetch_used,
        prefetch_canceled: c.prefetch_canceled,
    }
}

/// Runs a trace against a registry under a config and returns the SLO
/// report.
///
/// # Errors
///
/// * [`ServeError::UnknownModel`] — a request names an unregistered
///   model.
/// * [`ServeError::PoolTooSmall`] — the pool cannot fit a requested
///   model (or, under [`Policy::Partitioned`], the per-tenant regions),
///   at start or after fault recovery shrinks it.
/// * [`ServeError::BadModel`] — a trace model resolves to a registry
///   entry with a zero-tile footprint (an inconsistent entry that would
///   otherwise underflow placement).
/// * [`ServeError::BadRequest`] — a request carries an impossible
///   deadline (`0`, or at/earlier than its own arrival).
/// * [`ServeError::BadConfig`] — overload hardening combined with
///   [`Policy::Partitioned`] or [`Policy::TimeShared`], which cannot
///   honor cross-tenant priority admission.
/// * [`ServeError::Sim`] — a simulation failed in a way the serving
///   layer cannot attribute to a single request.
pub fn serve(
    registry: &ModelRegistry,
    trace: &Trace,
    cfg: &ServeConfig,
) -> Result<ServeReport, ServeError> {
    serve_impl(registry, trace, cfg, None).map(|(report, _)| report)
}

/// Like [`serve`], but additionally threads a [`Recorder`] through the
/// event loop and returns its JSONL telemetry stream: one record per
/// `interval_cycles` of simulated time (see the `maicc-obs` crate docs
/// for the schema and determinism argument). The report is byte-identical
/// to what plain [`serve`] returns on the same inputs.
///
/// # Errors
///
/// Everything [`serve`] raises, plus [`ServeError::BadConfig`] for
/// [`Policy::Partitioned`] / [`Policy::TimeShared`] — interval telemetry
/// is only wired through the queued and overload loops.
pub fn serve_with_obs(
    registry: &ModelRegistry,
    trace: &Trace,
    cfg: &ServeConfig,
    interval_cycles: u64,
) -> Result<(ServeReport, String), ServeError> {
    if matches!(cfg.policy, Policy::Partitioned | Policy::TimeShared) {
        return Err(ServeError::BadConfig {
            reason: format!(
                "interval telemetry requires fcfs or sjf, not {}",
                cfg.policy.label()
            ),
        });
    }
    let recorder = Recorder::new(interval_cycles, 1);
    serve_impl(registry, trace, cfg, Some(recorder))
        .map(|(report, jsonl)| (report, jsonl.expect("recorder was attached")))
}

fn serve_impl(
    registry: &ModelRegistry,
    trace: &Trace,
    cfg: &ServeConfig,
    obs: Option<Recorder>,
) -> Result<(ServeReport, Option<String>), ServeError> {
    validate_requests(registry, trace)?;
    if cfg.overload.is_some()
        && matches!(cfg.policy, Policy::Partitioned | Policy::TimeShared)
    {
        return Err(ServeError::BadConfig {
            reason: format!(
                "overload hardening requires fcfs or sjf, not {}",
                cfg.policy.label()
            ),
        });
    }
    if cfg.weight_cache.is_some()
        && matches!(cfg.policy, Policy::Partitioned | Policy::TimeShared)
    {
        return Err(ServeError::BadConfig {
            reason: format!(
                "the weight cache requires fcfs or sjf, not {}",
                cfg.policy.label()
            ),
        });
    }

    let healthy = healthy_order(&cfg.initial_failed);
    let pool_size = if cfg.pool_tiles == 0 {
        healthy.len()
    } else {
        cfg.pool_tiles.min(healthy.len())
    };
    let pool: Vec<Tile> = healthy[..pool_size].to_vec();
    let mask: Vec<Tile> = zigzag_order()
        .into_iter()
        .filter(|t| !pool.contains(t))
        .collect();

    // Every model that appears in the trace must fit the empty pool.
    for r in &trace.requests {
        let entry = registry.get(&r.model).expect("validated above");
        if entry.tiles > pool_size {
            return Err(ServeError::PoolTooSmall {
                reason: format!(
                    "model `{}` needs {} tiles, pool holds {pool_size}",
                    entry.name, entry.tiles
                ),
            });
        }
    }

    let mut server = Server {
        registry,
        trace,
        cfg,
        mask,
        pool_size,
        degraded: Vec::new(),
        running: Vec::new(),
        outcomes: Vec::new(),
        busy_tile_cycles: 0,
        memo: BTreeMap::new(),
        cache: cfg.weight_cache.clone().map(WeightCache::new),
        obs,
    };
    server.run()?;
    let end = server
        .outcomes
        .iter()
        .map(|o| o.finished)
        .max()
        .unwrap_or(0);
    let jsonl = server.obs.take().map(|o| o.finish(end));
    let cache_report = server
        .cache
        .as_ref()
        .map(|c| CacheReport::build(c.counters(), &server.outcomes));
    let mut report = ServeReport::from_outcomes(
        cfg.policy.label(),
        server.pool_size,
        server.degraded.len(),
        server.busy_tile_cycles,
        server.outcomes,
    );
    report.cache = cache_report;
    Ok((report, jsonl))
}

/// Per-request trace validation shared by [`serve`] and the cluster
/// router: every model must resolve, have a non-zero footprint, and
/// carry a possible deadline.
pub(crate) fn validate_requests(
    registry: &ModelRegistry,
    trace: &Trace,
) -> Result<(), ServeError> {
    for r in &trace.requests {
        let Some(entry) = registry.get(&r.model) else {
            return Err(ServeError::UnknownModel {
                model: r.model.clone(),
            });
        };
        if entry.tiles == 0 {
            return Err(ServeError::BadModel {
                reason: format!("model `{}` has a zero-tile footprint", entry.name),
            });
        }
        if let Some(d) = r.deadline {
            if d == 0 {
                return Err(ServeError::BadRequest {
                    id: r.id,
                    reason: "deadline is 0".into(),
                });
            }
            if d <= r.arrival {
                return Err(ServeError::BadRequest {
                    id: r.id,
                    reason: format!(
                        "deadline {d} is at or before arrival {}",
                        r.arrival
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Where the simulator would place this model given an avoid set (the
/// first `footprint` tiles of the healthy serpentine), or `None` if it
/// does not fit.
pub(crate) fn placement_for(entry: &ModelEntry, avoid: &[Tile]) -> Option<Vec<Tile>> {
    let order = healthy_order(avoid);
    if order.len() < entry.tiles {
        return None;
    }
    Some(order[..entry.tiles].to_vec())
}

/// Executes one admitted request on the fabric, confined to the tiles
/// outside `avoid`. `attempt` is 0 for a request's first run; retries
/// pass higher values so their fault plans draw fresh seeds. `warm`
/// asserts the placement's CMems already hold the model's weight image
/// (a weight-cache hit) and takes `StreamSim`'s warm-start entry point,
/// which verifies the image bit-for-bit. Fault-free results land in
/// `memo`; [`Server`] and the cluster router both drive their fabrics
/// through this one function so the per-run semantics cannot drift.
pub(crate) fn run_request(
    cfg: &ServeConfig,
    memo: &mut RunMemo,
    entry: &ModelEntry,
    avoid: &[Tile],
    req_id: u64,
    attempt: u32,
    warm: bool,
) -> Result<RunOutput, ServeError> {
    let placement = placement_for(entry, avoid).expect("caller checked fit before running");
    let key: RunKey = (
        entry.name.clone(),
        placement.iter().map(|t| (t.x, t.y)).collect(),
    );
    // A run is memoizable when nothing request-specific can perturb
    // it: no fabric-wide fault plans, and no targeted dead slice for
    // this request. Config-constant knobs (ECC mode, NoC retry) are
    // fine — the memo lives inside one serve() call.
    let fault_free = match &cfg.fault {
        None => true,
        Some(f) => {
            f.cmem.is_none()
                && f.noc.is_none()
                && !(attempt == 0 && f.fail_at_requests.contains(&req_id))
        }
    };
    if fault_free {
        if let Some((cycles, energy_pj, ok, ckpt_log)) = memo.get(&key) {
            return Ok(RunOutput {
                cycles: *cycles,
                energy_pj: *energy_pj,
                ok: *ok,
                newly_retired: Vec::new(),
                ckpt_log: ckpt_log.clone(),
                ecc_corrected: 0,
                noc_retransmits: 0,
            });
        }
    }

    let mut sim = if warm {
        StreamSim::new_avoiding_warm(&entry.stream, avoid, &entry.weight_image)
    } else {
        StreamSim::new_avoiding(&entry.stream, avoid)
    }
    .map_err(|e| ServeError::PoolTooSmall {
        reason: format!("placement of `{}` failed: {e}", entry.name),
    })?;
    sim.set_engine(cfg.engine);
    sim.set_parallelism(cfg.threads);
    if let Some(recovery) = cfg.recovery {
        sim.set_recovery_policy(Some(recovery));
    }
    if let Some(fault) = &cfg.fault {
        // Fault-plan seeds are salted per request (runs fault
        // independently but deterministically) and, additively, per
        // attempt — a retry must not replay the exact fault draw
        // that killed attempt 0. Attempt 0 preserves the historical
        // seeds bit-for-bit.
        let attempt_salt = u64::from(attempt).wrapping_mul(0xA24B_AED4_963E_E407);
        if let Some(plan) = &fault.cmem {
            let mut p = plan.clone();
            p.seed = plan
                .seed
                .wrapping_add(req_id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(attempt_salt);
            sim.attach_cmem_fault_plan(&p);
        }
        if let Some(plan) = &fault.noc {
            let mut p = plan.clone();
            if attempt > 0 {
                p.seed = plan
                    .seed
                    .wrapping_add(req_id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .wrapping_add(attempt_salt);
            }
            sim.attach_noc_fault_plan(p);
        }
        sim.set_ecc_mode(fault.ecc);
        sim.set_noc_retry_policy(fault.retry);
        if attempt == 0 && fault.fail_at_requests.contains(&req_id) {
            sim.attach_cmem_fault_plan_to(
                0,
                &FaultPlan {
                    seed: req_id.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    transient_flip_rate: 0.0,
                    stuck_cells: Vec::new(),
                    dead_slices: vec![0],
                },
            );
        }
    }

    match sim.run(cfg.run_budget) {
        Ok(result) => {
            let ok = result.ofmap == entry.golden;
            let energy_pj = result.cmem_pj + result.noc.dynamic_pj();
            let newly_retired: Vec<Tile> = sim
                .retired_tiles()
                .iter()
                .filter(|t| !avoid.contains(t))
                .copied()
                .collect();
            let ckpt_log = sim.checkpoint_log().to_vec();
            if fault_free {
                memo.insert(key, (result.cycles, energy_pj, ok, ckpt_log.clone()));
            }
            Ok(RunOutput {
                cycles: result.cycles,
                energy_pj,
                ok,
                newly_retired,
                ckpt_log,
                ecc_corrected: sim.ecc_stats().corrected,
                noc_retransmits: sim.noc_fault_stats().retries,
            })
        }
        Err(e) => Err(ServeError::Sim(e)),
    }
}

impl Server<'_> {
    fn run(&mut self) -> Result<(), ServeError> {
        if self.cfg.overload.is_some() {
            return self.run_overload();
        }
        match self.cfg.policy {
            Policy::Fcfs | Policy::Sjf => self.run_queued(),
            Policy::TimeShared => self.run_time_shared(),
            Policy::Partitioned => self.run_partitioned(),
        }
    }

    /// Settles the recorder at the end of one event iteration: the
    /// admission-queue depth per tier (sample-and-hold) and the weight
    /// cache's cumulative counters (delta-attributed to the window).
    fn obs_sync(&mut self, now: u64, hard: u64, soft: u64, best_effort: u64) {
        let sample = self.cache.as_ref().map(|c| cache_sample(c.counters()));
        if let Some(o) = self.obs.as_mut() {
            o.queue_depth(now, hard, soft, best_effort);
            if let Some(s) = sample {
                o.cache_sync(now, s);
            }
        }
    }

    /// The avoid set for a fresh placement: everything outside the pool,
    /// every retired tile, and every tile a running request holds.
    fn avoid_now(&self) -> Vec<Tile> {
        let mut avoid = self.mask.clone();
        avoid.extend_from_slice(&self.degraded);
        for r in &self.running {
            avoid.extend_from_slice(&r.tiles);
        }
        avoid
    }

    /// Where the simulator would place this model given an avoid set
    /// (see [`placement_for`]).
    fn placement(&self, entry: &ModelEntry, avoid: &[Tile]) -> Option<Vec<Tile>> {
        placement_for(entry, avoid)
    }

    /// The analytic service estimate the scheduler should order by: the
    /// pipeline-model cycles plus, when the weight cache is on, the load
    /// cycles this model would pay right now (zero when resident). With
    /// no cache this is exactly `est_cycles`, so pre-cache behavior is
    /// untouched.
    fn est_for(&self, entry: &ModelEntry) -> u64 {
        let load = self
            .cache
            .as_ref()
            .map_or(0, |c| c.load_estimate(entry));
        entry.est_cycles.saturating_add(load)
    }

    /// Plans a cache-mediated admission against the current fabric state
    /// (pure — probing a head that then head-blocks mutates nothing).
    fn plan_for(&self, entry: &ModelEntry, now: u64) -> Option<AdmissionPlan> {
        let base = self.avoid_now();
        let cache = self.cache.as_ref().expect("caller checked cache is on");
        cache.plan(entry, now, &base, |need, extra| {
            let mut avoid = base.clone();
            avoid.extend_from_slice(extra);
            let order = healthy_order(&avoid);
            (order.len() >= need).then(|| order[..need].to_vec())
        })
    }

    /// Lets the cache stream a predicted model into currently-free tiles
    /// (no-op without a cache, with prefetch off, or with one in flight).
    fn try_prefetch(&mut self, now: u64) {
        if self.cache.is_none() {
            return;
        }
        let base = self.avoid_now();
        let running: Vec<&str> = self
            .running
            .iter()
            .map(|r| self.trace.requests[r.idx].model.as_str())
            .collect();
        let registry = self.registry;
        let cache = self.cache.as_mut().expect("checked above");
        cache.maybe_prefetch(now, &running, registry, |need, extra| {
            let mut avoid = base.clone();
            avoid.extend_from_slice(extra);
            let order = healthy_order(&avoid);
            (order.len() >= need).then(|| order[..need].to_vec())
        });
    }

    /// Executes one admitted request through [`run_request`] against
    /// this server's config and memo table.
    fn run_one(
        &mut self,
        entry: &ModelEntry,
        avoid: &[Tile],
        req_id: u64,
        attempt: u32,
        warm: bool,
    ) -> Result<RunOutput, ServeError> {
        run_request(self.cfg, &mut self.memo, entry, avoid, req_id, attempt, warm)
    }

    /// Admits the request at trace index `idx` at time `now`: runs it,
    /// folds fault casualties into the pool, and either schedules its
    /// completion or records it as dropped. With a weight cache, `plan`
    /// carries the cache's placement and load costs: the run is confined
    /// to exactly the planned tiles (so a warm hit reproduces the cold
    /// run's placement and the memoized result) and its completion is
    /// pushed out by the load cycles.
    fn admit(
        &mut self,
        idx: usize,
        now: u64,
        avoid: &[Tile],
        plan: Option<&AdmissionPlan>,
    ) -> Result<(), ServeError> {
        let req = &self.trace.requests[idx];
        let entry = self.registry.get(&req.model).expect("validated");
        let (avoid, warm, load) = match plan {
            Some(pl) => (
                zigzag_order()
                    .into_iter()
                    .filter(|t| !pl.tiles.contains(t))
                    .collect::<Vec<Tile>>(),
                pl.warm,
                pl.load,
            ),
            None => (avoid.to_vec(), false, maicc_mem::tier::LoadCost::default()),
        };
        let tiles = self
            .placement(entry, &avoid)
            .expect("caller checked fit before admitting");
        match self.run_one(entry, &avoid, req.id, 0, warm) {
            Ok(out) => {
                let mut newly_degraded = 0u64;
                for t in out.newly_retired {
                    if !self.degraded.contains(&t) {
                        self.degraded.push(t);
                        newly_degraded += 1;
                    }
                }
                self.degraded.sort_unstable_by_key(|t| (t.y, t.x));
                if let Some(c) = self.cache.as_mut() {
                    c.retire_tiles(&self.degraded);
                }
                if let Some(o) = self.obs.as_mut() {
                    o.admission(now, out.ecc_corrected, out.noc_retransmits, newly_degraded);
                }
                // Remap may have shifted the run onto different tiles;
                // recompute occupancy from the final avoid set so later
                // admissions see the true footprint.
                let occupied = if self.degraded.is_empty() {
                    tiles
                } else {
                    let mut post = avoid.clone();
                    post.extend(self.degraded.iter().copied());
                    match self.placement(entry, &post) {
                        Some(p) => p,
                        // Re-placement can fail when retirement shrank the
                        // pool below the footprint; fall back to the
                        // original grant minus the casualties so occupancy
                        // never counts a retired tile.
                        None => tiles
                            .into_iter()
                            .filter(|t| !self.degraded.contains(t))
                            .collect(),
                    }
                };
                let total = out.cycles + load.cycles;
                self.busy_tile_cycles += total * occupied.len() as u64;
                self.running.push(Running {
                    idx,
                    admitted: now,
                    done_at: now + total,
                    tiles: occupied,
                    ok: out.ok,
                    energy_pj: out.energy_pj + load.energy_pj,
                    tier: Tier::default(),
                    progress: 0,
                    executed: 0,
                    ckpt_log: out.ckpt_log,
                    attempt: 0,
                    retries: 0,
                    preemptions: 0,
                    warm,
                    load_cycles: load.cycles,
                });
                Ok(())
            }
            Err(ServeError::Sim(_)) => {
                // The run died beyond recovery: the request is dropped,
                // the fabric is released, serving continues.
                if let Some(o) = self.obs.as_mut() {
                    o.lost(now);
                }
                let req = &self.trace.requests[idx];
                self.outcomes.push(RequestOutcome {
                    id: req.id,
                    tenant: req.tenant.clone(),
                    model: req.model.clone(),
                    arrival: req.arrival,
                    admitted: now,
                    finished: now,
                    deadline: req.deadline,
                    tier: None,
                    ok: false,
                    dropped: true,
                    shed: false,
                    service_cycles: 0,
                    queue_cycles: now - req.arrival,
                    latency_cycles: now - req.arrival,
                    energy_pj: 0.0,
                    preemptions: 0,
                    retries: 0,
                    warm: None,
                    load_cycles: 0,
                });
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Retires every run finishing exactly at `now` (in request-id order)
    /// and records its outcome.
    fn complete_at(&mut self, now: u64) {
        // The range scan yields ascending indices; removing from the back
        // keeps the remaining ones valid. Ordering for the report happens
        // afterwards, on the collected runs, by request id.
        let done: Vec<usize> = (0..self.running.len())
            .filter(|&i| self.running[i].done_at == now)
            .collect();
        let mut finished: Vec<Running> = Vec::with_capacity(done.len());
        for &i in done.iter().rev() {
            finished.push(self.running.remove(i));
        }
        finished.sort_by_key(|run| self.trace.requests[run.idx].id);
        for run in finished {
            let req = &self.trace.requests[run.idx];
            if let Some(cache) = self.cache.as_mut() {
                // The completed run's weights stay on its tiles: a later
                // request for the same model admits warm.
                let entry = self.registry.get(&req.model).expect("validated");
                cache.on_release(entry, &run.tiles, now);
            }
            if let Some(o) = self.obs.as_mut() {
                o.completion(now, now - req.arrival);
            }
            self.outcomes.push(RequestOutcome {
                id: req.id,
                tenant: req.tenant.clone(),
                model: req.model.clone(),
                arrival: req.arrival,
                admitted: run.admitted,
                finished: now,
                deadline: req.deadline,
                tier: None,
                ok: run.ok,
                dropped: false,
                shed: false,
                service_cycles: run.done_at - run.admitted,
                queue_cycles: run.admitted - req.arrival,
                latency_cycles: now - req.arrival,
                energy_pj: run.energy_pj,
                preemptions: 0,
                retries: 0,
                warm: if self.cache.is_some() {
                    Some(run.warm)
                } else {
                    None
                },
                load_cycles: run.load_cycles,
            });
        }
    }

    /// The time of the next event: the earliest of the next arrival and
    /// the earliest completion.
    fn next_event(&self, next_arrival: Option<u64>) -> Option<u64> {
        let next_done = self.running.iter().map(|r| r.done_at).min();
        match (next_arrival, next_done) {
            (Some(a), Some(d)) => Some(a.min(d)),
            (Some(a), None) => Some(a),
            (None, Some(d)) => Some(d),
            (None, None) => None,
        }
    }

    fn run_queued(&mut self) -> Result<(), ServeError> {
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut next = 0usize; // next trace index to arrive
        loop {
            let arrival = self.trace.requests.get(next).map(|r| r.arrival);
            let Some(now) = self.next_event(arrival) else {
                break;
            };
            self.complete_at(now);
            if let Some(c) = self.cache.as_mut() {
                c.settle_prefetch(now);
            }
            while next < self.trace.requests.len() && self.trace.requests[next].arrival == now {
                if let Some(c) = self.cache.as_mut() {
                    c.record_arrival(&self.trace.requests[next].model, now);
                }
                if let Some(o) = self.obs.as_mut() {
                    o.arrival(now);
                }
                queue.push_back(next);
                next += 1;
            }
            // Admission: repeatedly pick the policy's head and admit it
            // if it fits; head-blocking otherwise. With a weight cache
            // the fit probe is the cache's pure admission plan (warm
            // tiles or cold placement with cost-aware eviction).
            while let Some(pos) = self.pick(&queue) {
                let idx = queue[pos];
                let entry = self
                    .registry
                    .get(&self.trace.requests[idx].model)
                    .expect("validated");
                if self.cache.is_some() {
                    let Some(plan) = self.plan_for(entry, now) else {
                        if self.running.is_empty() {
                            return Err(ServeError::PoolTooSmall {
                                reason: format!(
                                    "model `{}` no longer fits the empty pool \
                                     ({} tiles degraded)",
                                    entry.name,
                                    self.degraded.len()
                                ),
                            });
                        }
                        break;
                    };
                    queue.remove(pos);
                    self.cache
                        .as_mut()
                        .expect("checked above")
                        .commit(&plan, entry, now);
                    self.admit(idx, now, &[], Some(&plan))?;
                    continue;
                }
                let avoid = self.avoid_now();
                if self.placement(entry, &avoid).is_none() {
                    if self.running.is_empty() {
                        return Err(ServeError::PoolTooSmall {
                            reason: format!(
                                "model `{}` no longer fits the empty pool \
                                 ({} tiles degraded)",
                                entry.name,
                                self.degraded.len()
                            ),
                        });
                    }
                    break;
                }
                queue.remove(pos);
                self.admit(idx, now, &avoid, None)?;
            }
            // With tiles still free and the queue drained (or blocked),
            // stream a predicted model's weights while the fabric works.
            self.try_prefetch(now);
            // Fair-weather requests are untiered; the telemetry stream
            // classifies them as Soft (the default tier).
            if self.obs.is_some() {
                self.obs_sync(now, 0, queue.len() as u64, 0);
            }
        }
        Ok(())
    }

    /// The queue position the policy wants to admit next.
    fn pick(&self, queue: &VecDeque<usize>) -> Option<usize> {
        if queue.is_empty() {
            return None;
        }
        match self.cfg.policy {
            Policy::Fcfs => Some(0),
            Policy::Sjf => (0..queue.len()).min_by_key(|&p| {
                let req = &self.trace.requests[queue[p]];
                let est = self
                    .registry
                    .get(&req.model)
                    .map_or(u64::MAX, |e| self.est_for(e));
                (est, req.arrival, req.id)
            }),
            _ => unreachable!("run_queued only handles FCFS/SJF"),
        }
    }

    fn run_time_shared(&mut self) -> Result<(), ServeError> {
        // Per-tenant FIFO queues, tenant names in sorted order.
        let mut tenants: Vec<String> = self
            .trace
            .requests
            .iter()
            .map(|r| r.tenant.clone())
            .collect();
        tenants.sort();
        tenants.dedup();
        let mut queues: BTreeMap<String, VecDeque<usize>> = tenants
            .iter()
            .map(|t| (t.clone(), VecDeque::new()))
            .collect();
        let mut cursor = 0usize;
        let mut next = 0usize;
        loop {
            let arrival = self.trace.requests.get(next).map(|r| r.arrival);
            let Some(now) = self.next_event(arrival) else {
                break;
            };
            self.complete_at(now);
            while next < self.trace.requests.len() && self.trace.requests[next].arrival == now {
                let t = self.trace.requests[next].tenant.clone();
                queues.get_mut(&t).expect("tenant known").push_back(next);
                next += 1;
            }
            // One request at a time gets the whole pool; round-robin
            // across tenants with pending work. The outer loop re-tries
            // when an admission drops instantly (the pool is still free).
            while self.running.is_empty() && !tenants.is_empty() {
                let mut admitted = false;
                for step in 0..tenants.len() {
                    let t = &tenants[(cursor + step) % tenants.len()];
                    let Some(&idx) = queues[t].front() else {
                        continue;
                    };
                    let entry = self
                        .registry
                        .get(&self.trace.requests[idx].model)
                        .expect("validated");
                    let avoid = self.avoid_now();
                    if self.placement(entry, &avoid).is_none() {
                        return Err(ServeError::PoolTooSmall {
                            reason: format!(
                                "model `{}` no longer fits the empty pool \
                                 ({} tiles degraded)",
                                entry.name,
                                self.degraded.len()
                            ),
                        });
                    }
                    queues.get_mut(t.as_str()).expect("tenant known").pop_front();
                    cursor = (cursor + step + 1) % tenants.len();
                    self.admit(idx, now, &avoid, None)?;
                    admitted = true;
                    break;
                }
                if !admitted {
                    break;
                }
            }
        }
        Ok(())
    }

    fn run_partitioned(&mut self) -> Result<(), ServeError> {
        // Region sizes: each tenant's largest requested model.
        let mut tenants: Vec<String> = self
            .trace
            .requests
            .iter()
            .map(|r| r.tenant.clone())
            .collect();
        tenants.sort();
        tenants.dedup();
        let need: Vec<usize> = tenants
            .iter()
            .map(|t| {
                self.trace
                    .requests
                    .iter()
                    .filter(|r| &r.tenant == t)
                    .map(|r| self.registry.get(&r.model).expect("validated").tiles)
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let total: usize = need.iter().sum();
        if total > self.pool_size {
            return Err(ServeError::PoolTooSmall {
                reason: format!(
                    "static partition needs {total} tiles for {} tenants, \
                     pool holds {}",
                    tenants.len(),
                    self.pool_size
                ),
            });
        }

        let mut regions = self.carve_regions(&tenants, &need)?;
        // Degraded count as of the last carve: growth past this (admits
        // fold casualties in mid-iteration) means a region lost a tile
        // and the partition must move.
        let mut carved_at = self.degraded.len();
        let mut queues: BTreeMap<String, VecDeque<usize>> = tenants
            .iter()
            .map(|t| (t.clone(), VecDeque::new()))
            .collect();
        let mut next = 0usize;
        loop {
            let arrival = self.trace.requests.get(next).map(|r| r.arrival);
            let Some(now) = self.next_event(arrival) else {
                break;
            };
            self.complete_at(now);
            while next < self.trace.requests.len() && self.trace.requests[next].arrival == now {
                let t = self.trace.requests[next].tenant.clone();
                queues.get_mut(&t).expect("tenant known").push_back(next);
                next += 1;
            }
            if self.degraded.len() > carved_at {
                // A tile died mid-run: re-carve the static partition
                // around the casualty (only free regions move; occupied
                // tiles are excluded from the new carve by avoid_now).
                regions = self.carve_regions(&tenants, &need)?;
                carved_at = self.degraded.len();
            }
            // Each tenant admits onto its own region when free; repeat
            // the pass while it makes progress so an instantly-dropped
            // request doesn't strand the rest of its tenant's queue.
            loop {
                let mut progressed = false;
                for (ti, t) in tenants.iter().enumerate() {
                    let busy = self
                        .running
                        .iter()
                        .any(|r| &self.trace.requests[r.idx].tenant == t);
                    if busy {
                        continue;
                    }
                    let Some(&idx) = queues[t].front() else {
                        continue;
                    };
                    let entry = self
                        .registry
                        .get(&self.trace.requests[idx].model)
                        .expect("validated");
                    // Confine the run to this tenant's region: avoid
                    // everything else.
                    let region = &regions[ti];
                    let avoid: Vec<Tile> = zigzag_order()
                        .into_iter()
                        .filter(|tile| !region.contains(tile) || self.degraded.contains(tile))
                        .collect();
                    if self.placement(entry, &avoid).is_none() {
                        continue; // region shrank below this model; re-carve next event
                    }
                    queues.get_mut(t.as_str()).expect("tenant known").pop_front();
                    self.admit(idx, now, &avoid, None)?;
                    progressed = true;
                }
                if !progressed {
                    break;
                }
            }
            // Livelock guard: pending work, nothing running, nothing left
            // to arrive, and the admission pass above placed nothing —
            // the remaining regions can no longer host their queue heads
            // and never will.
            let pending: usize = queues.values().map(VecDeque::len).sum();
            if pending > 0 && self.running.is_empty() && next >= self.trace.requests.len() {
                return Err(ServeError::PoolTooSmall {
                    reason: format!(
                        "degradation shrank a partition below its tenant's \
                         footprint ({} tiles degraded)",
                        self.degraded.len()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Carves consecutive per-tenant regions from the healthy pool
    /// serpentine, skipping degraded and currently occupied tiles.
    fn carve_regions(
        &self,
        tenants: &[String],
        need: &[usize],
    ) -> Result<Vec<Vec<Tile>>, ServeError> {
        let mut avoid = self.mask.clone();
        avoid.extend_from_slice(&self.degraded);
        for r in &self.running {
            avoid.extend_from_slice(&r.tiles);
        }
        let order = healthy_order(&avoid);
        let total: usize = need.iter().sum();
        if order.len() < total {
            return Err(ServeError::PoolTooSmall {
                reason: format!(
                    "static partition needs {total} healthy tiles, {} remain",
                    order.len()
                ),
            });
        }
        let mut regions = Vec::with_capacity(tenants.len());
        let mut offset = 0;
        for &n in need {
            regions.push(order[offset..offset + n].to_vec());
            offset += n;
        }
        Ok(regions)
    }

    // ----- the overload-hardened event loop --------------------------
    //
    // Phase order at every event (DESIGN.md §13):
    //   retire → release retries → arrivals (+ queue-cap shed) →
    //   preempt → admit → shed
    // Admission is strict priority across tiers (policy order within a
    // tier) with head-blocking: the single best candidate either admits
    // or stalls the pass, so a Hard head drains the pool instead of
    // being starved by best-effort backfill.

    /// The tier admission rank plus the in-tier policy key for one
    /// pending entry — the global admission order is the minimum of
    /// `(tier, key, arrival, id)`.
    fn admission_key(&self, p: &Pending) -> (u8, u64, u64, u64) {
        let req = &self.trace.requests[p.idx];
        let key = match self.cfg.policy {
            Policy::Sjf => self
                .registry
                .get(&req.model)
                .map_or(u64::MAX, |e| self.est_for(e))
                .saturating_sub(p.progress),
            _ => 0,
        };
        (p.tier.rank(), key, req.arrival, req.id)
    }

    /// The pending entry admission wants next, if any.
    fn pick_overload(&self, pending: &[Pending]) -> Option<usize> {
        (0..pending.len()).min_by_key(|&i| self.admission_key(&pending[i]))
    }

    /// Records a shed: the request is dropped without ever touching the
    /// fabric (queue overflow, a busted deadline estimate, or a pool
    /// that can no longer hold its model).
    fn push_shed(&mut self, p: Pending, now: u64) {
        if let Some(o) = self.obs.as_mut() {
            o.shed(now);
        }
        let req = &self.trace.requests[p.idx];
        let latency = now - req.arrival;
        self.outcomes.push(RequestOutcome {
            id: req.id,
            tenant: req.tenant.clone(),
            model: req.model.clone(),
            arrival: req.arrival,
            admitted: now,
            finished: now,
            deadline: req.deadline,
            tier: Some(p.tier),
            ok: false,
            dropped: true,
            shed: true,
            service_cycles: p.executed,
            queue_cycles: latency.saturating_sub(p.executed),
            latency_cycles: latency,
            energy_pj: 0.0,
            preemptions: p.preemptions,
            retries: p.retries,
            warm: None,
            load_cycles: 0,
        });
    }

    /// Retires every run finishing exactly at `now`, with the overload
    /// loop's accounting: occupancy bills at completion (preempted
    /// segments billed at eviction), and service time includes the
    /// preempted partial runs.
    fn complete_overload_at(&mut self, now: u64) {
        let done: Vec<usize> = (0..self.running.len())
            .filter(|&i| self.running[i].done_at == now)
            .collect();
        let mut finished: Vec<Running> = Vec::with_capacity(done.len());
        for &i in done.iter().rev() {
            finished.push(self.running.remove(i));
        }
        finished.sort_by_key(|run| self.trace.requests[run.idx].id);
        for run in finished {
            let req = &self.trace.requests[run.idx];
            if let Some(cache) = self.cache.as_mut() {
                let entry = self.registry.get(&req.model).expect("validated");
                cache.on_release(entry, &run.tiles, now);
            }
            let segment = run.done_at - run.admitted;
            self.busy_tile_cycles += segment * run.tiles.len() as u64;
            let service = run.executed + segment;
            let latency = now - req.arrival;
            if let Some(o) = self.obs.as_mut() {
                o.completion(now, latency);
            }
            self.outcomes.push(RequestOutcome {
                id: req.id,
                tenant: req.tenant.clone(),
                model: req.model.clone(),
                arrival: req.arrival,
                admitted: run.admitted,
                finished: now,
                deadline: req.deadline,
                tier: Some(run.tier),
                ok: run.ok,
                dropped: false,
                shed: false,
                service_cycles: service,
                queue_cycles: latency.saturating_sub(service),
                latency_cycles: latency,
                energy_pj: run.energy_pj,
                preemptions: run.preemptions,
                retries: run.retries,
                warm: if self.cache.is_some() {
                    Some(run.warm)
                } else {
                    None
                },
                load_cycles: run.load_cycles,
            });
        }
    }

    /// If the admission head is a blocked `Hard` request, evicts running
    /// `BestEffort` work (most recently admitted first) until the head
    /// fits — but only when eviction can actually make it fit. A victim
    /// resumes from the latest sink-progress checkpoint of its current
    /// run at or before the preemption point (restarting from zero when
    /// no [`RecoveryPolicy`] armed the checkpoint machinery), and
    /// re-enters its tenant's queue with its original seniority.
    fn preempt_for_hard(&mut self, pending: &mut Vec<Pending>, now: u64) {
        let Some(pos) = self.pick_overload(pending) else {
            return;
        };
        if pending[pos].tier != Tier::Hard {
            return;
        }
        let entry = self
            .registry
            .get(&self.trace.requests[pending[pos].idx].model)
            .expect("validated");
        if self.placement(entry, &self.avoid_now()).is_some() {
            return; // fits without violence
        }
        // Pointless-eviction guard: would it fit even with every
        // best-effort runner gone?
        let mut avoid_no_be = self.mask.clone();
        avoid_no_be.extend_from_slice(&self.degraded);
        for r in &self.running {
            if r.tier != Tier::BestEffort {
                avoid_no_be.extend_from_slice(&r.tiles);
            }
        }
        if self.placement(entry, &avoid_no_be).is_none() {
            return;
        }
        while self.placement(entry, &self.avoid_now()).is_none() {
            let victim = (0..self.running.len())
                .filter(|&i| self.running[i].tier == Tier::BestEffort)
                .max_by_key(|&i| {
                    (
                        self.running[i].admitted,
                        self.trace.requests[self.running[i].idx].id,
                    )
                });
            let Some(vi) = victim else { break };
            let v = self.running.remove(vi);
            let elapsed = now - v.admitted;
            self.busy_tile_cycles += elapsed * v.tiles.len() as u64;
            if let Some(cache) = self.cache.as_mut() {
                // The victim resumes from its checkpoint later; its
                // weights stay on the vacated tiles so a resume there is
                // warm instead of silently paying a cold reload. (The
                // preemptor's own placement will evict the set only if it
                // actually overlaps those tiles.)
                let entry = self
                    .registry
                    .get(&self.trace.requests[v.idx].model)
                    .expect("validated");
                cache.on_release(entry, &v.tiles, now);
            }
            // The victim's position in its (full-model) run timeline is
            // carried progress + elapsed wall time; it keeps the latest
            // checkpoint at or before that point.
            let position = v.progress + elapsed;
            let kept = v
                .ckpt_log
                .iter()
                .copied()
                .filter(|&c| c <= position)
                .max()
                .unwrap_or(0);
            pending.push(Pending {
                idx: v.idx,
                tier: v.tier,
                progress: kept,
                executed: v.executed + elapsed,
                attempt: v.attempt,
                retries: v.retries,
                preemptions: v.preemptions + 1,
                available_at: now,
            });
        }
    }

    /// Admits one pending entry: runs it (under its attempt's fault
    /// salt), folds casualties into the pool, and schedules completion
    /// after the cycles its carried checkpoint progress still owes. An
    /// unrecoverable run re-enters admission as an elevated-priority
    /// retry while budget lasts, else drops.
    fn admit_overload(
        &mut self,
        p: Pending,
        now: u64,
        avoid: &[Tile],
        plan: Option<&AdmissionPlan>,
        parked: &mut Vec<Pending>,
        tenant_retries: &mut BTreeMap<String, u32>,
    ) -> Result<(), ServeError> {
        let req = &self.trace.requests[p.idx];
        let (req_id, tenant) = (req.id, req.tenant.clone());
        let entry = self.registry.get(&req.model).expect("validated");
        let (avoid, warm, load) = match plan {
            Some(pl) => (
                zigzag_order()
                    .into_iter()
                    .filter(|t| !pl.tiles.contains(t))
                    .collect::<Vec<Tile>>(),
                pl.warm,
                pl.load,
            ),
            None => (avoid.to_vec(), false, maicc_mem::tier::LoadCost::default()),
        };
        let tiles = self
            .placement(entry, &avoid)
            .expect("caller checked fit before admitting");
        match self.run_one(entry, &avoid, req_id, p.attempt, warm) {
            Ok(out) => {
                let mut newly_degraded = 0u64;
                for t in out.newly_retired {
                    if !self.degraded.contains(&t) {
                        self.degraded.push(t);
                        newly_degraded += 1;
                    }
                }
                self.degraded.sort_unstable_by_key(|t| (t.y, t.x));
                if let Some(c) = self.cache.as_mut() {
                    c.retire_tiles(&self.degraded);
                }
                if let Some(o) = self.obs.as_mut() {
                    o.admission(now, out.ecc_corrected, out.noc_retransmits, newly_degraded);
                }
                let occupied = if self.degraded.is_empty() {
                    tiles
                } else {
                    let mut post = avoid.clone();
                    post.extend(self.degraded.iter().copied());
                    match self.placement(entry, &post) {
                        Some(placed) => placed,
                        None => tiles
                            .into_iter()
                            .filter(|t| !self.degraded.contains(t))
                            .collect(),
                    }
                };
                // A resumed run re-pays the load only when the weights are
                // gone (cold); a warm resume on its old tiles pays nothing.
                let remaining =
                    out.cycles.saturating_sub(p.progress).max(1) + load.cycles;
                self.running.push(Running {
                    idx: p.idx,
                    admitted: now,
                    done_at: now + remaining,
                    tiles: occupied,
                    ok: out.ok,
                    energy_pj: out.energy_pj + load.energy_pj,
                    tier: p.tier,
                    progress: p.progress,
                    executed: p.executed,
                    ckpt_log: out.ckpt_log,
                    attempt: p.attempt,
                    retries: p.retries,
                    preemptions: p.preemptions,
                    warm,
                    load_cycles: load.cycles,
                });
                Ok(())
            }
            Err(ServeError::Sim(_)) => {
                // Unrecoverable. Retry with backoff at elevated priority
                // while the budgets last; the failed attempt occupies no
                // fabric time.
                let used = tenant_retries.get(&tenant).copied().unwrap_or(0);
                if let Some(budget) = self.cfg.retry_budget {
                    if p.attempt < budget.max_retries_per_request
                        && used < budget.per_tenant_retries
                    {
                        *tenant_retries.entry(tenant).or_insert(0) += 1;
                        parked.push(Pending {
                            tier: p.tier.elevated(),
                            progress: 0,
                            attempt: p.attempt + 1,
                            retries: p.retries + 1,
                            available_at: now + budget.backoff_cycles(p.attempt),
                            ..p
                        });
                        return Ok(());
                    }
                }
                if let Some(o) = self.obs.as_mut() {
                    o.lost(now);
                }
                let req = &self.trace.requests[p.idx];
                let latency = now - req.arrival;
                self.outcomes.push(RequestOutcome {
                    id: req.id,
                    tenant: req.tenant.clone(),
                    model: req.model.clone(),
                    arrival: req.arrival,
                    admitted: now,
                    finished: now,
                    deadline: req.deadline,
                    tier: Some(p.tier),
                    ok: false,
                    dropped: true,
                    shed: false,
                    service_cycles: p.executed,
                    queue_cycles: latency.saturating_sub(p.executed),
                    latency_cycles: latency,
                    energy_pj: 0.0,
                    preemptions: p.preemptions,
                    retries: p.retries,
                    warm: None,
                    load_cycles: 0,
                });
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    fn run_overload(&mut self) -> Result<(), ServeError> {
        let ov = self.cfg.overload.clone().expect("dispatch checked");
        let mut pending: Vec<Pending> = Vec::new();
        let mut parked: Vec<Pending> = Vec::new();
        let mut tenant_retries: BTreeMap<String, u32> = BTreeMap::new();
        let mut above_since: Option<u64> = None;
        let mut next = 0usize;
        loop {
            let arrival = self.trace.requests.get(next).map(|r| r.arrival);
            let release = parked.iter().map(|p| p.available_at).min();
            let done = self.running.iter().map(|r| r.done_at).min();
            let Some(now) = [arrival, release, done].into_iter().flatten().min()
            else {
                break;
            };

            // Phase 1: retire finished runs, then release retries whose
            // backoff expired, then fold in arrivals (shedding past the
            // per-tenant queue cap).
            self.complete_overload_at(now);
            if let Some(c) = self.cache.as_mut() {
                c.settle_prefetch(now);
            }
            let mut i = 0;
            while i < parked.len() {
                if parked[i].available_at <= now {
                    pending.push(parked.remove(i));
                } else {
                    i += 1;
                }
            }
            while next < self.trace.requests.len()
                && self.trace.requests[next].arrival == now
            {
                if let Some(cache) = self.cache.as_mut() {
                    let model = &self.trace.requests[next].model;
                    cache.record_arrival(model, now);
                }
                let tenant = self.trace.requests[next].tenant.clone();
                let tier = ov.tier_of(&tenant);
                let waiting = pending
                    .iter()
                    .filter(|p| self.trace.requests[p.idx].tenant == tenant)
                    .count();
                if let Some(o) = self.obs.as_mut() {
                    o.arrival(now);
                }
                let arrival_entry = Pending {
                    idx: next,
                    tier,
                    progress: 0,
                    executed: 0,
                    attempt: 0,
                    retries: 0,
                    preemptions: 0,
                    available_at: now,
                };
                if ov.queue_cap > 0 && waiting >= ov.queue_cap {
                    self.push_shed(arrival_entry, now);
                } else {
                    pending.push(arrival_entry);
                }
                next += 1;
            }

            // Brownout streak: instantaneous occupancy after retirement,
            // sampled once per event. Active once the streak covers the
            // window; it collapses the first event occupancy dips below
            // the high-water mark.
            let pool_now = self.pool_size.saturating_sub(self.degraded.len());
            let brownout = ov.brownout.as_ref().map(|b| {
                let occupied: usize =
                    self.running.iter().map(|r| r.tiles.len()).sum();
                #[allow(clippy::cast_precision_loss)]
                let high = pool_now > 0
                    && occupied as f64 / pool_now as f64 >= b.high_water;
                if high {
                    above_since.get_or_insert(now);
                } else {
                    above_since = None;
                }
                (
                    above_since.is_some_and(|s| now - s >= b.window_cycles),
                    b.best_effort_fraction,
                )
            });

            // Phase 2: preempt for a blocked Hard head.
            if ov.preempt {
                self.preempt_for_hard(&mut pending, now);
            }

            // Phase 3: admit in strict (tier, policy) order with
            // head-blocking.
            while let Some(pos) = self.pick_overload(&pending) {
                let req = &self.trace.requests[pending[pos].idx];
                let entry = self.registry.get(&req.model).expect("validated");
                let avoid = self.avoid_now();
                if self.placement(entry, &avoid).is_none() {
                    break;
                }
                if let Some((true, fraction)) = brownout {
                    if pending[pos].tier == Tier::BestEffort {
                        let be_occupied: usize = self
                            .running
                            .iter()
                            .filter(|r| r.tier == Tier::BestEffort)
                            .map(|r| r.tiles.len())
                            .sum();
                        let pool_now =
                            self.pool_size.saturating_sub(self.degraded.len());
                        #[allow(
                            clippy::cast_precision_loss,
                            clippy::cast_possible_truncation,
                            clippy::cast_sign_loss
                        )]
                        let cap = (pool_now as f64 * fraction).floor() as usize;
                        if be_occupied + entry.tiles > cap {
                            break;
                        }
                    }
                }
                let p = pending.remove(pos);
                if self.cache.is_some() {
                    let entry = self
                        .registry
                        .get(&self.trace.requests[p.idx].model)
                        .expect("validated");
                    let plan = self
                        .plan_for(entry, now)
                        .expect("placement succeeded, so the cache can plan");
                    self.cache
                        .as_mut()
                        .expect("checked above")
                        .commit(&plan, entry, now);
                    self.admit_overload(
                        p,
                        now,
                        &[],
                        Some(&plan),
                        &mut parked,
                        &mut tenant_retries,
                    )?;
                } else {
                    self.admit_overload(
                        p,
                        now,
                        &avoid,
                        None,
                        &mut parked,
                        &mut tenant_retries,
                    )?;
                }
            }

            // Phase 4: deadline-aware shedding of the remaining backlog.
            // Retries are exempt — they exist to deliver a result, late
            // or not.
            if ov.shed_late {
                let mut i = 0;
                while i < pending.len() {
                    let p = &pending[i];
                    let req = &self.trace.requests[p.idx];
                    let hopeless = p.attempt == 0
                        && req.deadline.is_some_and(|d| {
                            let est = self
                                .registry
                                .get(&req.model)
                                .map_or(0, |e| self.est_for(e));
                            now + est.saturating_sub(p.progress) > d
                        });
                    if hopeless {
                        let p = pending.remove(i);
                        self.push_shed(p, now);
                    } else {
                        i += 1;
                    }
                }
            }

            // Termination guard: with an idle fabric, nothing left to
            // arrive or release, and a head that still cannot place, the
            // head will never fit the (degraded) empty pool — shed it
            // and let the rest of the backlog try again.
            while self.running.is_empty()
                && next >= self.trace.requests.len()
                && parked.is_empty()
                && !pending.is_empty()
            {
                let pos = self.pick_overload(&pending).expect("non-empty");
                let req = &self.trace.requests[pending[pos].idx];
                let entry = self.registry.get(&req.model).expect("validated");
                let avoid = self.avoid_now();
                if self.placement(entry, &avoid).is_some() {
                    let p = pending.remove(pos);
                    if self.cache.is_some() {
                        let entry = self
                            .registry
                            .get(&self.trace.requests[p.idx].model)
                            .expect("validated");
                        let plan = self
                            .plan_for(entry, now)
                            .expect("placement succeeded, so the cache can plan");
                        self.cache
                            .as_mut()
                            .expect("checked above")
                            .commit(&plan, entry, now);
                        self.admit_overload(
                            p,
                            now,
                            &[],
                            Some(&plan),
                            &mut parked,
                            &mut tenant_retries,
                        )?;
                    } else {
                        self.admit_overload(
                            p,
                            now,
                            &avoid,
                            None,
                            &mut parked,
                            &mut tenant_retries,
                        )?;
                    }
                } else {
                    let p = pending.remove(pos);
                    self.push_shed(p, now);
                }
            }

            self.try_prefetch(now);
            if self.obs.is_some() {
                let mut depth = [0u64; 3];
                for p in &pending {
                    depth[p.tier.rank() as usize] += 1;
                }
                self.obs_sync(now, depth[0], depth[1], depth[2]);
            }
        }
        Ok(())
    }
}
