//! SLO accounting: folding per-request outcomes into a serving report.
//!
//! All latency figures are in fabric cycles. Percentiles are
//! nearest-rank over the completed requests' end-to-end latencies
//! (queueing + service), computed on integers so the report is exactly
//! reproducible. Floats that do appear (utilization, rates, energy) are
//! serialized with fixed precision for the same reason: a serving run
//! with a fixed trace must emit byte-identical JSON regardless of how
//! the underlying simulations were driven.

use crate::cache::CacheCounters;
use crate::overload::Tier;

/// What happened to one request, after the fact.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// Trace-assigned request id.
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Model served.
    pub model: String,
    /// Arrival time, cycles.
    pub arrival: u64,
    /// When the scheduler granted tiles (equals `finished` for drops).
    pub admitted: u64,
    /// When the last ofmap byte drained (drop time for drops).
    pub finished: u64,
    /// Absolute deadline, if the request carried one.
    pub deadline: Option<u64>,
    /// The tenant's priority tier under the overload loop; `None` for
    /// fair-weather serving.
    pub tier: Option<Tier>,
    /// Whether the ofmap matched the golden reference.
    pub ok: bool,
    /// True if the request never produced a result (its simulation
    /// failed in a way recovery could not absorb, or it was shed).
    pub dropped: bool,
    /// True if admission control dropped the request without running it
    /// (queue overflow or a deadline its analytic estimate already
    /// busts). Always implies `dropped`; a drop that is *not* a shed is
    /// unrecoverable.
    pub shed: bool,
    /// Cycles spent executing on the fabric (including partial runs a
    /// preemption later discarded back to a checkpoint).
    pub service_cycles: u64,
    /// Cycles spent waiting for admission.
    pub queue_cycles: u64,
    /// End-to-end latency (`finished - arrival`).
    pub latency_cycles: u64,
    /// CMem + NoC dynamic energy of the run, picojoules.
    pub energy_pj: f64,
    /// Times this request was preempted by a higher tier.
    pub preemptions: u32,
    /// Times this request was retried after an unrecoverable run.
    pub retries: u32,
    /// Whether the admission found the model's weights already resident
    /// in CMem. `None` when the run had no weight cache, or the request
    /// never held tiles (drops and sheds).
    pub warm: Option<bool>,
    /// Weight-load cycles the request paid before compute started
    /// (always 0 without a weight cache).
    pub load_cycles: u64,
}

impl RequestOutcome {
    /// Whether this request was dropped without ever producing a result
    /// *and* was not a deliberate shed — the failure mode overload
    /// hardening exists to eliminate for `Hard` tenants.
    #[must_use]
    pub fn unrecoverable(&self) -> bool {
        self.dropped && !self.shed
    }

    /// Whether this request missed its SLO: it carried a deadline and
    /// either dropped or finished past it.
    #[must_use]
    pub fn missed_deadline(&self) -> bool {
        match self.deadline {
            Some(d) => self.dropped || self.finished > d,
            None => false,
        }
    }
}

/// Aggregated SLO figures for one tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSlo {
    /// Tenant name.
    pub tenant: String,
    /// Requests the tenant issued.
    pub requests: u64,
    /// Requests that completed with a result.
    pub completed: u64,
    /// Requests dropped without a result.
    pub dropped: u64,
    /// Drops that were deliberate load sheds (admission control).
    pub shed: u64,
    /// Drops that were *not* sheds: the simulation failed past every
    /// replay, remap, and retry.
    pub unrecoverable: u64,
    /// Preemption events suffered by this tenant's requests.
    pub preemptions: u64,
    /// Retry attempts consumed by this tenant's requests.
    pub retries: u64,
    /// Median end-to-end latency, cycles (nearest rank; 0 if nothing
    /// completed).
    pub p50_latency_cycles: u64,
    /// 95th-percentile latency, cycles.
    pub p95_latency_cycles: u64,
    /// 99th-percentile latency, cycles.
    pub p99_latency_cycles: u64,
    /// Mean admission queueing delay over all requests, cycles.
    pub mean_queue_cycles: f64,
    /// Mean fabric service time over completed requests, cycles.
    pub mean_service_cycles: f64,
    /// Requests that carried a deadline and missed it (drops count).
    pub deadline_misses: u64,
    /// `deadline_misses` over requests that carried a deadline (0 when
    /// none did).
    pub miss_rate: f64,
    /// Mean CMem + NoC energy per completed request, picojoules.
    pub energy_pj_per_request: f64,
}

/// The full serving report: fleet-level figures plus per-tenant SLOs and
/// the raw per-request outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Scheduler policy label (`fcfs`, `sjf`, ...).
    pub policy: String,
    /// Tiles the scheduler was allowed to place on.
    pub pool_tiles: usize,
    /// Tiles retired from the pool by fault recovery during the run.
    pub degraded_tiles: usize,
    /// Total requests in the trace.
    pub requests: u64,
    /// Requests that completed with a result.
    pub completed: u64,
    /// Requests dropped without a result.
    pub dropped: u64,
    /// Fleet-wide deliberate load sheds (subset of `dropped`).
    pub shed: u64,
    /// Fleet-wide unrecoverable drops (`dropped - shed`).
    pub unrecoverable: u64,
    /// Fleet-wide preemption events.
    pub preemptions: u64,
    /// Fleet-wide retry attempts consumed.
    pub retries: u64,
    /// Cycle at which the last request finished (0 for an empty trace).
    pub makespan_cycles: u64,
    /// Busy tile-cycles over `pool_tiles × makespan` — the fraction of
    /// the schedulable fabric that was actually computing.
    pub utilization: f64,
    /// Fleet median latency, cycles.
    pub p50_latency_cycles: u64,
    /// Fleet 95th-percentile latency, cycles.
    pub p95_latency_cycles: u64,
    /// Fleet 99th-percentile latency, cycles.
    pub p99_latency_cycles: u64,
    /// Fleet deadline-miss rate (over requests that carried deadlines).
    pub deadline_miss_rate: f64,
    /// Mean energy per completed request, picojoules.
    pub energy_pj_per_request: f64,
    /// Per-tenant SLO breakdowns, sorted by tenant name.
    pub tenants: Vec<TenantSlo>,
    /// Weight-cache accounting; `None` when the run had no weight cache
    /// (the report then serializes byte-identically to pre-cache
    /// serving).
    pub cache: Option<CacheReport>,
    /// Raw outcomes, sorted by request id.
    pub outcomes: Vec<RequestOutcome>,
}

/// Warm-vs-cold latency split for one tenant under the weight cache.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantCacheSlo {
    /// Tenant name.
    pub tenant: String,
    /// Completed requests admitted warm.
    pub warm_completed: u64,
    /// Completed requests admitted cold.
    pub cold_completed: u64,
    /// Median end-to-end latency of warm completions, cycles.
    pub warm_p50_latency_cycles: u64,
    /// 99th-percentile latency of warm completions, cycles.
    pub warm_p99_latency_cycles: u64,
    /// Median end-to-end latency of cold completions, cycles.
    pub cold_p50_latency_cycles: u64,
    /// 99th-percentile latency of cold completions, cycles.
    pub cold_p99_latency_cycles: u64,
}

/// Weight-cache section of the serving report: activity counters plus
/// the warm-vs-cold latency split the cache exists to create.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheReport {
    /// Admissions that found the weights resident.
    pub hits: u64,
    /// Admissions that paid a tier load.
    pub misses: u64,
    /// `hits / (hits + misses)`.
    pub hit_rate: f64,
    /// Resident sets displaced by cold placements or tile retirement.
    pub evictions: u64,
    /// Cold loads served from the modeled LLC tier instead of DRAM.
    pub llc_hits: u64,
    /// Speculative streams issued.
    pub prefetch_issued: u64,
    /// Speculative streams whose model was then actually requested.
    pub prefetch_used: u64,
    /// Speculative streams cancelled by a competing cold placement.
    pub prefetch_canceled: u64,
    /// `prefetch_used / prefetch_issued`.
    pub prefetch_accuracy: f64,
    /// Energy spent on speculative streams, picojoules.
    pub prefetch_pj: f64,
    /// Fleet median latency of warm completions, cycles.
    pub warm_p50_latency_cycles: u64,
    /// Fleet 99th-percentile latency of warm completions, cycles.
    pub warm_p99_latency_cycles: u64,
    /// Fleet median latency of cold completions, cycles.
    pub cold_p50_latency_cycles: u64,
    /// Fleet 99th-percentile latency of cold completions, cycles.
    pub cold_p99_latency_cycles: u64,
    /// Per-tenant warm/cold splits, sorted by tenant name.
    pub tenants: Vec<TenantCacheSlo>,
}

/// (warm p50, warm p99, cold p50, cold p99) over completed outcomes.
fn warm_cold_split(outcomes: &[&RequestOutcome]) -> (u64, u64, u64, u64) {
    let lat = |want_warm: bool| -> Vec<u64> {
        let mut v: Vec<u64> = outcomes
            .iter()
            .filter(|o| !o.dropped && o.warm == Some(want_warm))
            .map(|o| o.latency_cycles)
            .collect();
        v.sort_unstable();
        v
    };
    let (w, c) = (lat(true), lat(false));
    (
        percentile(&w, 50.0),
        percentile(&w, 99.0),
        percentile(&c, 50.0),
        percentile(&c, 99.0),
    )
}

impl CacheReport {
    /// Folds cache counters and stamped outcomes into the report section.
    #[must_use]
    pub fn build(counters: &CacheCounters, outcomes: &[RequestOutcome]) -> Self {
        let all: Vec<&RequestOutcome> = outcomes.iter().collect();
        let (warm_p50, warm_p99, cold_p50, cold_p99) = warm_cold_split(&all);
        let mut names: Vec<&str> = outcomes.iter().map(|o| o.tenant.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        let tenants = names
            .iter()
            .map(|name| {
                let subset: Vec<&RequestOutcome> =
                    outcomes.iter().filter(|o| o.tenant == *name).collect();
                let (wp50, wp99, cp50, cp99) = warm_cold_split(&subset);
                TenantCacheSlo {
                    tenant: (*name).to_string(),
                    warm_completed: subset
                        .iter()
                        .filter(|o| !o.dropped && o.warm == Some(true))
                        .count() as u64,
                    cold_completed: subset
                        .iter()
                        .filter(|o| !o.dropped && o.warm == Some(false))
                        .count() as u64,
                    warm_p50_latency_cycles: wp50,
                    warm_p99_latency_cycles: wp99,
                    cold_p50_latency_cycles: cp50,
                    cold_p99_latency_cycles: cp99,
                }
            })
            .collect();
        CacheReport {
            hits: counters.hits,
            misses: counters.misses,
            hit_rate: counters.hit_rate(),
            evictions: counters.evictions,
            llc_hits: counters.llc_hits,
            prefetch_issued: counters.prefetch_issued,
            prefetch_used: counters.prefetch_used,
            prefetch_canceled: counters.prefetch_canceled,
            prefetch_accuracy: counters.prefetch_accuracy(),
            prefetch_pj: counters.prefetch_pj,
            warm_p50_latency_cycles: warm_p50,
            warm_p99_latency_cycles: warm_p99,
            cold_p50_latency_cycles: cold_p50,
            cold_p99_latency_cycles: cold_p99,
            tenants,
        }
    }
}

/// Nearest-rank percentile of a **sorted** slice (p in (0, 100]); 0 for
/// an empty slice.
#[must_use]
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

struct Aggregate {
    requests: u64,
    completed: u64,
    dropped: u64,
    shed: u64,
    unrecoverable: u64,
    preemptions: u64,
    retries: u64,
    p50: u64,
    p95: u64,
    p99: u64,
    mean_queue: f64,
    mean_service: f64,
    misses: u64,
    miss_rate: f64,
    energy_per_req: f64,
}

fn aggregate(outcomes: &[&RequestOutcome]) -> Aggregate {
    let requests = outcomes.len() as u64;
    let completed: Vec<&&RequestOutcome> = outcomes.iter().filter(|o| !o.dropped).collect();
    let mut latencies: Vec<u64> = completed.iter().map(|o| o.latency_cycles).collect();
    latencies.sort_unstable();
    let with_deadline = outcomes.iter().filter(|o| o.deadline.is_some()).count() as u64;
    let misses = outcomes.iter().filter(|o| o.missed_deadline()).count() as u64;
    #[allow(clippy::cast_precision_loss)]
    let div = |num: f64, den: u64| if den == 0 { 0.0 } else { num / den as f64 };
    #[allow(clippy::cast_precision_loss)]
    Aggregate {
        requests,
        completed: completed.len() as u64,
        dropped: requests - completed.len() as u64,
        shed: outcomes.iter().filter(|o| o.shed).count() as u64,
        unrecoverable: outcomes.iter().filter(|o| o.unrecoverable()).count() as u64,
        preemptions: outcomes.iter().map(|o| u64::from(o.preemptions)).sum(),
        retries: outcomes.iter().map(|o| u64::from(o.retries)).sum(),
        p50: percentile(&latencies, 50.0),
        p95: percentile(&latencies, 95.0),
        p99: percentile(&latencies, 99.0),
        mean_queue: div(
            outcomes.iter().map(|o| o.queue_cycles as f64).sum(),
            requests,
        ),
        mean_service: div(
            completed.iter().map(|o| o.service_cycles as f64).sum(),
            completed.len() as u64,
        ),
        misses,
        miss_rate: div(misses as f64, with_deadline),
        energy_per_req: div(
            completed.iter().map(|o| o.energy_pj).sum(),
            completed.len() as u64,
        ),
    }
}

impl ServeReport {
    /// Builds the report from raw outcomes.
    ///
    /// `busy_tile_cycles` is Σ over completed requests of
    /// `service_cycles × tiles occupied`; utilization divides it by the
    /// pool's total capacity over the makespan.
    #[must_use]
    pub fn from_outcomes(
        policy: &str,
        pool_tiles: usize,
        degraded_tiles: usize,
        busy_tile_cycles: u64,
        mut outcomes: Vec<RequestOutcome>,
    ) -> Self {
        outcomes.sort_by_key(|o| o.id);
        let all: Vec<&RequestOutcome> = outcomes.iter().collect();
        let fleet = aggregate(&all);
        let makespan = outcomes.iter().map(|o| o.finished).max().unwrap_or(0);
        #[allow(clippy::cast_precision_loss)]
        let capacity = (pool_tiles as u64 * makespan) as f64;
        #[allow(clippy::cast_precision_loss)]
        let utilization = if capacity > 0.0 {
            busy_tile_cycles as f64 / capacity
        } else {
            0.0
        };

        let mut names: Vec<&str> = outcomes.iter().map(|o| o.tenant.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        let tenants = names
            .iter()
            .map(|name| {
                let subset: Vec<&RequestOutcome> =
                    outcomes.iter().filter(|o| o.tenant == *name).collect();
                let a = aggregate(&subset);
                TenantSlo {
                    tenant: (*name).to_string(),
                    requests: a.requests,
                    completed: a.completed,
                    dropped: a.dropped,
                    shed: a.shed,
                    unrecoverable: a.unrecoverable,
                    preemptions: a.preemptions,
                    retries: a.retries,
                    p50_latency_cycles: a.p50,
                    p95_latency_cycles: a.p95,
                    p99_latency_cycles: a.p99,
                    mean_queue_cycles: a.mean_queue,
                    mean_service_cycles: a.mean_service,
                    deadline_misses: a.misses,
                    miss_rate: a.miss_rate,
                    energy_pj_per_request: a.energy_per_req,
                }
            })
            .collect();

        ServeReport {
            policy: policy.to_string(),
            pool_tiles,
            degraded_tiles,
            requests: fleet.requests,
            completed: fleet.completed,
            dropped: fleet.dropped,
            shed: fleet.shed,
            unrecoverable: fleet.unrecoverable,
            preemptions: fleet.preemptions,
            retries: fleet.retries,
            makespan_cycles: makespan,
            utilization,
            p50_latency_cycles: fleet.p50,
            p95_latency_cycles: fleet.p95,
            p99_latency_cycles: fleet.p99,
            deadline_miss_rate: fleet.miss_rate,
            energy_pj_per_request: fleet.energy_per_req,
            tenants,
            cache: None,
            outcomes,
        }
    }

    /// Serializes the report as deterministic JSON.
    ///
    /// Engine and thread count are deliberately absent: for a fixed
    /// trace the bytes must be identical however the simulations were
    /// driven, and including them would make that property untestable.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2048 + 256 * self.outcomes.len());
        s.push_str("{\n");
        s.push_str(&format!("  \"policy\": {},\n", json_str(&self.policy)));
        s.push_str(&format!("  \"pool_tiles\": {},\n", self.pool_tiles));
        s.push_str(&format!("  \"degraded_tiles\": {},\n", self.degraded_tiles));
        s.push_str(&format!("  \"requests\": {},\n", self.requests));
        s.push_str(&format!("  \"completed\": {},\n", self.completed));
        s.push_str(&format!("  \"dropped\": {},\n", self.dropped));
        s.push_str(&format!("  \"shed\": {},\n", self.shed));
        s.push_str(&format!("  \"unrecoverable\": {},\n", self.unrecoverable));
        s.push_str(&format!("  \"preemptions\": {},\n", self.preemptions));
        s.push_str(&format!("  \"retries\": {},\n", self.retries));
        s.push_str(&format!("  \"makespan_cycles\": {},\n", self.makespan_cycles));
        s.push_str(&format!("  \"utilization\": {:.4},\n", self.utilization));
        s.push_str(&format!(
            "  \"latency_cycles\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}}},\n",
            self.p50_latency_cycles, self.p95_latency_cycles, self.p99_latency_cycles
        ));
        s.push_str(&format!(
            "  \"deadline_miss_rate\": {:.4},\n",
            self.deadline_miss_rate
        ));
        s.push_str(&format!(
            "  \"energy_pj_per_request\": {:.1},\n",
            self.energy_pj_per_request
        ));
        if let Some(c) = &self.cache {
            s.push_str("  \"cache\": {\n");
            s.push_str(&format!(
                "    \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}, \
                 \"evictions\": {}, \"llc_hits\": {},\n",
                c.hits, c.misses, c.hit_rate, c.evictions, c.llc_hits
            ));
            s.push_str(&format!(
                "    \"prefetch\": {{\"issued\": {}, \"used\": {}, \
                 \"canceled\": {}, \"accuracy\": {:.4}, \"energy_pj\": {:.1}}},\n",
                c.prefetch_issued,
                c.prefetch_used,
                c.prefetch_canceled,
                c.prefetch_accuracy,
                c.prefetch_pj
            ));
            s.push_str(&format!(
                "    \"warm_latency_cycles\": {{\"p50\": {}, \"p99\": {}}},\n",
                c.warm_p50_latency_cycles, c.warm_p99_latency_cycles
            ));
            s.push_str(&format!(
                "    \"cold_latency_cycles\": {{\"p50\": {}, \"p99\": {}}},\n",
                c.cold_p50_latency_cycles, c.cold_p99_latency_cycles
            ));
            s.push_str("    \"tenants\": [\n");
            for (i, t) in c.tenants.iter().enumerate() {
                s.push_str("      {");
                s.push_str(&format!("\"tenant\": {}, ", json_str(&t.tenant)));
                s.push_str(&format!("\"warm_completed\": {}, ", t.warm_completed));
                s.push_str(&format!("\"cold_completed\": {}, ", t.cold_completed));
                s.push_str(&format!(
                    "\"warm_latency_cycles\": {{\"p50\": {}, \"p99\": {}}}, ",
                    t.warm_p50_latency_cycles, t.warm_p99_latency_cycles
                ));
                s.push_str(&format!(
                    "\"cold_latency_cycles\": {{\"p50\": {}, \"p99\": {}}}}}{}\n",
                    t.cold_p50_latency_cycles,
                    t.cold_p99_latency_cycles,
                    if i + 1 < c.tenants.len() { "," } else { "" }
                ));
            }
            s.push_str("    ]\n  },\n");
        }
        s.push_str("  \"tenants\": [\n");
        for (i, t) in self.tenants.iter().enumerate() {
            s.push_str("    {");
            s.push_str(&format!("\"tenant\": {}, ", json_str(&t.tenant)));
            s.push_str(&format!("\"requests\": {}, ", t.requests));
            s.push_str(&format!("\"completed\": {}, ", t.completed));
            s.push_str(&format!("\"dropped\": {}, ", t.dropped));
            s.push_str(&format!("\"shed\": {}, ", t.shed));
            s.push_str(&format!("\"unrecoverable\": {}, ", t.unrecoverable));
            s.push_str(&format!("\"preemptions\": {}, ", t.preemptions));
            s.push_str(&format!("\"retries\": {}, ", t.retries));
            s.push_str(&format!(
                "\"latency_cycles\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}}}, ",
                t.p50_latency_cycles, t.p95_latency_cycles, t.p99_latency_cycles
            ));
            s.push_str(&format!("\"mean_queue_cycles\": {:.1}, ", t.mean_queue_cycles));
            s.push_str(&format!(
                "\"mean_service_cycles\": {:.1}, ",
                t.mean_service_cycles
            ));
            s.push_str(&format!("\"deadline_misses\": {}, ", t.deadline_misses));
            s.push_str(&format!("\"miss_rate\": {:.4}, ", t.miss_rate));
            s.push_str(&format!(
                "\"energy_pj_per_request\": {:.1}}}{}\n",
                t.energy_pj_per_request,
                if i + 1 < self.tenants.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"outcomes\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            s.push_str("    {");
            s.push_str(&format!("\"id\": {}, ", o.id));
            s.push_str(&format!("\"tenant\": {}, ", json_str(&o.tenant)));
            s.push_str(&format!("\"model\": {}, ", json_str(&o.model)));
            s.push_str(&format!("\"arrival\": {}, ", o.arrival));
            s.push_str(&format!("\"admitted\": {}, ", o.admitted));
            s.push_str(&format!("\"finished\": {}, ", o.finished));
            match o.deadline {
                Some(d) => s.push_str(&format!("\"deadline\": {d}, ")),
                None => s.push_str("\"deadline\": null, "),
            }
            match o.tier {
                Some(t) => s.push_str(&format!("\"tier\": {}, ", json_str(t.label()))),
                None => s.push_str("\"tier\": null, "),
            }
            s.push_str(&format!("\"ok\": {}, ", o.ok));
            s.push_str(&format!("\"dropped\": {}, ", o.dropped));
            s.push_str(&format!("\"shed\": {}, ", o.shed));
            s.push_str(&format!("\"preemptions\": {}, ", o.preemptions));
            s.push_str(&format!("\"retries\": {}, ", o.retries));
            s.push_str(&format!("\"service_cycles\": {}, ", o.service_cycles));
            s.push_str(&format!("\"queue_cycles\": {}, ", o.queue_cycles));
            s.push_str(&format!("\"latency_cycles\": {}, ", o.latency_cycles));
            // Per-outcome cache fields appear only when a weight cache
            // ran, so cache-less reports stay byte-identical to the
            // pre-cache format.
            if self.cache.is_some() {
                match o.warm {
                    Some(w) => s.push_str(&format!("\"warm\": {w}, ")),
                    None => s.push_str("\"warm\": null, "),
                }
                s.push_str(&format!("\"load_cycles\": {}, ", o.load_cycles));
            }
            s.push_str(&format!(
                "\"energy_pj\": {:.1}}}{}\n",
                o.energy_pj,
                if i + 1 < self.outcomes.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Quotes and escapes a string for JSON (shared with the trace writer).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: u64, tenant: &str, arrival: u64, latency: u64) -> RequestOutcome {
        RequestOutcome {
            id,
            tenant: tenant.into(),
            model: "m".into(),
            arrival,
            admitted: arrival,
            finished: arrival + latency,
            deadline: None,
            tier: None,
            ok: true,
            dropped: false,
            shed: false,
            service_cycles: latency,
            queue_cycles: 0,
            latency_cycles: latency,
            energy_pj: 10.0,
            preemptions: 0,
            retries: 0,
            warm: None,
            load_cycles: 0,
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 95.0), 95);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn tenants_sorted_and_fleet_counts_add_up() {
        let outcomes = vec![
            outcome(2, "zeta", 100, 50),
            outcome(0, "alpha", 0, 10),
            outcome(1, "zeta", 50, 30),
        ];
        let r = ServeReport::from_outcomes("fcfs", 16, 0, 0, outcomes);
        assert_eq!(r.requests, 3);
        assert_eq!(r.completed, 3);
        let names: Vec<&str> = r.tenants.iter().map(|t| t.tenant.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
        let ids: Vec<u64> = r.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, [0, 1, 2]);
        assert_eq!(r.makespan_cycles, 150);
    }

    #[test]
    fn deadline_misses_count_drops() {
        let mut hit = outcome(0, "a", 0, 10);
        hit.deadline = Some(100);
        let mut late = outcome(1, "a", 0, 200);
        late.deadline = Some(100);
        let mut drop = outcome(2, "a", 0, 0);
        drop.deadline = Some(100);
        drop.dropped = true;
        let free = outcome(3, "a", 0, 999); // no deadline: can't miss
        let r = ServeReport::from_outcomes("fcfs", 16, 0, 0, vec![hit, late, drop, free]);
        assert_eq!(r.tenants[0].deadline_misses, 2);
        assert!((r.deadline_miss_rate - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(r.dropped, 1);
    }

    #[test]
    fn utilization_is_busy_over_capacity() {
        let r = ServeReport::from_outcomes("fcfs", 10, 0, 500, vec![outcome(0, "a", 0, 100)]);
        // capacity = 10 tiles * 100 cycles
        assert!((r.utilization - 0.5).abs() < 1e-9);
    }

    #[test]
    fn json_is_parseable_shape_and_escapes() {
        let mut o = outcome(0, "ten\"ant", 0, 10);
        o.deadline = Some(42);
        let r = ServeReport::from_outcomes("sjf", 16, 1, 0, vec![o]);
        let j = r.to_json();
        assert!(j.contains("\"policy\": \"sjf\""));
        assert!(j.contains("\"ten\\\"ant\""));
        assert!(j.contains("\"deadline\": 42"));
        assert!(j.contains("\"degraded_tiles\": 1"));
        assert!(!j.contains("engine"), "engine must not leak into report");
        assert!(!j.contains("threads"), "threads must not leak into report");
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "balanced braces"
        );
    }
}
